// Ablation C: action-space and variable-granularity variants on MatMul
// 10x10. The paper enumerates exactly three actions ("change adder, change
// multiplier, add/remove one variable"); we concretize this as either the
// kFull space (adder +-1, multiplier +-1, one toggle action per variable —
// the default) or the literal 3-action kCompact space (next adder, next
// multiplier, round-robin toggle). Orthogonally, variables can be whole
// program arrays (per-matrix, as in the paper's reference [7]) or finer
// row/column slices.
//
// Flags: --steps=N (default 6000), --seed=S (default 1).

#include <cstdio>

#include "dse/explorer.hpp"
#include "util/ascii_table.hpp"
#include "util/cli.hpp"
#include "util/statistics.hpp"
#include "workloads/matmul_kernel.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);
  const std::size_t steps =
      static_cast<std::size_t>(args.GetInt("steps", 6000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  struct Case {
    std::string name;
    workloads::MatMulGranularity granularity;
    dse::ActionSpaceKind action_space;
  };
  const std::vector<Case> cases = {
      {"per-matrix vars, full actions (default)",
       workloads::MatMulGranularity::kPerMatrix, dse::ActionSpaceKind::kFull},
      {"per-matrix vars, compact 3 actions",
       workloads::MatMulGranularity::kPerMatrix,
       dse::ActionSpaceKind::kCompact},
      {"row/col vars, full actions", workloads::MatMulGranularity::kRowCol,
       dse::ActionSpaceKind::kFull},
      {"row/col vars, compact 3 actions",
       workloads::MatMulGranularity::kRowCol, dse::ActionSpaceKind::kCompact},
  };

  util::AsciiTable table(
      "Action-space / granularity ablation — MatMul 10x10");
  table.SetHeader({"variant", "#vars", "#actions", "steps", "late avg reward",
                   "best ΔPower seen (mW)", "solution feasible"});
  for (const Case& c : cases) {
    const workloads::MatMulKernel kernel(10, c.granularity, 2023);
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
    dse::ExplorerConfig config;
    config.max_steps = steps;
    config.max_cumulative_reward = 1e18;
    config.agent.alpha = 0.15;
    config.agent.gamma = 0.95;
    config.agent.epsilon =
        rl::EpsilonSchedule::Linear(1.0, 0.05, steps * 3 / 4);
    config.seed = seed;
    config.action_space = c.action_space;
    config.record_trace = false;
    dse::Explorer explorer(evaluator, reward, config);
    const dse::ExplorationResult result = explorer.Explore();

    const std::size_t num_actions =
        c.action_space == dse::ActionSpaceKind::kFull
            ? 4 + kernel.NumVariables()
            : 3;
    const auto bins = util::BinnedMeans(result.rewards, 100);
    table.AddRow(
        {c.name, std::to_string(kernel.NumVariables()),
         std::to_string(num_actions), std::to_string(result.steps),
         util::AsciiTable::Num(bins.empty() ? 0.0 : bins.back(), 3),
         util::AsciiTable::Num(result.delta_power.max, 2),
         result.solution_measurement.delta_acc <= reward.acc_threshold
             ? "yes"
             : "no"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: coarse per-matrix variables keep the state space tabular "
      "(6x6x2^3 = 288 states) and\nthe agent learns; row/column granularity "
      "(2^21 masks) defeats tabular Q-learning within the\nstep budget — the "
      "structural reason the paper's FIR exploration struggles. The compact\n"
      "3-action space reaches the same regions but mixes more slowly "
      "(one-directional cycling).\n");
  return 0;
}
