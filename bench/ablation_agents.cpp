// Ablation D: learning-strategy variants — the paper's conclusion calls for
// "additional work ... to improve the learning strategy"; this bench compares
// the paper's one-step Q-learning against SARSA, Expected SARSA, Double
// Q-learning, and Watkins Q(lambda) on both benchmark families, plus a
// multi-episode (restarting) variant of Q-learning.
//
// Flags: --steps=N (default 6000), --seed=S (default 1).

#include <cstdio>

#include "dse/baselines.hpp"
#include "dse/explorer.hpp"
#include "util/ascii_table.hpp"
#include "util/cli.hpp"
#include "util/statistics.hpp"
#include "workloads/fir_kernel.hpp"
#include "workloads/matmul_kernel.hpp"

namespace {

using namespace axdse;

void RunSuite(const workloads::Kernel& kernel, std::size_t steps,
              std::uint64_t seed) {
  struct Variant {
    std::string name;
    dse::AgentKind kind;
    std::size_t episodes;
  };
  const std::vector<Variant> variants = {
      {"q-learning (paper)", dse::AgentKind::kQLearning, 1},
      {"sarsa", dse::AgentKind::kSarsa, 1},
      {"expected-sarsa", dse::AgentKind::kExpectedSarsa, 1},
      {"double-q", dse::AgentKind::kDoubleQ, 1},
      {"q(lambda=0.8)", dse::AgentKind::kQLambda, 1},
      {"q-learning, 4 episodes", dse::AgentKind::kQLearning, 4},
  };

  util::AsciiTable table("Learning-strategy ablation — " + kernel.Name());
  table.SetHeader({"agent", "steps", "late avg reward", "best objective",
                   "best feasible ΔPower (mW)", "best feasible Δacc"});
  for (const Variant& variant : variants) {
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
    dse::ExplorerConfig config;
    config.max_steps = steps / variant.episodes;
    config.episodes = variant.episodes;
    config.max_cumulative_reward = 1e18;
    config.agent_kind = variant.kind;
    config.agent.alpha = 0.15;
    config.agent.gamma = 0.95;
    config.agent.epsilon = rl::EpsilonSchedule::Linear(
        1.0, 0.05, steps * 3 / 4);
    config.seed = seed;
    config.greedy_rollout_steps = 64;
    dse::Explorer explorer(evaluator, reward, config);
    const dse::ExplorationResult result = explorer.Explore();

    const auto bins = util::BinnedMeans(result.rewards, 100);
    const double late = bins.empty() ? 0.0 : bins.back();
    const double objective =
        result.has_best_feasible
            ? dse::BaselineObjective(reward,
                                     result.best_feasible_measurement)
            : -1.0;
    table.AddRow(
        {variant.name, std::to_string(result.steps),
         util::AsciiTable::Num(late, 3), util::AsciiTable::Num(objective, 4),
         result.has_best_feasible
             ? util::AsciiTable::Num(
                   result.best_feasible_measurement.delta_power_mw, 2)
             : "-",
         result.has_best_feasible
             ? util::AsciiTable::Num(result.best_feasible_measurement.delta_acc,
                                     3)
             : "-"});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::size_t steps =
      static_cast<std::size_t>(args.GetInt("steps", 6000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  const workloads::MatMulKernel matmul(
      10, workloads::MatMulGranularity::kPerMatrix, 2023);
  RunSuite(matmul, steps, seed);
  const workloads::FirKernel fir(100, 2023);
  RunSuite(fir, steps, seed);

  std::printf(
      "Reading: on the small MatMul space all value-based agents converge; "
      "differences show on\nFIR's larger space, where eligibility traces "
      "(Q-lambda) and episode restarts help propagate\nthe sparse +1 region "
      "— the direction the paper's conclusion points at.\n");
  return 0;
}
