// Ablation A: RL-based DSE vs classic heuristics (random search, stochastic
// hill climbing, simulated annealing, genetic search) under an equal budget
// of *distinct kernel evaluations*. The paper motivates RL by Wu et al.'s
// result that RL-based DSE beats GA/SA; this bench tests that claim on our
// two benchmark families using the shared feasibility-first objective
// (normalized Δpower + Δtime, infeasible configurations ranked below all
// feasible ones).
//
// Flags: --budget=N (default 1500 evaluations), --steps=N (RL step cap,
//        default 10000), --seed=S (default 1).

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "dse/baselines.hpp"
#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "util/ascii_table.hpp"
#include "util/cli.hpp"
#include "workloads/fir_kernel.hpp"
#include "workloads/matmul_kernel.hpp"

namespace {

using namespace axdse;

struct Row {
  std::string method;
  std::size_t evaluations = 0;
  std::size_t evals_to_best = 0;
  double best_objective = 0.0;
  bool feasible = false;
  double dpower = 0.0;
  double dtime = 0.0;
  double dacc = 0.0;
};

Row RowOf(const dse::BaselineResult& r) {
  Row row;
  row.method = r.name;
  row.evaluations = r.evaluations;
  row.evals_to_best = r.evaluations_to_best;
  row.best_objective = r.best_objective;
  row.feasible = r.feasible_found;
  row.dpower = r.best_measurement.delta_power_mw;
  row.dtime = r.best_measurement.delta_time_ns;
  row.dacc = r.best_measurement.delta_acc;
  return row;
}

/// Runs the Q-learning explorer and scores its best-visited configuration
/// under the same objective the baselines use.
Row RunRl(const workloads::Kernel& kernel, std::size_t max_steps,
          std::uint64_t seed) {
  dse::Evaluator evaluator(kernel);
  const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
  dse::ExplorerConfig config;
  config.max_steps = max_steps;
  config.max_cumulative_reward = 1e18;
  config.agent.alpha = 0.15;
  config.agent.gamma = 0.95;
  config.agent.epsilon =
      rl::EpsilonSchedule::Linear(1.0, 0.05, max_steps * 3 / 4);
  config.seed = seed;
  dse::Explorer explorer(evaluator, reward, config);
  const dse::ExplorationResult result = explorer.Explore();

  Row row;
  row.method = "q-learning (paper)";
  row.evaluations = result.kernel_runs;
  row.best_objective = -1e18;
  std::size_t runs_seen = 1;  // the golden run
  std::unordered_set<dse::Configuration, dse::Configuration::Hash> seen;
  for (const dse::StepRecord& record : result.trace) {
    if (seen.insert(record.config).second) ++runs_seen;
    const double objective =
        dse::BaselineObjective(reward, record.measurement);
    if (objective > row.best_objective) {
      row.best_objective = objective;
      row.feasible = record.measurement.delta_acc <= reward.acc_threshold;
      row.dpower = record.measurement.delta_power_mw;
      row.dtime = record.measurement.delta_time_ns;
      row.dacc = record.measurement.delta_acc;
      row.evals_to_best = runs_seen;
    }
  }
  return row;
}

void RunSuite(const workloads::Kernel& kernel, std::size_t budget,
              std::size_t rl_steps, std::uint64_t seed) {
  std::printf("Benchmark %s: RL (<=%zu steps) vs heuristics (budget %zu "
              "evaluations)...\n",
              kernel.Name().c_str(), rl_steps, budget);
  std::vector<Row> rows;
  rows.push_back(RunRl(kernel, rl_steps, seed));
  {
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
    rows.push_back(RowOf(dse::RandomSearch(evaluator, reward, budget, seed)));
  }
  {
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
    rows.push_back(RowOf(dse::HillClimb(evaluator, reward, budget, seed)));
  }
  {
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
    rows.push_back(
        RowOf(dse::SimulatedAnnealing(evaluator, reward, budget, seed)));
  }
  {
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
    rows.push_back(RowOf(dse::GeneticSearch(evaluator, reward, budget, seed)));
  }
  // Exhaustive oracle, when the space is small enough to enumerate.
  if (kernel.NumVariables() <= 12) {
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward = dse::MakePaperRewardConfig(evaluator);
    rows.push_back(RowOf(dse::ExhaustiveSearch(evaluator, reward)));
  }

  util::AsciiTable table("Explorer comparison — " + kernel.Name() +
                         " (objective: Δpower/P + Δtime/T, feasibility "
                         "first; higher is better)");
  table.SetHeader({"method", "evals", "evals to best", "best objective",
                   "feasible", "ΔPower (mW)", "ΔTime (ns)", "Δacc"});
  for (const Row& row : rows) {
    table.AddRow({row.method, std::to_string(row.evaluations),
                  std::to_string(row.evals_to_best),
                  util::AsciiTable::Num(row.best_objective, 4),
                  row.feasible ? "yes" : "no",
                  util::AsciiTable::Num(row.dpower, 2),
                  util::AsciiTable::Num(row.dtime, 2),
                  util::AsciiTable::Num(row.dacc, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::size_t budget =
      static_cast<std::size_t>(args.GetInt("budget", 1500));
  const std::size_t rl_steps =
      static_cast<std::size_t>(args.GetInt("steps", 10000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  const workloads::MatMulKernel matmul(
      10, workloads::MatMulGranularity::kPerMatrix, 2023);
  RunSuite(matmul, budget, rl_steps, seed);

  const workloads::FirKernel fir(100, 2023);
  RunSuite(fir, budget, rl_steps, seed);

  std::printf(
      "Reading: all methods search the same configuration space with the "
      "same cached evaluator.\nRL's advantage is strongest on spaces it can "
      "cover tabularly (MatMul); on FIR's 19-variable\nspace single-solution "
      "heuristics with restarts are competitive — matching the paper's own\n"
      "observation that the learning strategy needs further work there.\n");
  return 0;
}
