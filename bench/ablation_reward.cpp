// Ablation B: reward-shaping variants of Algorithm 1 on MatMul 10x10.
// The paper's reward uses hard gain thresholds (p_th, t_th at 50% of the
// precise run) and a hard accuracy wall at 0.4x mean output. This bench
// sweeps those factors to show how the shaping drives where the agent
// settles:
//   * gain thresholds at 0% (any feasible saving is rewarded), 25%, 50%
//     (paper), 75% of the precise cost;
//   * accuracy thresholds at 0.2, 0.4 (paper), 0.6 of the mean output.
//
// Flags: --steps=N (default 6000), --seed=S (default 1).

#include <cstdio>

#include "dse/explorer.hpp"
#include "util/ascii_table.hpp"
#include "util/cli.hpp"
#include "util/statistics.hpp"
#include "workloads/matmul_kernel.hpp"

namespace {

using namespace axdse;

struct Variant {
  std::string name;
  dse::PaperThresholdFactors factors;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::size_t steps =
      static_cast<std::size_t>(args.GetInt("steps", 6000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  const workloads::MatMulKernel kernel(
      10, workloads::MatMulGranularity::kPerMatrix, 2023);

  std::vector<Variant> variants;
  for (const double gain : {0.0, 0.25, 0.5, 0.75}) {
    Variant v;
    v.name = "acc=0.4, gain=" + util::AsciiTable::Num(gain, 2);
    v.factors.accuracy_factor = 0.4;
    v.factors.power_factor = gain;
    v.factors.time_factor = gain;
    variants.push_back(v);
  }
  for (const double acc : {0.2, 0.6}) {
    Variant v;
    v.name = "acc=" + util::AsciiTable::Num(acc, 2) + ", gain=0.5";
    v.factors.accuracy_factor = acc;
    v.factors.power_factor = 0.5;
    v.factors.time_factor = 0.5;
    variants.push_back(v);
  }

  util::AsciiTable table(
      "Reward-shaping ablation — MatMul 10x10, Algorithm 1 threshold "
      "factors (paper row: acc=0.4, gain=0.5)");
  table.SetHeader({"variant", "steps", "stop", "solution ΔPower (mW)",
                   "solution ΔTime (ns)", "solution Δacc", "feasible",
                   "late avg reward"});
  for (const Variant& variant : variants) {
    dse::Evaluator evaluator(kernel);
    const dse::RewardConfig reward =
        dse::MakePaperRewardConfig(evaluator, variant.factors);
    dse::ExplorerConfig config;
    config.max_steps = steps;
    config.max_cumulative_reward = 1e18;
    config.agent.alpha = 0.15;
    config.agent.gamma = 0.95;
    config.agent.epsilon =
        rl::EpsilonSchedule::Linear(1.0, 0.05, steps * 3 / 4);
    config.seed = seed;
    config.record_trace = false;
    dse::Explorer explorer(evaluator, reward, config);
    const dse::ExplorationResult result = explorer.Explore();

    const auto bins = util::BinnedMeans(result.rewards, 100);
    const double late_avg = bins.empty() ? 0.0 : bins.back();
    table.AddRow(
        {variant.name, std::to_string(result.steps),
         rl::ToString(result.stop_reason),
         util::AsciiTable::Num(result.solution_measurement.delta_power_mw, 2),
         util::AsciiTable::Num(result.solution_measurement.delta_time_ns, 2),
         util::AsciiTable::Num(result.solution_measurement.delta_acc, 3),
         result.solution_measurement.delta_acc <= reward.acc_threshold
             ? "yes"
             : "no",
         util::AsciiTable::Num(late_avg, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: gain=0 rewards any feasible configuration (+1 everywhere "
      "feasible), so the agent\nsettles for shallow savings; the paper's 50%% "
      "thresholds force it toward deep approximation;\n75%% thresholds "
      "shrink the rewarding region until learning degrades. Tighter accuracy "
      "walls\n(0.2) exclude aggressive multipliers entirely.\n");
  return 0;
}
