// Declarative campaign sweep: expands ONE spec string into the full
// Table-3 grid — every registry benchmark x every agent x N seeds — runs it
// through the Engine in checkpointable chunks, and reports the cross-run
// view (per-kernel Pareto fronts, best feasible points, per-cell
// aggregates) plus JSON/CSV campaign exports.
//
// The default spec is the paper's extended Table-3 grid: 6 kernels x
// 5 agents x 4 seeds (120 explorations). --all-kernels widens it with the
// image/clustering workloads sobel3x3 and kmeans1d (8 kernels, 160
// explorations).
//
// Flags: --spec=STR      full spec override (see README "Campaigns")
//        --all-kernels   include sobel3x3@12 and kmeans1d@96 in the grid
//        --steps=N       per-exploration step budget (default 10000)
//        --seeds=N       seeds per cell (default 4)
//        --cache=MODE    private|shared base cache mode (default private)
//        --quick         CI smoke mode: 120 steps, 2 seeds
//        --workers=W     engine workers (default 0 = hardware)
//        --chunk=N       grid cells per engine batch (default 10)
//        --checkpoint=DIR        resume/suspend state directory; rerunning
//                                the same command continues a killed sweep
//                                with byte-identical final reports
//        --checkpoint-interval=N engine autosave period (default 1000)
//        --budget=N      suspend every job after N new steps (needs
//                        --checkpoint; rerun to continue)
//        --max-chunks=N  run at most N chunks this invocation
//        --json=PATH / --csv=PATH campaign exports

#include <cstdio>
#include <fstream>
#include <string>

#include "axdse.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);
  const bool quick = args.Has("quick");
  const std::size_t steps =
      static_cast<std::size_t>(args.GetInt("steps", quick ? 120 : 10000));
  const std::size_t seeds =
      static_cast<std::size_t>(args.GetInt("seeds", quick ? 2 : 4));

  std::string spec_text = args.GetString("spec", "");
  if (spec_text.empty()) {
    std::string kernels =
        "kernels=matmul@10,fir@100,iir@128,conv2d@16,dct@4,dot@64";
    if (args.Has("all-kernels")) kernels += ",sobel3x3@12,kmeans1d@96";
    spec_text = kernels + " agents=all steps=" + std::to_string(steps) +
                " seeds=" + std::to_string(seeds) +
                " seed=1 kernel-seed=2023 alpha=0.15 gamma=0.95"
                " reward-cap=500 cache=" +
                args.GetString("cache", "private");
  }
  const dse::CampaignSpec spec = dse::CampaignSpec::Parse(spec_text);
  std::printf("Campaign spec: %s\n", spec.ToString().c_str());
  std::printf("Grid: %zu cells, %zu explorations\n", spec.NumCells(),
              spec.NumJobs());

  Session session(dse::EngineOptions{
      static_cast<std::size_t>(args.GetInt("workers", 0))});
  dse::CampaignOptions options;
  options.chunk_cells = static_cast<std::size_t>(args.GetInt("chunk", 10));
  if (args.Has("checkpoint")) {
    options.checkpoint_directory =
        args.GetString("checkpoint", "campaign-checkpoints");
    options.checkpoint_interval = static_cast<std::size_t>(
        args.GetInt("checkpoint-interval", 1000));
    options.step_budget =
        static_cast<std::size_t>(args.GetInt("budget", 0));
    std::printf("Checkpointing to %s (chunked resume%s).\n",
                options.checkpoint_directory.c_str(),
                options.step_budget > 0 ? ", budget-limited" : "");
  }
  options.max_chunks =
      static_cast<std::size_t>(args.GetInt("max-chunks", 0));

  const dse::CampaignResult result = session.RunCampaign(spec, options);

  if (!result.Complete()) {
    std::printf(
        "Suspended: %zu cell(s) pending, %zu job(s) mid-flight; state saved "
        "under %s.\nRe-run the same command (without --budget/--max-chunks, "
        "or with larger ones) to continue.\n\n",
        result.pending_cells, result.unfinished_jobs,
        options.checkpoint_directory.c_str());
  } else if (result.resumed_cells > 0) {
    std::printf("Resumed %zu cell(s) from campaign snapshots.\n\n",
                result.resumed_cells);
  }

  std::printf("%s\n", report::RenderCampaignSummary(result).c_str());
  std::printf("Completed %zu/%zu cells, %zu runs, %zu total steps.\n",
              result.cells.size(), result.num_cells, result.TotalRuns(),
              result.TotalSteps());

  if (args.Has("json")) {
    const std::string path = args.GetString("json", "campaign.json");
    std::ofstream out(path);
    report::WriteCampaignJson(out, result);
    std::printf("campaign JSON written to %s\n", path.c_str());
  }
  if (args.Has("csv")) {
    const std::string path = args.GetString("csv", "campaign.csv");
    std::ofstream out(path);
    report::WriteCampaignCsv(out, result);
    std::printf("campaign CSV written to %s\n", path.c_str());
  }
  return 0;
}
