// Tracked exploration-throughput benchmark: measures RL steps/sec and
// kernel-runs/sec for every registry kernel x agent combination, plus a
// headline measurement reproducing the table3 MatMul 10x10 request (both
// granularities), and emits BENCH_explore_throughput.json so the perf
// trajectory of the evaluate hot path is pinned across PRs.
//
// The headline compares against a recorded pre-compiled-plan baseline
// (virtual per-op dispatch, measured on the CI reference box at commit
// de92287 with this same harness): the row-col matmul exploration is
// kernel-evaluation-bound (2n+1 variables make nearly every step a fresh
// kernel run), so it is the number the compiled-plan/batched-primitive
// work is accountable to. The per-matrix variant (288 configurations,
// cache-hit dominated) is recorded alongside as the cache-path control.
//
// Flags: --steps=N        headline step budget      (default 10000)
//        --grid-steps=N   per-combination budget    (default 2000)
//        --quick          CI smoke mode: 1000/300 steps (schema checks,
//                         not timing)
//        --json=PATH      output path (default BENCH_explore_throughput.json)
//        --baseline=X     override the recorded baseline steps/sec

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "axdse.hpp"
#include "util/number_format.hpp"

namespace {

using namespace axdse;

// Pre-PR baseline, measured with this harness (same flags, same request)
// at commit de92287 — before devirtualized operator dispatch and batched
// kernel primitives — on the single-core CI reference box.
constexpr double kBaselineRowColStepsPerSec = 80604.0;
constexpr double kBaselineRowColKernelRunsPerSec = 76888.0;
constexpr double kBaselinePerMatrixStepsPerSec = 2394559.0;

struct Sample {
  std::string kernel;
  std::string agent;
  std::size_t steps = 0;
  std::size_t kernel_runs = 0;       // distinct evaluations (deterministic)
  std::size_t kernel_runs_executed = 0;
  double seconds = 0.0;

  double StepsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  }
  double KernelRunsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(kernel_runs_executed) / seconds
                         : 0.0;
  }
};

dse::RequestBuilder Table3MatMul(std::size_t steps,
                                 const std::string& granularity) {
  // Mirrors bench/table3_exploration.cpp's "MatMul 10x10" request.
  return Session::Request("matmul")
      .Size(10)
      .KernelSeed(2023)
      .MaxSteps(steps)
      .RewardCap(500.0)
      .Alpha(0.15)
      .Gamma(0.95)
      .Seed(1)
      .KernelParam("granularity", granularity);
}

Sample Measure(const Session& session, const dse::ExplorationRequest& request,
               const std::string& kernel_label, const std::string& agent) {
  const auto start = std::chrono::steady_clock::now();
  const dse::RequestResult result = session.Explore(request);
  const auto stop = std::chrono::steady_clock::now();

  Sample sample;
  sample.kernel = kernel_label;
  sample.agent = agent;
  sample.seconds = std::chrono::duration<double>(stop - start).count();
  for (const dse::ExplorationResult& run : result.runs) {
    sample.steps += run.steps;
    sample.kernel_runs += run.kernel_runs;
    sample.kernel_runs_executed += run.kernel_runs_executed;
  }
  return sample;
}

void WriteSample(std::ostream& out, const Sample& s) {
  out << "{\"kernel\":\"" << s.kernel << "\",\"agent\":\"" << s.agent
      << "\",\"steps\":" << s.steps << ",\"kernel_runs\":" << s.kernel_runs
      << ",\"kernel_runs_executed\":" << s.kernel_runs_executed
      << ",\"seconds\":" << util::ShortestDouble(s.seconds)
      << ",\"steps_per_sec\":" << util::ShortestDouble(s.StepsPerSec())
      << ",\"kernel_runs_per_sec\":"
      << util::ShortestDouble(s.KernelRunsPerSec()) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.Has("quick");
  const std::size_t headline_steps = static_cast<std::size_t>(
      args.GetInt("steps", quick ? 1000 : 10000));
  const std::size_t grid_steps = static_cast<std::size_t>(
      args.GetInt("grid-steps", quick ? 300 : 2000));
  const double baseline_steps_per_sec =
      args.GetDouble("baseline", kBaselineRowColStepsPerSec);

  // Timing runs are sequential on one worker: a bench must not fight its
  // own measurements for cores.
  Session session(dse::EngineOptions{1});

  std::printf("Headline: table3 MatMul 10x10, %zu steps\n", headline_steps);
  const Sample rowcol =
      Measure(session, Table3MatMul(headline_steps, "row-col").Build(),
              "matmul-10x10/row-col", "q-learning");
  const Sample permatrix =
      Measure(session, Table3MatMul(headline_steps, "per-matrix").Build(),
              "matmul-10x10/per-matrix", "q-learning");
  const double speedup = baseline_steps_per_sec > 0.0
                             ? rowcol.StepsPerSec() / baseline_steps_per_sec
                             : 0.0;
  std::printf(
      "  row-col:    %10.0f steps/sec  %10.0f kernel-runs/sec  "
      "(baseline %.0f, speedup %.2fx)\n",
      rowcol.StepsPerSec(), rowcol.KernelRunsPerSec(), baseline_steps_per_sec,
      speedup);
  std::printf("  per-matrix: %10.0f steps/sec  %10.0f kernel-runs/sec\n",
              permatrix.StepsPerSec(), permatrix.KernelRunsPerSec());

  // Grid: every registry kernel x every agent, small sizes so the full
  // sweep stays in seconds.
  struct KernelCase {
    const char* name;
    std::size_t size;
  };
  const std::vector<KernelCase> kernels = {
      {"matmul", 10}, {"fir", 100},     {"iir", 128},    {"conv2d", 16},
      {"dct", 4},     {"dot", 64},      {"sobel3x3", 12}, {"kmeans1d", 96}};
  const std::vector<dse::AgentKind> agents = {
      dse::AgentKind::kQLearning, dse::AgentKind::kSarsa,
      dse::AgentKind::kExpectedSarsa, dse::AgentKind::kDoubleQ,
      dse::AgentKind::kQLambda};

  std::vector<Sample> grid;
  std::printf("Grid: %zu kernels x %zu agents, %zu steps each\n",
              kernels.size(), agents.size(), grid_steps);
  for (const KernelCase& kc : kernels) {
    for (const dse::AgentKind agent : agents) {
      auto builder = Session::Request(kc.name)
                         .Size(kc.size)
                         .KernelSeed(2023)
                         .MaxSteps(grid_steps)
                         .RewardCap(500.0)
                         .Seed(1)
                         .Agent(agent);
      if (std::string(kc.name) == "matmul")
        builder.KernelParam("granularity", "row-col");
      grid.push_back(
          Measure(session, builder.Build(), kc.name, dse::ToString(agent)));
      const Sample& s = grid.back();
      std::printf("  %-8s %-14s %10.0f steps/sec  %10.0f kernel-runs/sec\n",
                  s.kernel.c_str(), s.agent.c_str(), s.StepsPerSec(),
                  s.KernelRunsPerSec());
    }
  }

  const std::string path =
      args.GetString("json", "BENCH_explore_throughput.json");
  std::ofstream out(path);
  out << "{\"schema\":\"axdse-explore-throughput-v1\""
      << ",\"quick\":" << (quick ? "true" : "false")
      << ",\"headline_steps\":" << headline_steps
      << ",\"grid_steps\":" << grid_steps << ",\"baseline\":{"
      << "\"label\":\"pre-compiled-plan virtual dispatch (commit de92287)\""
      << ",\"matmul_table3_rowcol_steps_per_sec\":"
      << util::ShortestDouble(baseline_steps_per_sec)
      << ",\"matmul_table3_rowcol_kernel_runs_per_sec\":"
      << util::ShortestDouble(kBaselineRowColKernelRunsPerSec)
      << ",\"matmul_table3_permatrix_steps_per_sec\":"
      << util::ShortestDouble(kBaselinePerMatrixStepsPerSec) << "}"
      << ",\"current\":{\"matmul_table3_rowcol_steps_per_sec\":"
      << util::ShortestDouble(rowcol.StepsPerSec())
      << ",\"matmul_table3_rowcol_kernel_runs_per_sec\":"
      << util::ShortestDouble(rowcol.KernelRunsPerSec())
      << ",\"matmul_table3_permatrix_steps_per_sec\":"
      << util::ShortestDouble(permatrix.StepsPerSec())
      << ",\"speedup_vs_baseline\":" << util::ShortestDouble(speedup) << "}"
      << ",\"headline\":[";
  WriteSample(out, rowcol);
  out << ",";
  WriteSample(out, permatrix);
  out << "],\"grid\":[";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i != 0) out << ",";
    WriteSample(out, grid[i]);
  }
  out << "]}\n";
  out.close();
  std::printf("throughput JSON written to %s (speedup %.2fx vs baseline)\n",
              path.c_str(), speedup);
  return 0;
}
