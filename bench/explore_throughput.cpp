// Tracked exploration-throughput benchmark: measures RL steps/sec and
// kernel-runs/sec for every registry kernel x agent combination, plus a
// headline measurement reproducing the table3 MatMul 10x10 request (both
// granularities), and emits BENCH_explore_throughput.json so the perf
// trajectory of the evaluate hot path is pinned across PRs.
//
// The headline compares against a recorded pre-compiled-plan baseline
// (virtual per-op dispatch, measured on the CI reference box at commit
// de92287 with this same harness): the row-col matmul exploration is
// kernel-evaluation-bound (2n+1 variables make nearly every step a fresh
// kernel run), so it is the number the compiled-plan/batched-primitive
// work is accountable to. The per-matrix variant (288 configurations,
// cache-hit dominated) is recorded alongside as the cache-path control.
//
// Flags: --steps=N        headline step budget      (default 10000)
//        --grid-steps=N   per-combination budget    (default 2000)
//        --quick          CI smoke mode: 1000/300 steps (schema checks,
//                         not timing)
//        --json=PATH      output path (default BENCH_explore_throughput.json)
//        --baseline=X     override the recorded baseline steps/sec

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "axdse.hpp"
#include "dse/configuration.hpp"
#include "dse/evaluator.hpp"
#include "instrument/multi_approx_context.hpp"
#include "util/number_format.hpp"
#include "util/rng.hpp"
#include "workloads/matmul_kernel.hpp"

namespace {

using namespace axdse;

// Pre-PR baseline, measured with this harness (same flags, same request)
// at commit de92287 — before devirtualized operator dispatch and batched
// kernel primitives — on the single-core CI reference box.
constexpr double kBaselineRowColStepsPerSec = 80604.0;
constexpr double kBaselineRowColKernelRunsPerSec = 76888.0;
constexpr double kBaselinePerMatrixStepsPerSec = 2394559.0;

struct Sample {
  std::string kernel;
  std::string agent;
  std::size_t steps = 0;
  std::size_t kernel_runs = 0;       // distinct evaluations (deterministic)
  std::size_t kernel_runs_executed = 0;
  double seconds = 0.0;

  double StepsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  }
  double KernelRunsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(kernel_runs_executed) / seconds
                         : 0.0;
  }
};

dse::RequestBuilder Table3MatMul(std::size_t steps,
                                 const std::string& granularity) {
  // Mirrors bench/table3_exploration.cpp's "MatMul 10x10" request.
  return Session::Request("matmul")
      .Size(10)
      .KernelSeed(2023)
      .MaxSteps(steps)
      .RewardCap(500.0)
      .Alpha(0.15)
      .Gamma(0.95)
      .Seed(1)
      .KernelParam("granularity", granularity);
}

Sample Measure(const Session& session, const dse::ExplorationRequest& request,
               const std::string& kernel_label, const std::string& agent) {
  const auto start = std::chrono::steady_clock::now();
  const dse::RequestResult result = session.Explore(request);
  const auto stop = std::chrono::steady_clock::now();

  Sample sample;
  sample.kernel = kernel_label;
  sample.agent = agent;
  sample.seconds = std::chrono::duration<double>(stop - start).count();
  for (const dse::ExplorationResult& run : result.runs) {
    sample.steps += run.steps;
    sample.kernel_runs += run.kernel_runs;
    sample.kernel_runs_executed += run.kernel_runs_executed;
  }
  return sample;
}

/// Lane-parallel scoring of one sibling-configuration stream: sequential
/// Evaluate() vs full-width MultiEvaluate() on fresh evaluators of the same
/// kernel. The measurements must agree exactly (the lane path's contract);
/// the ratio is the SoA/SIMD payoff, independent of the host's clock speed.
struct MultiEvalSample {
  std::size_t lanes = 0;
  std::size_t configs = 0;
  double scalar_seconds = 0.0;
  double lane_seconds = 0.0;

  double ScalarConfigsPerSec() const {
    return scalar_seconds > 0.0
               ? static_cast<double>(configs) / scalar_seconds
               : 0.0;
  }
  double LaneConfigsPerSec() const {
    return lane_seconds > 0.0 ? static_cast<double>(configs) / lane_seconds
                              : 0.0;
  }
  double Speedup() const {
    return lane_seconds > 0.0 ? scalar_seconds / lane_seconds : 0.0;
  }
};

bool SameMeasurement(const instrument::Measurement& a,
                     const instrument::Measurement& b) {
  return a.delta_acc == b.delta_acc && a.delta_power_mw == b.delta_power_mw &&
         a.delta_time_ns == b.delta_time_ns &&
         a.approx_power_mw == b.approx_power_mw &&
         a.approx_time_ns == b.approx_time_ns &&
         a.counts.precise_adds == b.counts.precise_adds &&
         a.counts.approx_adds == b.counts.approx_adds &&
         a.counts.precise_muls == b.counts.precise_muls &&
         a.counts.approx_muls == b.counts.approx_muls;
}

MultiEvalSample MeasureMultiEval(std::size_t configs, int reps) {
  // The table3 matmul 10x10 row-col kernel — the same identity as the
  // headline — scored over a sibling-fan stream: each group of kMaxLanes
  // configurations is one base plus its distinct single-coordinate
  // neighbors, the lane tier's design workload (batched candidate scoring
  // and surrogate audit probes fan out exactly this way). Siblings share
  // operator selections on most lanes, so dispatch groups stay wide; the
  // base then takes a few random-walk moves before the next fan.
  //
  // Both arms are timed back-to-back `reps` times on fresh evaluators and
  // the best (minimum) time per arm is kept: interleaving cancels slow
  // host-clock drift, and the in-run speedup ratio — not the absolute
  // configs/sec — is the number the CI gate holds, because it is
  // independent of the box's clock speed.
  const workloads::MatMulKernel kernel(
      10, workloads::MatMulGranularity::kRowCol, 2023);
  MultiEvalSample sample;
  sample.lanes = instrument::MultiApproxContext::kMaxLanes;

  std::vector<dse::Configuration> stream;
  stream.reserve(configs);
  {
    const dse::Evaluator shape_probe(kernel);
    const dse::SpaceShape shape = shape_probe.Shape();
    util::Rng rng(2023);
    dse::Configuration base = dse::RandomConfiguration(shape, rng);
    const std::size_t coords = 2 + shape.num_variables;
    std::vector<std::size_t> order(coords);
    while (stream.size() < configs) {
      stream.push_back(base);
      for (std::size_t i = 0; i < coords; ++i) order[i] = i;
      for (std::size_t i = coords - 1; i > 0; --i)
        std::swap(order[i], order[rng.UniformBelow(i + 1)]);
      for (std::size_t k = 0;
           k + 1 < sample.lanes && stream.size() < configs; ++k) {
        dse::Configuration neighbor = base;
        const std::size_t coord = order[k];
        if (coord == 0) {
          neighbor.SetAdderIndex((neighbor.AdderIndex() + 1) %
                                 shape.num_adders);
        } else if (coord == 1) {
          neighbor.SetMultiplierIndex((neighbor.MultiplierIndex() + 1) %
                                      shape.num_multipliers);
        } else {
          neighbor.ToggleVariable(coord - 2);
        }
        stream.push_back(neighbor);
      }
      for (int move = 0; move < 3; ++move)
        dse::RandomNeighborMove(base, shape, rng);
    }
  }
  sample.configs = stream.size();

  std::vector<instrument::Measurement> scalar_results;
  std::vector<instrument::Measurement> lane_results;
  sample.scalar_seconds = 1e100;
  sample.lane_seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    {
      std::vector<instrument::Measurement> results;
      results.reserve(stream.size());
      dse::Evaluator scalar_eval(kernel);
      const auto start = std::chrono::steady_clock::now();
      for (const dse::Configuration& config : stream)
        results.push_back(scalar_eval.Evaluate(config));
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      sample.scalar_seconds = std::min(sample.scalar_seconds, seconds);
      scalar_results = std::move(results);
    }
    {
      dse::Evaluator lane_eval(kernel);
      const auto start = std::chrono::steady_clock::now();
      std::vector<instrument::Measurement> results =
          lane_eval.MultiEvaluate(stream);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      sample.lane_seconds = std::min(sample.lane_seconds, seconds);
      lane_results = std::move(results);
    }
  }

  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!SameMeasurement(scalar_results[i], lane_results[i])) {
      std::fprintf(stderr,
                   "FATAL: lane evaluation diverged from scalar at config "
                   "%zu — the benchmark refuses to report a speedup for "
                   "wrong answers\n",
                   i);
      std::exit(1);
    }
  }
  return sample;
}

void WriteSample(std::ostream& out, const Sample& s) {
  out << "{\"kernel\":\"" << s.kernel << "\",\"agent\":\"" << s.agent
      << "\",\"steps\":" << s.steps << ",\"kernel_runs\":" << s.kernel_runs
      << ",\"kernel_runs_executed\":" << s.kernel_runs_executed
      << ",\"seconds\":" << util::ShortestDouble(s.seconds)
      << ",\"steps_per_sec\":" << util::ShortestDouble(s.StepsPerSec())
      << ",\"kernel_runs_per_sec\":"
      << util::ShortestDouble(s.KernelRunsPerSec()) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.Has("quick");
  const std::size_t headline_steps = static_cast<std::size_t>(
      args.GetInt("steps", quick ? 1000 : 10000));
  const std::size_t grid_steps = static_cast<std::size_t>(
      args.GetInt("grid-steps", quick ? 300 : 2000));
  const double baseline_steps_per_sec =
      args.GetDouble("baseline", kBaselineRowColStepsPerSec);

  // Timing runs are sequential on one worker: a bench must not fight its
  // own measurements for cores.
  Session session(dse::EngineOptions{1});

  std::printf("Headline: table3 MatMul 10x10, %zu steps\n", headline_steps);
  const Sample rowcol =
      Measure(session, Table3MatMul(headline_steps, "row-col").Build(),
              "matmul-10x10/row-col", "q-learning");
  const Sample permatrix =
      Measure(session, Table3MatMul(headline_steps, "per-matrix").Build(),
              "matmul-10x10/per-matrix", "q-learning");
  const double speedup = baseline_steps_per_sec > 0.0
                             ? rowcol.StepsPerSec() / baseline_steps_per_sec
                             : 0.0;
  std::printf(
      "  row-col:    %10.0f steps/sec  %10.0f kernel-runs/sec  "
      "(baseline %.0f, speedup %.2fx)\n",
      rowcol.StepsPerSec(), rowcol.KernelRunsPerSec(), baseline_steps_per_sec,
      speedup);
  std::printf("  per-matrix: %10.0f steps/sec  %10.0f kernel-runs/sec\n",
              permatrix.StepsPerSec(), permatrix.KernelRunsPerSec());

  const MultiEvalSample multi =
      MeasureMultiEval(quick ? 512 : 8192, quick ? 2 : 5);
  // The acceptance ratio for the lane tier: aggregate lane-scored
  // configurations/sec against this run's single-configuration exploration
  // headline (steps/sec). Same process, same box, so the ratio is immune to
  // host clock-speed differences between CI runs.
  const double lane_vs_headline =
      rowcol.StepsPerSec() > 0.0
          ? multi.LaneConfigsPerSec() / rowcol.StepsPerSec()
          : 0.0;
  std::printf(
      "Multi-eval: table3 MatMul 10x10 row-col, %zu configs, %zu lanes\n"
      "  scalar:     %10.0f configs/sec\n"
      "  %zu lanes:    %10.0f configs/sec  (speedup %.2fx, %.2fx vs "
      "exploration headline)\n",
      multi.configs, multi.lanes, multi.ScalarConfigsPerSec(), multi.lanes,
      multi.LaneConfigsPerSec(), multi.Speedup(), lane_vs_headline);

  // Grid: every registry kernel x every agent, small sizes so the full
  // sweep stays in seconds.
  struct KernelCase {
    const char* name;
    std::size_t size;
  };
  const std::vector<KernelCase> kernels = {
      {"matmul", 10}, {"fir", 100},     {"iir", 128},    {"conv2d", 16},
      {"dct", 4},     {"dot", 64},      {"sobel3x3", 12}, {"kmeans1d", 96}};
  const std::vector<dse::AgentKind> agents = {
      dse::AgentKind::kQLearning, dse::AgentKind::kSarsa,
      dse::AgentKind::kExpectedSarsa, dse::AgentKind::kDoubleQ,
      dse::AgentKind::kQLambda};

  std::vector<Sample> grid;
  std::printf("Grid: %zu kernels x %zu agents, %zu steps each\n",
              kernels.size(), agents.size(), grid_steps);
  for (const KernelCase& kc : kernels) {
    for (const dse::AgentKind agent : agents) {
      auto builder = Session::Request(kc.name)
                         .Size(kc.size)
                         .KernelSeed(2023)
                         .MaxSteps(grid_steps)
                         .RewardCap(500.0)
                         .Seed(1)
                         .Agent(agent);
      if (std::string(kc.name) == "matmul")
        builder.KernelParam("granularity", "row-col");
      grid.push_back(
          Measure(session, builder.Build(), kc.name, dse::ToString(agent)));
      const Sample& s = grid.back();
      std::printf("  %-8s %-14s %10.0f steps/sec  %10.0f kernel-runs/sec\n",
                  s.kernel.c_str(), s.agent.c_str(), s.StepsPerSec(),
                  s.KernelRunsPerSec());
    }
  }

  const std::string path =
      args.GetString("json", "BENCH_explore_throughput.json");
  std::ofstream out(path);
  out << "{\"schema\":\"axdse-explore-throughput-v1\""
      << ",\"quick\":" << (quick ? "true" : "false")
      << ",\"headline_steps\":" << headline_steps
      << ",\"grid_steps\":" << grid_steps << ",\"baseline\":{"
      << "\"label\":\"pre-compiled-plan virtual dispatch (commit de92287)\""
      << ",\"matmul_table3_rowcol_steps_per_sec\":"
      << util::ShortestDouble(baseline_steps_per_sec)
      << ",\"matmul_table3_rowcol_kernel_runs_per_sec\":"
      << util::ShortestDouble(kBaselineRowColKernelRunsPerSec)
      << ",\"matmul_table3_permatrix_steps_per_sec\":"
      << util::ShortestDouble(kBaselinePerMatrixStepsPerSec) << "}"
      << ",\"current\":{\"matmul_table3_rowcol_steps_per_sec\":"
      << util::ShortestDouble(rowcol.StepsPerSec())
      << ",\"matmul_table3_rowcol_kernel_runs_per_sec\":"
      << util::ShortestDouble(rowcol.KernelRunsPerSec())
      << ",\"matmul_table3_permatrix_steps_per_sec\":"
      << util::ShortestDouble(permatrix.StepsPerSec())
      << ",\"speedup_vs_baseline\":" << util::ShortestDouble(speedup) << "}"
      << ",\"multi_eval\":{\"lanes\":" << multi.lanes
      << ",\"configs\":" << multi.configs << ",\"scalar_configs_per_sec\":"
      << util::ShortestDouble(multi.ScalarConfigsPerSec())
      << ",\"lane_configs_per_sec\":"
      << util::ShortestDouble(multi.LaneConfigsPerSec())
      << ",\"lanes_speedup\":" << util::ShortestDouble(multi.Speedup())
      << ",\"lane_vs_rowcol_headline\":"
      << util::ShortestDouble(lane_vs_headline) << "}"
      << ",\"headline\":[";
  WriteSample(out, rowcol);
  out << ",";
  WriteSample(out, permatrix);
  out << "],\"grid\":[";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i != 0) out << ",";
    WriteSample(out, grid[i]);
  }
  out << "]}\n";
  out.close();
  std::printf("throughput JSON written to %s (speedup %.2fx vs baseline)\n",
              path.c_str(), speedup);
  return 0;
}
