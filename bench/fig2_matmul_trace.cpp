// Reproduces the paper's Figure 2: "Exploration outcomes evolution for
// Matrix Multiplication (10x10)" — ΔPower, ΔComp.Time and ΔAccuracy at every
// exploration step, with OLS trend lines. The paper shows the three series
// trending upward as the agent learns to sit in the rewarding region.
//
// Flags: --steps=N (default 10000), --seed=S (default 1), --stride=K
//        (default 250, print every K-th step), --csv=PATH (dump full trace).

#include <cstdio>
#include <fstream>

#include "axdse.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  const dse::ExplorationRequest request =
      Session::Request("matmul")
          .Size(10)
          .KernelSeed(2023)
          .MaxSteps(static_cast<std::size_t>(args.GetInt("steps", 10000)))
          .RewardCap(args.GetDouble("reward-cap", 500.0))
          .Alpha(0.15)
          .Gamma(0.95)  // epsilon: linear decay over 3/4 of the steps
          .Seed(static_cast<std::uint64_t>(args.GetInt("seed", 1)))
          .RecordTrace()
          .Build();

  Session session;
  std::printf("Exploring %s (%zu steps max)...\n",
              request.kernel.ToString().c_str(), request.max_steps);
  const dse::RequestResult run = session.Explore(request);
  const dse::ExplorationResult& result = run.runs.front();

  const std::size_t stride =
      static_cast<std::size_t>(args.GetInt("stride", 250));
  std::printf("%s\n",
              report::RenderExplorationFigure(
                  "Fig. 2 — Exploration outcomes evolution, Matrix "
                  "Multiplication (10x10)",
                  result.trace, stride)
                  .c_str());
  std::printf(
      "Paper shape: all three trend lines slope toward larger savings as "
      "the agent learns\n(positive Power/Comp.Time slopes), unlike FIR "
      "(Fig. 3). Steps executed: %zu, stop: %s.\n",
      result.steps, rl::ToString(result.stop_reason));

  if (args.Has("csv")) {
    const std::string path = args.GetString("csv", "fig2_trace.csv");
    std::ofstream out(path);
    report::WriteTraceCsv(out, result.trace);
    std::printf("Full trace written to %s\n", path.c_str());
  }
  return 0;
}
