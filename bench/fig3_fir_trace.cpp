// Reproduces the paper's Figure 3: "Exploration outcomes evolution for FIR
// (100 samples)" — the same three series as Figure 2. The paper's point is
// the *contrast* with Matrix Multiplication: the FIR exploration struggles
// (flat / erratic trends) because its fine-grained per-tap variable space
// resists tabular learning within the step budget.
//
// Flags: --steps=N (default 10000), --seed=S (default 1), --stride=K
//        (default 250), --csv=PATH.

#include <cstdio>
#include <fstream>

#include "axdse.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  // 17-tap LPF on 100 white-noise samples, per-tap variables.
  const dse::ExplorationRequest request =
      Session::Request("fir")
          .Size(100)
          .KernelSeed(2023)
          .MaxSteps(static_cast<std::size_t>(args.GetInt("steps", 10000)))
          .RewardCap(args.GetDouble("reward-cap", 500.0))
          .Alpha(0.15)
          .Gamma(0.95)  // epsilon: linear decay over 3/4 of the steps
          .Seed(static_cast<std::uint64_t>(args.GetInt("seed", 1)))
          .RecordTrace()
          .Build();

  Session session;
  std::printf("Exploring %s (%zu steps max)...\n", request.kernel.ToString().c_str(),
              request.max_steps);
  const dse::RequestResult run = session.Explore(request);
  const dse::ExplorationResult& result = run.runs.front();

  const std::size_t stride =
      static_cast<std::size_t>(args.GetInt("stride", 250));
  std::printf("%s\n", report::RenderExplorationFigure(
                          "Fig. 3 — Exploration outcomes evolution, FIR "
                          "(100 samples)",
                          result.trace, stride)
                          .c_str());
  std::printf(
      "Paper shape: trends are weaker/flatter than Matrix Multiplication "
      "(Fig. 2) — the agent\nstruggles on FIR's 19-variable space. Steps "
      "executed: %zu, stop: %s.\n",
      result.steps, rl::ToString(result.stop_reason));

  if (args.Has("csv")) {
    const std::string path = args.GetString("csv", "fig3_trace.csv");
    std::ofstream out(path);
    report::WriteTraceCsv(out, result.trace);
    std::printf("Full trace written to %s\n", path.c_str());
  }
  return 0;
}
