// Reproduces the paper's Figure 3: "Exploration outcomes evolution for FIR
// (100 samples)" — the same three series as Figure 2. The paper's point is
// the *contrast* with Matrix Multiplication: the FIR exploration struggles
// (flat / erratic trends) because its fine-grained per-tap variable space
// resists tabular learning within the step budget.
//
// Flags: --steps=N (default 10000), --seed=S (default 1), --stride=K
//        (default 250), --csv=PATH.

#include <cstdio>
#include <fstream>

#include "dse/explorer.hpp"
#include "report/figures.hpp"
#include "util/cli.hpp"
#include "workloads/fir_kernel.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  const workloads::FirKernel kernel(100, 2023);  // 17-tap LPF, per-tap vars
  dse::ExplorerConfig config;
  config.max_steps = static_cast<std::size_t>(args.GetInt("steps", 10000));
  config.max_cumulative_reward = args.GetDouble("reward-cap", 500.0);
  config.agent.alpha = 0.15;
  config.agent.gamma = 0.95;
  config.agent.epsilon =
      rl::EpsilonSchedule::Linear(1.0, 0.05, config.max_steps * 3 / 4);
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  std::printf("Exploring %s (%zu steps max)...\n", kernel.Name().c_str(),
              config.max_steps);
  const dse::ExplorationResult result = dse::ExploreKernel(kernel, config);

  const std::size_t stride =
      static_cast<std::size_t>(args.GetInt("stride", 250));
  std::printf("%s\n", report::RenderExplorationFigure(
                          "Fig. 3 — Exploration outcomes evolution, FIR "
                          "(100 samples)",
                          result.trace, stride)
                          .c_str());
  std::printf(
      "Paper shape: trends are weaker/flatter than Matrix Multiplication "
      "(Fig. 2) — the agent\nstruggles on FIR's 19-variable space. Steps "
      "executed: %zu, stop: %s.\n",
      result.steps, rl::ToString(result.stop_reason));

  if (args.Has("csv")) {
    const std::string path = args.GetString("csv", "fig3_trace.csv");
    std::ofstream out(path);
    report::WriteTraceCsv(out, result.trace);
    std::printf("Full trace written to %s\n", path.c_str());
  }
  return 0;
}
