// Reproduces the paper's Figure 4: "Average reward evolution for the Matrix
// multiplication (10x10) and FIR (100 samples)" — mean reward over every
// 100-step bin, side by side. The paper's claim: MatMul's average reward
// improves steadily (the agent learns), FIR's does not.
//
// Flags: --steps=N (default 10000), --seed=S (default 1), --bin=B (100).

#include <cstdio>

#include "axdse.hpp"
#include "util/linear_regression.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  const std::size_t steps =
      static_cast<std::size_t>(args.GetInt("steps", 10000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const auto make_request = [&](const std::string& kernel,
                                std::size_t size) {
    return Session::Request(kernel)
        .Size(size)
        .KernelSeed(2023)
        .MaxSteps(steps)
        .RewardCap(1e18)  // watch learning for the full run
        .Alpha(0.15)
        .Gamma(0.95)
        .Seed(seed)
        .Build();
  };

  // Both curves as one parallel batch.
  Session session;
  std::printf("Exploring matmul 10x10 and fir 100 (%zu workers)...\n",
              session.Engine().NumWorkers());
  const dse::BatchResult batch = session.ExploreBatch(
      {make_request("matmul", 10), make_request("fir", 100)});
  const dse::ExplorationResult& matmul_result =
      batch.results[0].runs.front();
  const dse::ExplorationResult& fir_result = batch.results[1].runs.front();

  const std::size_t bin = static_cast<std::size_t>(args.GetInt("bin", 100));
  std::printf("%s\n",
              report::RenderRewardFigure(
                  "Fig. 4 — Average reward per " + std::to_string(bin) +
                      "-step bin",
                  {{"Matrix multiplication (10x10)", matmul_result.rewards},
                   {"FIR (100 samples)", fir_result.rewards}},
                  bin)
                  .c_str());

  const auto matmul_bins = util::BinnedMeans(matmul_result.rewards, bin);
  const auto fir_bins = util::BinnedMeans(fir_result.rewards, bin);
  const util::LinearFit matmul_fit = util::FitLineIndexed(matmul_bins);
  const util::LinearFit fir_fit = util::FitLineIndexed(fir_bins);
  std::printf(
      "Learning-trend slopes (avg reward per bin): MatMul %+0.4f, FIR "
      "%+0.4f.\nPaper shape: MatMul improves markedly; FIR does not follow "
      "a continuous improvement.\n",
      matmul_fit.slope, fir_fit.slope);
  return 0;
}
