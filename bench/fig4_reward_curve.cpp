// Reproduces the paper's Figure 4: "Average reward evolution for the Matrix
// multiplication (10x10) and FIR (100 samples)" — mean reward over every
// 100-step bin, side by side. The paper's claim: MatMul's average reward
// improves steadily (the agent learns), FIR's does not.
//
// Flags: --steps=N (default 10000), --seed=S (default 1), --bin=B (100).

#include <cstdio>

#include "dse/explorer.hpp"
#include "report/figures.hpp"
#include "util/cli.hpp"
#include "util/linear_regression.hpp"
#include "util/statistics.hpp"
#include "workloads/fir_kernel.hpp"
#include "workloads/matmul_kernel.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  dse::ExplorerConfig config;
  config.max_steps = static_cast<std::size_t>(args.GetInt("steps", 10000));
  config.max_cumulative_reward = 1e18;  // watch learning for the full run
  config.agent.alpha = 0.15;
  config.agent.gamma = 0.95;
  config.agent.epsilon =
      rl::EpsilonSchedule::Linear(1.0, 0.05, config.max_steps * 3 / 4);
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  config.record_trace = false;

  const workloads::MatMulKernel matmul(
      10, workloads::MatMulGranularity::kPerMatrix, 2023);
  const workloads::FirKernel fir(100, 2023);

  std::printf("Exploring %s ...\n", matmul.Name().c_str());
  const dse::ExplorationResult matmul_result =
      dse::ExploreKernel(matmul, config);
  std::printf("Exploring %s ...\n", fir.Name().c_str());
  const dse::ExplorationResult fir_result = dse::ExploreKernel(fir, config);

  const std::size_t bin = static_cast<std::size_t>(args.GetInt("bin", 100));
  std::printf("%s\n",
              report::RenderRewardFigure(
                  "Fig. 4 — Average reward per " + std::to_string(bin) +
                      "-step bin",
                  {{"Matrix multiplication (10x10)", matmul_result.rewards},
                   {"FIR (100 samples)", fir_result.rewards}},
                  bin)
                  .c_str());

  const auto matmul_bins = util::BinnedMeans(matmul_result.rewards, bin);
  const auto fir_bins = util::BinnedMeans(fir_result.rewards, bin);
  const util::LinearFit matmul_fit = util::FitLineIndexed(matmul_bins);
  const util::LinearFit fir_fit = util::FitLineIndexed(fir_bins);
  std::printf(
      "Learning-trend slopes (avg reward per bin): MatMul %+0.4f, FIR "
      "%+0.4f.\nPaper shape: MatMul improves markedly; FIR does not follow "
      "a continuous improvement.\n",
      matmul_fit.slope, fir_fit.slope);
  return 0;
}
