// google-benchmark microbenchmarks of the behavioral operator models:
// throughput of every catalog adder/multiplier plus the instrumented-context
// dispatch overhead. These are software-model costs (the *hardware* costs
// come from the published characterization in the catalog) — they bound the
// exploration wall-clock, not the reported Δpower/Δtime.

#include <benchmark/benchmark.h>

#include "axc/catalog.hpp"
#include "instrument/approx_context.hpp"
#include "util/rng.hpp"
#include "workloads/matmul_kernel.hpp"

namespace {

using namespace axdse;

std::vector<std::uint64_t> MakeOperands(int bits, std::size_t n,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.UniformBelow(1ULL << bits);
  return v;
}

void BM_Adder(benchmark::State& state, const axc::AdderSpec& spec) {
  const auto a = MakeOperands(spec.bits, 4096, 1);
  const auto b = MakeOperands(spec.bits, 4096, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.model->Add(a[i & 4095], b[i & 4095]));
    ++i;
  }
}

void BM_Multiplier(benchmark::State& state, const axc::MultiplierSpec& spec) {
  const auto a = MakeOperands(spec.bits, 4096, 3);
  const auto b = MakeOperands(spec.bits, 4096, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.model->Multiply(a[i & 4095], b[i & 4095]));
    ++i;
  }
}

// --- scalar-vs-plan dispatch comparison -------------------------------------
// The same MAC through (a) the historical virtual Adder/Multiplier calls,
// (b) the compiled-plan descriptor switch, and (c) the batched context
// primitive — the three dispatch generations on the evaluate hot path.

void BM_ScalarMacVirtual(benchmark::State& state,
                         const axc::MultiplierSpec& mul_spec,
                         const axc::AdderSpec& add_spec) {
  const auto a = MakeOperands(8, 4096, 5);
  const auto b = MakeOperands(8, 4096, 6);
  const axc::Multiplier* mul = mul_spec.model.get();
  const axc::Adder* add = add_spec.model.get();
  std::int64_t acc = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    acc = add->AddSigned(
        acc, mul->MultiplySigned(static_cast<std::int64_t>(a[i & 4095]),
                                 static_cast<std::int64_t>(b[i & 4095])));
    benchmark::DoNotOptimize(acc);
    acc = 0;
    ++i;
  }
}

void BM_ScalarMacPlan(benchmark::State& state,
                      const axc::MultiplierSpec& mul_spec,
                      const axc::AdderSpec& add_spec) {
  const auto a = MakeOperands(8, 4096, 5);
  const auto b = MakeOperands(8, 4096, 6);
  const axc::MulOpDescriptor mul = mul_spec.model->PlanDescriptor();
  const axc::AddOpDescriptor add = add_spec.model->PlanDescriptor();
  std::int64_t acc = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    acc = axc::DispatchAddSigned(
        add, acc,
        axc::DispatchMulSigned(mul, static_cast<std::int64_t>(a[i & 4095]),
                               static_cast<std::int64_t>(b[i & 4095])));
    benchmark::DoNotOptimize(acc);
    acc = 0;
    ++i;
  }
}

void BM_BatchedDot(benchmark::State& state, std::uint32_t mul_index,
                   std::uint32_t add_index) {
  const auto set = axc::EvoApproxCatalog::Instance().MatMulSet();
  instrument::ApproxContext ctx(set, 3);
  instrument::ApproxSelection sel(3);
  sel.SetAdderIndex(add_index);
  sel.SetMultiplierIndex(mul_index);
  sel.SetVariable(0, true);  // both mul and add groups approximated
  sel.SetVariable(2, true);
  ctx.Configure(sel);
  util::Rng rng(7);
  std::vector<std::uint8_t> a(4096), b(4096);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.UniformBelow(256));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.UniformBelow(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.DotAccumulate(0, a.data(), 1, b.data(), 1, 4096, {0, 1}, {2}));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}

void BM_ContextDispatch(benchmark::State& state) {
  const auto set = axc::EvoApproxCatalog::Instance().MatMulSet();
  instrument::ApproxContext ctx(set, 4);
  instrument::ApproxSelection sel(4);
  sel.SetMultiplierIndex(3);
  sel.SetVariable(1, true);
  ctx.Configure(sel);
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Mul(123, 45, {0, 1}));
    benchmark::DoNotOptimize(ctx.Add(x, 77, {2}));
    ++x;
  }
}

void BM_MatMulKernelRun(benchmark::State& state) {
  const workloads::MatMulKernel kernel(
      static_cast<std::size_t>(state.range(0)),
      workloads::MatMulGranularity::kPerMatrix, 7);
  auto ctx = kernel.MakeContext();
  instrument::ApproxSelection sel(kernel.NumVariables());
  sel.SetMultiplierIndex(4);
  sel.SetVariable(0, true);
  sel.SetVariable(1, true);
  ctx.Configure(sel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Run(ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0) * state.range(0));
}

const int kRegistered = [] {
  const auto& catalog = axc::EvoApproxCatalog::Instance();
  for (const auto& spec : catalog.Adders8())
    benchmark::RegisterBenchmark(("adder8/" + spec.type_code).c_str(),
                                 BM_Adder, spec);
  for (const auto& spec : catalog.Adders16())
    benchmark::RegisterBenchmark(("adder16/" + spec.type_code).c_str(),
                                 BM_Adder, spec);
  for (const auto& spec : catalog.Multipliers8())
    benchmark::RegisterBenchmark(("mul8/" + spec.type_code).c_str(),
                                 BM_Multiplier, spec);
  for (const auto& spec : catalog.Multipliers32())
    benchmark::RegisterBenchmark(("mul32/" + spec.type_code).c_str(),
                                 BM_Multiplier, spec);
  benchmark::RegisterBenchmark("instrument/context_dispatch",
                               BM_ContextDispatch);
  // Dispatch-generation comparison on a representative approximate pair
  // (GTR multiplier + 6R6 adder) and on the fully exact pair.
  const auto& mul8 = catalog.Multipliers8();
  const auto& add8 = catalog.Adders8();
  benchmark::RegisterBenchmark("dispatch/scalar_mac_virtual/GTRx6R6",
                               BM_ScalarMacVirtual, mul8[2], add8[2]);
  benchmark::RegisterBenchmark("dispatch/scalar_mac_plan/GTRx6R6",
                               BM_ScalarMacPlan, mul8[2], add8[2]);
  benchmark::RegisterBenchmark("dispatch/scalar_mac_virtual/exact",
                               BM_ScalarMacVirtual, mul8[0], add8[0]);
  benchmark::RegisterBenchmark("dispatch/scalar_mac_plan/exact",
                               BM_ScalarMacPlan, mul8[0], add8[0]);
  for (std::uint32_t mi : {0u, 2u, 3u})
    benchmark::RegisterBenchmark(
        ("dispatch/batched_dot/" + mul8[mi].type_code).c_str(), BM_BatchedDot,
        mi, 2u);
  benchmark::RegisterBenchmark("kernel/matmul_run", BM_MatMulKernelRun)
      ->Arg(10)
      ->Arg(25);
  return 0;
}();

}  // namespace
