// google-benchmark microbenchmarks of the behavioral operator models:
// throughput of every catalog adder/multiplier plus the instrumented-context
// dispatch overhead. These are software-model costs (the *hardware* costs
// come from the published characterization in the catalog) — they bound the
// exploration wall-clock, not the reported Δpower/Δtime.

#include <benchmark/benchmark.h>

#include "axc/catalog.hpp"
#include "instrument/approx_context.hpp"
#include "util/rng.hpp"
#include "workloads/matmul_kernel.hpp"

namespace {

using namespace axdse;

std::vector<std::uint64_t> MakeOperands(int bits, std::size_t n,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.UniformBelow(1ULL << bits);
  return v;
}

void BM_Adder(benchmark::State& state, const axc::AdderSpec& spec) {
  const auto a = MakeOperands(spec.bits, 4096, 1);
  const auto b = MakeOperands(spec.bits, 4096, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.model->Add(a[i & 4095], b[i & 4095]));
    ++i;
  }
}

void BM_Multiplier(benchmark::State& state, const axc::MultiplierSpec& spec) {
  const auto a = MakeOperands(spec.bits, 4096, 3);
  const auto b = MakeOperands(spec.bits, 4096, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.model->Multiply(a[i & 4095], b[i & 4095]));
    ++i;
  }
}

void BM_ContextDispatch(benchmark::State& state) {
  const auto set = axc::EvoApproxCatalog::Instance().MatMulSet();
  instrument::ApproxContext ctx(set, 4);
  instrument::ApproxSelection sel(4);
  sel.SetMultiplierIndex(3);
  sel.SetVariable(1, true);
  ctx.Configure(sel);
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Mul(123, 45, {0, 1}));
    benchmark::DoNotOptimize(ctx.Add(x, 77, {2}));
    ++x;
  }
}

void BM_MatMulKernelRun(benchmark::State& state) {
  const workloads::MatMulKernel kernel(
      static_cast<std::size_t>(state.range(0)),
      workloads::MatMulGranularity::kPerMatrix, 7);
  auto ctx = kernel.MakeContext();
  instrument::ApproxSelection sel(kernel.NumVariables());
  sel.SetMultiplierIndex(4);
  sel.SetVariable(0, true);
  sel.SetVariable(1, true);
  ctx.Configure(sel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Run(ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0) * state.range(0));
}

const int kRegistered = [] {
  const auto& catalog = axc::EvoApproxCatalog::Instance();
  for (const auto& spec : catalog.Adders8())
    benchmark::RegisterBenchmark(("adder8/" + spec.type_code).c_str(),
                                 BM_Adder, spec);
  for (const auto& spec : catalog.Adders16())
    benchmark::RegisterBenchmark(("adder16/" + spec.type_code).c_str(),
                                 BM_Adder, spec);
  for (const auto& spec : catalog.Multipliers8())
    benchmark::RegisterBenchmark(("mul8/" + spec.type_code).c_str(),
                                 BM_Multiplier, spec);
  for (const auto& spec : catalog.Multipliers32())
    benchmark::RegisterBenchmark(("mul32/" + spec.type_code).c_str(),
                                 BM_Multiplier, spec);
  benchmark::RegisterBenchmark("instrument/context_dispatch",
                               BM_ContextDispatch);
  benchmark::RegisterBenchmark("kernel/matmul_run", BM_MatMulKernelRun)
      ->Arg(10)
      ->Arg(25);
  return 0;
}();

}  // namespace
