// Tracked surrogate-tier benchmark: runs the paper's Table III grid
// (MatMul 10x10 / 50x50, FIR 100 / 200, Q-learning, 10,000 steps) twice —
// surrogate off and surrogate on — and emits BENCH_surrogate.json with two
// verdicts the CI gate pins across PRs:
//
//   1. FIDELITY: the per-run solutions, the per-kernel best-feasible rows,
//      and the campaign Pareto fronts must be BYTE-IDENTICAL between the
//      two modes (the surrogate's ground-truth valve makes skipping
//      invisible to results). Any mismatch exits nonzero.
//   2. ECONOMY: kernel runs executed must drop by at least --min-reduction
//      percent (default 25) across the grid, or the tier is not paying for
//      itself and the bench exits nonzero (full mode only; --quick runs a
//      shorter grid for smoke coverage and skips the economy gate).
//
// Flags: --steps=N           step budget per exploration (default 10000)
//        --quick             CI smoke mode: 2000 steps, no economy gate
//        --min-reduction=P   economy gate percentage (default 25; 0 disables)
//        --json=PATH         output path (default BENCH_surrogate.json)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "axdse.hpp"
#include "util/number_format.hpp"

namespace {

using namespace axdse;

dse::ExplorationRequest MakeRequest(const std::string& kernel,
                                    std::size_t size, const std::string& label,
                                    std::size_t steps, bool surrogate) {
  auto builder = Session::Request(kernel)
                     .Size(size)
                     .KernelSeed(2023)
                     .Label(label)
                     .MaxSteps(steps)
                     .RewardCap(500.0)
                     .Alpha(0.15)
                     .Gamma(0.95)
                     .Seed(1);
  if (surrogate) builder.Surrogate();
  return builder.Build();
}

std::vector<dse::ExplorationRequest> Table3Grid(std::size_t steps,
                                                bool surrogate) {
  return {
      MakeRequest("matmul", 10, "MatMul 10x10", steps, surrogate),
      MakeRequest("matmul", 50, "MatMul 50x50", steps, surrogate),
      MakeRequest("fir", 100, "FIR 100", steps, surrogate),
      MakeRequest("fir", 200, "FIR 200", steps, surrogate),
  };
}

/// Everything result-shaped a surrogate skip could corrupt, as one string:
/// per-run trajectories and solutions, then the campaign reduction (best
/// feasible per kernel + Pareto fronts). Counters (kernel_runs_executed,
/// surrogate_hits, ...) are deliberately excluded — those are SUPPOSED to
/// differ between the modes.
std::string FidelityDigest(const dse::BatchResult& batch) {
  dse::CampaignAggregator aggregator;
  std::ostringstream out;
  out.imbue(std::locale::classic());
  for (const dse::RequestResult& result : batch.results) {
    aggregator.Add(result);
    out << "request " << result.request.DisplayName() << "\n";
    for (const dse::ExplorationResult& run : result.runs) {
      const instrument::Measurement& m = run.solution_measurement;
      out << "run steps=" << run.steps << " stop="
          << rl::ToString(run.stop_reason)
          << " reward=" << util::ShortestDouble(run.cumulative_reward)
          << " episodes=" << run.episodes
          << " solution=" << run.solution.ToString()
          << " dp=" << util::ShortestDouble(m.delta_power_mw)
          << " dt=" << util::ShortestDouble(m.delta_time_ns)
          << " da=" << util::ShortestDouble(m.delta_acc);
      if (run.has_best_feasible)
        out << " best=" << run.best_feasible.ToString()
            << " bdp=" << util::ShortestDouble(
                              run.best_feasible_measurement.delta_power_mw)
            << " bdt=" << util::ShortestDouble(
                              run.best_feasible_measurement.delta_time_ns)
            << " bda=" << util::ShortestDouble(
                              run.best_feasible_measurement.delta_acc);
      out << "\n";
    }
  }
  for (const dse::CampaignBest& best : aggregator.Best())
    out << "best kernel=" << best.kernel << " cell=" << best.cell
        << " seed=" << best.seed << " feasible=" << best.feasible
        << " objective=" << util::ShortestDouble(best.objective)
        << " config=" << best.config.ToString() << "\n";
  for (const dse::CampaignFront& front : aggregator.Fronts()) {
    out << "front kernel=" << front.kernel
        << " seen=" << front.front.SeenCount() << "\n";
    for (const dse::ParetoPoint& point : front.front.Points())
      out << "point label=" << point.label
          << " config=" << point.config.ToString()
          << " dp=" << util::ShortestDouble(point.measurement.delta_power_mw)
          << " dt=" << util::ShortestDouble(point.measurement.delta_time_ns)
          << " da=" << util::ShortestDouble(point.measurement.delta_acc)
          << "\n";
  }
  return out.str();
}

struct BenchRow {
  std::string label;
  std::size_t executed_off = 0;
  std::size_t executed_on = 0;
  std::size_t deferred = 0;
  std::size_t surrogate_hits = 0;

  double ReductionPct() const {
    return executed_off == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(executed_off - executed_on) /
                     static_cast<double>(executed_off);
  }
};

std::size_t SumExecuted(const dse::RequestResult& result) {
  std::size_t total = 0;
  for (const dse::ExplorationResult& run : result.runs)
    total += run.kernel_runs_executed;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.Has("quick");
  const std::size_t steps =
      static_cast<std::size_t>(args.GetInt("steps", quick ? 2000 : 10000));
  const double min_reduction =
      quick ? 0.0 : args.GetDouble("min-reduction", 25.0);

  Session session;
  std::printf("Table III grid, %zu steps, surrogate OFF...\n", steps);
  const dse::BatchResult off = session.ExploreBatch(Table3Grid(steps, false));
  std::printf("Table III grid, %zu steps, surrogate ON...\n", steps);
  const dse::BatchResult on = session.ExploreBatch(Table3Grid(steps, true));

  // Fidelity: digests must match byte for byte.
  const std::string digest_off = FidelityDigest(off);
  const std::string digest_on = FidelityDigest(on);
  const bool identical = digest_off == digest_on;

  std::vector<BenchRow> rows;
  std::size_t total_off = 0;
  std::size_t total_on = 0;
  for (std::size_t r = 0; r < off.results.size(); ++r) {
    BenchRow row;
    row.label = off.results[r].request.DisplayName();
    row.executed_off = SumExecuted(off.results[r]);
    row.executed_on = SumExecuted(on.results[r]);
    row.deferred = on.results[r].cache.deferred_runs;
    row.surrogate_hits = on.results[r].cache.surrogate_hits;
    total_off += row.executed_off;
    total_on += row.executed_on;
    std::printf(
        "  %-14s executed %5zu -> %5zu  (deferred %4zu, surrogate hits "
        "%5zu, reduction %.1f%%)\n",
        row.label.c_str(), row.executed_off, row.executed_on, row.deferred,
        row.surrogate_hits, row.ReductionPct());
    rows.push_back(std::move(row));
  }
  const double total_reduction =
      total_off == 0 ? 0.0
                     : 100.0 * static_cast<double>(total_off - total_on) /
                           static_cast<double>(total_off);
  std::printf("  %-14s executed %5zu -> %5zu  (reduction %.1f%%)\n", "TOTAL",
              total_off, total_on, total_reduction);
  std::printf("  fidelity: %s\n",
              identical ? "IDENTICAL (best, pareto, and all runs match)"
                        : "MISMATCH");

  const std::string path = args.GetString("json", "BENCH_surrogate.json");
  std::ofstream out(path);
  out.imbue(std::locale::classic());
  out << "{\"schema\":\"axdse-surrogate-v1\""
      << ",\"quick\":" << (quick ? "true" : "false") << ",\"steps\":" << steps
      << ",\"identical\":" << (identical ? "true" : "false")
      << ",\"min_reduction_pct\":" << util::ShortestDouble(min_reduction)
      << ",\"total\":{\"kernel_runs_executed_off\":" << total_off
      << ",\"kernel_runs_executed_on\":" << total_on
      << ",\"reduction_pct\":" << util::ShortestDouble(total_reduction) << "}"
      << ",\"benchmarks\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const BenchRow& row = rows[r];
    if (r != 0) out << ",";
    out << "{\"label\":\"" << report::JsonEscape(row.label)
        << "\",\"kernel_runs_executed_off\":" << row.executed_off
        << ",\"kernel_runs_executed_on\":" << row.executed_on
        << ",\"kernel_runs_deferred\":" << row.deferred
        << ",\"surrogate_hits\":" << row.surrogate_hits
        << ",\"reduction_pct\":" << util::ShortestDouble(row.ReductionPct())
        << "}";
  }
  out << "]}\n";
  out.close();
  std::printf("surrogate JSON written to %s\n", path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: surrogate-on results diverge from surrogate-off\n");
    return 1;
  }
  if (min_reduction > 0.0 && total_reduction < min_reduction) {
    std::fprintf(stderr,
                 "FAIL: kernel-run reduction %.1f%% below the %.1f%% gate\n",
                 total_reduction, min_reduction);
    return 2;
  }
  return 0;
}
