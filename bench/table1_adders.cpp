// Reproduces the paper's TABLE I ("Selected adders from EvoApproxLib"):
// operator, type, MRED, power, computation time — published values from the
// paper, plus the measured MRED of our calibrated behavioral substitutes
// (8-bit: exhaustive over all 2^16 operand pairs; 16-bit: seeded sampling).
//
// Flags: --samples16=N (default 4194304), --seed=S (default 7).

#include <cstdio>
#include <vector>

#include "axc/catalog.hpp"
#include "axc/characterization.hpp"
#include "report/tables.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);
  const std::size_t samples16 =
      static_cast<std::size_t>(args.GetInt("samples16", 4194304));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 7));

  const auto& catalog = axc::EvoApproxCatalog::Instance();

  std::vector<axc::Characterization> measured8;
  for (const axc::AdderSpec& spec : catalog.Adders8())
    measured8.push_back(
        axc::CharacterizeAdder(*spec.model, 8, std::size_t{1} << 16, seed));
  std::printf("%s\n",
              report::RenderAdderTable(
                  "TABLE I (paper) — selected 8-bit adders, published "
                  "vs measured MRED (exhaustive 2^16 pairs)",
                  catalog.Adders8(), measured8)
                  .c_str());

  std::vector<axc::Characterization> measured16;
  for (const axc::AdderSpec& spec : catalog.Adders16())
    measured16.push_back(
        axc::CharacterizeAdder(*spec.model, 16, samples16, seed));
  std::printf("%s\n",
              report::RenderAdderTable(
                  "TABLE I (paper) — selected 16-bit adders, published "
                  "vs measured MRED (sampled)",
                  catalog.Adders16(), measured16)
                  .c_str());

  std::printf(
      "Notes: published MRED/power/time are the paper's Table I values "
      "(EvoApproxLib characterization);\nmeasured MRED is the behavioral "
      "stand-in evaluated on uniform operands. Ordering is preserved "
      "exactly;\nmagnitudes are within the calibration band asserted in "
      "tests/axc_catalog_test.cpp.\n");
  return 0;
}
