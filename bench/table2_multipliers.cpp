// Reproduces the paper's TABLE II ("Selected multipliers from EvoApproxLib"):
// published MRED/power/time plus measured MRED of the behavioral substitutes
// (8-bit: exhaustive; 32-bit: seeded sampling).
//
// Flags: --samples32=N (default 4194304), --seed=S (default 7).

#include <cstdio>
#include <vector>

#include "axc/catalog.hpp"
#include "axc/characterization.hpp"
#include "report/tables.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);
  const std::size_t samples32 =
      static_cast<std::size_t>(args.GetInt("samples32", 4194304));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 7));

  const auto& catalog = axc::EvoApproxCatalog::Instance();

  std::vector<axc::Characterization> measured8;
  for (const axc::MultiplierSpec& spec : catalog.Multipliers8())
    measured8.push_back(axc::CharacterizeMultiplier(
        *spec.model, 8, std::size_t{1} << 16, seed));
  std::printf("%s\n",
              report::RenderMultiplierTable(
                  "TABLE II (paper) — selected 8-bit multipliers, published "
                  "vs measured MRED (exhaustive 2^16 pairs)",
                  catalog.Multipliers8(), measured8)
                  .c_str());

  std::vector<axc::Characterization> measured32;
  for (const axc::MultiplierSpec& spec : catalog.Multipliers32())
    measured32.push_back(
        axc::CharacterizeMultiplier(*spec.model, 32, samples32, seed));
  std::printf("%s\n",
              report::RenderMultiplierTable(
                  "TABLE II (paper) — selected 32-bit multipliers, published "
                  "vs measured MRED (sampled)",
                  catalog.Multipliers32(), measured32)
                  .c_str());

  std::printf(
      "Notes: GTR's published computation time (1.46 ns) exceeds the exact "
      "multiplier's (1.43 ns) — the\nsource of negative delta-time "
      "observations during exploration, reproduced faithfully.\n");
  return 0;
}
