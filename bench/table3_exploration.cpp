// Reproduces the paper's TABLE III ("Explorations results for power,
// computation time, and accuracy"): four Q-learning explorations —
// Matrix Multiplication 10x10 and 50x50, FIR with 100 and 200 white-noise
// samples — with the paper's experimental setup:
//   * max 10,000 steps,
//   * p_th = t_th = 50% of the precise run's power/time,
//   * acc_th = 0.4 x average precise output,
//   * rewards per Algorithm 1.
// Prints min / solution / max for ΔPower, ΔComputation time, and accuracy
// degradation plus the selected operator types, then the paper's own numbers
// for reference, then exploration diagnostics.
//
// Flags: --steps=N (default 10000), --seed=S (default 1),
//        --reward-cap=R (default 500), --granularity=per-matrix|row-col,
//        --seeds=N (default 1; N > 1 appends a mean +- std robustness table).

#include <cstdio>
#include <vector>

#include "dse/explorer.hpp"
#include "dse/multi_run.hpp"
#include "report/tables.hpp"
#include "util/ascii_table.hpp"
#include "util/cli.hpp"
#include "workloads/fir_kernel.hpp"
#include "workloads/matmul_kernel.hpp"

namespace {

axdse::dse::ExplorerConfig MakeConfig(const axdse::util::CliArgs& args,
                                      std::uint64_t seed_offset) {
  axdse::dse::ExplorerConfig config;
  config.max_steps = static_cast<std::size_t>(args.GetInt("steps", 10000));
  config.max_cumulative_reward = args.GetDouble("reward-cap", 500.0);
  config.agent.alpha = 0.15;
  config.agent.gamma = 0.95;
  config.agent.epsilon = axdse::rl::EpsilonSchedule::Linear(
      1.0, 0.05, config.max_steps * 3 / 4);
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 1)) +
                seed_offset;
  config.record_trace = false;  // Table III needs ranges only
  return config;
}

void PrintPaperReference() {
  using axdse::util::AsciiTable;
  AsciiTable table("Paper reference (DSN'23 Table III) — same rows, authors' "
                   "testbed numbers");
  table.SetHeader({"Benchmarks", "MatMul 10x10", "MatMul 50x50", "FIR 100",
                   "FIR 200"});
  table.AddRow({"ΔPower min", "15", "0.55", "529.515", "1059.345"});
  table.AddRow({"ΔPower solution", "415.3", "753.72", "10850.855",
                "1237.247"});
  table.AddRow({"ΔPower max", "418.4", "1552.017", "17344.390", "34699.1"});
  table.AddSeparator();
  table.AddRow({"ΔTime min", "50", "-90", "563.135", "1126.605"});
  table.AddRow({"ΔTime solution", "1780", "1460.8", "2664.385", "3951.525"});
  table.AddRow({"ΔTime max", "1840", "5707.6", "6547.495", "13098.89"});
  table.AddSeparator();
  table.AddRow({"Δacc min", "0.02", "0", "1096.03", "395.74"});
  table.AddRow({"Δacc solution", "19.95", "0.736", "1096.03", "27580.345"});
  table.AddRow({"Δacc max", "204.71", "26.7964", "31671.43", "27580.35"});
  table.AddSeparator();
  table.AddRow({"Adder Type", "00M", "6R6", "0GN", "067"});
  table.AddRow({"Multiplier Type", "17MJ", "L93", "043", "018"});
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);
  const std::string granularity_flag =
      args.GetString("granularity", "per-matrix");
  const workloads::MatMulGranularity granularity =
      granularity_flag == "row-col" ? workloads::MatMulGranularity::kRowCol
                                    : workloads::MatMulGranularity::kPerMatrix;

  const workloads::MatMulKernel matmul10(10, granularity, 2023);
  const workloads::MatMulKernel matmul50(50, granularity, 2023);
  const workloads::FirKernel fir100(100, 2023);
  const workloads::FirKernel fir200(200, 2023);

  std::vector<report::Table3Column> columns;
  std::printf("Running exploration: %s ...\n", matmul10.Name().c_str());
  columns.push_back(
      {"MatMul 10x10", dse::ExploreKernel(matmul10, MakeConfig(args, 0))});
  std::printf("Running exploration: %s ...\n", matmul50.Name().c_str());
  columns.push_back(
      {"MatMul 50x50", dse::ExploreKernel(matmul50, MakeConfig(args, 1))});
  std::printf("Running exploration: %s ...\n", fir100.Name().c_str());
  columns.push_back(
      {"FIR 100", dse::ExploreKernel(fir100, MakeConfig(args, 2))});
  std::printf("Running exploration: %s ...\n", fir200.Name().c_str());
  columns.push_back(
      {"FIR 200", dse::ExploreKernel(fir200, MakeConfig(args, 3))});

  std::printf("\n%s\n", report::RenderTable3(columns).c_str());

  const std::size_t seeds =
      static_cast<std::size_t>(args.GetInt("seeds", 1));
  if (seeds > 1) {
    util::AsciiTable stats("Solution robustness over " +
                           std::to_string(seeds) +
                           " seeds (mean ± std [min, max])");
    stats.SetHeader({"Benchmark", "ΔPower (mW)", "ΔTime (ns)", "Δacc",
                     "feasible", "modal adder", "modal multiplier"});
    const auto fmt = [](const util::Summary& s) {
      return util::AsciiTable::Num(s.mean, 1) + " ± " +
             util::AsciiTable::Num(s.stddev, 1) + " [" +
             util::AsciiTable::Num(s.min, 1) + ", " +
             util::AsciiTable::Num(s.max, 1) + "]";
    };
    const std::vector<std::pair<std::string, const workloads::Kernel*>>
        kernels = {{"MatMul 10x10", &matmul10},
                   {"MatMul 50x50", &matmul50},
                   {"FIR 100", &fir100},
                   {"FIR 200", &fir200}};
    std::size_t offset = 0;
    for (const auto& [name, kernel] : kernels) {
      const dse::MultiRunResult mr =
          dse::ExploreKernelMultiSeed(*kernel, MakeConfig(args, offset++),
                                      seeds);
      stats.AddRow({name, fmt(mr.solution_delta_power),
                    fmt(mr.solution_delta_time), fmt(mr.solution_delta_acc),
                    util::AsciiTable::Num(mr.feasible_fraction * 100.0, 0) +
                        "%",
                    mr.ModalAdder(), mr.ModalMultiplier()});
    }
    std::printf("%s\n", stats.Render().c_str());
  }

  PrintPaperReference();
  std::printf("\n%s\n", report::RenderExplorationSummary(columns).c_str());
  std::printf(
      "Shape checks (vs paper): every benchmark yields a feasible solution "
      "inside the explored\n[min, max] ranges; MatMul reaches near-full "
      "approximation; FIR pairs aggressive adders with\nconservative "
      "multipliers (accuracy is multiplier-dominated in Q30 accumulation).\n"
      "Absolute accuracy units differ from the paper (unspecified there); "
      "see EXPERIMENTS.md.\n");
  return 0;
}
