// Reproduces the paper's TABLE III ("Explorations results for power,
// computation time, and accuracy"): four Q-learning explorations —
// Matrix Multiplication 10x10 and 50x50, FIR with 100 and 200 white-noise
// samples — with the paper's experimental setup:
//   * max 10,000 steps,
//   * p_th = t_th = 50% of the precise run's power/time,
//   * acc_th = 0.4 x average precise output,
//   * rewards per Algorithm 1.
// Prints min / solution / max for ΔPower, ΔComputation time, and accuracy
// degradation plus the selected operator types, then the paper's own numbers
// for reference, then exploration diagnostics.
//
// The four benchmark explorations are submitted as ONE Engine batch and run
// in parallel on the worker pool; results are deterministic regardless of
// the worker count.
//
// Flags: --steps=N (default 10000), --seed=S (default 1),
//        --reward-cap=R (default 500), --granularity=per-matrix|row-col,
//        --seeds=N (default 1; N > 1 appends a mean +- std robustness table),
//        --workers=W (default 0 = hardware),
//        --cache=private|shared (default private; shared reuses kernel runs
//        across the seeds of each benchmark — identical results, fewer
//        kernel executions, reported below the table),
//        --json=PATH / --csv=PATH (machine-readable batch exports),
//        --checkpoint=DIR (suspend/resume: per-job snapshots live in DIR;
//        rerunning with the same flags resumes instead of restarting, with
//        byte-identical results — and byte-identical exports when suspended
//        via --checkpoint-budget; after a hard kill, shared-cache run
//        statistics may count re-executed work),
//        --checkpoint-interval=N (autosave every N steps, default 1000),
//        --checkpoint-budget=N (take at most N new steps per job this
//        invocation, then suspend — cooperative preemption for short
//        scheduler slots; rerun to continue).

#include <cstdio>
#include <fstream>
#include <vector>

#include "axdse.hpp"

namespace {

axdse::dse::ExplorationRequest MakeRequest(const axdse::util::CliArgs& args,
                                           const std::string& kernel,
                                           std::size_t size,
                                           const std::string& granularity,
                                           const std::string& label,
                                           std::uint64_t seed_offset) {
  auto builder =
      axdse::Session::Request(kernel)
          .Size(size)
          .KernelSeed(2023)
          .Label(label)
          .MaxSteps(static_cast<std::size_t>(args.GetInt("steps", 10000)))
          .RewardCap(args.GetDouble("reward-cap", 500.0))
          .Alpha(0.15)
          .Gamma(0.95)  // epsilon defaults to linear decay over 3/4 of steps
          .Seed(static_cast<std::uint64_t>(args.GetInt("seed", 1)) +
                seed_offset)
          .Seeds(static_cast<std::size_t>(args.GetInt("seeds", 1)))
          .Cache(axdse::dse::CacheModeFromName(
              args.GetString("cache", "private")));
  if (!granularity.empty()) builder.KernelParam("granularity", granularity);
  return builder.Build();
}

void PrintPaperReference() {
  using axdse::util::AsciiTable;
  AsciiTable table("Paper reference (DSN'23 Table III) — same rows, authors' "
                   "testbed numbers");
  table.SetHeader({"Benchmarks", "MatMul 10x10", "MatMul 50x50", "FIR 100",
                   "FIR 200"});
  table.AddRow({"ΔPower min", "15", "0.55", "529.515", "1059.345"});
  table.AddRow({"ΔPower solution", "415.3", "753.72", "10850.855",
                "1237.247"});
  table.AddRow({"ΔPower max", "418.4", "1552.017", "17344.390", "34699.1"});
  table.AddSeparator();
  table.AddRow({"ΔTime min", "50", "-90", "563.135", "1126.605"});
  table.AddRow({"ΔTime solution", "1780", "1460.8", "2664.385", "3951.525"});
  table.AddRow({"ΔTime max", "1840", "5707.6", "6547.495", "13098.89"});
  table.AddSeparator();
  table.AddRow({"Δacc min", "0.02", "0", "1096.03", "395.74"});
  table.AddRow({"Δacc solution", "19.95", "0.736", "1096.03", "27580.345"});
  table.AddRow({"Δacc max", "204.71", "26.7964", "31671.43", "27580.35"});
  table.AddSeparator();
  table.AddRow({"Adder Type", "00M", "6R6", "0GN", "067"});
  table.AddRow({"Multiplier Type", "17MJ", "L93", "043", "018"});
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);
  const std::string granularity = args.GetString("granularity", "per-matrix");

  // The whole table as one batch: four requests (x N seeds each), executed
  // in parallel by the engine.
  const std::vector<dse::ExplorationRequest> requests = {
      MakeRequest(args, "matmul", 10, granularity, "MatMul 10x10", 0),
      MakeRequest(args, "matmul", 50, granularity, "MatMul 50x50", 1),
      MakeRequest(args, "fir", 100, "", "FIR 100", 2),
      MakeRequest(args, "fir", 200, "", "FIR 200", 3),
  };

  Session session(dse::EngineOptions{
      static_cast<std::size_t>(args.GetInt("workers", 0))});
  std::printf("Running %zu explorations (%zu requests) on %zu workers...\n",
              requests.size() *
                  static_cast<std::size_t>(args.GetInt("seeds", 1)),
              requests.size(), session.Engine().NumWorkers());

  dse::CheckpointOptions checkpoint;
  if (args.Has("checkpoint")) {
    checkpoint.directory = args.GetString("checkpoint", "checkpoints");
    checkpoint.interval = static_cast<std::size_t>(
        args.GetInt("checkpoint-interval", 1000));
    checkpoint.step_budget = static_cast<std::size_t>(
        args.GetInt("checkpoint-budget", 0));
    std::printf(
        "Checkpointing to %s (autosave every %zu steps%s); an interrupted "
        "run resumes from there.\n",
        checkpoint.directory.c_str(), checkpoint.interval,
        checkpoint.step_budget > 0 ? ", budget-limited" : "");
  }
  const dse::BatchResult batch =
      checkpoint.directory.empty()
          ? session.ExploreBatch(requests)
          : session.ExploreBatch(requests, checkpoint);

  if (!batch.Complete()) {
    std::printf(
        "Suspended %zu job(s) after the step budget; snapshots saved under "
        "%s.\nRe-run the same command (without --checkpoint-budget, or with "
        "a larger one) to continue.\nPartial results so far:\n\n",
        batch.unfinished_jobs, checkpoint.directory.c_str());
  }

  std::vector<report::Table3Column> columns;
  for (const dse::RequestResult& result : batch.results)
    columns.push_back(
        {result.request.DisplayName(), result.runs.front()});

  std::printf("\n%s\n", report::RenderTable3(columns).c_str());

  // Cache economics: under --cache=shared the seeds of each benchmark reuse
  // each other's kernel runs; "saved" counts executions avoided vs private.
  const std::size_t distinct = batch.TotalDistinctEvaluations();
  const std::size_t executed = batch.TotalExecutedRuns();
  const std::size_t saved = batch.TotalSavedRuns();
  std::printf(
      "Evaluation cache [%s]: %zu distinct evaluations, %zu kernel runs "
      "executed, %zu saved (%.1f%%)\n",
      args.GetString("cache", "private").c_str(), distinct, executed, saved,
      distinct == 0 ? 0.0
                    : 100.0 * static_cast<double>(saved) /
                          static_cast<double>(distinct));
  for (const dse::SharedCacheReport& cache : batch.shared_caches)
    std::printf("  %-24s %zu jobs: %s\n", cache.signature.c_str(), cache.jobs,
                cache.stats.ToString().c_str());

  const std::size_t seeds =
      static_cast<std::size_t>(args.GetInt("seeds", 1));
  if (seeds > 1) {
    util::AsciiTable stats("Solution robustness over " +
                           std::to_string(seeds) +
                           " seeds (mean ± std [min, max])");
    stats.SetHeader({"Benchmark", "ΔPower (mW)", "ΔTime (ns)", "Δacc",
                     "feasible", "modal adder", "modal multiplier"});
    const auto fmt = [](const util::Summary& s) {
      return util::AsciiTable::Num(s.mean, 1) + " ± " +
             util::AsciiTable::Num(s.stddev, 1) + " [" +
             util::AsciiTable::Num(s.min, 1) + ", " +
             util::AsciiTable::Num(s.max, 1) + "]";
    };
    for (const dse::RequestResult& mr : batch.results)
      stats.AddRow({mr.request.DisplayName(), fmt(mr.solution_delta_power),
                    fmt(mr.solution_delta_time), fmt(mr.solution_delta_acc),
                    util::AsciiTable::Num(mr.feasible_fraction * 100.0, 0) +
                        "%",
                    mr.ModalAdder(), mr.ModalMultiplier()});
    std::printf("%s\n", stats.Render().c_str());
  }

  if (args.Has("json")) {
    const std::string path = args.GetString("json", "table3.json");
    std::ofstream out(path);
    report::WriteBatchJson(out, batch);
    std::printf("batch JSON written to %s\n", path.c_str());
  }
  if (args.Has("csv")) {
    const std::string path = args.GetString("csv", "table3.csv");
    std::ofstream out(path);
    report::WriteBatchCsv(out, batch);
    std::printf("batch CSV written to %s\n", path.c_str());
  }

  PrintPaperReference();
  std::printf("\n%s\n", report::RenderExplorationSummary(columns).c_str());
  std::printf(
      "Shape checks (vs paper): every benchmark yields a feasible solution "
      "inside the explored\n[min, max] ranges; MatMul reaches near-full "
      "approximation; FIR pairs aggressive adders with\nconservative "
      "multipliers (accuracy is multiplier-dominated in Q30 accumulation).\n"
      "Absolute accuracy units differ from the paper (unspecified there); "
      "see EXPERIMENTS.md.\n");
  return 0;
}
