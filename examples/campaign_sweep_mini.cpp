// Minimal campaign walkthrough: one spec string -> expanded grid ->
// streaming Pareto fronts and a best-per-kernel table. The full Table-3
// sweep lives in bench/campaign_sweep; this example keeps the grid small
// enough to finish in about a second.

#include <cstdio>

#include "axdse.hpp"

int main() {
  using namespace axdse;

  // 2 kernels x 2 agents x 2 accuracy thresholds, 2 seeds each = 16 runs.
  const dse::CampaignSpec spec = dse::CampaignSpec::Parse(
      "kernels=dot@48{blocks=6},kmeans1d@64"
      " agents=q-learning,sarsa acc-factors=0.4,0.2"
      " steps=400 seeds=2 seed=1 kernel-seed=2023 reward-cap=500");
  std::printf("spec: %s\n", spec.ToString().c_str());
  std::printf("grid: %zu cells, %zu explorations\n\n", spec.NumCells(),
              spec.NumJobs());

  Session session;
  const dse::CampaignResult result = session.RunCampaign(spec);

  std::printf("%s\n", report::RenderCampaignSummary(result).c_str());

  // The front of one kernel, point by point (provenance label, objectives).
  for (const dse::CampaignFront& front : result.fronts) {
    std::printf("%s front (%zu of %zu points):\n", front.kernel.c_str(),
                front.front.Size(), front.front.SeenCount());
    for (const dse::ParetoPoint& point : front.front.Points())
      std::printf("  %-28s dP=%8.1f dT=%8.1f dAcc=%10.2f  %s\n",
                  point.label.c_str(), point.measurement.delta_power_mw,
                  point.measurement.delta_time_ns,
                  point.measurement.delta_acc,
                  point.config.ToString().c_str());
  }
  return 0;
}
