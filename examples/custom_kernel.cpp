// Bringing your own application to the DSE: implement workloads::Kernel,
// route arithmetic through the ApproxContext, declare your approximable
// variables, register a factory under a name — everything else (thresholds,
// reward, Q-learning, parallel multi-seed batches, reporting) comes for
// free, and your kernel is addressable like the built-ins ("sad" next to
// "matmul" and "fir").
//
// The example kernel is a sum-of-absolute-differences (SAD) block matcher,
// the inner loop of motion estimation — a classic approximate-computing
// target (video quality tolerates arithmetic noise).
//
//   $ ./build/examples/custom_kernel

#include <cstdio>
#include <memory>
#include <vector>

#include "axdse.hpp"
#include "util/rng.hpp"

namespace {

using namespace axdse;

/// SAD between a reference 8x8 block and each of `positions` candidate
/// blocks from a synthetic frame. Outputs one SAD per candidate.
/// Variables: "ref" (reference block), "frame" (search window pixels),
/// "acc" (the SAD accumulator).
class SadKernel final : public workloads::Kernel {
 public:
  SadKernel(std::size_t positions, std::uint64_t seed)
      : positions_(positions),
        variables_({{"ref"}, {"frame"}, {"acc"}}),
        operators_(axc::EvoApproxCatalog::Instance().MatMulSet()) {
    util::Rng rng(seed);
    reference_.resize(64);
    for (auto& p : reference_)
      p = static_cast<std::uint8_t>(rng.UniformBelow(256));
    window_.resize(64 * positions_);
    for (auto& p : window_)
      p = static_cast<std::uint8_t>(rng.UniformBelow(256));
  }

  const std::string& Name() const noexcept override {
    static const std::string name = "sad-8x8";
    return name;
  }
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<workloads::VariableInfo>& Variables()
      const noexcept override {
    return variables_;
  }

  std::vector<double> Run(instrument::ApproxContext& ctx) const override {
    std::vector<double> out(positions_);
    for (std::size_t pos = 0; pos < positions_; ++pos) {
      std::int64_t acc = 0;
      for (std::size_t i = 0; i < 64; ++i) {
        // |ref - frame| expressed with instrumented ops: the subtraction is
        // a mixed-sign add (exact in hardware); the magnitude accumulation
        // goes through the approximate adder. SAD has no multiplies, so we
        // also square-accumulate every 8th difference to exercise the
        // multiplier datapath (a common SAD+SSD hybrid matcher).
        const std::int64_t diff =
            ctx.Add(static_cast<std::int64_t>(reference_[i]),
                    -static_cast<std::int64_t>(window_[pos * 64 + i]),
                    {kRef, kFrame});
        const std::int64_t mag = diff < 0 ? -diff : diff;
        acc = ctx.Add(acc, mag, {kAcc});
        if (i % 8 == 0) {
          const std::int64_t sq = ctx.Mul(mag, mag, {kRef, kFrame});
          acc = ctx.Add(acc, sq / 64, {kAcc});
        }
      }
      out[pos] = static_cast<double>(acc);
    }
    return out;
  }

 private:
  static constexpr std::size_t kRef = 0;
  static constexpr std::size_t kFrame = 1;
  static constexpr std::size_t kAcc = 2;

  std::size_t positions_;
  std::vector<std::uint8_t> reference_;
  std::vector<std::uint8_t> window_;
  std::vector<workloads::VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace

int main() {
  // Register the custom kernel by name: `size` is the number of candidate
  // positions, `seed` drives the synthetic frame.
  Session session;
  session.RegisterKernel("sad", [](const workloads::KernelParams& p) {
    return std::make_unique<SadKernel>(p.size == 0 ? 32 : p.size, p.seed);
  });
  std::printf("registered kernels:");
  for (const std::string& name : session.Kernels())
    std::printf(" %s", name.c_str());
  std::printf("\n");

  // From here on "sad" works exactly like the built-in benchmarks.
  const dse::RequestResult run = session.Explore(Session::Request("sad")
                                                     .Size(32)
                                                     .KernelSeed(11)
                                                     .MaxSteps(6000)
                                                     .Seed(3)
                                                     .Build());
  const dse::ExplorationResult& result = run.runs.front();

  std::printf("custom kernel '%s': %zu steps (%s)\n",
              run.kernel_name.c_str(), result.steps,
              rl::ToString(result.stop_reason));
  std::printf("solution: adder %s, multiplier %s, vars %zu/%zu\n",
              result.solution_adder.c_str(),
              result.solution_multiplier.c_str(),
              result.solution.SelectedCount(),
              result.solution.NumVariables());
  std::printf("  ΔP=%.2f mW (of %.2f), ΔT=%.2f ns (of %.2f), Δacc=%.2f\n",
              result.solution_measurement.delta_power_mw,
              result.solution_measurement.precise_power_mw,
              result.solution_measurement.delta_time_ns,
              result.solution_measurement.precise_time_ns,
              result.solution_measurement.delta_acc);
  std::printf(
      "Takeaway: any kernel that routes its +/x through ApproxContext gets "
      "the full DSE pipeline.\n");
  return 0;
}
