// FIR low-pass exploration: the paper's second benchmark family, end to end —
// design a 17-tap low-pass, feed it white noise, explore approximate
// adder/multiplier assignments per tap, and verify the surviving filter still
// filters (magnitude response of the approximated datapath vs the precise
// one at a few probe frequencies).
//
// This example drives the facade with a concrete kernel *instance*
// (RequestBuilder::KernelInstance) instead of a registry name — the escape
// hatch for when the caller needs the kernel's own accessors afterwards.
//
//   $ ./build/examples/fir_lowpass_exploration --samples=100 --taps=17
//         --cutoff=0.2 --csv=fir_trace.csv   (one command line)

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include "axdse.hpp"
#include "signal/fir_design.hpp"
#include "workloads/fir_kernel.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  const std::size_t samples =
      static_cast<std::size_t>(args.GetInt("samples", 100));
  const std::size_t taps = static_cast<std::size_t>(args.GetInt("taps", 17));
  const double cutoff = args.GetDouble("cutoff", 0.2);
  const auto kernel = std::make_shared<const workloads::FirKernel>(
      samples, taps, cutoff, workloads::FirGranularity::kPerTap, 42);

  std::printf("%s: %zu-tap low-pass (cutoff %.2f cycles/sample), "
              "%zu approximable variables\n",
              kernel->Name().c_str(), kernel->Taps(), cutoff,
              kernel->NumVariables());

  // Show the designed filter is a real low-pass before approximating it.
  std::vector<double> h(kernel->CoefficientsQ15().size());
  for (std::size_t k = 0; k < h.size(); ++k)
    h[k] = static_cast<double>(kernel->CoefficientsQ15()[k]) / 32768.0;
  std::printf("designed response: |H(0)|=%.3f |H(fc)|=%.3f |H(0.45)|=%.4f\n",
              signal::MagnitudeResponse(h, 0.0),
              signal::MagnitudeResponse(h, cutoff),
              signal::MagnitudeResponse(h, 0.45));

  Session session;
  const dse::RequestResult run = session.Explore(
      dse::RequestBuilder(kernel)
          .MaxSteps(static_cast<std::size_t>(args.GetInt("steps", 10000)))
          .Seed(static_cast<std::uint64_t>(args.GetInt("seed", 7)))
          .RecordTrace()
          .Build());
  const dse::ExplorationResult& result = run.runs.front();

  std::printf("\nexploration: %zu steps (%s)\n", result.steps,
              rl::ToString(result.stop_reason));
  std::printf("solution: adder %s + multiplier %s, taps approximated: ",
              result.solution_adder.c_str(),
              result.solution_multiplier.c_str());
  for (std::size_t k = 0; k < kernel->Taps(); ++k)
    std::printf("%c", result.solution.VariableSelected(kernel->VarOfTap(k))
                          ? '1'
                          : '0');
  std::printf("  x:%c acc:%c\n",
              result.solution.VariableSelected(kernel->VarOfInput()) ? '1'
                                                                     : '0',
              result.solution.VariableSelected(kernel->VarOfAccumulator())
                  ? '1'
                  : '0');
  std::printf("  ΔP=%.1f/%.1f mW, ΔT=%.1f/%.1f ns, Δacc=%.0f (Q30 ticks)\n",
              result.solution_measurement.delta_power_mw,
              result.solution_measurement.precise_power_mw,
              result.solution_measurement.delta_time_ns,
              result.solution_measurement.precise_time_ns,
              result.solution_measurement.delta_acc);
  // Δacc in real signal units: Q30 tick = 2^-30.
  std::printf("  output-signal MAE: %.6f (full scale +-1.0)\n",
              result.solution_measurement.delta_acc /
                  std::pow(2.0, 30.0));

  if (args.Has("csv")) {
    const std::string path = args.GetString("csv", "fir_trace.csv");
    std::ofstream out(path);
    report::WriteTraceCsv(out, result.trace);
    std::printf("trace written to %s\n", path.c_str());
  }
  return 0;
}
