// Matrix-multiplication exploration with custom knobs: matrix size, variable
// granularity, threshold factors — plus a Pareto-front summary of every
// trade-off the agent visited (the multi-objective view of the exploration).
// Everything runs through the axdse.hpp facade: CLI flags are folded into
// one ExplorationRequest, which also round-trips to a string you can replay.
//
//   $ ./build/examples/matmul_exploration --n=16 --granularity=row-col
//         --acc-factor=0.3 --steps=8000   (one command line)

#include <cstdio>

#include "axdse.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  const dse::ExplorationRequest request =
      Session::Request("matmul")
          .Size(static_cast<std::size_t>(args.GetInt("n", 10)))
          .KernelSeed(42)
          .KernelParam("granularity",
                       args.GetString("granularity", "per-matrix"))
          .MaxSteps(static_cast<std::size_t>(args.GetInt("steps", 10000)))
          .Seed(static_cast<std::uint64_t>(args.GetInt("seed", 7)))
          .AccuracyFactor(args.GetDouble("acc-factor", 0.4))
          .PowerFactor(args.GetDouble("power-factor", 0.5))
          .TimeFactor(args.GetDouble("time-factor", 0.5))
          .GreedyRollout(64)  // extract the learned policy at the end
          .RecordTrace()      // keep the per-step trace for the Pareto view
          .Build();
  std::printf("request: %s\n", request.ToString().c_str());

  // Construct the kernel once and hand the instance to the engine — the
  // report below needs its operator set, and this avoids regenerating the
  // matrices a second time.
  dse::ExplorationRequest pinned = request;
  pinned.kernel_override =
      workloads::KernelRegistry::Global().Create(request.kernel,
                                                 request.kernel_seed);
  const auto& ops = pinned.kernel_override->Operators();

  Session session;
  const dse::RequestResult run = session.Explore(pinned);
  const dse::ExplorationResult& result = run.runs.front();

  std::printf("\n%s: precise run %.1f mW / %.1f ns, acc_th=%.2f\n",
              run.kernel_name.c_str(),
              result.solution_measurement.precise_power_mw,
              result.solution_measurement.precise_time_ns,
              run.reward.acc_threshold);
  std::printf("exploration: %zu steps, stop=%s, cumulative reward %.0f\n",
              result.steps, rl::ToString(result.stop_reason),
              result.cumulative_reward);
  std::printf("solution: adder %s, multiplier %s, vars %zu/%zu, "
              "ΔP=%.1f mW ΔT=%.1f ns Δacc=%.2f\n",
              result.solution_adder.c_str(),
              result.solution_multiplier.c_str(),
              result.solution.SelectedCount(),
              result.solution.NumVariables(),
              result.solution_measurement.delta_power_mw,
              result.solution_measurement.delta_time_ns,
              result.solution_measurement.delta_acc);

  if (result.has_best_feasible) {
    const auto& best = result.best_feasible_measurement;
    std::printf("best feasible seen: adder %s, multiplier %s, "
                "ΔP=%.1f mW ΔT=%.1f ns Δacc=%.2f\n",
                ops.adders[result.best_feasible.AdderIndex()]
                    .type_code.c_str(),
                ops.multipliers[result.best_feasible.MultiplierIndex()]
                    .type_code.c_str(),
                best.delta_power_mw, best.delta_time_ns, best.delta_acc);
  }

  // Multi-objective summary: the non-dominated trade-offs seen on the way.
  const auto front = dse::ParetoFrontOfTrace(result.trace);
  util::AsciiTable table("Pareto front of visited configurations "
                         "(maximize ΔPower/ΔTime, minimize Δacc)");
  table.SetHeader({"adder", "multiplier", "vars", "ΔPower (mW)",
                   "ΔTime (ns)", "Δacc", "feasible"});
  for (const dse::ParetoPoint& p : front) {
    table.AddRow({ops.adders[p.config.AdderIndex()].type_code,
                  ops.multipliers[p.config.MultiplierIndex()].type_code,
                  std::to_string(p.config.SelectedCount()),
                  util::AsciiTable::Num(p.measurement.delta_power_mw, 2),
                  util::AsciiTable::Num(p.measurement.delta_time_ns, 2),
                  util::AsciiTable::Num(p.measurement.delta_acc, 3),
                  p.measurement.delta_acc <= run.reward.acc_threshold
                      ? "yes"
                      : "no"});
  }
  std::printf("\n%s", table.Render().c_str());
  std::printf("(%zu non-dominated of %zu visited configurations)\n",
              front.size(), result.kernel_runs);
  return 0;
}
