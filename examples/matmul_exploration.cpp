// Matrix-multiplication exploration with custom knobs: matrix size, variable
// granularity, threshold factors — plus a Pareto-front summary of every
// trade-off the agent visited (the multi-objective view of the exploration).
//
//   $ ./build/examples/matmul_exploration --n=16 --granularity=row-col
//         --acc-factor=0.3 --steps=8000   (one command line)

#include <cstdio>

#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "util/ascii_table.hpp"
#include "util/cli.hpp"
#include "workloads/matmul_kernel.hpp"

int main(int argc, char** argv) {
  using namespace axdse;
  const util::CliArgs args(argc, argv);

  const std::size_t n = static_cast<std::size_t>(args.GetInt("n", 10));
  const workloads::MatMulGranularity granularity =
      args.GetString("granularity", "per-matrix") == "row-col"
          ? workloads::MatMulGranularity::kRowCol
          : workloads::MatMulGranularity::kPerMatrix;
  const workloads::MatMulKernel kernel(n, granularity, 42);

  dse::Evaluator evaluator(kernel);
  dse::PaperThresholdFactors factors;
  factors.accuracy_factor = args.GetDouble("acc-factor", 0.4);
  factors.power_factor = args.GetDouble("power-factor", 0.5);
  factors.time_factor = args.GetDouble("time-factor", 0.5);
  const dse::RewardConfig reward =
      dse::MakePaperRewardConfig(evaluator, factors);
  std::printf(
      "%s: %zu variables, precise run: %.1f mW / %.1f ns, acc_th=%.2f\n",
      kernel.Name().c_str(), kernel.NumVariables(), evaluator.PrecisePowerMw(),
      evaluator.PreciseTimeNs(), reward.acc_threshold);

  dse::ExplorerConfig config;
  config.max_steps = static_cast<std::size_t>(args.GetInt("steps", 10000));
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 7));
  config.greedy_rollout_steps = 64;  // extract the learned policy at the end
  dse::Explorer explorer(evaluator, reward, config);
  const dse::ExplorationResult result = explorer.Explore();

  std::printf("\nexploration: %zu steps, stop=%s, cumulative reward %.0f\n",
              result.steps, rl::ToString(result.stop_reason),
              result.cumulative_reward);
  std::printf("solution: adder %s, multiplier %s, vars %zu/%zu, "
              "ΔP=%.1f mW ΔT=%.1f ns Δacc=%.2f\n",
              result.solution_adder.c_str(),
              result.solution_multiplier.c_str(),
              result.solution.SelectedCount(), kernel.NumVariables(),
              result.solution_measurement.delta_power_mw,
              result.solution_measurement.delta_time_ns,
              result.solution_measurement.delta_acc);
  if (result.has_best_feasible) {
    const auto& best = result.best_feasible_measurement;
    std::printf("best feasible seen: adder %s, multiplier %s, "
                "ΔP=%.1f mW ΔT=%.1f ns Δacc=%.2f\n",
                kernel.Operators()
                    .adders[result.best_feasible.AdderIndex()]
                    .type_code.c_str(),
                kernel.Operators()
                    .multipliers[result.best_feasible.MultiplierIndex()]
                    .type_code.c_str(),
                best.delta_power_mw, best.delta_time_ns, best.delta_acc);
  }

  // Multi-objective summary: the non-dominated trade-offs seen on the way.
  const auto front = dse::ParetoFrontOfTrace(result.trace);
  util::AsciiTable table("Pareto front of visited configurations "
                         "(maximize ΔPower/ΔTime, minimize Δacc)");
  table.SetHeader({"adder", "multiplier", "vars", "ΔPower (mW)",
                   "ΔTime (ns)", "Δacc", "feasible"});
  const auto& ops = kernel.Operators();
  for (const dse::ParetoPoint& p : front) {
    table.AddRow({ops.adders[p.config.AdderIndex()].type_code,
                  ops.multipliers[p.config.MultiplierIndex()].type_code,
                  std::to_string(p.config.SelectedCount()),
                  util::AsciiTable::Num(p.measurement.delta_power_mw, 2),
                  util::AsciiTable::Num(p.measurement.delta_time_ns, 2),
                  util::AsciiTable::Num(p.measurement.delta_acc, 3),
                  p.measurement.delta_acc <= reward.acc_threshold ? "yes"
                                                                  : "no"});
  }
  std::printf("\n%s", table.Render().c_str());
  std::printf("(%zu non-dominated of %zu visited configurations)\n",
              front.size(), result.kernel_runs);
  return 0;
}
