// Working with the operator library directly: browse the EvoApprox-named
// catalog, characterize a custom behavioral operator, and compare error
// metrics across the whole 8-bit multiplier family — useful when deciding
// which operators to expose to the DSE for a new application.
//
//   $ ./build/examples/operator_characterization

#include <cstdio>

#include "axdse.hpp"

int main() {
  using namespace axdse;
  const auto& catalog = axc::EvoApproxCatalog::Instance();

  // 1. Full error profile of the catalog's 8-bit multipliers (exhaustive).
  util::AsciiTable table(
      "8-bit multiplier error profile (exhaustive, 65536 operand pairs)");
  table.SetHeader({"operator", "model", "MRED %", "MAE", "error rate %",
                   "worst abs err", "bias"});
  for (const axc::MultiplierSpec& spec : catalog.Multipliers8()) {
    const axc::Characterization c =
        axc::CharacterizeMultiplier(*spec.model, 8, std::size_t{1} << 16);
    table.AddRow({spec.type_code, spec.model->Describe(),
                  util::AsciiTable::Num(c.mred * 100.0, 3),
                  util::AsciiTable::Num(c.mae, 1),
                  util::AsciiTable::Num(c.error_rate * 100.0, 1),
                  util::AsciiTable::Num(c.worst_case, 0),
                  util::AsciiTable::Num(c.mean_error, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  // 2. Characterize a *custom* operator the library doesn't ship: a very
  //    coarse DRUM with 3 kept bits at 16-bit width, as a candidate for a
  //    hypothetical 16-bit multiplier slot.
  const auto custom = axc::MakeDrumMultiplier(16, 3);
  const axc::Characterization c =
      axc::CharacterizeMultiplier(*custom, 16, 1 << 20, /*seed=*/99);
  std::printf("custom %s @16-bit: MRED %.2f%%, error rate %.1f%%, "
              "bias %.1f (%s, %zu samples)\n\n",
              custom->Describe().c_str(), c.mred * 100.0,
              c.error_rate * 100.0, c.mean_error,
              c.exhaustive ? "exhaustive" : "sampled", c.samples);

  // 3. The trade-off table the DSE actually consumes: published power/time
  //    vs accuracy ordering.
  util::AsciiTable tradeoff("Accuracy/power trade-off (published data, "
                            "32-bit multipliers)");
  tradeoff.SetHeader({"operator", "MRED %", "power (mW)", "time (ns)",
                      "power saving vs exact %"});
  const double exact_power = catalog.Multipliers32().front().power_mw;
  for (const axc::MultiplierSpec& spec : catalog.Multipliers32()) {
    tradeoff.AddRow(
        {spec.type_code, util::AsciiTable::Num(spec.published_mred_pct, 2),
         util::AsciiTable::Num(spec.power_mw, 2),
         util::AsciiTable::Num(spec.time_ns, 3),
         util::AsciiTable::Num(100.0 * (1.0 - spec.power_mw / exact_power),
                               1)});
  }
  std::printf("%s", tradeoff.Render().c_str());
  return 0;
}
