// Quickstart: explore approximate versions of a 10x10 matrix multiplication
// with the paper's Q-learning DSE in ~15 lines of user code, entirely
// through the axdse.hpp facade.
//
//   $ ./build/examples/quickstart
//
// Pipeline: open a Session -> describe the run as an ExplorationRequest
// (kernel by registry name + paper budget) -> Explore() -> read the
// solution. Thresholds are derived from the precise run automatically
// (acc_th = 0.4 x mean output, p_th/t_th = 50% of precise power/time).

#include <cstdio>

#include "axdse.hpp"

int main() {
  using namespace axdse;

  // 1. A session: kernel registry ("matmul", "fir", "iir", "conv2d", "dct",
  //    "dot") plus a batch engine sized to the hardware.
  Session session;

  // 2. The run, as one validated value: C = A*B on random 8-bit 10x10
  //    matrices, <= 10,000 Q-learning steps, straight from the paper.
  const dse::ExplorationRequest request = Session::Request("matmul")
                                              .Size(10)
                                              .KernelSeed(42)
                                              .MaxSteps(10000)
                                              .Seed(7)
                                              .Build();

  // 3. Explore (a request can carry many seeds; this one runs a single
  //    exploration).
  const dse::RequestResult batch = session.Explore(request);
  const dse::ExplorationResult& result = batch.runs.front();

  // 4. Use the solution.
  std::printf("explored %zu steps (%s), %zu distinct versions executed\n",
              result.steps, rl::ToString(result.stop_reason),
              result.kernel_runs);
  std::printf("solution: adder %s + multiplier %s, %zu/%zu variables\n",
              result.solution_adder.c_str(),
              result.solution_multiplier.c_str(),
              result.solution.SelectedCount(),
              result.solution.NumVariables());
  std::printf("  power saved: %.1f of %.1f mW (%.1f%%)\n",
              result.solution_measurement.delta_power_mw,
              result.solution_measurement.precise_power_mw,
              100.0 * result.solution_measurement.delta_power_mw /
                  result.solution_measurement.precise_power_mw);
  std::printf("  time saved:  %.1f of %.1f ns (%.1f%%)\n",
              result.solution_measurement.delta_time_ns,
              result.solution_measurement.precise_time_ns,
              100.0 * result.solution_measurement.delta_time_ns /
                  result.solution_measurement.precise_time_ns);
  std::printf("  accuracy cost (MAE on outputs): %.2f\n",
              result.solution_measurement.delta_acc);
  return 0;
}
