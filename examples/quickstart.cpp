// Quickstart: explore approximate versions of a 10x10 matrix multiplication
// with the paper's Q-learning DSE in ~20 lines of user code.
//
//   $ ./build/examples/quickstart
//
// Pipeline: pick a kernel -> build an evaluator (runs the precise golden
// version once) -> derive the paper's reward thresholds -> run the explorer
// -> read the solution.

#include <cstdio>

#include "dse/explorer.hpp"
#include "workloads/matmul_kernel.hpp"

int main() {
  using namespace axdse;

  // 1. The application to approximate: C = A*B on random 8-bit matrices.
  //    Variables the DSE may select: A, B, and the accumulator.
  const workloads::MatMulKernel kernel(
      10, workloads::MatMulGranularity::kPerMatrix, /*seed=*/42);

  // 2. Exploration setup straight from the paper: <=10,000 Q-learning steps;
  //    thresholds are derived from the precise run inside ExploreKernel
  //    (acc_th = 0.4 x mean output, p_th/t_th = 50% of precise power/time).
  dse::ExplorerConfig config;
  config.max_steps = 10000;
  config.seed = 7;

  // 3. Explore.
  const dse::ExplorationResult result = dse::ExploreKernel(kernel, config);

  // 4. Use the solution.
  std::printf("explored %zu steps (%s), %zu distinct versions executed\n",
              result.steps, rl::ToString(result.stop_reason),
              result.kernel_runs);
  std::printf("solution: adder %s + multiplier %s, %zu/%zu variables\n",
              result.solution_adder.c_str(),
              result.solution_multiplier.c_str(),
              result.solution.SelectedCount(),
              result.solution.NumVariables());
  std::printf("  power saved: %.1f of %.1f mW (%.1f%%)\n",
              result.solution_measurement.delta_power_mw,
              result.solution_measurement.precise_power_mw,
              100.0 * result.solution_measurement.delta_power_mw /
                  result.solution_measurement.precise_power_mw);
  std::printf("  time saved:  %.1f of %.1f ns (%.1f%%)\n",
              result.solution_measurement.delta_time_ns,
              result.solution_measurement.precise_time_ns,
              100.0 * result.solution_measurement.delta_time_ns /
                  result.solution_measurement.precise_time_ns);
  std::printf("  accuracy cost (MAE on outputs): %.2f\n",
              result.solution_measurement.delta_acc);
  return 0;
}
