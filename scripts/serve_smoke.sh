#!/usr/bin/env bash
# End-to-end drain/restart smoke for the axdse-serve daemon, exercising the
# real binaries and the real SIGTERM path (the in-process equivalent lives
# in tests/serve_server_test.cpp):
#
#   1. run a campaign job on a reference daemon, uninterrupted
#   2. run the same job on a second daemon, SIGTERM it mid-run
#   3. restart the daemon on the same state directory, let the job finish
#   4. cmp: the resumed result JSON must be byte-identical to the reference
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/axdse-serve"
CLIENT="$BUILD_DIR/tools/axdse-client"
[ -x "$SERVE" ] && [ -x "$CLIENT" ] || {
  echo "serve_smoke: build axdse_serve and axdse_client first ($SERVE)" >&2
  exit 2
}

# Every client call retries a refused/dropped connection with backoff: the
# daemon's listening socket can lag the log line this script polls for, and
# a fresh restart may briefly refuse — both were ECONNREFUSED flakes.
client() { "$CLIENT" --connect-retries=10 --connect-backoff-ms=50 "$@"; }

WORK="$(mktemp -d "${TMPDIR:-/tmp}/axdse-serve-smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Big enough that the SIGTERM below lands mid-run even on a fast machine.
CAMPAIGN="kernels=matmul@5,fir@40 steps=400000 seeds=1"

# start_daemon <state-dir> <log-file>: launches axdse-serve on an ephemeral
# port and exports SERVER_PID/PORT once the startup line appears.
start_daemon() {
  "$SERVE" --state-dir="$1" --port=0 --progress-interval=64 \
    --chunk-cells=1 >"$2" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^axdse-serve listening on port \([0-9]*\)$/\1/p' "$2")"
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "serve_smoke: daemon did not report a port" >&2
  cat "$2" >&2
  exit 1
}

echo "== reference: uninterrupted campaign =="
start_daemon "$WORK/ref-state" "$WORK/ref.log"
REF_ID="$(client --port="$PORT" submit-campaign $CAMPAIGN | awk '{print $2}')"
client --port="$PORT" wait "$REF_ID"
client --port="$PORT" results "$REF_ID" >"$WORK/reference.json"
client --port="$PORT" shutdown
wait "$SERVER_PID"
SERVER_PID=""

echo "== interrupted: SIGTERM mid-run, then restart =="
start_daemon "$WORK/drain-state" "$WORK/drain.log"
JOB_ID="$(client --port="$PORT" submit-campaign $CAMPAIGN | awk '{print $2}')"
# Wait until the job is genuinely mid-run (progress counted) before killing.
for _ in $(seq 1 200); do
  STATUS="$(client --port="$PORT" status "$JOB_ID")"
  case "$STATUS" in *" steps=0"*) sleep 0.05 ;; *) break ;; esac
done
echo "pre-SIGTERM: $STATUS"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
grep -q "draining (signal)" "$WORK/drain.log" || {
  echo "serve_smoke: daemon did not log a signal drain" >&2
  cat "$WORK/drain.log" >&2
  exit 1
}

start_daemon "$WORK/drain-state" "$WORK/restart.log"
echo "post-restart: $(client --port="$PORT" status "$JOB_ID")"
client --port="$PORT" wait "$JOB_ID"
client --port="$PORT" results "$JOB_ID" >"$WORK/resumed.json"
client --port="$PORT" shutdown
wait "$SERVER_PID"
SERVER_PID=""

cmp "$WORK/resumed.json" "$WORK/reference.json"
echo "serve_smoke OK: drained-and-resumed campaign JSON is byte-identical"
