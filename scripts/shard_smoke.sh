#!/usr/bin/env bash
# End-to-end crash drill for sharded campaigns, exercising the real
# axdse-campaign binary and a real SIGKILL (the in-process equivalents live
# in tests/dse_shard_test.cpp):
#
#   1. run the Table-3 quick grid single-process -> reference JSON/CSV
#   2. start a shard worker armed with AXDSE_FAULT=shard.executed:1: it
#      claims the first chunk and dies with SIGKILL the instant the chunk
#      finishes executing — after the work, before the result document is
#      committed, with its lease still held
#   3. two surviving workers then run concurrently on the same state
#      directory, reclaim the dead worker's stale lease, and finish
#   4. merge the state directory and cmp against the reference documents
#      (must be byte-identical: no chunk lost, none double-counted)
#
# Usage: scripts/shard_smoke.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
CAMPAIGN="$BUILD_DIR/tools/axdse-campaign"
[ -x "$CAMPAIGN" ] || {
  echo "shard_smoke: build axdse_campaign first ($CAMPAIGN)" >&2
  exit 2
}

WORK="$(mktemp -d "${TMPDIR:-/tmp}/axdse-shard-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# The campaign-sweep quick grid: all 8 registry kernels x all 5 agents,
# 2 seeds x 120 steps per cell. cache=private keeps every chunk fully
# deterministic regardless of chunk grouping.
SPEC="kernels=matmul@10,fir@100,iir@128,conv2d@16,dct@4,dot@64,sobel3x3@12,kmeans1d@96 \
agents=all steps=120 seeds=2 seed=1 kernel-seed=2023 \
alpha=0.15 gamma=0.95 reward-cap=500 cache=private"
CHUNK_CELLS=2  # 40 cells -> 20 chunks

echo "== reference: uninterrupted single-process run =="
"$CAMPAIGN" run --chunk-cells="$CHUNK_CELLS" \
  --json="$WORK/ref.json" --csv="$WORK/ref.csv" $SPEC

echo "== casualty: worker dies by SIGKILL after executing, before committing =="
SHARD_DIR="$WORK/shard-state"
SHARD_FLAGS="--shard-dir=$SHARD_DIR --chunk-cells=$CHUNK_CELLS \
--lease-ttl-ms=2000 --heartbeat-ms=200 --poll-ms=100"

RC_DEAD=0
AXDSE_FAULT=shard.executed:1 \
  "$CAMPAIGN" shard $SHARD_FLAGS --worker-id=casualty $SPEC \
  >"$WORK/casualty.log" 2>&1 || RC_DEAD=$?
# The armed worker must have died by SIGKILL (128+9), not exited cleanly.
[ "$RC_DEAD" -eq 137 ] || {
  echo "shard_smoke: casualty should have been SIGKILLed (got $RC_DEAD)" >&2
  cat "$WORK/casualty.log" >&2
  exit 1
}
# It died holding its claim: the lease file must still be on disk, the
# chunk's result document must not.
ls "$SHARD_DIR"/chunk-*.lease >/dev/null 2>&1 || {
  echo "shard_smoke: dead worker left no lease behind" >&2
  ls -la "$SHARD_DIR" >&2
  exit 1
}

echo "== survivors: 2 concurrent workers reclaim and finish =="
"$CAMPAIGN" shard $SHARD_FLAGS --worker-id=worker-1 $SPEC \
  >"$WORK/w1.log" 2>&1 &
W1=$!
"$CAMPAIGN" shard $SHARD_FLAGS --worker-id=worker-2 $SPEC \
  >"$WORK/w2.log" 2>&1 &
W2=$!
RC1=0; RC2=0
wait "$W1" || RC1=$?
wait "$W2" || RC2=$?
echo "survivor exits: w1=$RC1 w2=$RC2"
cat "$WORK"/w1.log "$WORK"/w2.log

# The survivors must have finished the whole campaign despite the death.
[ "$RC1" -eq 0 ] && [ "$RC2" -eq 0 ] || {
  echo "shard_smoke: surviving workers did not complete" >&2
  exit 1
}
# Someone reclaimed the casualty's stale lease.
grep -qE "reclaimed=[1-9]" "$WORK/w1.log" "$WORK/w2.log" || {
  echo "shard_smoke: no survivor reported a reclaimed chunk" >&2
  exit 1
}

echo "== merge and compare =="
"$CAMPAIGN" merge --shard-dir="$SHARD_DIR" \
  --json="$WORK/merged.json" --csv="$WORK/merged.csv"
cmp "$WORK/merged.json" "$WORK/ref.json"
cmp "$WORK/merged.csv" "$WORK/ref.csv"
echo "shard_smoke OK: merged documents byte-identical after SIGKILL + reclaim"
