#include "axc/adders.hpp"

#include <stdexcept>

namespace axdse::axc {

namespace {

constexpr std::uint64_t LowMask(int bits) noexcept {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

void CheckOperandBits(int operand_bits) {
  if (operand_bits < 1 || operand_bits > 64)
    throw std::invalid_argument("adder: operand_bits must be in [1,64]");
}

void CheckApproxBits(int operand_bits, int approx_bits) {
  CheckOperandBits(operand_bits);
  if (approx_bits < 1 || approx_bits > 63 || approx_bits > operand_bits)
    throw std::invalid_argument(
        "adder: approx_bits must be in [1,63] and <= operand_bits");
}

}  // namespace

std::int64_t Adder::AddSigned(std::int64_t a, std::int64_t b) const noexcept {
  if ((a >= 0) == (b >= 0)) {
    const std::uint64_t ma = static_cast<std::uint64_t>(a < 0 ? -a : a);
    const std::uint64_t mb = static_cast<std::uint64_t>(b < 0 ? -b : b);
    const std::int64_t mag = static_cast<std::int64_t>(Add(ma, mb));
    return a < 0 ? -mag : mag;
  }
  return a + b;  // mixed signs: subtraction handled exactly
}

ExactAdder::ExactAdder(int operand_bits) : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string ExactAdder::Describe() const { return "Exact"; }

std::uint64_t ExactAdder::Add(std::uint64_t a, std::uint64_t b) const noexcept {
  return a + b;
}

LowerOrAdder::LowerOrAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string LowerOrAdder::Describe() const {
  return "LOA(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t LowerOrAdder::Add(std::uint64_t a, std::uint64_t b) const noexcept {
  const std::uint64_t mask = LowMask(approx_bits_);
  const std::uint64_t high = (a >> approx_bits_) + (b >> approx_bits_);
  const std::uint64_t low = (a | b) & mask;
  return (high << approx_bits_) | low;
}

TruncatedZeroAdder::TruncatedZeroAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string TruncatedZeroAdder::Describe() const {
  return "TruncZero(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t TruncatedZeroAdder::Add(std::uint64_t a,
                                      std::uint64_t b) const noexcept {
  const std::uint64_t high = (a >> approx_bits_) + (b >> approx_bits_);
  return high << approx_bits_;
}

TruncatedPassAAdder::TruncatedPassAAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string TruncatedPassAAdder::Describe() const {
  return "TruncPassA(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t TruncatedPassAAdder::Add(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  const std::uint64_t mask = LowMask(approx_bits_);
  const std::uint64_t high = (a >> approx_bits_) + (b >> approx_bits_);
  return (high << approx_bits_) | (a & mask);
}

SegmentedCarryAdder::SegmentedCarryAdder(int operand_bits, int segment_bits)
    : operand_bits_(operand_bits), segment_bits_(segment_bits) {
  CheckOperandBits(operand_bits);
  if (segment_bits < 1 || segment_bits > 32)
    throw std::invalid_argument("adder: segment_bits must be in [1,32]");
}

std::string SegmentedCarryAdder::Describe() const {
  return "SegCarry(s=" + std::to_string(segment_bits_) + ")";
}

std::uint64_t SegmentedCarryAdder::Add(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  const std::uint64_t seg_mask = LowMask(segment_bits_);
  std::uint64_t result = 0;
  std::uint64_t carry_in = 0;
  for (int shift = 0; shift < 64; shift += segment_bits_) {
    const std::uint64_t sa = (a >> shift) & seg_mask;
    const std::uint64_t sb = (b >> shift) & seg_mask;
    const std::uint64_t sum = sa + sb + carry_in;
    result |= (sum & seg_mask) << shift;
    // Speculative carry (ETAII): the carry entering the next segment is
    // predicted from this segment's operand bits alone — the incoming carry
    // is deliberately NOT folded in, so a carry chain never crosses more
    // than one segment boundary. This is where the approximation error
    // comes from.
    carry_in = (sa + sb) >> segment_bits_;
    if (shift + segment_bits_ >= 64) break;
  }
  return result;
}

AlmostCorrectAdder::AlmostCorrectAdder(int operand_bits, int window)
    : operand_bits_(operand_bits), window_(window) {
  CheckOperandBits(operand_bits);
  if (window < 1 || window > 63)
    throw std::invalid_argument("adder: window must be in [1,63]");
}

std::string AlmostCorrectAdder::Describe() const {
  return "ACA(w=" + std::to_string(window_) + ")";
}

std::uint64_t AlmostCorrectAdder::Add(std::uint64_t a,
                                      std::uint64_t b) const noexcept {
  // Result bit i uses the exact sum of bits [max(0, i-window), i] with zero
  // carry-in: any carry chain longer than `window` is cut.
  std::uint64_t result = 0;
  for (int i = 0; i < 64; ++i) {
    const int lo = i - window_ < 0 ? 0 : i - window_;
    const int span = i - lo + 1;
    const std::uint64_t mask = LowMask(span);
    const std::uint64_t sa = (a >> lo) & mask;
    const std::uint64_t sb = (b >> lo) & mask;
    const std::uint64_t local = sa + sb;
    result |= ((local >> (i - lo)) & 1ULL) << i;
    // Bits above both operands' ranges cannot be set; stop once both
    // operands are exhausted and no local sum can reach bit i.
    if ((a >> i) == 0 && (b >> i) == 0 && ((local >> (i - lo)) & 1ULL) == 0 &&
        i > 0)
      break;
  }
  return result;
}

AmaAdder::AmaAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string AmaAdder::Describe() const {
  return "AMA1(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t AmaAdder::Add(std::uint64_t a, std::uint64_t b) const noexcept {
  // Low positions use the AMA1 approximate full adder: Cout is the exact
  // majority, Sum is the complement of Cout — wrong only for input triples
  // (0,0,0) and (1,1,1).
  std::uint64_t result = 0;
  std::uint64_t carry = 0;
  for (int i = 0; i < approx_bits_; ++i) {
    const std::uint64_t ai = (a >> i) & 1ULL;
    const std::uint64_t bi = (b >> i) & 1ULL;
    const std::uint64_t cout = (ai & bi) | (ai & carry) | (bi & carry);
    result |= (1ULL - cout) << i;  // Sum = NOT(Cout)
    carry = cout;
  }
  const std::uint64_t high =
      (a >> approx_bits_) + (b >> approx_bits_) + carry;
  return result | (high << approx_bits_);
}

std::shared_ptr<const Adder> MakeExactAdder(int operand_bits) {
  return std::make_shared<ExactAdder>(operand_bits);
}

std::shared_ptr<const Adder> MakeLowerOrAdder(int operand_bits,
                                              int approx_bits) {
  return std::make_shared<LowerOrAdder>(operand_bits, approx_bits);
}

std::shared_ptr<const Adder> MakeTruncatedZeroAdder(int operand_bits,
                                                    int approx_bits) {
  return std::make_shared<TruncatedZeroAdder>(operand_bits, approx_bits);
}

std::shared_ptr<const Adder> MakeTruncatedPassAAdder(int operand_bits,
                                                     int approx_bits) {
  return std::make_shared<TruncatedPassAAdder>(operand_bits, approx_bits);
}

std::shared_ptr<const Adder> MakeSegmentedCarryAdder(int operand_bits,
                                                     int segment_bits) {
  return std::make_shared<SegmentedCarryAdder>(operand_bits, segment_bits);
}

std::shared_ptr<const Adder> MakeAlmostCorrectAdder(int operand_bits,
                                                    int window) {
  return std::make_shared<AlmostCorrectAdder>(operand_bits, window);
}

std::shared_ptr<const Adder> MakeAmaAdder(int operand_bits, int approx_bits) {
  return std::make_shared<AmaAdder>(operand_bits, approx_bits);
}

}  // namespace axdse::axc
