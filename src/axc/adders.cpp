#include "axc/adders.hpp"

#include <stdexcept>

#include "axc/op_primitives.hpp"

namespace axdse::axc {

namespace {

void CheckOperandBits(int operand_bits) {
  if (operand_bits < 1 || operand_bits > 64)
    throw std::invalid_argument("adder: operand_bits must be in [1,64]");
}

void CheckApproxBits(int operand_bits, int approx_bits) {
  CheckOperandBits(operand_bits);
  if (approx_bits < 1 || approx_bits > 63 || approx_bits > operand_bits)
    throw std::invalid_argument(
        "adder: approx_bits must be in [1,63] and <= operand_bits");
}

}  // namespace

// The family arithmetic lives in axc/op_primitives.hpp (shared with the
// compiled-plan dispatcher); these classes adapt it to the catalog /
// characterization interface.

std::int64_t Adder::AddSigned(std::int64_t a, std::int64_t b) const noexcept {
  return ops::SignedAdd(
      [this](std::uint64_t x, std::uint64_t y) noexcept { return Add(x, y); },
      a, b);
}

ExactAdder::ExactAdder(int operand_bits) : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string ExactAdder::Describe() const { return "Exact"; }

std::uint64_t ExactAdder::Add(std::uint64_t a, std::uint64_t b) const noexcept {
  return ops::ExactAdd(a, b);
}

LowerOrAdder::LowerOrAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string LowerOrAdder::Describe() const {
  return "LOA(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t LowerOrAdder::Add(std::uint64_t a, std::uint64_t b) const noexcept {
  return ops::LowerOrAdd(a, b, approx_bits_);
}

TruncatedZeroAdder::TruncatedZeroAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string TruncatedZeroAdder::Describe() const {
  return "TruncZero(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t TruncatedZeroAdder::Add(std::uint64_t a,
                                      std::uint64_t b) const noexcept {
  return ops::TruncatedZeroAdd(a, b, approx_bits_);
}

TruncatedPassAAdder::TruncatedPassAAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string TruncatedPassAAdder::Describe() const {
  return "TruncPassA(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t TruncatedPassAAdder::Add(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  return ops::TruncatedPassAAdd(a, b, approx_bits_);
}

SegmentedCarryAdder::SegmentedCarryAdder(int operand_bits, int segment_bits)
    : operand_bits_(operand_bits), segment_bits_(segment_bits) {
  CheckOperandBits(operand_bits);
  if (segment_bits < 1 || segment_bits > 32)
    throw std::invalid_argument("adder: segment_bits must be in [1,32]");
}

std::string SegmentedCarryAdder::Describe() const {
  return "SegCarry(s=" + std::to_string(segment_bits_) + ")";
}

std::uint64_t SegmentedCarryAdder::Add(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  return ops::SegmentedCarryAdd(a, b, segment_bits_);
}

AlmostCorrectAdder::AlmostCorrectAdder(int operand_bits, int window)
    : operand_bits_(operand_bits), window_(window) {
  CheckOperandBits(operand_bits);
  if (window < 1 || window > 63)
    throw std::invalid_argument("adder: window must be in [1,63]");
}

std::string AlmostCorrectAdder::Describe() const {
  return "ACA(w=" + std::to_string(window_) + ")";
}

std::uint64_t AlmostCorrectAdder::Add(std::uint64_t a,
                                      std::uint64_t b) const noexcept {
  return ops::AlmostCorrectAdd(a, b, window_);
}

AmaAdder::AmaAdder(int operand_bits, int approx_bits)
    : operand_bits_(operand_bits), approx_bits_(approx_bits) {
  CheckApproxBits(operand_bits, approx_bits);
}

std::string AmaAdder::Describe() const {
  return "AMA1(k=" + std::to_string(approx_bits_) + ")";
}

std::uint64_t AmaAdder::Add(std::uint64_t a, std::uint64_t b) const noexcept {
  return ops::AmaAdd(a, b, approx_bits_);
}

std::shared_ptr<const Adder> MakeExactAdder(int operand_bits) {
  return std::make_shared<ExactAdder>(operand_bits);
}

std::shared_ptr<const Adder> MakeLowerOrAdder(int operand_bits,
                                              int approx_bits) {
  return std::make_shared<LowerOrAdder>(operand_bits, approx_bits);
}

std::shared_ptr<const Adder> MakeTruncatedZeroAdder(int operand_bits,
                                                    int approx_bits) {
  return std::make_shared<TruncatedZeroAdder>(operand_bits, approx_bits);
}

std::shared_ptr<const Adder> MakeTruncatedPassAAdder(int operand_bits,
                                                     int approx_bits) {
  return std::make_shared<TruncatedPassAAdder>(operand_bits, approx_bits);
}

std::shared_ptr<const Adder> MakeSegmentedCarryAdder(int operand_bits,
                                                     int segment_bits) {
  return std::make_shared<SegmentedCarryAdder>(operand_bits, segment_bits);
}

std::shared_ptr<const Adder> MakeAlmostCorrectAdder(int operand_bits,
                                                    int window) {
  return std::make_shared<AlmostCorrectAdder>(operand_bits, window);
}

std::shared_ptr<const Adder> MakeAmaAdder(int operand_bits, int approx_bits) {
  return std::make_shared<AmaAdder>(operand_bits, approx_bits);
}

}  // namespace axdse::axc
