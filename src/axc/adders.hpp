#pragma once
// Behavioral models of approximate adders.
//
// EvoApproxLib ships gate-level C netlists; those are not redistributable
// here, so each catalog entry is backed by a *behavioral family* calibrated to
// the published error characteristics (see DESIGN.md §1). Families implemented:
//
//  * ExactAdder            — golden reference.
//  * LowerOrAdder(k)       — "LOA": low k result bits are a|b, no carry from
//                            the low part (Mahdiani et al.). Closed-form error:
//                            exact - approx == (a & b) & mask(k).
//  * TruncatedZeroAdder(k) — low k result bits forced to 0, no low carry.
//                            Error == (a + b) & parts below k.
//  * TruncatedPassAAdder(k)— low k result bits pass operand A through.
//                            Error == b & mask(k).
//  * SegmentedCarryAdder(s)— ETAII-style: carry into each s-bit segment is
//                            generated only by the previous segment.
//
// All models are defined over arbitrary 64-bit unsigned operands: the
// approximation affects the low bits (as parameterized), and higher bits are
// added exactly. This mirrors deploying a fixed-width approximate slice under
// exact carry completion and keeps per-operation accounting equal to one
// hardware operator instance (DESIGN.md §4.4).

#include <cstdint>
#include <memory>
#include <string>

#include "axc/execution_plan.hpp"

namespace axdse::axc {

/// Interface for (approximate) integer adders.
///
/// Implementations must be stateless and thread-compatible: Add() is const and
/// reentrant. Operands and results are unsigned magnitudes; signed use goes
/// through AddSigned().
class Adder {
 public:
  virtual ~Adder() = default;

  /// Nominal hardware operand width in bits (characterization domain).
  virtual int OperandBits() const noexcept = 0;

  /// Family identifier, e.g. "LOA(k=5)".
  virtual std::string Describe() const = 0;

  /// Approximate unsigned addition.
  virtual std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept = 0;

  /// Signed addition: same-sign operands are approximated on their
  /// magnitudes; mixed signs fall back to exact subtraction (approximate
  /// adders model the ADD datapath; see DESIGN.md §4.3).
  std::int64_t AddSigned(std::int64_t a, std::int64_t b) const noexcept;

  /// POD descriptor for the compiled-plan dispatcher (execution_plan.hpp).
  /// Built-in families return their closed-form opcode so hot paths can
  /// inline them; the default routes through virtual Add() — subclasses
  /// outside the catalog keep working unchanged, at the historical cost.
  virtual AddOpDescriptor PlanDescriptor() const noexcept {
    return AddOpDescriptor{AddOpCode::kVirtual, 0, this};
  }
};

/// Golden exact adder.
class ExactAdder final : public Adder {
 public:
  explicit ExactAdder(int operand_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  std::string Describe() const override;
  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept override;
  AddOpDescriptor PlanDescriptor() const noexcept override {
    return AddOpDescriptor{AddOpCode::kExact, 0, nullptr};
  }

 private:
  int operand_bits_;
};

/// Lower-part OR adder: approximates the low `approx_bits` with bitwise OR.
class LowerOrAdder final : public Adder {
 public:
  /// `approx_bits` must be in [1, 63] and <= operand_bits.
  LowerOrAdder(int operand_bits, int approx_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int ApproxBits() const noexcept { return approx_bits_; }
  std::string Describe() const override;
  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept override;
  AddOpDescriptor PlanDescriptor() const noexcept override {
    return AddOpDescriptor{AddOpCode::kLowerOr, approx_bits_, nullptr};
  }

 private:
  int operand_bits_;
  int approx_bits_;
};

/// Truncated adder: the low `approx_bits` of the result are zero.
class TruncatedZeroAdder final : public Adder {
 public:
  TruncatedZeroAdder(int operand_bits, int approx_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int ApproxBits() const noexcept { return approx_bits_; }
  std::string Describe() const override;
  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept override;
  AddOpDescriptor PlanDescriptor() const noexcept override {
    return AddOpDescriptor{AddOpCode::kTruncatedZero, approx_bits_, nullptr};
  }

 private:
  int operand_bits_;
  int approx_bits_;
};

/// Truncated adder variant passing operand A's low bits through.
class TruncatedPassAAdder final : public Adder {
 public:
  TruncatedPassAAdder(int operand_bits, int approx_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int ApproxBits() const noexcept { return approx_bits_; }
  std::string Describe() const override;
  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept override;
  AddOpDescriptor PlanDescriptor() const noexcept override {
    return AddOpDescriptor{AddOpCode::kTruncatedPassA, approx_bits_, nullptr};
  }

 private:
  int operand_bits_;
  int approx_bits_;
};

/// ETAII-style segmented-carry adder: the carry entering segment i is the
/// carry generated by segment i-1 alone (no full propagation).
class SegmentedCarryAdder final : public Adder {
 public:
  /// `segment_bits` must be in [1, 32].
  SegmentedCarryAdder(int operand_bits, int segment_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int SegmentBits() const noexcept { return segment_bits_; }
  std::string Describe() const override;
  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept override;
  AddOpDescriptor PlanDescriptor() const noexcept override {
    return AddOpDescriptor{AddOpCode::kSegmentedCarry, segment_bits_, nullptr};
  }

 private:
  int operand_bits_;
  int segment_bits_;
};

/// Almost-Correct Adder (ACA): each result bit i is computed from a carry
/// chain restricted to the `window` positions below i (bit-granular carry
/// speculation; Verma et al.). Exact whenever no carry chain exceeds the
/// window length — errors are rare but large for small windows.
class AlmostCorrectAdder final : public Adder {
 public:
  /// `window` must be in [1, 63].
  AlmostCorrectAdder(int operand_bits, int window);
  int OperandBits() const noexcept override { return operand_bits_; }
  int Window() const noexcept { return window_; }
  std::string Describe() const override;
  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept override;
  AddOpDescriptor PlanDescriptor() const noexcept override {
    return AddOpDescriptor{AddOpCode::kAlmostCorrect, window_, nullptr};
  }

 private:
  int operand_bits_;
  int window_;
};

/// AMA1-style approximate-full-adder array (Gupta et al., approximate
/// mirror adder 1): the low `approx_bits` positions use a cell with an exact
/// carry (majority) but Sum = NOT(Cout) — wrong exactly when the three
/// inputs are all 0 or all 1. Exact above.
class AmaAdder final : public Adder {
 public:
  AmaAdder(int operand_bits, int approx_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int ApproxBits() const noexcept { return approx_bits_; }
  std::string Describe() const override;
  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const noexcept override;
  AddOpDescriptor PlanDescriptor() const noexcept override {
    return AddOpDescriptor{AddOpCode::kAma, approx_bits_, nullptr};
  }

 private:
  int operand_bits_;
  int approx_bits_;
};

/// Factory helpers returning shared, immutable model instances.
std::shared_ptr<const Adder> MakeExactAdder(int operand_bits);
std::shared_ptr<const Adder> MakeLowerOrAdder(int operand_bits, int approx_bits);
std::shared_ptr<const Adder> MakeTruncatedZeroAdder(int operand_bits,
                                                    int approx_bits);
std::shared_ptr<const Adder> MakeTruncatedPassAAdder(int operand_bits,
                                                     int approx_bits);
std::shared_ptr<const Adder> MakeSegmentedCarryAdder(int operand_bits,
                                                     int segment_bits);
std::shared_ptr<const Adder> MakeAlmostCorrectAdder(int operand_bits,
                                                    int window);
std::shared_ptr<const Adder> MakeAmaAdder(int operand_bits, int approx_bits);

}  // namespace axdse::axc
