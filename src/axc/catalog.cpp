#include "axc/catalog.hpp"

namespace axdse::axc {

namespace {

AdderSpec MakeAdderSpec(std::string type_code, int bits, double mred_pct,
                        double power_mw, double time_ns,
                        std::shared_ptr<const Adder> model) {
  AdderSpec spec;
  spec.name = std::to_string(bits) + "-bit adder " + type_code;
  spec.type_code = std::move(type_code);
  spec.bits = bits;
  spec.published_mred_pct = mred_pct;
  spec.power_mw = power_mw;
  spec.time_ns = time_ns;
  spec.model = std::move(model);
  return spec;
}

MultiplierSpec MakeMultiplierSpec(std::string type_code, int bits,
                                  double mred_pct, double power_mw,
                                  double time_ns,
                                  std::shared_ptr<const Multiplier> model) {
  MultiplierSpec spec;
  spec.name = std::to_string(bits) + "-bit multiplier " + type_code;
  spec.type_code = std::move(type_code);
  spec.bits = bits;
  spec.published_mred_pct = mred_pct;
  spec.power_mw = power_mw;
  spec.time_ns = time_ns;
  spec.model = std::move(model);
  return spec;
}

}  // namespace

const EvoApproxCatalog& EvoApproxCatalog::Instance() {
  static const EvoApproxCatalog catalog;
  return catalog;
}

EvoApproxCatalog::EvoApproxCatalog() {
  // --- Table I: adders (published MRED %, power mW, time ns) ---------------
  // Behavioral substitutes calibrated offline; measured MRED recorded in
  // EXPERIMENTS.md §Calibration and asserted ordered in tests.
  adders8_ = {
      MakeAdderSpec("1HG", 8, 0.0, 0.033, 0.63, MakeExactAdder(8)),
      MakeAdderSpec("6PT", 8, 0.14, 0.029, 0.55, MakeLowerOrAdder(8, 1)),
      MakeAdderSpec("6R6", 8, 2.93, 0.012, 0.27, MakeLowerOrAdder(8, 5)),
      MakeAdderSpec("0TP", 8, 6.16, 0.0095, 0.24, MakeLowerOrAdder(8, 6)),
      MakeAdderSpec("00M", 8, 14.58, 0.0046, 0.17,
                    MakeTruncatedPassAAdder(8, 6)),
      MakeAdderSpec("02Y", 8, 24.87, 0.0015, 0.11,
                    MakeTruncatedPassAAdder(8, 7)),
  };
  adders16_ = {
      MakeAdderSpec("1A5", 16, 0.0, 0.072, 1.28, MakeExactAdder(16)),
      MakeAdderSpec("0GN", 16, 0.005, 0.057, 1.04, MakeLowerOrAdder(16, 3)),
      MakeAdderSpec("0BC", 16, 0.018, 0.051, 0.95, MakeLowerOrAdder(16, 5)),
      MakeAdderSpec("0HE", 16, 0.16, 0.036, 0.68, MakeLowerOrAdder(16, 8)),
      MakeAdderSpec("0SL", 16, 9.54, 0.011, 0.27,
                    MakeTruncatedZeroAdder(16, 12)),
      MakeAdderSpec("067", 16, 22.35, 0.0041, 0.20,
                    MakeTruncatedPassAAdder(16, 15)),
  };

  // --- Table II: multipliers -----------------------------------------------
  multipliers8_ = {
      MakeMultiplierSpec("1JJQ", 8, 0.0, 0.391, 1.43, MakeExactMultiplier(8)),
      MakeMultiplierSpec("4X5", 8, 0.033, 0.380, 1.40,
                         MakePpTruncatedMultiplier(8, 1)),
      MakeMultiplierSpec("GTR", 8, 1.23, 0.303, 1.46,
                         MakePpTruncatedMultiplier(8, 5)),
      MakeMultiplierSpec("L93", 8, 4.52, 0.178, 1.11,
                         MakeMitchellLogMultiplier(8)),
      MakeMultiplierSpec("18UH", 8, 17.98, 0.062, 0.90,
                         MakePpTruncatedMultiplier(8, 9)),
      MakeMultiplierSpec("17MJ", 8, 53.17, 0.0041, 0.11,
                         MakeLeadingOneMultiplier(8, 1)),
  };
  multipliers32_ = {
      MakeMultiplierSpec("precise", 32, 0.0, 10.76, 4.565,
                         MakeExactMultiplier(32)),
      MakeMultiplierSpec("000", 32, 0.00, 10.46, 4.470,
                         MakeDrumMultiplier(32, 16)),
      MakeMultiplierSpec("018", 32, 0.01, 4.32, 3.220,
                         MakeDrumMultiplier(32, 13)),
      MakeMultiplierSpec("043", 32, 1.45, 1.63, 2.440,
                         MakeDrumMultiplier(32, 6)),
      MakeMultiplierSpec("053", 32, 10.59, 1.05, 2.030,
                         MakeDrumMultiplier(32, 3)),
      MakeMultiplierSpec("067", 32, 41.25, 0.51, 1.750,
                         MakeLeadingOneMultiplier(32, 1)),
  };
}

OperatorSet EvoApproxCatalog::MatMulSet() const {
  OperatorSet set;
  set.name = "add8/mul8";
  set.adders = adders8_;
  set.multipliers = multipliers8_;
  return set;
}

OperatorSet EvoApproxCatalog::FirSet() const {
  OperatorSet set;
  set.name = "add16/mul32";
  set.adders = adders16_;
  set.multipliers = multipliers32_;
  return set;
}

}  // namespace axdse::axc
