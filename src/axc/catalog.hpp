#pragma once
// The EvoApprox-named operator catalog: every operator the paper selected
// (Tables I and II) with its *published* characterization (MRED %, power mW,
// computation time ns) and the calibrated behavioral model standing in for
// the original netlist (see DESIGN.md §1 for the substitution argument and
// EXPERIMENTS.md for published-vs-measured MRED).
//
// Both per-width lists are ordered by increasing published MRED — exactly the
// ordering the paper's environment assumes ("Both sets are sorted by
// increasing accuracy degradation"), so index 0 is the exact operator and the
// last index is the most aggressive one.

#include <memory>
#include <string>
#include <vector>

#include "axc/adders.hpp"
#include "axc/multipliers.hpp"

namespace axdse::axc {

/// One named adder: published characterization + behavioral model.
struct AdderSpec {
  std::string name;        ///< catalog name, e.g. "8-bit adder 6PT"
  std::string type_code;   ///< the paper's "Type" column, e.g. "6PT"
  int bits = 0;            ///< nominal operand width
  double published_mred_pct = 0.0;  ///< Table I MRED column (percent)
  double power_mw = 0.0;            ///< Table I power column (mW)
  double time_ns = 0.0;             ///< Table I computation-time column (ns)
  std::shared_ptr<const Adder> model;  ///< calibrated behavioral substitute
};

/// One named multiplier: published characterization + behavioral model.
struct MultiplierSpec {
  std::string name;
  std::string type_code;
  int bits = 0;
  double published_mred_pct = 0.0;  ///< Table II MRED column (percent)
  double power_mw = 0.0;
  double time_ns = 0.0;
  std::shared_ptr<const Multiplier> model;
};

/// The adder/multiplier sets one benchmark explores over. The paper pairs
/// 8-bit adders with 8-bit multipliers for Matrix Multiplication and 16-bit
/// adders with 32-bit multipliers for FIR.
struct OperatorSet {
  std::string name;                       ///< e.g. "add8/mul8"
  std::vector<AdderSpec> adders;          ///< ordered, index 0 exact
  std::vector<MultiplierSpec> multipliers;///< ordered, index 0 exact

  /// Number of adder choices (paper's N_add).
  std::size_t AdderCount() const noexcept { return adders.size(); }
  /// Number of multiplier choices (paper's N_mul).
  std::size_t MultiplierCount() const noexcept { return multipliers.size(); }
};

/// Immutable catalog of all operators from the paper's Tables I and II.
class EvoApproxCatalog {
 public:
  /// The process-wide immutable instance.
  static const EvoApproxCatalog& Instance();

  /// Table I, 8-bit rows: 1HG, 6PT, 6R6, 0TP, 00M, 02Y.
  const std::vector<AdderSpec>& Adders8() const noexcept { return adders8_; }
  /// Table I, 16-bit rows: 1A5, 0GN, 0BC, 0HE, 0SL, 067.
  const std::vector<AdderSpec>& Adders16() const noexcept { return adders16_; }
  /// Table II, 8-bit rows: 1JJQ, 4X5, GTR, L93, 18UH, 17MJ.
  const std::vector<MultiplierSpec>& Multipliers8() const noexcept {
    return multipliers8_;
  }
  /// Table II, 32-bit rows: precise, 000, 018, 043, 053, 067.
  const std::vector<MultiplierSpec>& Multipliers32() const noexcept {
    return multipliers32_;
  }

  /// Operator set used by the Matrix Multiplication benchmarks (8-bit data).
  OperatorSet MatMulSet() const;
  /// Operator set used by the FIR benchmarks (Q15 data, 32-bit products).
  OperatorSet FirSet() const;

  EvoApproxCatalog(const EvoApproxCatalog&) = delete;
  EvoApproxCatalog& operator=(const EvoApproxCatalog&) = delete;

 private:
  EvoApproxCatalog();

  std::vector<AdderSpec> adders8_;
  std::vector<AdderSpec> adders16_;
  std::vector<MultiplierSpec> multipliers8_;
  std::vector<MultiplierSpec> multipliers32_;
};

}  // namespace axdse::axc
