#include "axc/characterization.hpp"

#include "util/rng.hpp"

namespace axdse::axc {

namespace {

Characterization FromAccumulator(const metrics::ErrorAccumulator& acc,
                                 bool exhaustive) {
  Characterization c;
  c.mred = acc.Mred();
  c.mae = acc.Mae();
  c.error_rate = acc.ErrorRate();
  c.worst_case = acc.WorstCase();
  c.mean_error = acc.MeanError();
  c.samples = acc.Count();
  c.exhaustive = exhaustive;
  return c;
}

bool DomainFits(int bits, std::size_t max_samples) {
  if (bits > 20) return false;  // 4^bits would overflow any practical budget
  const std::size_t domain = std::size_t{1} << (2 * bits);
  return domain <= max_samples;
}

}  // namespace

Characterization CharacterizeAdder(const Adder& adder, int bits,
                                   std::size_t max_samples,
                                   std::uint64_t seed) {
  metrics::ErrorAccumulator acc;
  const std::uint64_t limit = bits >= 64 ? 0 : (1ULL << bits);
  if (DomainFits(bits, max_samples)) {
    for (std::uint64_t a = 0; a < limit; ++a)
      for (std::uint64_t b = 0; b < limit; ++b)
        acc.Add(static_cast<double>(a + b),
                static_cast<double>(adder.Add(a, b)));
    return FromAccumulator(acc, /*exhaustive=*/true);
  }
  util::Rng rng(seed);
  for (std::size_t i = 0; i < max_samples; ++i) {
    const std::uint64_t a = rng.UniformBelow(limit);
    const std::uint64_t b = rng.UniformBelow(limit);
    acc.Add(static_cast<double>(a + b), static_cast<double>(adder.Add(a, b)));
  }
  return FromAccumulator(acc, /*exhaustive=*/false);
}

Characterization CharacterizeMultiplier(const Multiplier& multiplier, int bits,
                                        std::size_t max_samples,
                                        std::uint64_t seed) {
  metrics::ErrorAccumulator acc;
  const std::uint64_t limit = bits >= 64 ? 0 : (1ULL << bits);
  if (DomainFits(bits, max_samples)) {
    for (std::uint64_t a = 0; a < limit; ++a)
      for (std::uint64_t b = 0; b < limit; ++b)
        acc.Add(static_cast<double>(a * b),
                static_cast<double>(multiplier.Multiply(a, b)));
    return FromAccumulator(acc, /*exhaustive=*/true);
  }
  util::Rng rng(seed);
  for (std::size_t i = 0; i < max_samples; ++i) {
    const std::uint64_t a = rng.UniformBelow(limit);
    const std::uint64_t b = rng.UniformBelow(limit);
    acc.Add(static_cast<double>(a * b),
            static_cast<double>(multiplier.Multiply(a, b)));
  }
  return FromAccumulator(acc, /*exhaustive=*/false);
}

}  // namespace axdse::axc
