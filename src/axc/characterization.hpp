#pragma once
// Measures the error characteristics of an operator model over its nominal
// input domain — exhaustively when the domain is small enough, by seeded
// uniform sampling otherwise. Used by tests (ordering/magnitude assertions)
// and by bench/table1+2 (published-vs-measured columns).

#include <cstddef>
#include <cstdint>

#include "axc/adders.hpp"
#include "axc/multipliers.hpp"
#include "metrics/error_metrics.hpp"

namespace axdse::axc {

/// Error characteristics of one operator over (a subset of) its input domain.
struct Characterization {
  double mred = 0.0;        ///< mean relative error distance
  double mae = 0.0;         ///< mean absolute error
  double error_rate = 0.0;  ///< fraction of erroneous outputs
  double worst_case = 0.0;  ///< max absolute error
  double mean_error = 0.0;  ///< signed bias (positive: underestimates)
  std::size_t samples = 0;  ///< number of (a,b) pairs evaluated
  bool exhaustive = false;  ///< true if the full domain was enumerated
};

/// Characterizes an adder over `bits`-wide unsigned operand pairs.
/// If 4^bits <= max_samples the domain is enumerated exhaustively; otherwise
/// `max_samples` uniform pairs are drawn with the given seed.
Characterization CharacterizeAdder(const Adder& adder, int bits,
                                   std::size_t max_samples,
                                   std::uint64_t seed = 0x5EED);

/// Characterizes a multiplier over `bits`-wide unsigned operand pairs
/// (same exhaustive/sampled rule as CharacterizeAdder).
Characterization CharacterizeMultiplier(const Multiplier& multiplier, int bits,
                                        std::size_t max_samples,
                                        std::uint64_t seed = 0x5EED);

}  // namespace axdse::axc
