#include "axc/execution_plan.hpp"

#include "axc/adders.hpp"
#include "axc/multipliers.hpp"

namespace axdse::axc::detail {

std::uint64_t VirtualAdd(const Adder* model, std::uint64_t a,
                         std::uint64_t b) noexcept {
  return model->Add(a, b);
}

std::uint64_t VirtualMul(const Multiplier* model, std::uint64_t a,
                         std::uint64_t b) noexcept {
  return model->Multiply(a, b);
}

}  // namespace axdse::axc::detail
