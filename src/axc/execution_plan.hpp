#pragma once
// Compiled-plan operator dispatch: POD descriptors (opcode + family
// parameter) standing in for the virtual Adder/Multiplier hierarchy on the
// evaluate hot path. An ApproxSelection is fixed for an entire kernel run,
// so instrument::ApproxContext::Configure resolves each catalog model to a
// descriptor ONCE per configuration; every scalar op then goes through a
// flat, inlinable switch (Dispatch*) instead of a virtual call, and batched
// primitives hoist even the switch out of inner loops (WithAddOp/WithMulOp).
//
// Operators outside the built-in families (user subclasses of Adder /
// Multiplier) degrade gracefully: their descriptor carries kVirtual plus
// the model pointer, and dispatch routes through the historical virtual
// call — identical results, identical cost to the pre-plan code.

#include <cstdint>

#include "axc/op_primitives.hpp"

namespace axdse::axc {

class Adder;
class Multiplier;

enum class AddOpCode : std::uint8_t {
  kExact,
  kLowerOr,
  kTruncatedZero,
  kTruncatedPassA,
  kSegmentedCarry,
  kAlmostCorrect,
  kAma,
  kVirtual,  ///< fall back to Adder::Add through `fallback`
};

enum class MulOpCode : std::uint8_t {
  kExact,
  kPpTruncated,
  kOperandTruncated,
  kMitchell,
  kDrum,
  kLeadingOne,
  kKulkarni,
  kRoba,
  kVirtual,  ///< fall back to Multiplier::Multiply through `fallback`
};

/// POD adder descriptor: everything DispatchAdd needs, resolved once.
/// Content equality means "dispatches identically for every operand pair" —
/// the lane-parallel context merges lanes whose resolved descriptors compare
/// equal (e.g. a lane whose selected "approximate" adder is the exact one
/// shares the precise lanes' dedup group).
struct AddOpDescriptor {
  AddOpCode code = AddOpCode::kExact;
  std::int32_t param = 0;               ///< approx/segment bits or window
  const Adder* fallback = nullptr;      ///< kVirtual only

  friend bool operator==(const AddOpDescriptor&,
                         const AddOpDescriptor&) noexcept = default;
};

/// POD multiplier descriptor. Content equality mirrors AddOpDescriptor's:
/// equal descriptors dispatch identically for every operand pair.
struct MulOpDescriptor {
  MulOpCode code = MulOpCode::kExact;
  std::int32_t param = 0;               ///< cut column / kept / msb bits
  const Multiplier* fallback = nullptr; ///< kVirtual only
  /// Full 256x256 product table (table8[a << 8 | b] == Multiply(a, b)) for
  /// operators whose model lazily memoized its 8-bit domain — the batched
  /// u8 MAC loops turn family math into one load. Null for wide operators,
  /// the exact multiplier (a*b is cheaper than a load), and kVirtual.
  const std::uint32_t* table8 = nullptr;

  friend bool operator==(const MulOpDescriptor&,
                         const MulOpDescriptor&) noexcept = default;
};

/// A configuration compiled to operators: [0] = the precise operator the
/// unselected ops use, [1] = the selected approximate operator.
struct OperatorPlan {
  AddOpDescriptor add[2];
  MulOpDescriptor mul[2];
};

namespace detail {
/// Out-of-line virtual escapes (defined in execution_plan.cpp, which can
/// see the full Adder/Multiplier types without an include cycle).
std::uint64_t VirtualAdd(const Adder* model, std::uint64_t a,
                         std::uint64_t b) noexcept;
std::uint64_t VirtualMul(const Multiplier* model, std::uint64_t a,
                         std::uint64_t b) noexcept;
}  // namespace detail

/// Invokes `fn` with an inlinable functor implementing the descriptor's
/// unsigned add — the switch runs once, so loops passed as `fn` carry zero
/// per-element dispatch. `fn`'s return type must not depend on the functor.
template <class Fn>
decltype(auto) WithAddOp(const AddOpDescriptor& d, Fn&& fn) {
  switch (d.code) {
    case AddOpCode::kLowerOr:
      return fn([k = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::LowerOrAdd(a, b, k);
      });
    case AddOpCode::kTruncatedZero:
      return fn([k = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::TruncatedZeroAdd(a, b, k);
      });
    case AddOpCode::kTruncatedPassA:
      return fn([k = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::TruncatedPassAAdd(a, b, k);
      });
    case AddOpCode::kSegmentedCarry:
      return fn([s = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::SegmentedCarryAdd(a, b, s);
      });
    case AddOpCode::kAlmostCorrect:
      return fn([w = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::AlmostCorrectAdd(a, b, w);
      });
    case AddOpCode::kAma:
      return fn([k = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::AmaAdd(a, b, k);
      });
    case AddOpCode::kVirtual:
      return fn([m = d.fallback](std::uint64_t a, std::uint64_t b) noexcept {
        return detail::VirtualAdd(m, a, b);
      });
    case AddOpCode::kExact:
      break;
  }
  return fn([](std::uint64_t a, std::uint64_t b) noexcept {
    return ops::ExactAdd(a, b);
  });
}

/// Multiplier counterpart of WithAddOp.
template <class Fn>
decltype(auto) WithMulOp(const MulOpDescriptor& d, Fn&& fn) {
  switch (d.code) {
    case MulOpCode::kPpTruncated:
      return fn([c = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::PpTruncatedMul(a, b, c);
      });
    case MulOpCode::kOperandTruncated:
      return fn([k = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::OperandTruncatedMul(a, b, k);
      });
    case MulOpCode::kMitchell:
      return fn([](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::MitchellLogMul(a, b);
      });
    case MulOpCode::kDrum:
      return fn([k = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::DrumMul(a, b, k);
      });
    case MulOpCode::kLeadingOne:
      return fn([m = d.param](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::LeadingOneMul(a, b, m);
      });
    case MulOpCode::kKulkarni:
      return fn([](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::KulkarniMul(a, b);
      });
    case MulOpCode::kRoba:
      return fn([](std::uint64_t a, std::uint64_t b) noexcept {
        return ops::RobaMul(a, b);
      });
    case MulOpCode::kVirtual:
      return fn([m = d.fallback](std::uint64_t a, std::uint64_t b) noexcept {
        return detail::VirtualMul(m, a, b);
      });
    case MulOpCode::kExact:
      break;
  }
  return fn([](std::uint64_t a, std::uint64_t b) noexcept {
    return ops::ExactMul(a, b);
  });
}

/// Unsigned add through the descriptor's flat switch.
inline std::uint64_t DispatchAdd(const AddOpDescriptor& d, std::uint64_t a,
                                 std::uint64_t b) noexcept {
  switch (d.code) {
    case AddOpCode::kExact:
      return ops::ExactAdd(a, b);
    case AddOpCode::kLowerOr:
      return ops::LowerOrAdd(a, b, d.param);
    case AddOpCode::kTruncatedZero:
      return ops::TruncatedZeroAdd(a, b, d.param);
    case AddOpCode::kTruncatedPassA:
      return ops::TruncatedPassAAdd(a, b, d.param);
    case AddOpCode::kSegmentedCarry:
      return ops::SegmentedCarryAdd(a, b, d.param);
    case AddOpCode::kAlmostCorrect:
      return ops::AlmostCorrectAdd(a, b, d.param);
    case AddOpCode::kAma:
      return ops::AmaAdd(a, b, d.param);
    case AddOpCode::kVirtual:
      return detail::VirtualAdd(d.fallback, a, b);
  }
  return ops::ExactAdd(a, b);  // unreachable; silences -Wreturn-type
}

/// Unsigned multiply through the descriptor's flat switch.
inline std::uint64_t DispatchMul(const MulOpDescriptor& d, std::uint64_t a,
                                 std::uint64_t b) noexcept {
  switch (d.code) {
    case MulOpCode::kExact:
      return ops::ExactMul(a, b);
    case MulOpCode::kPpTruncated:
      return ops::PpTruncatedMul(a, b, d.param);
    case MulOpCode::kOperandTruncated:
      return ops::OperandTruncatedMul(a, b, d.param);
    case MulOpCode::kMitchell:
      return ops::MitchellLogMul(a, b);
    case MulOpCode::kDrum:
      return ops::DrumMul(a, b, d.param);
    case MulOpCode::kLeadingOne:
      return ops::LeadingOneMul(a, b, d.param);
    case MulOpCode::kKulkarni:
      return ops::KulkarniMul(a, b);
    case MulOpCode::kRoba:
      return ops::RobaMul(a, b);
    case MulOpCode::kVirtual:
      return detail::VirtualMul(d.fallback, a, b);
  }
  return ops::ExactMul(a, b);  // unreachable; silences -Wreturn-type
}

/// Signed addition with the historical sign-magnitude semantics
/// (bit-identical to Adder::AddSigned for the same descriptor's model).
inline std::int64_t DispatchAddSigned(const AddOpDescriptor& d, std::int64_t a,
                                      std::int64_t b) noexcept {
  return ops::SignedAdd(
      [&d](std::uint64_t x, std::uint64_t y) noexcept {
        return DispatchAdd(d, x, y);
      },
      a, b);
}

/// Signed multiplication (bit-identical to Multiplier::MultiplySigned).
inline std::int64_t DispatchMulSigned(const MulOpDescriptor& d, std::int64_t a,
                                      std::int64_t b) noexcept {
  return ops::SignedMul(
      [&d](std::uint64_t x, std::uint64_t y) noexcept {
        return DispatchMul(d, x, y);
      },
      a, b);
}

}  // namespace axdse::axc
