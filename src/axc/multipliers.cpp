#include "axc/multipliers.hpp"

#include <stdexcept>

#include "axc/op_primitives.hpp"

namespace axdse::axc {

namespace {

void CheckOperandBits(int operand_bits) {
  if (operand_bits < 1 || operand_bits > 32)
    throw std::invalid_argument("multiplier: operand_bits must be in [1,32]");
}

}  // namespace

// The family arithmetic lives in axc/op_primitives.hpp (shared with the
// compiled-plan dispatcher); these classes adapt it to the catalog /
// characterization interface.

const std::uint32_t* Multiplier::Table8() const noexcept {
  if (OperandBits() > 8) return nullptr;
  std::call_once(table8_once_, [this]() noexcept {
    auto table = std::unique_ptr<std::uint32_t[]>(
        new (std::nothrow) std::uint32_t[65536]);
    if (!table) return;  // allocation failure: stay on the compute path
    for (std::uint64_t a = 0; a < 256; ++a)
      for (std::uint64_t b = 0; b < 256; ++b)
        table[(a << 8) | b] = static_cast<std::uint32_t>(Multiply(a, b));
    table8_ = std::move(table);
  });
  return table8_.get();
}

std::int64_t Multiplier::MultiplySigned(std::int64_t a,
                                        std::int64_t b) const noexcept {
  return ops::SignedMul(
      [this](std::uint64_t x, std::uint64_t y) noexcept {
        return Multiply(x, y);
      },
      a, b);
}

ExactMultiplier::ExactMultiplier(int operand_bits)
    : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string ExactMultiplier::Describe() const { return "Exact"; }

std::uint64_t ExactMultiplier::Multiply(std::uint64_t a,
                                        std::uint64_t b) const noexcept {
  return ops::ExactMul(a, b);
}

PpTruncatedMultiplier::PpTruncatedMultiplier(int operand_bits, int cut_column)
    : operand_bits_(operand_bits), cut_column_(cut_column) {
  CheckOperandBits(operand_bits);
  if (cut_column < 1 || cut_column > 2 * operand_bits - 1)
    throw std::invalid_argument(
        "multiplier: cut_column must be in [1, 2*operand_bits-1]");
}

std::string PpTruncatedMultiplier::Describe() const {
  return "PPTrunc(c=" + std::to_string(cut_column_) + ")";
}

std::uint64_t PpTruncatedMultiplier::Multiply(std::uint64_t a,
                                              std::uint64_t b) const noexcept {
  return ops::PpTruncatedMul(a, b, cut_column_);
}

OperandTruncatedMultiplier::OperandTruncatedMultiplier(int operand_bits,
                                                       int trunc_bits)
    : operand_bits_(operand_bits), trunc_bits_(trunc_bits) {
  CheckOperandBits(operand_bits);
  if (trunc_bits < 1 || trunc_bits >= operand_bits)
    throw std::invalid_argument(
        "multiplier: trunc_bits must be in [1, operand_bits)");
}

std::string OperandTruncatedMultiplier::Describe() const {
  return "OpTrunc(k=" + std::to_string(trunc_bits_) + ")";
}

std::uint64_t OperandTruncatedMultiplier::Multiply(
    std::uint64_t a, std::uint64_t b) const noexcept {
  return ops::OperandTruncatedMul(a, b, trunc_bits_);
}

MitchellLogMultiplier::MitchellLogMultiplier(int operand_bits)
    : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string MitchellLogMultiplier::Describe() const { return "Mitchell"; }

std::uint64_t MitchellLogMultiplier::Multiply(std::uint64_t a,
                                              std::uint64_t b) const noexcept {
  return ops::MitchellLogMul(a, b);
}

DrumMultiplier::DrumMultiplier(int operand_bits, int kept_bits)
    : operand_bits_(operand_bits), kept_bits_(kept_bits) {
  CheckOperandBits(operand_bits);
  if (kept_bits < 2 || kept_bits > operand_bits)
    throw std::invalid_argument(
        "multiplier: kept_bits must be in [2, operand_bits]");
}

std::string DrumMultiplier::Describe() const {
  return "DRUM(k=" + std::to_string(kept_bits_) + ")";
}

std::uint64_t DrumMultiplier::Multiply(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  return ops::DrumMul(a, b, kept_bits_);
}

LeadingOneMultiplier::LeadingOneMultiplier(int operand_bits, int msb_bits)
    : operand_bits_(operand_bits), msb_bits_(msb_bits) {
  CheckOperandBits(operand_bits);
  if (msb_bits < 1 || msb_bits > operand_bits)
    throw std::invalid_argument(
        "multiplier: msb_bits must be in [1, operand_bits]");
}

std::string LeadingOneMultiplier::Describe() const {
  return "LeadOne(m=" + std::to_string(msb_bits_) + ")";
}

std::uint64_t LeadingOneMultiplier::Multiply(std::uint64_t a,
                                             std::uint64_t b) const noexcept {
  return ops::LeadingOneMul(a, b, msb_bits_);
}

KulkarniMultiplier::KulkarniMultiplier(int operand_bits)
    : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string KulkarniMultiplier::Describe() const { return "Kulkarni2x2"; }

std::uint64_t KulkarniMultiplier::Multiply(std::uint64_t a,
                                           std::uint64_t b) const noexcept {
  return ops::KulkarniMul(a, b);
}

RobaMultiplier::RobaMultiplier(int operand_bits) : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string RobaMultiplier::Describe() const { return "ROBA"; }

std::uint64_t RobaMultiplier::RoundToNearestPowerOfTwo(
    std::uint64_t v) noexcept {
  return ops::RoundToNearestPowerOfTwo(v);
}

std::uint64_t RobaMultiplier::Multiply(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  return ops::RobaMul(a, b);
}

std::shared_ptr<const Multiplier> MakeExactMultiplier(int operand_bits) {
  return std::make_shared<ExactMultiplier>(operand_bits);
}

std::shared_ptr<const Multiplier> MakePpTruncatedMultiplier(int operand_bits,
                                                            int cut_column) {
  return std::make_shared<PpTruncatedMultiplier>(operand_bits, cut_column);
}

std::shared_ptr<const Multiplier> MakeOperandTruncatedMultiplier(
    int operand_bits, int trunc_bits) {
  return std::make_shared<OperandTruncatedMultiplier>(operand_bits, trunc_bits);
}

std::shared_ptr<const Multiplier> MakeMitchellLogMultiplier(int operand_bits) {
  return std::make_shared<MitchellLogMultiplier>(operand_bits);
}

std::shared_ptr<const Multiplier> MakeDrumMultiplier(int operand_bits,
                                                     int kept_bits) {
  return std::make_shared<DrumMultiplier>(operand_bits, kept_bits);
}

std::shared_ptr<const Multiplier> MakeLeadingOneMultiplier(int operand_bits,
                                                           int msb_bits) {
  return std::make_shared<LeadingOneMultiplier>(operand_bits, msb_bits);
}

std::shared_ptr<const Multiplier> MakeKulkarniMultiplier(int operand_bits) {
  return std::make_shared<KulkarniMultiplier>(operand_bits);
}

std::shared_ptr<const Multiplier> MakeRobaMultiplier(int operand_bits) {
  return std::make_shared<RobaMultiplier>(operand_bits);
}

}  // namespace axdse::axc
