#include "axc/multipliers.hpp"

#include <bit>
#include <stdexcept>

namespace axdse::axc {

namespace {

constexpr std::uint64_t LowMask(int bits) noexcept {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

/// Index of the most significant set bit; precondition v != 0.
constexpr int MsbIndex(std::uint64_t v) noexcept {
  return 63 - std::countl_zero(v);
}

void CheckOperandBits(int operand_bits) {
  if (operand_bits < 1 || operand_bits > 32)
    throw std::invalid_argument("multiplier: operand_bits must be in [1,32]");
}

}  // namespace

std::int64_t Multiplier::MultiplySigned(std::int64_t a,
                                        std::int64_t b) const noexcept {
  const bool negative = (a < 0) != (b < 0);
  const std::uint64_t ma = static_cast<std::uint64_t>(a < 0 ? -a : a);
  const std::uint64_t mb = static_cast<std::uint64_t>(b < 0 ? -b : b);
  const std::int64_t mag = static_cast<std::int64_t>(Multiply(ma, mb));
  return negative ? -mag : mag;
}

ExactMultiplier::ExactMultiplier(int operand_bits)
    : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string ExactMultiplier::Describe() const { return "Exact"; }

std::uint64_t ExactMultiplier::Multiply(std::uint64_t a,
                                        std::uint64_t b) const noexcept {
  return a * b;
}

PpTruncatedMultiplier::PpTruncatedMultiplier(int operand_bits, int cut_column)
    : operand_bits_(operand_bits), cut_column_(cut_column) {
  CheckOperandBits(operand_bits);
  if (cut_column < 1 || cut_column > 2 * operand_bits - 1)
    throw std::invalid_argument(
        "multiplier: cut_column must be in [1, 2*operand_bits-1]");
}

std::string PpTruncatedMultiplier::Describe() const {
  return "PPTrunc(c=" + std::to_string(cut_column_) + ")";
}

std::uint64_t PpTruncatedMultiplier::Multiply(std::uint64_t a,
                                              std::uint64_t b) const noexcept {
  // Sum partial products a_i * (b_j << (i+j)) keeping only columns >= cut.
  // For each set bit i of a, the kept bits of b are those with j >= cut - i.
  std::uint64_t acc = 0;
  std::uint64_t bits = a;
  while (bits != 0) {
    const int i = std::countr_zero(bits);
    bits &= bits - 1;
    const int min_j = cut_column_ - i;
    const std::uint64_t kept_b = min_j <= 0 ? b : (b & ~LowMask(min_j));
    acc += kept_b << i;
  }
  return acc;
}

OperandTruncatedMultiplier::OperandTruncatedMultiplier(int operand_bits,
                                                       int trunc_bits)
    : operand_bits_(operand_bits), trunc_bits_(trunc_bits) {
  CheckOperandBits(operand_bits);
  if (trunc_bits < 1 || trunc_bits >= operand_bits)
    throw std::invalid_argument(
        "multiplier: trunc_bits must be in [1, operand_bits)");
}

std::string OperandTruncatedMultiplier::Describe() const {
  return "OpTrunc(k=" + std::to_string(trunc_bits_) + ")";
}

std::uint64_t OperandTruncatedMultiplier::Multiply(
    std::uint64_t a, std::uint64_t b) const noexcept {
  const std::uint64_t mask = ~LowMask(trunc_bits_);
  return (a & mask) * (b & mask);
}

MitchellLogMultiplier::MitchellLogMultiplier(int operand_bits)
    : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string MitchellLogMultiplier::Describe() const { return "Mitchell"; }

std::uint64_t MitchellLogMultiplier::Multiply(std::uint64_t a,
                                              std::uint64_t b) const noexcept {
  if (a == 0 || b == 0) return 0;
  // log2(x) ~= msb(x) + frac(x), frac in [0,1) with F fractional bits.
  constexpr int kFracBits = 30;
  const int ka = MsbIndex(a);
  const int kb = MsbIndex(b);
  // frac = (x - 2^k) / 2^k in fixed point. Shift x so the mantissa occupies
  // kFracBits bits: for k <= kFracBits shift left, otherwise right.
  const auto mantissa = [](std::uint64_t x, int k) -> std::uint64_t {
    const std::uint64_t frac_part = x - (1ULL << k);  // k < 64 guaranteed
    if (k <= kFracBits) return frac_part << (kFracBits - k);
    return frac_part >> (k - kFracBits);
  };
  const std::uint64_t fa = mantissa(a, ka);
  const std::uint64_t fb = mantissa(b, kb);
  const std::uint64_t fsum = fa + fb;  // in [0, 2) fixed point
  const int ksum = ka + kb;
  // Antilog per Mitchell: 2^(ksum) * (1 + fsum) if fsum < 1,
  // else 2^(ksum+1) * (fsum)  [fsum has an implicit integer bit].
  std::uint64_t mant;  // value scaled by 2^kFracBits
  int exponent;
  if (fsum < (1ULL << kFracBits)) {
    mant = (1ULL << kFracBits) + fsum;
    exponent = ksum;
  } else {
    mant = fsum;
    exponent = ksum + 1;
  }
  if (exponent >= kFracBits) return mant << (exponent - kFracBits);
  return mant >> (kFracBits - exponent);
}

DrumMultiplier::DrumMultiplier(int operand_bits, int kept_bits)
    : operand_bits_(operand_bits), kept_bits_(kept_bits) {
  CheckOperandBits(operand_bits);
  if (kept_bits < 2 || kept_bits > operand_bits)
    throw std::invalid_argument(
        "multiplier: kept_bits must be in [2, operand_bits]");
}

std::string DrumMultiplier::Describe() const {
  return "DRUM(k=" + std::to_string(kept_bits_) + ")";
}

std::uint64_t DrumMultiplier::Multiply(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  const auto reduce = [this](std::uint64_t v, int& shift) -> std::uint64_t {
    shift = 0;
    if (v < (1ULL << kept_bits_)) return v;  // already fits: exact
    const int msb = MsbIndex(v);
    shift = msb - kept_bits_ + 1;
    std::uint64_t kept = v >> shift;
    kept |= 1;  // force LSB to 1: expected-value compensation (unbiasing)
    return kept;
  };
  int sa = 0;
  int sb = 0;
  const std::uint64_t ra = reduce(a, sa);
  const std::uint64_t rb = reduce(b, sb);
  return (ra * rb) << (sa + sb);
}

LeadingOneMultiplier::LeadingOneMultiplier(int operand_bits, int msb_bits)
    : operand_bits_(operand_bits), msb_bits_(msb_bits) {
  CheckOperandBits(operand_bits);
  if (msb_bits < 1 || msb_bits > operand_bits)
    throw std::invalid_argument(
        "multiplier: msb_bits must be in [1, operand_bits]");
}

std::string LeadingOneMultiplier::Describe() const {
  return "LeadOne(m=" + std::to_string(msb_bits_) + ")";
}

std::uint64_t LeadingOneMultiplier::Multiply(std::uint64_t a,
                                             std::uint64_t b) const noexcept {
  const auto round_down = [this](std::uint64_t v) -> std::uint64_t {
    if (v < (1ULL << msb_bits_)) return v;
    const int msb = MsbIndex(v);
    const int drop = msb - msb_bits_ + 1;
    return (v >> drop) << drop;
  };
  return round_down(a) * round_down(b);
}

KulkarniMultiplier::KulkarniMultiplier(int operand_bits)
    : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string KulkarniMultiplier::Describe() const { return "Kulkarni2x2"; }

namespace {

/// Kulkarni base block: exact 2x2 product except 3*3 -> 7.
constexpr std::uint64_t Kulkarni2x2(std::uint64_t a, std::uint64_t b) noexcept {
  return (a == 3 && b == 3) ? 7 : a * b;
}

/// Recursive composition: split each operand in half, multiply the four
/// cross terms approximately, and combine with exact shifted additions.
std::uint64_t KulkarniRecursive(std::uint64_t a, std::uint64_t b,
                                int width) noexcept {
  if (width <= 2) return Kulkarni2x2(a & 0x3, b & 0x3);
  const int half = width / 2;
  const std::uint64_t mask = (1ULL << half) - 1;
  const std::uint64_t al = a & mask;
  const std::uint64_t ah = a >> half;
  const std::uint64_t bl = b & mask;
  const std::uint64_t bh = b >> half;
  const std::uint64_t ll = KulkarniRecursive(al, bl, half);
  const std::uint64_t lh = KulkarniRecursive(al, bh, half);
  const std::uint64_t hl = KulkarniRecursive(ah, bl, half);
  const std::uint64_t hh = KulkarniRecursive(ah, bh, half);
  return (hh << width) + ((lh + hl) << half) + ll;
}

/// Smallest power-of-two width that covers the operand.
int CoveringPow2Width(std::uint64_t v) noexcept {
  int width = 2;
  while (width < 64 && (v >> width) != 0) width *= 2;
  return width;
}

}  // namespace

std::uint64_t KulkarniMultiplier::Multiply(std::uint64_t a,
                                           std::uint64_t b) const noexcept {
  // The block decomposition targets <=32-bit datapaths; wider operands
  // (legal as long as the product fits 64 bits) fall back to exact.
  if ((a >> 32) != 0 || (b >> 32) != 0) return a * b;
  const int wa = CoveringPow2Width(a);
  const int wb = CoveringPow2Width(b);
  return KulkarniRecursive(a, b, wa > wb ? wa : wb);
}

RobaMultiplier::RobaMultiplier(int operand_bits) : operand_bits_(operand_bits) {
  CheckOperandBits(operand_bits);
}

std::string RobaMultiplier::Describe() const { return "ROBA"; }

std::uint64_t RobaMultiplier::RoundToNearestPowerOfTwo(
    std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const int p = MsbIndex(v);
  const std::uint64_t down = 1ULL << p;
  if (v == down || p >= 62) return down;
  const std::uint64_t up = down << 1;
  return (v - down < up - v) ? down : up;  // ties round up
}

std::uint64_t RobaMultiplier::Multiply(std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  if (a == 0 || b == 0) return 0;
  // ROBA computes ra*b + rb*a - ra*rb, which equals a*b - (a-ra)*(b-rb):
  // the exact product minus the dropped rounding-residue term. The residues
  // are bounded by a third of each operand, so their product fits in a
  // signed 64-bit value for all 32-bit datapaths.
  const std::int64_t da =
      static_cast<std::int64_t>(a) -
      static_cast<std::int64_t>(RoundToNearestPowerOfTwo(a));
  const std::int64_t db =
      static_cast<std::int64_t>(b) -
      static_cast<std::int64_t>(RoundToNearestPowerOfTwo(b));
  return a * b - static_cast<std::uint64_t>(da * db);
}

std::shared_ptr<const Multiplier> MakeExactMultiplier(int operand_bits) {
  return std::make_shared<ExactMultiplier>(operand_bits);
}

std::shared_ptr<const Multiplier> MakePpTruncatedMultiplier(int operand_bits,
                                                            int cut_column) {
  return std::make_shared<PpTruncatedMultiplier>(operand_bits, cut_column);
}

std::shared_ptr<const Multiplier> MakeOperandTruncatedMultiplier(
    int operand_bits, int trunc_bits) {
  return std::make_shared<OperandTruncatedMultiplier>(operand_bits, trunc_bits);
}

std::shared_ptr<const Multiplier> MakeMitchellLogMultiplier(int operand_bits) {
  return std::make_shared<MitchellLogMultiplier>(operand_bits);
}

std::shared_ptr<const Multiplier> MakeDrumMultiplier(int operand_bits,
                                                     int kept_bits) {
  return std::make_shared<DrumMultiplier>(operand_bits, kept_bits);
}

std::shared_ptr<const Multiplier> MakeLeadingOneMultiplier(int operand_bits,
                                                           int msb_bits) {
  return std::make_shared<LeadingOneMultiplier>(operand_bits, msb_bits);
}

std::shared_ptr<const Multiplier> MakeKulkarniMultiplier(int operand_bits) {
  return std::make_shared<KulkarniMultiplier>(operand_bits);
}

std::shared_ptr<const Multiplier> MakeRobaMultiplier(int operand_bits) {
  return std::make_shared<RobaMultiplier>(operand_bits);
}

}  // namespace axdse::axc
