#pragma once
// Behavioral models of approximate multipliers (EvoApproxLib substitutes; see
// DESIGN.md §1). Families:
//
//  * ExactMultiplier            — golden reference.
//  * PpTruncatedMultiplier(c)   — drops every partial-product bit in columns
//                                 below c (fixed-width truncated array mult).
//  * OperandTruncatedMultiplier(k) — clears the low k bits of both operands
//                                 before an exact multiply (broken-array-like).
//  * MitchellLogMultiplier      — Mitchell's 1962 logarithmic multiplier;
//                                 always underestimates, max rel. error ~11.1%.
//  * DrumMultiplier(k)          — DRUM-style dynamic-range unbiased
//                                 multiplier: keeps the k leading bits of each
//                                 operand (LSB of kept slice forced to 1 for
//                                 unbiasing), multiplies, shifts back.
//  * LeadingOneMultiplier(m)    — rounds each operand down to its m most
//                                 significant bits (m=1: nearest lower power
//                                 of two); extremely aggressive.
//
// All models operate on arbitrary 64-bit unsigned operands whose product must
// fit in 64 bits (true for all catalog widths: 8x8 and 32x32). Signed use goes
// through MultiplySigned() with sign-magnitude semantics.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "axc/execution_plan.hpp"

namespace axdse::axc {

/// Interface for (approximate) integer multipliers. Stateless, reentrant.
class Multiplier {
 public:
  virtual ~Multiplier() = default;

  /// Nominal hardware operand width in bits (characterization domain).
  virtual int OperandBits() const noexcept = 0;

  /// Family identifier, e.g. "DRUM(k=6)".
  virtual std::string Describe() const = 0;

  /// Approximate unsigned multiplication. Precondition: the exact product
  /// a*b fits in 64 bits.
  virtual std::uint64_t Multiply(std::uint64_t a,
                                 std::uint64_t b) const noexcept = 0;

  /// Signed multiplication via sign-magnitude: approximates |a|*|b| and
  /// reapplies the sign.
  std::int64_t MultiplySigned(std::int64_t a, std::int64_t b) const noexcept;

  /// POD descriptor for the compiled-plan dispatcher (execution_plan.hpp).
  /// Built-in families return their closed-form opcode so hot paths can
  /// inline them; the default routes through virtual Multiply() —
  /// subclasses outside the catalog keep working unchanged.
  virtual MulOpDescriptor PlanDescriptor() const noexcept {
    return MulOpDescriptor{MulOpCode::kVirtual, 0, this, nullptr};
  }

 protected:
  /// Full product table over the 8-bit operand domain, built lazily (once
  /// per model instance, thread-safe) by evaluating Multiply() on all
  /// 256x256 pairs; pure memoization, so descriptor-table dispatch is
  /// bit-identical to the family math. Returns nullptr when OperandBits()
  /// exceeds 8 (the table would not cover the operand domain) or when
  /// allocation fails.
  const std::uint32_t* Table8() const noexcept;

 private:
  mutable std::once_flag table8_once_;
  mutable std::unique_ptr<std::uint32_t[]> table8_;
};

/// Golden exact multiplier.
class ExactMultiplier final : public Multiplier {
 public:
  explicit ExactMultiplier(int operand_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kExact, 0, nullptr, nullptr};
  }

 private:
  int operand_bits_;
};

/// Truncated-array multiplier: partial-product columns below `cut_column`
/// are omitted.
class PpTruncatedMultiplier final : public Multiplier {
 public:
  /// `cut_column` must be in [1, 2*operand_bits-1].
  PpTruncatedMultiplier(int operand_bits, int cut_column);
  int OperandBits() const noexcept override { return operand_bits_; }
  int CutColumn() const noexcept { return cut_column_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kPpTruncated, cut_column_, nullptr, Table8()};
  }

 private:
  int operand_bits_;
  int cut_column_;
};

/// Clears the low `trunc_bits` of both operands before an exact multiply.
class OperandTruncatedMultiplier final : public Multiplier {
 public:
  OperandTruncatedMultiplier(int operand_bits, int trunc_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int TruncBits() const noexcept { return trunc_bits_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kOperandTruncated, trunc_bits_, nullptr, Table8()};
  }

 private:
  int operand_bits_;
  int trunc_bits_;
};

/// Mitchell's logarithmic multiplier (fixed-point, 30 fractional bits).
class MitchellLogMultiplier final : public Multiplier {
 public:
  explicit MitchellLogMultiplier(int operand_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kMitchell, 0, nullptr, Table8()};
  }

 private:
  int operand_bits_;
};

/// DRUM-style dynamic-range unbiased multiplier with k kept bits.
class DrumMultiplier final : public Multiplier {
 public:
  /// `kept_bits` must be in [2, operand_bits].
  DrumMultiplier(int operand_bits, int kept_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int KeptBits() const noexcept { return kept_bits_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kDrum, kept_bits_, nullptr, Table8()};
  }

 private:
  int operand_bits_;
  int kept_bits_;
};

/// Rounds each operand down to its `msb_bits` leading bits before multiplying.
class LeadingOneMultiplier final : public Multiplier {
 public:
  /// `msb_bits` must be in [1, operand_bits].
  LeadingOneMultiplier(int operand_bits, int msb_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  int MsbBits() const noexcept { return msb_bits_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kLeadingOne, msb_bits_, nullptr, Table8()};
  }

 private:
  int operand_bits_;
  int msb_bits_;
};

/// Kulkarni-style underdesigned multiplier: a 2x2 approximate block
/// (3 x 3 = 7 instead of 9, every other entry exact) composed recursively to
/// the operand width. Classic MRED ~3.3% at 8 bits.
class KulkarniMultiplier final : public Multiplier {
 public:
  explicit KulkarniMultiplier(int operand_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kKulkarni, 0, nullptr, Table8()};
  }

 private:
  int operand_bits_;
};

/// ROBA-style rounding-based multiplier: rounds each operand to the nearest
/// power of two (r) and computes a*b ~= ra*b + rb*a - ra*rb, i.e. it drops
/// only the (a-ra)*(b-rb) term. Unlike LeadingOne it can overestimate, and
/// it is exact whenever either operand is a power of two.
class RobaMultiplier final : public Multiplier {
 public:
  explicit RobaMultiplier(int operand_bits);
  int OperandBits() const noexcept override { return operand_bits_; }
  std::string Describe() const override;
  std::uint64_t Multiply(std::uint64_t a, std::uint64_t b) const noexcept override;
  MulOpDescriptor PlanDescriptor() const noexcept override {
    return MulOpDescriptor{MulOpCode::kRoba, 0, nullptr, Table8()};
  }

  /// Nearest power of two (ties round up); 0 maps to 0. Exposed for tests.
  static std::uint64_t RoundToNearestPowerOfTwo(std::uint64_t v) noexcept;

 private:
  int operand_bits_;
};

/// Factory helpers returning shared, immutable model instances.
std::shared_ptr<const Multiplier> MakeExactMultiplier(int operand_bits);
std::shared_ptr<const Multiplier> MakePpTruncatedMultiplier(int operand_bits,
                                                            int cut_column);
std::shared_ptr<const Multiplier> MakeOperandTruncatedMultiplier(
    int operand_bits, int trunc_bits);
std::shared_ptr<const Multiplier> MakeMitchellLogMultiplier(int operand_bits);
std::shared_ptr<const Multiplier> MakeDrumMultiplier(int operand_bits,
                                                     int kept_bits);
std::shared_ptr<const Multiplier> MakeLeadingOneMultiplier(int operand_bits,
                                                           int msb_bits);
std::shared_ptr<const Multiplier> MakeKulkarniMultiplier(int operand_bits);
std::shared_ptr<const Multiplier> MakeRobaMultiplier(int operand_bits);

}  // namespace axdse::axc
