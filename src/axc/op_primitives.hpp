#pragma once
// Closed-form arithmetic of every behavioral operator family, as inlinable
// free functions. This is the single source of truth for the family math:
// both the virtual Adder/Multiplier classes (catalog / characterization
// API) and the compiled-plan dispatcher (execution_plan.hpp, the evaluate
// hot path) call these, so the two dispatch paths cannot diverge.
//
// Also home of the sign-magnitude helpers shared by AddSigned /
// MultiplySigned and the plan dispatcher. Negation goes through
// std::uint64_t so INT64_MIN magnitudes are well-defined (signed `-a`
// overflows there); for every other input the results are bit-identical to
// the historical signed negation.

#include <bit>
#include <cstdint>

namespace axdse::axc::ops {

constexpr std::uint64_t LowMask(int bits) noexcept {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

/// Index of the most significant set bit; precondition v != 0.
constexpr int MsbIndex(std::uint64_t v) noexcept {
  return 63 - std::countl_zero(v);
}

/// |v| as an unsigned value; defined for INT64_MIN (yields 2^63).
constexpr std::uint64_t UnsignedMagnitude(std::int64_t v) noexcept {
  const std::uint64_t u = static_cast<std::uint64_t>(v);
  return v < 0 ? 0 - u : u;
}

/// Reapplies a sign to an unsigned magnitude (modular, never UB).
constexpr std::int64_t ApplySign(bool negative,
                                 std::uint64_t magnitude) noexcept {
  return static_cast<std::int64_t>(negative ? 0 - magnitude : magnitude);
}

// --- adder families ---------------------------------------------------------

constexpr std::uint64_t ExactAdd(std::uint64_t a, std::uint64_t b) noexcept {
  return a + b;
}

constexpr std::uint64_t LowerOrAdd(std::uint64_t a, std::uint64_t b,
                                   int approx_bits) noexcept {
  const std::uint64_t mask = LowMask(approx_bits);
  const std::uint64_t high = (a >> approx_bits) + (b >> approx_bits);
  const std::uint64_t low = (a | b) & mask;
  return (high << approx_bits) | low;
}

constexpr std::uint64_t TruncatedZeroAdd(std::uint64_t a, std::uint64_t b,
                                         int approx_bits) noexcept {
  const std::uint64_t high = (a >> approx_bits) + (b >> approx_bits);
  return high << approx_bits;
}

constexpr std::uint64_t TruncatedPassAAdd(std::uint64_t a, std::uint64_t b,
                                          int approx_bits) noexcept {
  const std::uint64_t mask = LowMask(approx_bits);
  const std::uint64_t high = (a >> approx_bits) + (b >> approx_bits);
  return (high << approx_bits) | (a & mask);
}

inline std::uint64_t SegmentedCarryAdd(std::uint64_t a, std::uint64_t b,
                                       int segment_bits) noexcept {
  const std::uint64_t seg_mask = LowMask(segment_bits);
  std::uint64_t result = 0;
  std::uint64_t carry_in = 0;
  for (int shift = 0; shift < 64; shift += segment_bits) {
    const std::uint64_t sa = (a >> shift) & seg_mask;
    const std::uint64_t sb = (b >> shift) & seg_mask;
    const std::uint64_t sum = sa + sb + carry_in;
    result |= (sum & seg_mask) << shift;
    // Speculative carry (ETAII): the carry entering the next segment is
    // predicted from this segment's operand bits alone — the incoming carry
    // is deliberately NOT folded in, so a carry chain never crosses more
    // than one segment boundary. This is where the approximation error
    // comes from.
    carry_in = (sa + sb) >> segment_bits;
    if (shift + segment_bits >= 64) break;
  }
  return result;
}

inline std::uint64_t AlmostCorrectAdd(std::uint64_t a, std::uint64_t b,
                                      int window) noexcept {
  // Result bit i uses the exact sum of bits [max(0, i-window), i] with zero
  // carry-in: any carry chain longer than `window` is cut.
  std::uint64_t result = 0;
  for (int i = 0; i < 64; ++i) {
    const int lo = i - window < 0 ? 0 : i - window;
    const int span = i - lo + 1;
    const std::uint64_t mask = LowMask(span);
    const std::uint64_t sa = (a >> lo) & mask;
    const std::uint64_t sb = (b >> lo) & mask;
    const std::uint64_t local = sa + sb;
    result |= ((local >> (i - lo)) & 1ULL) << i;
    // Bits above both operands' ranges cannot be set; stop once both
    // operands are exhausted and no local sum can reach bit i.
    if ((a >> i) == 0 && (b >> i) == 0 && ((local >> (i - lo)) & 1ULL) == 0 &&
        i > 0)
      break;
  }
  return result;
}

inline std::uint64_t AmaAdd(std::uint64_t a, std::uint64_t b,
                            int approx_bits) noexcept {
  // Low positions use the AMA1 approximate full adder: Cout is the exact
  // majority, Sum is the complement of Cout — wrong only for input triples
  // (0,0,0) and (1,1,1).
  std::uint64_t result = 0;
  std::uint64_t carry = 0;
  for (int i = 0; i < approx_bits; ++i) {
    const std::uint64_t ai = (a >> i) & 1ULL;
    const std::uint64_t bi = (b >> i) & 1ULL;
    const std::uint64_t cout = (ai & bi) | (ai & carry) | (bi & carry);
    result |= (1ULL - cout) << i;  // Sum = NOT(Cout)
    carry = cout;
  }
  const std::uint64_t high = (a >> approx_bits) + (b >> approx_bits) + carry;
  return result | (high << approx_bits);
}

// --- multiplier families -----------------------------------------------------

constexpr std::uint64_t ExactMul(std::uint64_t a, std::uint64_t b) noexcept {
  return a * b;
}

inline std::uint64_t PpTruncatedMul(std::uint64_t a, std::uint64_t b,
                                    int cut_column) noexcept {
  // Sum partial products a_i * (b_j << (i+j)) keeping only columns >= cut.
  // Computed as the exact product minus the dropped low-column bits: a
  // partial product lands below the cut iff i + j < cut, so only rows
  // i < cut drop anything and each drops (b << i) restricted to columns
  // < cut. The row loop is a fixed `cut_column` trips with an AND-mask
  // instead of a bit-scan branch — a data-dependent branch per set bit
  // mispredicts its way to ~3x this cost on random operands. Identical
  // (modular) arithmetic to summing the kept partial products directly.
  const std::uint64_t low_mask = LowMask(cut_column);
  std::uint64_t dropped = 0;
  for (int i = 0; i < cut_column; ++i) {
    const std::uint64_t row = 0 - ((a >> i) & 1ULL);  // all-ones iff a_i set
    dropped += row & ((b << i) & low_mask);
  }
  return a * b - dropped;
}

constexpr std::uint64_t OperandTruncatedMul(std::uint64_t a, std::uint64_t b,
                                            int trunc_bits) noexcept {
  const std::uint64_t mask = ~LowMask(trunc_bits);
  return (a & mask) * (b & mask);
}

inline std::uint64_t MitchellLogMul(std::uint64_t a,
                                    std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  // log2(x) ~= msb(x) + frac(x), frac in [0,1) with F fractional bits.
  constexpr int kFracBits = 30;
  const int ka = MsbIndex(a);
  const int kb = MsbIndex(b);
  // frac = (x - 2^k) / 2^k in fixed point. Shift x so the mantissa occupies
  // kFracBits bits: for k <= kFracBits shift left, otherwise right.
  const auto mantissa = [](std::uint64_t x, int k) -> std::uint64_t {
    const std::uint64_t frac_part = x - (1ULL << k);  // k < 64 guaranteed
    if (k <= kFracBits) return frac_part << (kFracBits - k);
    return frac_part >> (k - kFracBits);
  };
  const std::uint64_t fa = mantissa(a, ka);
  const std::uint64_t fb = mantissa(b, kb);
  const std::uint64_t fsum = fa + fb;  // in [0, 2) fixed point
  const int ksum = ka + kb;
  // Antilog per Mitchell: 2^(ksum) * (1 + fsum) if fsum < 1,
  // else 2^(ksum+1) * (fsum)  [fsum has an implicit integer bit].
  // Branchless: fsum's bit kFracBits is the carry that selects the case —
  // a data-dependent 50/50 branch here mispredicts its way to the top of
  // the evaluate profile.
  const std::uint64_t carry = fsum >> kFracBits;  // 0 or 1 (fa, fb < 2^F)
  const std::uint64_t mant = fsum + ((1ULL - carry) << kFracBits);
  const int exponent = ksum + static_cast<int>(carry);
  if (exponent >= kFracBits) return mant << (exponent - kFracBits);
  return mant >> (kFracBits - exponent);
}

inline std::uint64_t DrumMul(std::uint64_t a, std::uint64_t b,
                             int kept_bits) noexcept {
  const auto reduce = [kept_bits](std::uint64_t v, int& shift) -> std::uint64_t {
    shift = 0;
    if (v < (1ULL << kept_bits)) return v;  // already fits: exact
    const int msb = MsbIndex(v);
    shift = msb - kept_bits + 1;
    std::uint64_t kept = v >> shift;
    kept |= 1;  // force LSB to 1: expected-value compensation (unbiasing)
    return kept;
  };
  int sa = 0;
  int sb = 0;
  const std::uint64_t ra = reduce(a, sa);
  const std::uint64_t rb = reduce(b, sb);
  return (ra * rb) << (sa + sb);
}

inline std::uint64_t LeadingOneMul(std::uint64_t a, std::uint64_t b,
                                   int msb_bits) noexcept {
  const auto round_down = [msb_bits](std::uint64_t v) -> std::uint64_t {
    if (v < (1ULL << msb_bits)) return v;
    const int msb = MsbIndex(v);
    const int drop = msb - msb_bits + 1;
    return (v >> drop) << drop;
  };
  return round_down(a) * round_down(b);
}

/// Kulkarni base block: exact 2x2 product except 3*3 -> 7.
constexpr std::uint64_t Kulkarni2x2(std::uint64_t a, std::uint64_t b) noexcept {
  return (a == 3 && b == 3) ? 7 : a * b;
}

/// Recursive composition: split each operand in half, multiply the four
/// cross terms approximately, and combine with exact shifted additions.
inline std::uint64_t KulkarniRecursive(std::uint64_t a, std::uint64_t b,
                                       int width) noexcept {
  if (width <= 2) return Kulkarni2x2(a & 0x3, b & 0x3);
  const int half = width / 2;
  const std::uint64_t mask = (1ULL << half) - 1;
  const std::uint64_t al = a & mask;
  const std::uint64_t ah = a >> half;
  const std::uint64_t bl = b & mask;
  const std::uint64_t bh = b >> half;
  const std::uint64_t ll = KulkarniRecursive(al, bl, half);
  const std::uint64_t lh = KulkarniRecursive(al, bh, half);
  const std::uint64_t hl = KulkarniRecursive(ah, bl, half);
  const std::uint64_t hh = KulkarniRecursive(ah, bh, half);
  return (hh << width) + ((lh + hl) << half) + ll;
}

/// Smallest power-of-two width that covers the operand.
inline int CoveringPow2Width(std::uint64_t v) noexcept {
  int width = 2;
  while (width < 64 && (v >> width) != 0) width *= 2;
  return width;
}

inline std::uint64_t KulkarniMul(std::uint64_t a, std::uint64_t b) noexcept {
  // The block decomposition targets <=32-bit datapaths; wider operands
  // (legal as long as the product fits 64 bits) fall back to exact.
  if ((a >> 32) != 0 || (b >> 32) != 0) return a * b;
  const int wa = CoveringPow2Width(a);
  const int wb = CoveringPow2Width(b);
  return KulkarniRecursive(a, b, wa > wb ? wa : wb);
}

/// Nearest power of two (ties round up); 0 maps to 0.
constexpr std::uint64_t RoundToNearestPowerOfTwo(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const int p = MsbIndex(v);
  const std::uint64_t down = 1ULL << p;
  if (v == down || p >= 62) return down;
  const std::uint64_t up = down << 1;
  return (v - down < up - v) ? down : up;  // ties round up
}

inline std::uint64_t RobaMul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  // ROBA computes ra*b + rb*a - ra*rb, which equals a*b - (a-ra)*(b-rb):
  // the exact product minus the dropped rounding-residue term. The residues
  // are bounded by a third of each operand, so their product fits in a
  // signed 64-bit value for all 32-bit datapaths.
  const std::int64_t da =
      static_cast<std::int64_t>(a) -
      static_cast<std::int64_t>(RoundToNearestPowerOfTwo(a));
  const std::int64_t db =
      static_cast<std::int64_t>(b) -
      static_cast<std::int64_t>(RoundToNearestPowerOfTwo(b));
  return a * b - static_cast<std::uint64_t>(da * db);
}

// --- sign-magnitude wrappers --------------------------------------------------

/// Signed addition over any unsigned add functor: same-sign operands are
/// approximated on their magnitudes; mixed signs fall back to exact
/// subtraction (approximate adders model the ADD datapath; DESIGN.md §4.3).
template <class AddFn>
constexpr std::int64_t SignedAdd(const AddFn& add, std::int64_t a,
                                 std::int64_t b) noexcept {
  if ((a >= 0) == (b >= 0)) {
    const std::uint64_t mag = add(UnsignedMagnitude(a), UnsignedMagnitude(b));
    return ApplySign(a < 0, mag);
  }
  return a + b;  // mixed signs: subtraction handled exactly
}

/// Signed multiplication over any unsigned multiply functor
/// (sign-magnitude semantics).
template <class MulFn>
constexpr std::int64_t SignedMul(const MulFn& mul, std::int64_t a,
                                 std::int64_t b) noexcept {
  const bool negative = (a < 0) != (b < 0);
  const std::uint64_t mag = mul(UnsignedMagnitude(a), UnsignedMagnitude(b));
  return ApplySign(negative, mag);
}

}  // namespace axdse::axc::ops
