#pragma once
// axdse — the public facade. Include this one header to use the library:
//
//   axdse::Session session;                          // registry + engine
//   auto request = axdse::Session::Request("fir")    // fluent builder
//                      .Size(100).Seeds(8).Build();  // validated value type
//   auto result = session.Explore(request);          // parallel multi-seed
//   axdse::report::WriteBatchJson(std::cout, batch); // machine-readable out
//
// Layering underneath, still reachable through this header when needed:
//   workloads::KernelRegistry  — kernels by name ("matmul", "fir", ...)
//   dse::ExplorationRequest    — one serializable run description
//   dse::CampaignSpec          — a declarative sweep grid over requests
//   dse::Engine                — batch execution on a worker pool
//   dse::Checkpoint            — suspend/resume snapshots (byte-identical)
//   dse::Explorer / Evaluator  — the single-run core from the paper
//   report::*                  — Tables I-III / Figures 2-4 / JSON / CSV

#include "axc/catalog.hpp"
#include "axc/characterization.hpp"
#include "dse/baselines.hpp"
#include "dse/campaign.hpp"
#include "dse/checkpoint.hpp"
#include "dse/engine.hpp"
#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "dse/request.hpp"
#include "report/campaign.hpp"
#include "report/export.hpp"
#include "report/figures.hpp"
#include "report/tables.hpp"
#include "session.hpp"
#include "util/ascii_table.hpp"
#include "util/cli.hpp"
#include "workloads/kernel.hpp"
#include "workloads/registry.hpp"
