#include "dse/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace axdse::dse {

double BaselineObjective(const RewardConfig& reward,
                         const instrument::Measurement& m) {
  if (m.delta_acc > reward.acc_threshold) {
    const double scale =
        reward.acc_threshold > 0.0 ? reward.acc_threshold : 1.0;
    return -1.0 - (m.delta_acc - reward.acc_threshold) / scale;
  }
  const double power_norm =
      m.precise_power_mw > 0.0 ? m.delta_power_mw / m.precise_power_mw : 0.0;
  const double time_norm =
      m.precise_time_ns > 0.0 ? m.delta_time_ns / m.precise_time_ns : 0.0;
  return power_norm + time_norm;
}

namespace {

/// Shared bookkeeping: evaluates a configuration and keeps the running best.
class BestTracker {
 public:
  BestTracker(Evaluator& evaluator, const RewardConfig& reward,
              std::string name)
      : evaluator_(&evaluator), reward_(&reward) {
    result_.name = std::move(name);
  }

  /// Evaluates and scores `config`, updating the best-so-far.
  double Score(const Configuration& config) {
    const instrument::Measurement m = evaluator_->Evaluate(config);
    ++result_.evaluations;
    const double objective = BaselineObjective(*reward_, m);
    if (result_.evaluations == 1 || objective > result_.best_objective) {
      result_.best = config;
      result_.best_measurement = m;
      result_.best_objective = objective;
      result_.feasible_found = m.delta_acc <= reward_->acc_threshold;
      result_.evaluations_to_best = result_.evaluations;
    }
    return objective;
  }

  std::size_t Evaluations() const noexcept { return result_.evaluations; }
  BaselineResult Take() { return std::move(result_); }

 private:
  Evaluator* evaluator_;
  const RewardConfig* reward_;
  BaselineResult result_;
};

void CheckBudget(std::size_t budget) {
  if (budget == 0)
    throw std::invalid_argument("baseline explorer: budget == 0");
}

}  // namespace

BaselineResult RandomSearch(Evaluator& evaluator, const RewardConfig& reward,
                            std::size_t budget, std::uint64_t seed) {
  CheckBudget(budget);
  util::Rng rng(seed);
  const SpaceShape& shape = evaluator.Shape();
  BestTracker tracker(evaluator, reward, "random-search");
  tracker.Score(InitialConfiguration(shape));
  while (tracker.Evaluations() < budget)
    tracker.Score(RandomConfiguration(shape, rng));
  return tracker.Take();
}

BaselineResult HillClimb(Evaluator& evaluator, const RewardConfig& reward,
                         std::size_t budget, std::uint64_t seed,
                         std::size_t patience) {
  CheckBudget(budget);
  util::Rng rng(seed);
  const SpaceShape& shape = evaluator.Shape();
  BestTracker tracker(evaluator, reward, "hill-climb");

  Configuration current = InitialConfiguration(shape);
  double current_score = tracker.Score(current);
  std::size_t rejections = 0;
  while (tracker.Evaluations() < budget) {
    Configuration candidate = current;
    RandomNeighborMove(candidate, shape, rng);
    const double candidate_score = tracker.Score(candidate);
    if (candidate_score >= current_score) {
      current = std::move(candidate);
      current_score = candidate_score;
      rejections = 0;
    } else if (++rejections >= patience) {
      if (tracker.Evaluations() >= budget) break;
      current = RandomConfiguration(shape, rng);
      current_score = tracker.Score(current);
      rejections = 0;
    }
  }
  return tracker.Take();
}

BaselineResult SimulatedAnnealing(Evaluator& evaluator,
                                  const RewardConfig& reward,
                                  std::size_t budget, std::uint64_t seed,
                                  const AnnealingSchedule& schedule) {
  CheckBudget(budget);
  if (!(schedule.cooling_rate > 0.0 && schedule.cooling_rate < 1.0))
    throw std::invalid_argument(
        "SimulatedAnnealing: cooling_rate must be in (0,1)");
  util::Rng rng(seed);
  const SpaceShape& shape = evaluator.Shape();
  BestTracker tracker(evaluator, reward, "simulated-annealing");

  Configuration current = InitialConfiguration(shape);
  double current_score = tracker.Score(current);
  double temperature = schedule.initial_temperature;
  while (tracker.Evaluations() < budget) {
    Configuration candidate = current;
    RandomNeighborMove(candidate, shape, rng);
    const double candidate_score = tracker.Score(candidate);
    const double delta = candidate_score - current_score;
    const bool accept =
        delta >= 0.0 ||
        rng.UniformReal() < std::exp(delta / std::max(temperature, 1e-12));
    if (accept) {
      current = std::move(candidate);
      current_score = candidate_score;
    }
    temperature =
        std::max(schedule.min_temperature, temperature * schedule.cooling_rate);
  }
  return tracker.Take();
}

BaselineResult ExhaustiveSearch(Evaluator& evaluator,
                                const RewardConfig& reward,
                                std::size_t max_configurations) {
  const SpaceShape& shape = evaluator.Shape();
  if (shape.num_variables >= 40)
    throw std::invalid_argument("ExhaustiveSearch: variable space too large");
  const std::size_t mask_count = std::size_t{1} << shape.num_variables;
  const std::size_t total =
      shape.num_adders * shape.num_multipliers * mask_count;
  if (total > max_configurations)
    throw std::invalid_argument(
        "ExhaustiveSearch: space exceeds max_configurations");

  BestTracker tracker(evaluator, reward, "exhaustive");
  Configuration config(shape.num_variables);
  for (std::uint32_t a = 0; a < shape.num_adders; ++a) {
    config.SetAdderIndex(a);
    for (std::uint32_t m = 0; m < shape.num_multipliers; ++m) {
      config.SetMultiplierIndex(m);
      for (std::size_t mask = 0; mask < mask_count; ++mask) {
        for (std::size_t v = 0; v < shape.num_variables; ++v)
          config.SetVariable(v, (mask >> v) & 1u);
        tracker.Score(config);
      }
    }
  }
  return tracker.Take();
}

BaselineResult GeneticSearch(Evaluator& evaluator, const RewardConfig& reward,
                             std::size_t budget, std::uint64_t seed,
                             const GeneticOptions& options) {
  CheckBudget(budget);
  if (options.population < 2)
    throw std::invalid_argument("GeneticSearch: population < 2");
  if (options.elites >= options.population)
    throw std::invalid_argument("GeneticSearch: elites >= population");
  util::Rng rng(seed);
  const SpaceShape& shape = evaluator.Shape();
  BestTracker tracker(evaluator, reward, "genetic");

  struct Individual {
    Configuration config;
    double fitness = 0.0;
  };

  std::vector<Individual> population;
  population.reserve(options.population);
  population.push_back({InitialConfiguration(shape), 0.0});
  while (population.size() < options.population)
    population.push_back({RandomConfiguration(shape, rng), 0.0});
  for (Individual& ind : population) {
    if (tracker.Evaluations() >= budget) break;
    ind.fitness = tracker.Score(ind.config);
  }

  const auto tournament_pick = [&](const std::vector<Individual>& pool) {
    std::size_t best = rng.PickIndex(pool.size());
    for (std::size_t i = 1; i < options.tournament; ++i) {
      const std::size_t challenger = rng.PickIndex(pool.size());
      if (pool[challenger].fitness > pool[best].fitness) best = challenger;
    }
    return best;
  };

  while (tracker.Evaluations() < budget) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness > b.fitness;
              });
    std::vector<Individual> next(population.begin(),
                                 population.begin() +
                                     static_cast<std::ptrdiff_t>(options.elites));
    while (next.size() < options.population &&
           tracker.Evaluations() < budget) {
      const Individual& pa = population[tournament_pick(population)];
      const Individual& pb = population[tournament_pick(population)];
      Configuration child = pa.config;
      if (rng.Bernoulli(options.crossover_rate)) {
        if (rng.Bernoulli(0.5)) child.SetAdderIndex(pb.config.AdderIndex());
        if (rng.Bernoulli(0.5))
          child.SetMultiplierIndex(pb.config.MultiplierIndex());
        for (std::size_t v = 0; v < shape.num_variables; ++v)
          if (rng.Bernoulli(0.5))
            child.SetVariable(v, pb.config.VariableSelected(v));
      }
      // Mutation: operator indices random-walk, variable bits flip.
      if (rng.Bernoulli(options.mutation_rate))
        (rng.Bernoulli(0.5) ? NextAdder : PrevAdder)(child, shape);
      if (rng.Bernoulli(options.mutation_rate))
        (rng.Bernoulli(0.5) ? NextMultiplier : PrevMultiplier)(child, shape);
      for (std::size_t v = 0; v < shape.num_variables; ++v)
        if (rng.Bernoulli(options.mutation_rate)) child.ToggleVariable(v);
      Individual offspring{std::move(child), 0.0};
      offspring.fitness = tracker.Score(offspring.config);
      next.push_back(std::move(offspring));
    }
    population = std::move(next);
  }
  return tracker.Take();
}

}  // namespace axdse::dse
