#pragma once
// Non-RL explorers over the same configuration space, used by the ablation
// bench to test the paper's implicit claim (via Wu et al. [4]) that RL-based
// DSE beats classic heuristics like simulated annealing and genetic search.
//
// All baselines optimize the same scalar objective: infeasible configurations
// (accuracy loss above threshold) are penalized below every feasible one;
// feasible configurations score the normalized power+time savings.

#include <string>

#include "dse/configuration.hpp"
#include "dse/evaluator.hpp"
#include "dse/reward.hpp"

namespace axdse::dse {

/// Scalarized exploration objective (higher is better):
///  * infeasible: -1 - (Δacc - acc_th)/acc_th   (always < any feasible score)
///  * feasible:   Δpower/precise_power + Δtime/precise_time   (in [~0, 2])
double BaselineObjective(const RewardConfig& reward,
                         const instrument::Measurement& measurement);

/// Result of one baseline run.
struct BaselineResult {
  std::string name;
  Configuration best;
  instrument::Measurement best_measurement;
  double best_objective = 0.0;
  bool feasible_found = false;
  std::size_t evaluations = 0;          ///< Evaluate() calls issued
  std::size_t evaluations_to_best = 0;  ///< eval index when best was found
};

/// Uniform random sampling of the space.
BaselineResult RandomSearch(Evaluator& evaluator, const RewardConfig& reward,
                            std::size_t budget, std::uint64_t seed);

/// Stochastic hill climbing with random restarts: accepts a random neighbor
/// move iff it does not decrease the objective; restarts from a random
/// configuration after `patience` consecutive rejections.
BaselineResult HillClimb(Evaluator& evaluator, const RewardConfig& reward,
                         std::size_t budget, std::uint64_t seed,
                         std::size_t patience = 50);

/// Simulated annealing with geometric cooling.
struct AnnealingSchedule {
  double initial_temperature = 1.0;
  double cooling_rate = 0.995;  ///< multiplied in after every evaluation
  double min_temperature = 1e-4;
};
BaselineResult SimulatedAnnealing(Evaluator& evaluator,
                                  const RewardConfig& reward,
                                  std::size_t budget, std::uint64_t seed,
                                  const AnnealingSchedule& schedule = {});

/// Exhaustive enumeration of the whole configuration space — the oracle for
/// small spaces (e.g. program-variable granularity: 6 x 6 x 2^3 = 288
/// configurations). Throws std::invalid_argument if the space exceeds
/// `max_configurations`.
BaselineResult ExhaustiveSearch(Evaluator& evaluator,
                                const RewardConfig& reward,
                                std::size_t max_configurations = 1u << 20);

/// Generational genetic algorithm: tournament selection, uniform crossover
/// over (adder, multiplier, variable mask), per-gene mutation.
struct GeneticOptions {
  std::size_t population = 24;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.05;  ///< per variable bit; operators mutate +-1
  std::size_t elites = 2;
};
BaselineResult GeneticSearch(Evaluator& evaluator, const RewardConfig& reward,
                             std::size_t budget, std::uint64_t seed,
                             const GeneticOptions& options = {});

}  // namespace axdse::dse
