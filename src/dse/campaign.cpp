#include "dse/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "dse/baselines.hpp"
#include "dse/checkpoint.hpp"
#include "rl/trainer.hpp"
#include "util/number_format.hpp"

namespace axdse::dse {

namespace {

using util::ParseDoubleToken;
using util::ParseUnsignedToken;
using util::ShortestDouble;

/// Campaign tokens reuse the request escaping; empty strings travel as "-"
/// (the checkpoint subsystem's convention), so a literal "-" must be
/// encoded to keep the mapping invertible.
std::string Encode(const std::string& text) {
  if (text.empty()) return "-";
  const std::string escaped = EscapeRequestToken(text);
  return escaped == "-" ? "%2d" : escaped;
}

std::string Decode(const std::string& token) {
  return token == "-" ? "" : UnescapeRequestToken(token);
}

std::vector<std::string> SplitOn(const std::string& text, char separator) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == separator) {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(std::move(current));
  return parts;
}

/// Whitespace/';' tokenization shared with ExplorationRequest::Parse.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

[[noreturn]] void SpecError(const std::string& message) {
  throw std::invalid_argument("CampaignSpec: " + message);
}

// --- chunk checkpoint line reader ------------------------------------------

[[noreturn]] void ChunkError(std::size_t line, const std::string& message) {
  throw CheckpointError("CampaignChunkCheckpoint: line " +
                        std::to_string(line) + ": " + message);
}

/// Strict sequential reader over the snapshot's lines: every line is
/// requested by keyword, in order; anything unexpected throws.
class LineReader {
 public:
  explicit LineReader(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines_.push_back(line);
  }

  /// Consumes the next line, requires its first token to be `keyword`, and
  /// returns the remaining tokens.
  std::vector<std::string> Expect(const std::string& keyword) {
    if (next_ >= lines_.size())
      ChunkError(next_ + 1, "unexpected end of input, wanted '" + keyword +
                                "'");
    std::vector<std::string> tokens = Tokenize(lines_[next_]);
    ++next_;
    if (tokens.empty() || tokens[0] != keyword)
      ChunkError(next_, "expected '" + keyword + "', got '" +
                            (tokens.empty() ? std::string() : tokens[0]) +
                            "'");
    tokens.erase(tokens.begin());
    return tokens;
  }

  /// Like Expect, but returns everything after "<keyword> " verbatim (for
  /// values that legitimately contain spaces, e.g. request strings).
  std::string ExpectRest(const std::string& keyword) {
    if (next_ >= lines_.size())
      ChunkError(next_ + 1, "unexpected end of input, wanted '" + keyword +
                                "'");
    const std::string& line = lines_[next_];
    ++next_;
    if (line.rfind(keyword + " ", 0) != 0)
      ChunkError(next_, "expected '" + keyword + " ...'");
    return line.substr(keyword.size() + 1);
  }

  void ExpectEnd() {
    if (next_ < lines_.size())
      ChunkError(next_ + 1, "trailing content after 'end'");
  }

  std::size_t Line() const noexcept { return next_; }

 private:
  std::vector<std::string> lines_;
  std::size_t next_ = 0;
};

void RequireTokenCount(const LineReader& reader,
                       const std::vector<std::string>& tokens,
                       std::size_t count, const char* what) {
  if (tokens.size() != count)
    ChunkError(reader.Line(), std::string(what) + ": expected " +
                                  std::to_string(count) + " fields, got " +
                                  std::to_string(tokens.size()));
}

double ChunkDouble(const std::string& token, const char* what) {
  // Summary min/max of an empty sample are +-inf sentinels; allow them.
  return ParseDoubleToken(token, what, /*allow_nonfinite=*/true);
}

void WriteSummary(std::ostream& out, const char* keyword,
                  const util::Summary& summary) {
  out << keyword << " " << summary.count << " " << ShortestDouble(summary.mean)
      << " " << ShortestDouble(summary.stddev) << " "
      << ShortestDouble(summary.min) << " " << ShortestDouble(summary.max)
      << " " << ShortestDouble(summary.sum) << "\n";
}

util::Summary ReadSummary(LineReader& reader, const std::string& keyword) {
  const std::vector<std::string> tokens = reader.Expect(keyword);
  RequireTokenCount(reader, tokens, 6, "summary");
  util::Summary summary;
  summary.count =
      static_cast<std::size_t>(ParseUnsignedToken(tokens[0], "summary count"));
  summary.mean = ChunkDouble(tokens[1], "summary mean");
  summary.stddev = ChunkDouble(tokens[2], "summary stddev");
  summary.min = ChunkDouble(tokens[3], "summary min");
  summary.max = ChunkDouble(tokens[4], "summary max");
  summary.sum = ChunkDouble(tokens[5], "summary sum");
  return summary;
}

void WriteConfig(std::ostream& out, const Configuration& config) {
  out << config.AdderIndex() << " " << config.MultiplierIndex() << " "
      << config.NumVariables();
  for (const std::uint64_t word : config.MaskWords()) out << " " << word;
}

/// Consumes one serialized configuration from `tokens` starting at `pos`.
Configuration ReadConfig(LineReader& reader,
                         const std::vector<std::string>& tokens,
                         std::size_t& pos) {
  if (tokens.size() < pos + 3) ChunkError(reader.Line(), "truncated config");
  const std::uint64_t adder = ParseUnsignedToken(tokens[pos], "config adder");
  const std::uint64_t multiplier =
      ParseUnsignedToken(tokens[pos + 1], "config multiplier");
  if (adder > std::numeric_limits<std::uint32_t>::max() ||
      multiplier > std::numeric_limits<std::uint32_t>::max())
    ChunkError(reader.Line(), "config operator index exceeds 32 bits");
  const std::size_t num_variables = static_cast<std::size_t>(
      ParseUnsignedToken(tokens[pos + 2], "config variable count"));
  pos += 3;
  Configuration config(num_variables);
  config.SetAdderIndex(static_cast<std::uint32_t>(adder));
  config.SetMultiplierIndex(static_cast<std::uint32_t>(multiplier));
  const std::size_t num_words = config.MaskWords().size();
  if (tokens.size() < pos + num_words)
    ChunkError(reader.Line(), "truncated config mask");
  for (std::size_t w = 0; w < num_words; ++w) {
    const std::uint64_t word =
        ParseUnsignedToken(tokens[pos + w], "config mask word");
    for (std::size_t bit = 0; bit < 64; ++bit) {
      if ((word >> bit) & 1ULL) {
        const std::size_t variable = w * 64 + bit;
        if (variable >= num_variables)
          ChunkError(reader.Line(),
                     "config mask sets a bit beyond the variable count");
        config.SetVariable(variable, true);
      }
    }
  }
  pos += num_words;
  return config;
}

/// The five measurement fields campaign reports read (see CampaignSeedRun).
void WriteMeasurement(std::ostream& out, const instrument::Measurement& m) {
  out << ShortestDouble(m.delta_acc) << " " << ShortestDouble(m.delta_power_mw)
      << " " << ShortestDouble(m.delta_time_ns) << " "
      << ShortestDouble(m.precise_power_mw) << " "
      << ShortestDouble(m.precise_time_ns);
}

instrument::Measurement ReadMeasurement(const std::vector<std::string>& tokens,
                                        std::size_t& pos, LineReader& reader) {
  if (tokens.size() < pos + 5)
    ChunkError(reader.Line(), "truncated measurement");
  instrument::Measurement m;
  m.delta_acc = ChunkDouble(tokens[pos], "delta_acc");
  m.delta_power_mw = ChunkDouble(tokens[pos + 1], "delta_power_mw");
  m.delta_time_ns = ChunkDouble(tokens[pos + 2], "delta_time_ns");
  m.precise_power_mw = ChunkDouble(tokens[pos + 3], "precise_power_mw");
  m.precise_time_ns = ChunkDouble(tokens[pos + 4], "precise_time_ns");
  pos += 5;
  return m;
}

void WriteCell(std::ostream& out, const CampaignCell& cell) {
  out << "request " << cell.request.ToString() << "\n";
  out << "kernel-name " << Encode(cell.kernel_name) << "\n";
  out << "reward " << ShortestDouble(cell.reward.acc_threshold) << " "
      << ShortestDouble(cell.reward.power_threshold) << " "
      << ShortestDouble(cell.reward.time_threshold) << " "
      << ShortestDouble(cell.reward.max_reward) << " "
      << ShortestDouble(cell.reward.step_reward) << " "
      << ShortestDouble(cell.reward.step_penalty) << "\n";
  WriteSummary(out, "summary-dpower", cell.solution_delta_power);
  WriteSummary(out, "summary-dtime", cell.solution_delta_time);
  WriteSummary(out, "summary-dacc", cell.solution_delta_acc);
  WriteSummary(out, "summary-steps", cell.steps);
  out << "aggregate " << ShortestDouble(cell.feasible_fraction) << " "
      << Encode(cell.modal_adder) << " " << Encode(cell.modal_multiplier)
      << "\n";
  out << "cache " << dse::ToString(cell.cache.mode) << " "
      << cell.cache.distinct_evaluations << " " << cell.cache.executed_runs
      << " " << cell.cache.saved_runs << " " << cell.cache.local_hits << " "
      << cell.cache.shared_hits << " " << cell.cache.surrogate_hits << " "
      << cell.cache.deferred_runs << "\n";
  out << "runs " << cell.runs.size() << "\n";
  for (const CampaignSeedRun& run : cell.runs) {
    out << "run " << run.seed << " " << run.steps << " " << Encode(run.stop)
        << " " << ShortestDouble(run.cumulative_reward) << " " << run.episodes
        << " " << run.kernel_runs << " " << run.cache_hits << " "
        << run.kernel_runs_executed << " " << run.shared_cache_hits << " "
        << run.surrogate_hits << " " << run.kernel_runs_deferred << " "
        << (run.feasible ? 1 : 0) << " " << ShortestDouble(run.objective)
        << "\n";
    out << "solution " << Encode(run.adder) << " " << Encode(run.multiplier)
        << " ";
    WriteMeasurement(out, run.solution_measurement);
    out << " ";
    WriteConfig(out, run.solution);
    out << "\n";
    out << "best " << (run.has_best_feasible ? 1 : 0);
    if (run.has_best_feasible) {
      out << " ";
      WriteMeasurement(out, run.best_feasible_measurement);
      out << " ";
      WriteConfig(out, run.best_feasible);
    }
    out << "\n";
    out << "stages " << run.stage_counts.size() << "\n";
    for (const workloads::StageOpCounts& stage : run.stage_counts)
      out << "stage " << Encode(stage.stage) << " "
          << stage.counts.precise_adds << " " << stage.counts.approx_adds
          << " " << stage.counts.precise_muls << " "
          << stage.counts.approx_muls << "\n";
  }
}

CampaignCell ReadCell(LineReader& reader) {
  CampaignCell cell;
  cell.request = ExplorationRequest::Parse(reader.ExpectRest("request"));
  {
    const std::vector<std::string> tokens = reader.Expect("kernel-name");
    RequireTokenCount(reader, tokens, 1, "kernel-name");
    cell.kernel_name = Decode(tokens[0]);
  }
  {
    const std::vector<std::string> tokens = reader.Expect("reward");
    RequireTokenCount(reader, tokens, 6, "reward");
    cell.reward.acc_threshold = ChunkDouble(tokens[0], "acc_threshold");
    cell.reward.power_threshold = ChunkDouble(tokens[1], "power_threshold");
    cell.reward.time_threshold = ChunkDouble(tokens[2], "time_threshold");
    cell.reward.max_reward = ChunkDouble(tokens[3], "max_reward");
    cell.reward.step_reward = ChunkDouble(tokens[4], "step_reward");
    cell.reward.step_penalty = ChunkDouble(tokens[5], "step_penalty");
  }
  cell.solution_delta_power = ReadSummary(reader, "summary-dpower");
  cell.solution_delta_time = ReadSummary(reader, "summary-dtime");
  cell.solution_delta_acc = ReadSummary(reader, "summary-dacc");
  cell.steps = ReadSummary(reader, "summary-steps");
  {
    const std::vector<std::string> tokens = reader.Expect("aggregate");
    RequireTokenCount(reader, tokens, 3, "aggregate");
    cell.feasible_fraction = ChunkDouble(tokens[0], "feasible_fraction");
    cell.modal_adder = Decode(tokens[1]);
    cell.modal_multiplier = Decode(tokens[2]);
  }
  {
    const std::vector<std::string> tokens = reader.Expect("cache");
    RequireTokenCount(reader, tokens, 8, "cache");
    cell.cache.mode = CacheModeFromName(tokens[0]);
    cell.cache.distinct_evaluations = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[1], "cache distinct"));
    cell.cache.executed_runs = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[2], "cache executed"));
    cell.cache.saved_runs =
        static_cast<std::size_t>(ParseUnsignedToken(tokens[3], "cache saved"));
    cell.cache.local_hits =
        static_cast<std::size_t>(ParseUnsignedToken(tokens[4], "cache local"));
    cell.cache.shared_hits = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[5], "cache shared"));
    cell.cache.surrogate_hits = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[6], "cache surrogate"));
    cell.cache.deferred_runs = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[7], "cache deferred"));
  }
  const std::vector<std::string> runs_tokens = reader.Expect("runs");
  RequireTokenCount(reader, runs_tokens, 1, "runs");
  const std::size_t num_runs = static_cast<std::size_t>(
      ParseUnsignedToken(runs_tokens[0], "runs count"));
  cell.runs.reserve(num_runs);
  for (std::size_t i = 0; i < num_runs; ++i) {
    CampaignSeedRun run;
    {
      const std::vector<std::string> tokens = reader.Expect("run");
      RequireTokenCount(reader, tokens, 13, "run");
      run.seed = ParseUnsignedToken(tokens[0], "run seed");
      run.steps =
          static_cast<std::size_t>(ParseUnsignedToken(tokens[1], "run steps"));
      run.stop = Decode(tokens[2]);
      run.cumulative_reward = ChunkDouble(tokens[3], "run reward");
      run.episodes = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[4], "run episodes"));
      run.kernel_runs = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[5], "run kernel_runs"));
      run.cache_hits = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[6], "run cache_hits"));
      run.kernel_runs_executed = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[7], "run kernel_runs_executed"));
      run.shared_cache_hits = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[8], "run shared_cache_hits"));
      run.surrogate_hits = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[9], "run surrogate_hits"));
      run.kernel_runs_deferred = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[10], "run kernel_runs_deferred"));
      const std::uint64_t feasible =
          ParseUnsignedToken(tokens[11], "run feasible");
      if (feasible > 1) ChunkError(reader.Line(), "run feasible not 0/1");
      run.feasible = feasible == 1;
      run.objective = ChunkDouble(tokens[12], "run objective");
    }
    {
      const std::vector<std::string> tokens = reader.Expect("solution");
      if (tokens.size() < 2) ChunkError(reader.Line(), "truncated solution");
      run.adder = Decode(tokens[0]);
      run.multiplier = Decode(tokens[1]);
      std::size_t pos = 2;
      run.solution_measurement = ReadMeasurement(tokens, pos, reader);
      run.solution = ReadConfig(reader, tokens, pos);
      if (pos != tokens.size())
        ChunkError(reader.Line(), "trailing solution fields");
    }
    {
      const std::vector<std::string> tokens = reader.Expect("best");
      if (tokens.empty()) ChunkError(reader.Line(), "truncated best");
      const std::uint64_t has = ParseUnsignedToken(tokens[0], "best flag");
      if (has > 1) ChunkError(reader.Line(), "best flag not 0/1");
      run.has_best_feasible = has == 1;
      std::size_t pos = 1;
      if (run.has_best_feasible) {
        run.best_feasible_measurement = ReadMeasurement(tokens, pos, reader);
        run.best_feasible = ReadConfig(reader, tokens, pos);
      }
      if (pos != tokens.size())
        ChunkError(reader.Line(), "trailing best fields");
    }
    {
      const std::vector<std::string> tokens = reader.Expect("stages");
      RequireTokenCount(reader, tokens, 1, "stages");
      const std::size_t num_stages = static_cast<std::size_t>(
          ParseUnsignedToken(tokens[0], "stages count"));
      run.stage_counts.reserve(num_stages);
      for (std::size_t s = 0; s < num_stages; ++s) {
        const std::vector<std::string> fields = reader.Expect("stage");
        RequireTokenCount(reader, fields, 5, "stage");
        workloads::StageOpCounts stage;
        stage.stage = Decode(fields[0]);
        stage.counts.precise_adds =
            ParseUnsignedToken(fields[1], "stage precise_adds");
        stage.counts.approx_adds =
            ParseUnsignedToken(fields[2], "stage approx_adds");
        stage.counts.precise_muls =
            ParseUnsignedToken(fields[3], "stage precise_muls");
        stage.counts.approx_muls =
            ParseUnsignedToken(fields[4], "stage approx_muls");
        run.stage_counts.push_back(std::move(stage));
      }
    }
    cell.runs.push_back(std::move(run));
  }
  return cell;
}

std::string Hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace

// --- CampaignSpec -----------------------------------------------------------

std::size_t CampaignSpec::NumCells() const noexcept {
  auto axis = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  return kernels.size() * axis(agents.size()) * axis(action_spaces.size()) *
         axis(acc_factors.size()) * axis(power_factors.size()) *
         axis(time_factors.size()) * axis(cache_modes.size());
}

std::size_t CampaignSpec::NumJobs() const noexcept {
  return NumCells() * base.num_seeds;
}

std::vector<ExplorationRequest> CampaignSpec::Expand() const {
  const std::vector<AgentKind> agent_axis =
      agents.empty() ? std::vector<AgentKind>{base.agent_kind} : agents;
  const std::vector<ActionSpaceKind> space_axis =
      action_spaces.empty() ? std::vector<ActionSpaceKind>{base.action_space}
                            : action_spaces;
  const std::vector<double> acc_axis =
      acc_factors.empty() ? std::vector<double>{base.thresholds.accuracy_factor}
                          : acc_factors;
  const std::vector<double> power_axis =
      power_factors.empty() ? std::vector<double>{base.thresholds.power_factor}
                            : power_factors;
  const std::vector<double> time_axis =
      time_factors.empty() ? std::vector<double>{base.thresholds.time_factor}
                           : time_factors;
  const std::vector<CacheMode> cache_axis =
      cache_modes.empty() ? std::vector<CacheMode>{base.cache_mode}
                          : cache_modes;

  std::vector<ExplorationRequest> grid;
  grid.reserve(NumCells());
  for (const workloads::KernelSpec& kernel : kernels) {
    for (const AgentKind agent : agent_axis) {
      for (const ActionSpaceKind space : space_axis) {
        for (const double acc : acc_axis) {
          for (const double power : power_axis) {
            for (const double time : time_axis) {
              for (const CacheMode cache : cache_axis) {
                ExplorationRequest request = base;
                request.kernel_override.reset();
                request.explorer_override.reset();
                request.kernel = kernel;
                // Extras in base.kernel.extra apply campaign-wide; the
                // entry's own extras win on key collisions.
                for (const auto& [key, value] : base.kernel.extra)
                  request.kernel.extra.try_emplace(key, value);
                request.agent_kind = agent;
                request.action_space = space;
                request.thresholds.accuracy_factor = acc;
                request.thresholds.power_factor = power;
                request.thresholds.time_factor = time;
                request.cache_mode = cache;
                std::string label =
                    kernel.ToString() + "/" + dse::ToString(agent);
                if (space_axis.size() > 1)
                  label += std::string("/") + dse::ToString(space);
                if (acc_axis.size() > 1) label += "/acc=" + ShortestDouble(acc);
                if (power_axis.size() > 1)
                  label += "/pow=" + ShortestDouble(power);
                if (time_axis.size() > 1)
                  label += "/time=" + ShortestDouble(time);
                if (cache_axis.size() > 1)
                  label += std::string("/") + dse::ToString(cache);
                request.label = std::move(label);
                grid.push_back(std::move(request));
              }
            }
          }
        }
      }
    }
  }
  return grid;
}

void CampaignSpec::Validate() const {
  if (kernels.empty()) SpecError("the kernel axis is empty");
  for (const workloads::KernelSpec& kernel : kernels)
    if (kernel.name.empty()) SpecError("kernel entry has an empty name");
  for (std::size_t a = 0; a < kernels.size(); ++a)
    for (std::size_t b = a + 1; b < kernels.size(); ++b)
      if (kernels[a] == kernels[b])
        SpecError("duplicate kernel entry '" + kernels[a].ToString() + "'");
  const std::vector<ExplorationRequest> grid = Expand();
  std::unordered_set<std::string> seen;
  seen.reserve(grid.size());
  for (const ExplorationRequest& request : grid) {
    request.Validate();
    if (!seen.insert(request.ToString()).second)
      SpecError("expansion produces duplicate cell '" + request.label + "'");
  }
}

std::string CampaignSpec::ToString() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // locale-independent numbers
  // KernelSpec::ToString escapes everything but its own '@'/'{'/'}'/','
  // structure, so entries embed raw; the commas SplitSpecList splits on are
  // exactly the top-level entry separators written here.
  out << "kernels=";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    if (i != 0) out << ",";
    out << kernels[i].ToString();
  }
  auto write_list = [&out](const char* key, const auto& values,
                           const auto& format) {
    if (values.empty()) return;
    out << " " << key << "=";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) out << ",";
      out << format(values[i]);
    }
  };
  write_list("agents", agents,
             [](AgentKind kind) { return std::string(dse::ToString(kind)); });
  write_list("action-spaces", action_spaces, [](ActionSpaceKind kind) {
    return std::string(dse::ToString(kind));
  });
  write_list("acc-factors", acc_factors, ShortestDouble);
  write_list("power-factors", power_factors, ShortestDouble);
  write_list("time-factors", time_factors, ShortestDouble);
  write_list("cache-modes", cache_modes,
             [](CacheMode mode) { return std::string(dse::ToString(mode)); });
  out << " " << base.ToString();
  return out.str();
}

CampaignSpec CampaignSpec::Parse(const std::string& text) {
  CampaignSpec spec;
  std::string base_text;
  bool saw_kernels = false;
  for (const std::string& token : Tokenize(text)) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      SpecError("token '" + token + "' is not of the form key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kernels") {
      if (value.empty()) SpecError("kernels= list is empty");
      for (const std::string& entry : workloads::SplitSpecList(value)) {
        workloads::KernelSpec kernel = workloads::KernelSpec::Parse(entry);
        if (kernel.name.empty())
          SpecError("kernel entry '" + entry + "' has an empty name");
        spec.kernels.push_back(std::move(kernel));
      }
      saw_kernels = true;
    } else if (key == "agents") {
      if (value == "all") {
        spec.agents = {AgentKind::kQLearning, AgentKind::kSarsa,
                       AgentKind::kExpectedSarsa, AgentKind::kDoubleQ,
                       AgentKind::kQLambda};
      } else {
        for (const std::string& entry : SplitOn(value, ','))
          spec.agents.push_back(AgentKindFromName(entry));
      }
    } else if (key == "action-spaces") {
      for (const std::string& entry : SplitOn(value, ','))
        spec.action_spaces.push_back(ActionSpaceFromName(entry));
    } else if (key == "acc-factors" || key == "power-factors" ||
               key == "time-factors") {
      std::vector<double>& axis = key == "acc-factors" ? spec.acc_factors
                                  : key == "power-factors"
                                      ? spec.power_factors
                                      : spec.time_factors;
      for (const std::string& entry : SplitOn(value, ','))
        axis.push_back(ParseDoubleToken(entry, "CampaignSpec factor"));
    } else if (key == "cache-modes") {
      for (const std::string& entry : SplitOn(value, ','))
        spec.cache_modes.push_back(CacheModeFromName(entry));
    } else {
      base_text += (base_text.empty() ? "" : " ") + token;
    }
  }
  if (!saw_kernels) SpecError("missing required kernels= axis");
  spec.base = ExplorationRequest::Parse(base_text);
  return spec;
}

bool operator==(const CampaignSpec& a, const CampaignSpec& b) {
  return a.ToString() == b.ToString();
}

bool operator!=(const CampaignSpec& a, const CampaignSpec& b) {
  return !(a == b);
}

// --- CampaignAggregator -----------------------------------------------------

CampaignCell CampaignAggregator::Reduce(const RequestResult& result) {
  CampaignCell cell;
  cell.request = result.request;
  // The escape hatches are not serializable; campaigns never set them.
  cell.request.kernel_override.reset();
  cell.request.explorer_override.reset();
  cell.kernel_name = result.kernel_name;
  cell.reward = result.reward;
  cell.solution_delta_power = result.solution_delta_power;
  cell.solution_delta_time = result.solution_delta_time;
  cell.solution_delta_acc = result.solution_delta_acc;
  cell.steps = result.steps;
  cell.feasible_fraction = result.feasible_fraction;
  cell.modal_adder = result.ModalAdder();
  cell.modal_multiplier = result.ModalMultiplier();
  cell.cache = result.cache;
  cell.runs.reserve(result.runs.size());
  for (std::size_t s = 0; s < result.runs.size(); ++s) {
    const ExplorationResult& run = result.runs[s];
    CampaignSeedRun reduced;
    reduced.seed = result.request.seed + s;
    reduced.steps = run.steps;
    reduced.stop = rl::ToString(run.stop_reason);
    reduced.cumulative_reward = run.cumulative_reward;
    reduced.episodes = run.episodes;
    reduced.kernel_runs = run.kernel_runs;
    reduced.cache_hits = run.cache_hits;
    reduced.kernel_runs_executed = run.kernel_runs_executed;
    reduced.shared_cache_hits = run.shared_cache_hits;
    reduced.surrogate_hits = run.surrogate_hits;
    reduced.kernel_runs_deferred = run.kernel_runs_deferred;
    reduced.solution = run.solution;
    reduced.solution_measurement = run.solution_measurement;
    reduced.adder = run.solution_adder;
    reduced.multiplier = run.solution_multiplier;
    reduced.feasible =
        run.solution_measurement.delta_acc <= result.reward.acc_threshold;
    reduced.has_best_feasible = run.has_best_feasible;
    if (run.has_best_feasible) {
      reduced.best_feasible = run.best_feasible;
      reduced.best_feasible_measurement = run.best_feasible_measurement;
    }
    reduced.stage_counts = run.stage_counts;
    reduced.objective = BaselineObjective(
        result.reward, run.has_best_feasible ? run.best_feasible_measurement
                                             : run.solution_measurement);
    cell.runs.push_back(std::move(reduced));
  }
  return cell;
}

void CampaignAggregator::Add(const RequestResult& result) {
  Add(Reduce(result));
}

void CampaignAggregator::Add(CampaignCell cell) {
  const auto [front_it, front_new] =
      front_index_.try_emplace(cell.kernel_name, fronts_.size());
  if (front_new) fronts_.push_back({cell.kernel_name, {}});
  IncrementalParetoFront& front = fronts_[front_it->second].front;

  const auto [best_it, best_new] =
      best_index_.try_emplace(cell.kernel_name, best_.size());
  if (best_new) {
    CampaignBest initial;
    initial.kernel = cell.kernel_name;
    initial.objective = -std::numeric_limits<double>::infinity();
    best_.push_back(std::move(initial));
  }
  CampaignBest& best = best_[best_it->second];

  const std::string cell_label = cell.request.DisplayName();
  for (const CampaignSeedRun& run : cell.runs) {
    const std::string tag = cell_label + "#" + std::to_string(run.seed);
    front.Insert({run.solution, run.solution_measurement, tag});
    if (run.has_best_feasible)
      front.Insert(
          {run.best_feasible, run.best_feasible_measurement, tag + "/best"});

    const bool candidate_feasible = run.has_best_feasible;
    if ((candidate_feasible && !best.feasible) ||
        (candidate_feasible == best.feasible &&
         run.objective > best.objective)) {
      best.cell = cell_label;
      best.agent = dse::ToString(cell.request.agent_kind);
      best.seed = run.seed;
      best.objective = run.objective;
      best.feasible = candidate_feasible;
      best.config = candidate_feasible ? run.best_feasible : run.solution;
      best.measurement = candidate_feasible ? run.best_feasible_measurement
                                            : run.solution_measurement;
    }
  }
  cells_.push_back(std::move(cell));
}

// --- CampaignResult ---------------------------------------------------------

std::size_t CampaignResult::TotalRuns() const noexcept {
  std::size_t total = 0;
  for (const CampaignCell& cell : cells) total += cell.runs.size();
  return total;
}

std::size_t CampaignResult::TotalSteps() const noexcept {
  std::size_t total = 0;
  for (const CampaignCell& cell : cells)
    for (const CampaignSeedRun& run : cell.runs) total += run.steps;
  return total;
}

// --- CampaignChunkCheckpoint ------------------------------------------------

std::string CampaignChunkCheckpoint::Serialize() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // locale-independent numbers
  out << "axdse-campaign-chunk v" << kFormatVersion << "\n";
  out << "spec-hash " << Hex16(spec_hash) << "\n";
  out << "chunk " << chunk_index << " " << first_cell << " " << cells.size()
      << "\n";
  for (const CampaignCell& cell : cells) WriteCell(out, cell);
  out << "end\n";
  return out.str();
}

CampaignChunkCheckpoint CampaignChunkCheckpoint::Deserialize(
    const std::string& text) {
  LineReader reader(text);
  {
    const std::vector<std::string> tokens =
        reader.Expect("axdse-campaign-chunk");
    RequireTokenCount(reader, tokens, 1, "version");
    if (tokens[0] != "v" + std::to_string(kFormatVersion))
      ChunkError(reader.Line(), "unsupported version '" + tokens[0] + "'");
  }
  CampaignChunkCheckpoint checkpoint;
  {
    const std::vector<std::string> tokens = reader.Expect("spec-hash");
    RequireTokenCount(reader, tokens, 1, "spec-hash");
    const std::string& hex = tokens[0];
    if (hex.size() != 16) ChunkError(reader.Line(), "malformed spec hash");
    std::uint64_t value = 0;
    for (const char c : hex) {
      int digit;
      if (c >= '0' && c <= '9')
        digit = c - '0';
      else if (c >= 'a' && c <= 'f')
        digit = c - 'a' + 10;
      else
        ChunkError(reader.Line(), "malformed spec hash");
      value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    checkpoint.spec_hash = value;
  }
  std::size_t num_cells = 0;
  {
    const std::vector<std::string> tokens = reader.Expect("chunk");
    RequireTokenCount(reader, tokens, 3, "chunk");
    checkpoint.chunk_index = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[0], "chunk index"));
    checkpoint.first_cell = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[1], "chunk first cell"));
    num_cells = static_cast<std::size_t>(
        ParseUnsignedToken(tokens[2], "chunk cell count"));
  }
  checkpoint.cells.reserve(num_cells);
  for (std::size_t i = 0; i < num_cells; ++i)
    checkpoint.cells.push_back(ReadCell(reader));
  reader.Expect("end");
  reader.ExpectEnd();
  return checkpoint;
}

void CampaignChunkCheckpoint::Save(const std::string& path) const {
  AtomicWriteCheckpointFile(path, Serialize(), "CampaignChunkCheckpoint::Save");
}

CampaignChunkCheckpoint CampaignChunkCheckpoint::Load(const std::string& path) {
  return Deserialize(
      ReadCheckpointFile(path, "CampaignChunkCheckpoint::Load"));
}

std::string CampaignChunkFileName(const std::string& spec_text,
                                  std::size_t chunk_index) {
  return "campaign-" + Hex16(StableHash64(spec_text)) + "-chunk-" +
         std::to_string(chunk_index) + ".ckpt";
}

// --- Campaign ---------------------------------------------------------------

CampaignResult Campaign::Run(const CampaignSpec& spec,
                             const CampaignOptions& options) const {
  return Run(spec, options, CampaignObserver{});
}

CampaignResult Campaign::Run(const CampaignSpec& spec,
                             const CampaignOptions& options,
                             const CampaignObserver& observer) const {
  namespace fs = std::filesystem;
  spec.Validate();
  const std::vector<ExplorationRequest> grid = spec.Expand();
  const std::size_t chunk_cells =
      options.chunk_cells == 0 ? grid.size() : options.chunk_cells;
  const bool checkpointing = !options.checkpoint_directory.empty();
  const std::string spec_text = spec.ToString();
  const std::uint64_t spec_hash = StableHash64(spec_text);

  CampaignResult result;
  result.spec = spec;
  result.num_cells = grid.size();

  CampaignAggregator aggregator;
  std::vector<std::string> chunk_files;
  std::size_t executed_chunks = 0;
  std::size_t begin = 0;
  for (std::size_t chunk_index = 0; begin < grid.size();
       begin += chunk_cells, ++chunk_index) {
    const std::size_t end = std::min(begin + chunk_cells, grid.size());
    const std::vector<ExplorationRequest> slice(grid.begin() + begin,
                                                grid.begin() + end);
    std::string chunk_path;
    if (checkpointing) {
      chunk_path = (fs::path(options.checkpoint_directory) /
                    CampaignChunkFileName(spec_text, chunk_index))
                       .string();
      std::error_code ec;
      if (fs::exists(chunk_path, ec)) {
        CampaignChunkCheckpoint snapshot =
            CampaignChunkCheckpoint::Load(chunk_path);
        if (snapshot.spec_hash != spec_hash ||
            snapshot.chunk_index != chunk_index ||
            snapshot.first_cell != begin ||
            snapshot.cells.size() != slice.size())
          throw CheckpointError(
              "Campaign: snapshot " + chunk_path +
              " belongs to a different campaign or chunking — remove the "
              "directory or rerun with the original spec and chunk size");
        for (std::size_t i = 0; i < snapshot.cells.size(); ++i)
          if (snapshot.cells[i].request.ToString() != slice[i].ToString())
            throw CheckpointError(
                "Campaign: snapshot " + chunk_path +
                " does not match the expanded grid — remove the directory "
                "or rerun with the original spec and chunk size");
        for (CampaignCell& cell : snapshot.cells)
          aggregator.Add(std::move(cell));
        result.resumed_cells += snapshot.cells.size();
        chunk_files.push_back(chunk_path);
        if (observer.on_chunk)
          observer.on_chunk(CampaignChunkProgress{
              chunk_index, aggregator.Cells().size(), grid.size(), true,
              aggregator.Fronts(), aggregator.Best()});
        continue;
      }
    }

    // Only chunks actually executed count against max_chunks —
    // snapshot-loaded ones are free, so rerunning the SAME command (same
    // max_chunks) always makes forward progress, like step_budget.
    if (options.max_chunks != 0 && executed_chunks >= options.max_chunks)
      break;

    BatchResult batch;
    if (checkpointing) {
      CheckpointOptions engine_checkpoint;
      engine_checkpoint.directory = options.checkpoint_directory;
      engine_checkpoint.interval = options.checkpoint_interval;
      engine_checkpoint.step_budget = options.step_budget;
      batch = engine_->Run(slice, engine_checkpoint, observer.engine);
    } else if (options.step_budget != 0) {
      throw std::invalid_argument(
          "Campaign: step_budget requires a checkpoint_directory (a "
          "suspended campaign must have somewhere to resume from)");
    } else {
      batch = engine_->Run(slice, CheckpointOptions{}, observer.engine);
    }

    if (!batch.Complete()) {
      // Suspended mid-chunk: the engine's job snapshots carry the in-flight
      // state; nothing from this chunk is aggregated (its cells would be
      // partial). Rerun with the same arguments to continue.
      result.unfinished_jobs = batch.unfinished_jobs;
      break;
    }

    CampaignChunkCheckpoint snapshot;
    snapshot.spec_hash = spec_hash;
    snapshot.chunk_index = chunk_index;
    snapshot.first_cell = begin;
    for (const RequestResult& request_result : batch.results) {
      CampaignCell cell = CampaignAggregator::Reduce(request_result);
      if (checkpointing) snapshot.cells.push_back(cell);
      aggregator.Add(std::move(cell));
    }
    if (checkpointing) {
      snapshot.Save(chunk_path);
      chunk_files.push_back(chunk_path);
    }
    ++executed_chunks;
    if (observer.on_chunk)
      observer.on_chunk(CampaignChunkProgress{
          chunk_index, aggregator.Cells().size(), grid.size(), false,
          aggregator.Fronts(), aggregator.Best()});
  }
  // `begin` stops at the first unprocessed (or suspended) chunk; past-the-end
  // after a full pass.
  result.pending_cells = grid.size() - std::min(begin, grid.size());

  result.cells = aggregator.Cells();
  result.fronts = aggregator.Fronts();
  result.best = aggregator.Best();

  if (result.Complete() && checkpointing) {
    std::error_code ec;
    for (const std::string& path : chunk_files)
      fs::remove(path, ec);  // best-effort cleanup; a leftover only costs
                             // a resume check next run
  }
  return result;
}

}  // namespace axdse::dse
