#pragma once
// dse::Campaign — declarative exploration campaigns: the paper's headline
// result is a sweep (every kernel x agent x threshold explored and
// compared), and autoAx-style library-wide searches are the same shape at
// scale. A CampaignSpec names the axes (kernels, agents, action spaces,
// threshold factors, cache modes) plus a base ExplorationRequest supplying
// everything else; Expand() takes the cartesian product into one
// ExplorationRequest per grid cell. Campaign::Run() executes the grid
// through the existing Engine in checkpointable chunks — each finished
// chunk is reduced to a CampaignCell snapshot on disk, and in-flight jobs
// reuse the Engine's CheckpointOptions machinery — so a killed campaign
// resumes mid-grid and finishes with byte-identical reports to an
// uninterrupted run. Results stream into a CampaignAggregator that
// maintains per-kernel Pareto fronts (incremental insertion + dominance
// pruning) and best-per-kernel tables; traces and per-step data never
// accumulate across the grid.
//
// The spec serializes to the same whitespace/';'-separated key=value token
// grammar as ExplorationRequest (axis keys first, base request keys after),
// and Parse() is its strict inverse — campaigns are checkpoint-keyable and
// CLI-expressible as one line.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dse/engine.hpp"
#include "dse/pareto.hpp"

namespace axdse::dse {

/// Declarative sweep specification. Non-empty axis vectors multiply into
/// the grid; empty optional axes inherit the base request's single value.
///
/// Token grammar (ToString()/Parse()):
///   kernels=matmul@10{granularity=row-col},fir@100,...
///                                        (required; comma-separated
///                                         workloads::KernelSpec entries —
///                                         commas inside {...} belong to a
///                                         spec's extras)
///   agents=q-learning,sarsa,...          (optional; default = base agent)
///   action-spaces=full,compact           (optional)
///   acc-factors=0.4,0.2                  (optional threshold-factor axes)
///   power-factors=... time-factors=...
///   cache-modes=private,shared           (optional)
///   <any ExplorationRequest token>       (base: steps=, seeds=, alpha=, ...)
struct CampaignSpec {
  std::vector<workloads::KernelSpec> kernels;
  std::vector<AgentKind> agents;
  std::vector<ActionSpaceKind> action_spaces;
  std::vector<double> acc_factors;
  std::vector<double> power_factors;
  std::vector<double> time_factors;
  std::vector<CacheMode> cache_modes;
  /// Base request: every field not owned by an axis (steps, seeds, seed,
  /// hyper-parameters, rollout, cache capacity, checkpoint interval, ...).
  /// Its kernel/label/agent/action-space/threshold-factor/cache-mode fields
  /// act as axis defaults and are overwritten per cell; extras in
  /// base.kernel.extra apply to every cell (the entry's own extras win on
  /// key collisions).
  ExplorationRequest base;

  /// Checks the axes (kernels present with non-empty names, axis values
  /// valid) and that the expanded grid is well-formed: every cell request
  /// validates and no two cells are identical.
  /// Throws std::invalid_argument.
  void Validate() const;

  /// Grid size (product of the non-empty axis lengths).
  std::size_t NumCells() const noexcept;

  /// NumCells() * base.num_seeds — the explorations the campaign runs.
  std::size_t NumJobs() const noexcept;

  /// Cartesian-product expansion into one request per cell, kernel-major
  /// (kernels, then agents, action spaces, acc/power/time factors, cache
  /// modes innermost). Each request gets a generated label naming its axis
  /// coordinates, e.g. "matmul@10/sarsa/acc=0.2/shared" (single-valued axes
  /// are omitted from labels).
  std::vector<ExplorationRequest> Expand() const;

  /// One-line token serialization (see the grammar above). Lossless:
  /// Parse(ToString()) reproduces the spec.
  std::string ToString() const;

  /// Strict inverse of ToString(). Axis tokens are consumed here; all
  /// remaining tokens must form a valid ExplorationRequest. Throws
  /// std::invalid_argument on unknown keys or unparsable values.
  static CampaignSpec Parse(const std::string& text);
};

/// Equality over the serialized representation.
bool operator==(const CampaignSpec& a, const CampaignSpec& b);
bool operator!=(const CampaignSpec& a, const CampaignSpec& b);

/// Campaign execution policy.
struct CampaignOptions {
  /// Grid cells (requests) per Engine::Run call. Results are streamed into
  /// the aggregator chunk by chunk; with checkpointing on, each completed
  /// chunk becomes one resumable snapshot file. 0 = the whole grid in one
  /// chunk. Shared-cache requests share caches within a chunk only, so the
  /// chunk size is part of a campaign's identity: resume with the same
  /// value.
  std::size_t chunk_cells = 8;
  /// Checkpoint directory (created on demand). Empty = checkpointing off.
  /// Completed chunks persist as campaign chunk snapshots, in-flight jobs
  /// as Engine job snapshots; rerunning the same campaign against the same
  /// directory resumes mid-grid with byte-identical final reports. All
  /// snapshot files are removed once the campaign completes.
  std::string checkpoint_directory;
  /// Engine autosave period in environment steps (see CheckpointOptions).
  std::size_t checkpoint_interval = 0;
  /// Cooperative preemption: each job takes at most this many NEW steps per
  /// invocation (see CheckpointOptions::step_budget). The campaign stops at
  /// the first chunk left unfinished. 0 = run to completion.
  std::size_t step_budget = 0;
  /// Execute at most this many NEW chunks this invocation, then suspend
  /// (the grid-level analog of step_budget). Chunks restored from
  /// snapshots don't count, so rerunning the same command always makes
  /// forward progress. 0 = no limit.
  std::size_t max_chunks = 0;
};

/// One seed-run of a cell, reduced to what campaign reports consume.
/// NOTE: campaign reports must read only the measurement deltas, the
/// precise_power_mw/precise_time_ns baselines, and `stage_counts` — chunk
/// snapshots round-trip exactly those fields (whole-kernel operation counts
/// are not persisted).
struct CampaignSeedRun {
  std::uint64_t seed = 0;
  std::size_t steps = 0;
  std::string stop;  ///< rl::ToString(StopReason) of the run
  double cumulative_reward = 0.0;
  std::size_t episodes = 1;
  std::size_t kernel_runs = 0;
  std::size_t cache_hits = 0;
  std::size_t kernel_runs_executed = 0;
  std::size_t shared_cache_hits = 0;
  std::size_t surrogate_hits = 0;
  std::size_t kernel_runs_deferred = 0;

  Configuration solution;
  instrument::Measurement solution_measurement;
  std::string adder;
  std::string multiplier;
  bool feasible = false;

  bool has_best_feasible = false;
  Configuration best_feasible;
  instrument::Measurement best_feasible_measurement;

  /// Per-stage operation counts of the solution (empty for single-stage
  /// kernels); see workloads::Kernel::StageCounts.
  std::vector<workloads::StageOpCounts> stage_counts;

  /// BaselineObjective of the run's best feasible point (or of the solution
  /// when no feasible point was seen — negative by construction).
  double objective = 0.0;
};

/// One executed grid cell: the request as run plus the per-seed reductions
/// and the multi-seed aggregates (traces are dropped as results stream in).
struct CampaignCell {
  ExplorationRequest request;
  std::string kernel_name;
  RewardConfig reward;
  std::vector<CampaignSeedRun> runs;
  util::Summary solution_delta_power;
  util::Summary solution_delta_time;
  util::Summary solution_delta_acc;
  util::Summary steps;
  double feasible_fraction = 0.0;
  std::string modal_adder;
  std::string modal_multiplier;
  CacheUsage cache;
};

/// Streaming Pareto front of one kernel across every cell that ran it.
struct CampaignFront {
  std::string kernel;  ///< resolved kernel name, e.g. "matmul-10x10"
  IncrementalParetoFront front;
};

/// Best point of one kernel across the campaign: the highest
/// BaselineObjective over every run's best feasible point (grid order
/// breaks ties). When no run found a feasible point, `feasible` is false
/// and the entry carries the least-infeasible solution.
struct CampaignBest {
  std::string kernel;
  std::string cell;  ///< label of the winning cell
  std::string agent;
  std::uint64_t seed = 0;
  double objective = 0.0;
  bool feasible = false;
  Configuration config;
  instrument::Measurement measurement;
};

/// Folds RequestResults (or pre-reduced cells restored from chunk
/// snapshots) into the campaign aggregates: cells in grid order, one
/// incremental Pareto front and one best entry per kernel (front/best
/// order = first appearance of the kernel in the grid).
class CampaignAggregator {
 public:
  /// Reduces one engine result to its campaign cell (drops traces, keeps
  /// aggregates, computes per-run feasibility and objectives).
  static CampaignCell Reduce(const RequestResult& result);

  /// Reduce + Add in one step.
  void Add(const RequestResult& result);

  /// Folds a pre-reduced cell in (the chunk-snapshot resume path).
  void Add(CampaignCell cell);

  const std::vector<CampaignCell>& Cells() const noexcept { return cells_; }
  const std::vector<CampaignFront>& Fronts() const noexcept {
    return fronts_;
  }
  const std::vector<CampaignBest>& Best() const noexcept { return best_; }

 private:
  std::vector<CampaignCell> cells_;
  std::vector<CampaignFront> fronts_;
  std::map<std::string, std::size_t> front_index_;
  std::vector<CampaignBest> best_;
  std::map<std::string, std::size_t> best_index_;
};

/// Outcome of one Campaign::Run call.
struct CampaignResult {
  CampaignSpec spec;
  /// Full grid size (spec.NumCells()), whether or not everything ran.
  std::size_t num_cells = 0;
  /// Cells completed this or a previous invocation, grid order.
  std::vector<CampaignCell> cells;
  std::vector<CampaignFront> fronts;
  std::vector<CampaignBest> best;
  /// Jobs suspended by CampaignOptions::step_budget this invocation.
  std::size_t unfinished_jobs = 0;
  /// Grid cells not yet completed (suspension or max_chunks).
  std::size_t pending_cells = 0;
  /// Cells restored from chunk snapshots instead of executed.
  std::size_t resumed_cells = 0;

  bool Complete() const noexcept {
    return unfinished_jobs == 0 && pending_cells == 0;
  }

  /// Total explorations folded in (sum of runs over cells).
  std::size_t TotalRuns() const noexcept;
  /// Total environment steps across those runs.
  std::size_t TotalSteps() const noexcept;
};

/// Persisted reduction of one completed chunk (campaign-level resume unit).
/// Uses the checkpoint subsystem's conventions: versioned line-oriented
/// text, strict parsing (CheckpointError), atomic Save.
struct CampaignChunkCheckpoint {
  /// v2 added the surrogate counters to the "cache" and "run" lines; v3
  /// carries the KernelSpec request grammar and per-run "stage" lines.
  static constexpr unsigned kFormatVersion = 3;

  /// StableHash64 of CampaignSpec::ToString() — a snapshot loads only into
  /// the campaign that wrote it.
  std::uint64_t spec_hash = 0;
  std::size_t chunk_index = 0;
  /// Grid index of the first cell in this chunk.
  std::size_t first_cell = 0;
  std::vector<CampaignCell> cells;

  std::string Serialize() const;
  static CampaignChunkCheckpoint Deserialize(const std::string& text);
  void Save(const std::string& path) const;
  static CampaignChunkCheckpoint Load(const std::string& path);
};

/// Snapshot file name of one campaign chunk inside a checkpoint directory:
/// "campaign-<16 hex digits of spec hash>-chunk-<index>.ckpt".
std::string CampaignChunkFileName(const std::string& spec_text,
                                  std::size_t chunk_index);

/// Streaming view of campaign state after one chunk, handed to
/// CampaignObserver::on_chunk. The referenced vectors are the aggregator's
/// live state: valid only for the duration of the callback.
struct CampaignChunkProgress {
  std::size_t chunk_index = 0;
  /// Cells completed so far (including restored ones) / full grid size.
  std::size_t cells_done = 0;
  std::size_t num_cells = 0;
  /// True when this chunk was restored from a snapshot instead of executed.
  bool resumed = false;
  const std::vector<CampaignFront>& fronts;
  const std::vector<CampaignBest>& best;
};

/// Observation and control hooks for Campaign::Run: the engine-level hooks
/// are forwarded to every chunk's Engine::Run call (per-job progress,
/// cooperative drain, external caches), and on_chunk fires after each chunk
/// completes or is restored — the streaming-Pareto feed.
struct CampaignObserver {
  RunHooks engine;
  std::function<void(const CampaignChunkProgress&)> on_chunk;
};

/// Executes campaigns on an Engine. Stateless between Run() calls.
class Campaign {
 public:
  explicit Campaign(const Engine& engine) : engine_(&engine) {}

  /// Validates, expands, and runs `spec` (see CampaignOptions for
  /// chunking, checkpointing, and preemption). Returns the aggregates of
  /// every completed cell; Complete() is false after a suspension — rerun
  /// with the same spec, options, and directory to continue. Throws
  /// std::invalid_argument on invalid specs and CheckpointError on
  /// malformed or foreign snapshot files.
  CampaignResult Run(const CampaignSpec& spec,
                     const CampaignOptions& options = {}) const;

  /// Run() with streaming hooks (see CampaignObserver). Hooks never change
  /// results; engine.should_suspend additionally lets a caller drain the
  /// campaign mid-chunk (requires a checkpoint directory).
  CampaignResult Run(const CampaignSpec& spec, const CampaignOptions& options,
                     const CampaignObserver& observer) const;

 private:
  const Engine* engine_;
};

}  // namespace axdse::dse
