#include "dse/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <locale>
#include <optional>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "rl/state_io.hpp"

#include "util/fault_injection.hpp"
#include "util/number_format.hpp"

namespace axdse::dse {

namespace {

using util::ParseDoubleToken;
using util::ParseUnsignedToken;
using util::ShortestDouble;

// --------------------------------------------------------------------------
// Token escaping: free-text fields (request serializations, operator type
// codes) are stored as single tokens. Only the characters that would break
// tokenization are encoded; the empty string maps to the sentinel "-".
// --------------------------------------------------------------------------

std::string EncodeToken(const std::string& text) {
  if (text.empty()) return "-";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case ' ':
        out += "%20";
        break;
      case '\t':
        out += "%09";
        break;
      case '\n':
        out += "%0a";
        break;
      case '\r':
        out += "%0d";
        break;
      default:
        out.push_back(c);
    }
  }
  if (out == "-") return "%2d";
  return out;
}

std::string DecodeToken(const std::string& token) {
  if (token == "-") return "";
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] == '%' && i + 2 < token.size()) {
      const std::string hex = token.substr(i + 1, 2);
      char* end = nullptr;
      const long code = std::strtol(hex.c_str(), &end, 16);
      if (end == hex.c_str() + 2) {
        out.push_back(static_cast<char>(code));
        i += 2;
        continue;
      }
    }
    out.push_back(token[i]);
  }
  return out;
}

// --------------------------------------------------------------------------
// Strict line reader with positional diagnostics. Every structural
// violation — truncation, a reordered or renamed field, a wrong token
// count — surfaces as CheckpointError naming the offending line.
// --------------------------------------------------------------------------

class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  [[noreturn]] void Fail(const std::string& message) const {
    throw CheckpointError("checkpoint line " + std::to_string(line_) + ": " +
                          message);
  }

  /// Next line split into tokens; the first token must equal `tag`.
  std::vector<std::string> Expect(const char* tag) {
    std::vector<std::string> tokens = NextLineTokens(tag);
    if (tokens.empty() || tokens.front() != tag)
      Fail(std::string("expected '") + tag + "' field, found '" +
           (tokens.empty() ? std::string("<empty>") : tokens.front()) + "'");
    tokens.erase(tokens.begin());
    return tokens;
  }

  /// Like Expect() but also checks the remaining token count.
  std::vector<std::string> Expect(const char* tag, std::size_t count) {
    std::vector<std::string> tokens = Expect(tag);
    if (tokens.size() != count)
      Fail(std::string("field '") + tag + "' expects " +
           std::to_string(count) + " values, found " +
           std::to_string(tokens.size()));
    return tokens;
  }

  /// Next raw line (for the embedded agent block).
  std::string RawLine() {
    std::string line;
    if (!std::getline(in_, line)) Fail("truncated: unexpected end of input");
    ++line_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }

  /// Consumes the trailing "end" marker and requires EOF after it.
  void ExpectEnd() {
    Expect("end", 0);
    std::string extra;
    if (std::getline(in_, extra)) {
      ++line_;
      Fail("trailing content after 'end'");
    }
  }

  /// Tag of the next line WITHOUT consuming it (empty at end of input).
  /// Used to branch on optional trailing sections; the peeked line is
  /// buffered and served by the next Expect(). Do not mix with RawLine().
  std::string PeekTag() {
    if (!pending_) {
      std::string line;
      if (!std::getline(in_, line)) return "";
      ++line_;
      pending_ = rl::state_io::SplitTokens(line);
    }
    return pending_->empty() ? "" : pending_->front();
  }

  std::size_t LineNumber() const noexcept { return line_; }

 private:
  std::vector<std::string> NextLineTokens(const char* tag) {
    if (pending_) {
      std::vector<std::string> tokens = std::move(*pending_);
      pending_.reset();
      return tokens;
    }
    std::string line;
    if (!std::getline(in_, line)) {
      throw CheckpointError("checkpoint truncated at line " +
                            std::to_string(line_ + 1) + ": expected '" +
                            tag + "' field, found end of input");
    }
    ++line_;
    // Same splitter as the embedded agent blocks (rl/state_io): the framing
    // and the agent-state parser must never disagree on tokenization.
    return rl::state_io::SplitTokens(line);
  }

  std::istringstream in_;
  std::size_t line_ = 0;
  std::optional<std::vector<std::string>> pending_;
};

/// Sequential consumer over one line's value tokens. Owns the tokens so
/// call sites may pass the Expect() result directly.
class TokenCursor {
 public:
  TokenCursor(std::vector<std::string> tokens, LineReader& reader)
      : tokens_(std::move(tokens)), reader_(&reader) {}

  const std::string& Next(const char* what) {
    if (pos_ >= tokens_.size())
      reader_->Fail(std::string("missing value for ") + what);
    return tokens_[pos_++];
  }

  std::uint64_t U64(const char* what) {
    return ParseUnsignedToken(Next(what), what);
  }

  std::size_t Size(const char* what) {
    return static_cast<std::size_t>(U64(what));
  }

  double Finite(const char* what) { return ParseDoubleToken(Next(what), what); }

  /// NaN still rejected; infinities pass (the ObjectiveRange sentinels are
  /// legitimately infinite, never NaN — Update() drops NaN observations).
  double NonNan(const char* what) {
    return ParseDoubleToken(Next(what), what, /*allow_nonfinite=*/true);
  }

  /// Any double, NaN included — ONLY for raw measurement fields, which a
  /// kernel with undefined outputs can legitimately produce (and the
  /// writer then emits): the reader must accept exactly what the writer
  /// wrote or a validly saved checkpoint becomes unloadable.
  double Any(const char* what) {
    const std::string& token = Next(what);
    if (token == "nan" || token == "-nan")
      return std::numeric_limits<double>::quiet_NaN();
    return ParseDoubleToken(token, what, /*allow_nonfinite=*/true);
  }

  bool Flag(const char* what) {
    const std::uint64_t value = U64(what);
    if (value > 1) reader_->Fail(std::string(what) + " must be 0 or 1");
    return value == 1;
  }

  void Done(const char* where) {
    if (pos_ != tokens_.size())
      reader_->Fail(std::string("trailing values after ") + where);
  }

  std::size_t Remaining() const noexcept { return tokens_.size() - pos_; }

 private:
  std::vector<std::string> tokens_;
  LineReader* reader_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------------------
// Configuration and Measurement token layouts.
// --------------------------------------------------------------------------

void WriteConfig(std::ostream& out, const Configuration& config) {
  out << config.AdderIndex() << " " << config.MultiplierIndex() << " "
      << config.NumVariables();
  for (const std::uint64_t word : config.MaskWords()) out << " " << word;
}

Configuration ReadConfig(TokenCursor& cursor, LineReader& reader) {
  const std::uint64_t adder = cursor.U64("config adder index");
  const std::uint64_t multiplier = cursor.U64("config multiplier index");
  // Operator indices are stored as 32-bit values; a wider token is
  // corruption and must fail loudly, not truncate to a different (and
  // possibly in-range) configuration.
  if (adder > std::numeric_limits<std::uint32_t>::max() ||
      multiplier > std::numeric_limits<std::uint32_t>::max())
    reader.Fail("config operator index exceeds 32 bits");
  const std::size_t num_variables = cursor.Size("config variable count");
  Configuration config(num_variables);
  config.SetAdderIndex(static_cast<std::uint32_t>(adder));
  config.SetMultiplierIndex(static_cast<std::uint32_t>(multiplier));
  const std::size_t num_words = config.MaskWords().size();
  for (std::size_t w = 0; w < num_words; ++w) {
    const std::uint64_t word = cursor.U64("config mask word");
    for (std::size_t b = 0; b < 64; ++b) {
      if ((word >> b) & 1ULL) {
        const std::size_t variable = w * 64 + b;
        if (variable >= num_variables)
          reader.Fail("config mask sets a bit beyond the variable count");
        config.SetVariable(variable, true);
      }
    }
  }
  return config;
}

void WriteMeasurement(std::ostream& out, const instrument::Measurement& m) {
  out << ShortestDouble(m.delta_acc) << " " << ShortestDouble(m.delta_power_mw)
      << " " << ShortestDouble(m.delta_time_ns) << " "
      << ShortestDouble(m.precise_power_mw) << " "
      << ShortestDouble(m.precise_time_ns) << " "
      << ShortestDouble(m.approx_power_mw) << " "
      << ShortestDouble(m.approx_time_ns) << " " << m.counts.precise_adds
      << " " << m.counts.approx_adds << " " << m.counts.precise_muls << " "
      << m.counts.approx_muls;
}

instrument::Measurement ReadMeasurement(TokenCursor& cursor) {
  instrument::Measurement m;
  m.delta_acc = cursor.Any("measurement delta_acc");
  m.delta_power_mw = cursor.Any("measurement delta_power_mw");
  m.delta_time_ns = cursor.Any("measurement delta_time_ns");
  m.precise_power_mw = cursor.Any("measurement precise_power_mw");
  m.precise_time_ns = cursor.Any("measurement precise_time_ns");
  m.approx_power_mw = cursor.Any("measurement approx_power_mw");
  m.approx_time_ns = cursor.Any("measurement approx_time_ns");
  m.counts.precise_adds = cursor.U64("measurement precise_adds");
  m.counts.approx_adds = cursor.U64("measurement approx_adds");
  m.counts.precise_muls = cursor.U64("measurement precise_muls");
  m.counts.approx_muls = cursor.U64("measurement approx_muls");
  return m;
}

void WriteRange(std::ostream& out, const char* tag,
                const ObjectiveRange& range) {
  out << tag << " " << ShortestDouble(range.min) << " "
      << ShortestDouble(range.max) << "\n";
}

ObjectiveRange ReadRange(LineReader& reader, const char* tag) {
  const std::vector<std::string> tokens = reader.Expect(tag, 2);
  TokenCursor cursor(tokens, reader);
  ObjectiveRange range;
  range.min = cursor.NonNan("objective range min");
  range.max = cursor.NonNan("objective range max");
  return range;
}

/// Deterministic order for memo/cache entries: by (adder, multiplier, mask).
bool ConfigLess(const Configuration& a, const Configuration& b) {
  if (a.AdderIndex() != b.AdderIndex()) return a.AdderIndex() < b.AdderIndex();
  if (a.MultiplierIndex() != b.MultiplierIndex())
    return a.MultiplierIndex() < b.MultiplierIndex();
  if (a.NumVariables() != b.NumVariables())
    return a.NumVariables() < b.NumVariables();
  return a.MaskWords() < b.MaskWords();
}

void SortEntries(
    std::vector<std::pair<Configuration, instrument::Measurement>>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return ConfigLess(a.first, b.first);
            });
}

void WriteEntries(
    std::ostream& out,
    std::vector<std::pair<Configuration, instrument::Measurement>> entries) {
  SortEntries(entries);
  for (const auto& [config, measurement] : entries) {
    out << "e ";
    WriteConfig(out, config);
    out << " ";
    WriteMeasurement(out, measurement);
    out << "\n";
  }
}

std::vector<std::pair<Configuration, instrument::Measurement>> ReadEntries(
    LineReader& reader, std::size_t count) {
  std::vector<std::pair<Configuration, instrument::Measurement>> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<std::string> tokens = reader.Expect("e");
    TokenCursor cursor(tokens, reader);
    Configuration config = ReadConfig(cursor, reader);
    instrument::Measurement measurement = ReadMeasurement(cursor);
    cursor.Done("cache entry");
    entries.emplace_back(std::move(config), measurement);
  }
  return entries;
}

}  // namespace

// --------------------------------------------------------------------------
// File IO: durable atomic write (temp + fsync + rename + directory fsync),
// whole-file read.
// --------------------------------------------------------------------------

namespace {

/// Writes `length` bytes of `content` to a fresh fd at `temp` and flushes
/// them to stable storage. Returns false on any IO failure (the caller
/// unlinks the temp file and raises CheckpointError).
bool WriteAndSyncFile(const std::filesystem::path& temp,
                      const std::string& content, std::size_t length) {
  const int fd = ::open(temp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = true;
  std::size_t offset = 0;
  while (offset < length) {
    const ::ssize_t n = ::write(fd, content.data() + offset, length - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    offset += static_cast<std::size_t>(n);
  }
  // A snapshot is only "committed" once its bytes are on stable storage:
  // without this fsync a crash after the rename could publish an empty or
  // truncated file under the final name.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  return ok;
}

/// Flushes a directory entry (the rename) to stable storage; without it a
/// power cut can forget that the snapshot file exists at all.
bool SyncDirectory(const std::filesystem::path& directory) {
  const int fd = ::open(directory.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

void AtomicWriteCheckpointFile(const std::string& path,
                               const std::string& content, const char* what) {
  namespace fs = std::filesystem;
  // Unique temp name per write: concurrent saves of the same target must
  // not clobber each other's temp file — each rename then atomically
  // installs a complete snapshot and the last writer wins. The pid keeps
  // the name unique across PROCESSES too (shard workers racing on one
  // state directory), the counter within a process (e.g. duplicate
  // (request, seed) jobs in one batch).
  static std::atomic<std::uint64_t> counter{0};
  try {
    const fs::path target(path);
    if (target.has_parent_path()) fs::create_directories(target.parent_path());
    const fs::path temp(path + ".tmp" + std::to_string(::getpid()) + "." +
                        std::to_string(counter.fetch_add(1)));
    try {
      // Fault-injection hook: a `:short` action on "checkpoint.write"
      // truncates this write, modeling the torn file a crash mid-write (or
      // a missing fsync) would have left visible under the final name.
      const std::size_t length =
          util::fault::ShortWriteLength("checkpoint.write", content.size());
      if (!WriteAndSyncFile(temp, content, length)) {
        throw CheckpointError(std::string(what) + ": write failed for " +
                              temp.string());
      }
      util::fault::Point("checkpoint.before-rename");
      fs::rename(temp, target);
      util::fault::Point("checkpoint.after-rename");
      if (!SyncDirectory(target.has_parent_path() ? target.parent_path()
                                                  : fs::path("."))) {
        throw CheckpointError(std::string(what) +
                              ": cannot sync parent directory of " + path);
      }
    } catch (...) {
      // Never leave a partial temp file behind (e.g. disk full mid-write);
      // the completion cleanup only knows the real snapshot names.
      std::error_code ec;
      fs::remove(temp, ec);
      throw;
    }
  } catch (const fs::filesystem_error& error) {
    throw CheckpointError(std::string(what) + ": " + error.what());
  }
}

std::string ReadCheckpointFile(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw CheckpointError(std::string(what) + ": cannot read " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

// --------------------------------------------------------------------------
// Checkpoint
// --------------------------------------------------------------------------

std::string Checkpoint::Serialize() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // locale-independent numbers
  out << "axdse-checkpoint v" << kFormatVersion << "\n";
  out << "request " << EncodeToken(request) << "\n";
  out << "seed " << seed << "\n";
  out << "agent-kind " << EncodeToken(agent_kind) << "\n";
  out << "finished " << (finished ? 1 : 0) << "\n";
  out << "progress " << episode << " " << episode_steps << " " << state
      << "\n";
  out << "progress-reward " << ShortestDouble(episode_cumulative) << " "
      << ShortestDouble(trace_cumulative) << "\n";
  out << "env-round-robin " << env.round_robin_variable << "\n";
  out << "env-config ";
  WriteConfig(out, env.config);
  out << "\n";
  out << "env-measurement ";
  WriteMeasurement(out, env.measurement);
  out << "\n";
  out << "interned " << env.interned.size() << "\n";
  for (const Configuration& config : env.interned) {
    out << "i ";
    WriteConfig(out, config);
    out << "\n";
  }
  // The agent block is embedded verbatim, framed by its line count so the
  // outer parser never has to understand agent internals.
  std::size_t agent_lines = 0;
  for (const char c : agent_state)
    if (c == '\n') ++agent_lines;
  if (!agent_state.empty() && agent_state.back() != '\n') ++agent_lines;
  out << "agent-lines " << agent_lines << "\n";
  out << agent_state;
  if (!agent_state.empty() && agent_state.back() != '\n') out << "\n";
  out << "result-steps " << result.steps << "\n";
  out << "result-stop " << rl::ToString(result.stop_reason) << "\n";
  out << "result-reward " << ShortestDouble(result.cumulative_reward) << "\n";
  out << "result-episodes " << result.episodes << "\n";
  out << "result-counters " << result.kernel_runs << " " << result.cache_hits
      << " " << result.kernel_runs_executed << " " << result.shared_cache_hits
      << "\n";
  WriteRange(out, "range-power", result.delta_power);
  WriteRange(out, "range-time", result.delta_time);
  WriteRange(out, "range-acc", result.delta_acc);
  out << "solution ";
  WriteConfig(out, result.solution);
  out << "\n";
  out << "solution-measurement ";
  WriteMeasurement(out, result.solution_measurement);
  out << "\n";
  out << "solution-operators " << EncodeToken(result.solution_adder) << " "
      << EncodeToken(result.solution_multiplier) << "\n";
  out << "best-feasible " << (result.has_best_feasible ? 1 : 0);
  if (result.has_best_feasible) {
    out << " ";
    WriteConfig(out, result.best_feasible);
  }
  out << "\n";
  out << "best-measurement ";
  WriteMeasurement(out, result.best_feasible_measurement);
  out << "\n";
  out << "rewards " << result.rewards.size();
  for (const double reward : result.rewards)
    out << " " << ShortestDouble(reward);
  out << "\n";
  out << "trace " << result.trace.size() << "\n";
  for (const StepRecord& record : result.trace) {
    out << "t " << record.step << " " << record.action << " "
        << ShortestDouble(record.reward) << " "
        << ShortestDouble(record.cumulative_reward) << " ";
    WriteConfig(out, record.config);
    out << " ";
    WriteMeasurement(out, record.measurement);
    out << "\n";
  }
  out << "memo " << evaluator.entries.size() << " " << evaluator.kernel_runs
      << " " << evaluator.cache_hits << " " << evaluator.cache_misses << " "
      << evaluator.shared_hits << "\n";
  WriteEntries(out, evaluator.entries);
  // Optional surrogate-tier section. Omitted entirely for surrogate-off
  // snapshots with zero counters, so the byte format (and the golden
  // fixture) of every pre-surrogate checkpoint is unchanged. Finished
  // snapshots carry no model but still need the result counters.
  const Evaluator::CacheState::SurrogateState& surrogate = evaluator.surrogate;
  if (surrogate.enabled || result.surrogate_hits > 0 ||
      result.kernel_runs_deferred > 0) {
    out << "surrogate " << (surrogate.enabled ? 1 : 0) << " "
        << surrogate.hits << " " << surrogate.deferred << " "
        << result.surrogate_hits << " " << result.kernel_runs_deferred
        << "\n";
    if (surrogate.enabled) {
      out << "s-state " << surrogate.model.audit_counter << " "
          << (surrogate.model.counts_unstable ? 1 : 0) << "\n";
      // Observations keep their insertion order: the restore path replays
      // them through the model so refits happen at the same counts as the
      // original run.
      out << "s-observations " << surrogate.model.observations.size() << "\n";
      for (const Configuration& config : surrogate.model.observations) {
        out << "o ";
        WriteConfig(out, config);
        out << "\n";
      }
      std::vector<std::pair<Configuration, instrument::Measurement>>
          predicted = surrogate.model.predicted;
      SortEntries(predicted);
      out << "s-predicted " << predicted.size() << "\n";
      for (const auto& [config, measurement] : predicted) {
        out << "p ";
        WriteConfig(out, config);
        out << " ";
        WriteMeasurement(out, measurement);
        out << "\n";
      }
    }
  }
  out << "end\n";
  return out.str();
}

Checkpoint Checkpoint::Deserialize(const std::string& text) {
  LineReader reader(text);
  Checkpoint checkpoint;
  try {
    {
      const std::vector<std::string> tokens =
          reader.Expect("axdse-checkpoint", 1);
      const std::string expected = "v" + std::to_string(kFormatVersion);
      if (tokens[0] != expected)
        reader.Fail("format version mismatch: found '" + tokens[0] +
                    "', this build reads '" + expected + "'");
    }
    checkpoint.request = DecodeToken(reader.Expect("request", 1)[0]);
    {
      TokenCursor cursor(reader.Expect("seed", 1), reader);
      checkpoint.seed = cursor.U64("seed");
    }
    checkpoint.agent_kind = DecodeToken(reader.Expect("agent-kind", 1)[0]);
    {
      TokenCursor cursor(reader.Expect("finished", 1), reader);
      checkpoint.finished = cursor.Flag("finished flag");
    }
    {
      const std::vector<std::string> tokens = reader.Expect("progress", 3);
      TokenCursor cursor(tokens, reader);
      checkpoint.episode = cursor.Size("progress episode");
      checkpoint.episode_steps = cursor.Size("progress episode steps");
      checkpoint.state = cursor.U64("progress state id");
    }
    {
      const std::vector<std::string> tokens =
          reader.Expect("progress-reward", 2);
      TokenCursor cursor(tokens, reader);
      checkpoint.episode_cumulative = cursor.Finite("episode cumulative");
      checkpoint.trace_cumulative = cursor.Finite("trace cumulative");
    }
    {
      TokenCursor cursor(reader.Expect("env-round-robin", 1), reader);
      checkpoint.env.round_robin_variable = cursor.Size("round-robin");
    }
    {
      const std::vector<std::string> tokens = reader.Expect("env-config");
      TokenCursor cursor(tokens, reader);
      checkpoint.env.config = ReadConfig(cursor, reader);
      cursor.Done("env-config");
    }
    {
      const std::vector<std::string> tokens =
          reader.Expect("env-measurement", 11);
      TokenCursor cursor(tokens, reader);
      checkpoint.env.measurement = ReadMeasurement(cursor);
    }
    {
      TokenCursor count_cursor(reader.Expect("interned", 1), reader);
      const std::size_t count = count_cursor.Size("interned count");
      checkpoint.env.interned.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::vector<std::string> tokens = reader.Expect("i");
        TokenCursor cursor(tokens, reader);
        checkpoint.env.interned.push_back(ReadConfig(cursor, reader));
        cursor.Done("interned configuration");
      }
    }
    {
      TokenCursor cursor(reader.Expect("agent-lines", 1), reader);
      const std::size_t lines = cursor.Size("agent line count");
      std::ostringstream agent;
      for (std::size_t l = 0; l < lines; ++l) agent << reader.RawLine() << "\n";
      checkpoint.agent_state = agent.str();
    }
    ExplorationResult& result = checkpoint.result;
    {
      TokenCursor cursor(reader.Expect("result-steps", 1), reader);
      result.steps = cursor.Size("result steps");
    }
    result.stop_reason =
        rl::StopReasonFromName(reader.Expect("result-stop", 1)[0]);
    {
      TokenCursor cursor(reader.Expect("result-reward", 1), reader);
      result.cumulative_reward = cursor.Finite("result cumulative reward");
    }
    {
      TokenCursor cursor(reader.Expect("result-episodes", 1), reader);
      result.episodes = cursor.Size("result episodes");
    }
    {
      const std::vector<std::string> tokens =
          reader.Expect("result-counters", 4);
      TokenCursor cursor(tokens, reader);
      result.kernel_runs = cursor.Size("result kernel runs");
      result.cache_hits = cursor.Size("result cache hits");
      result.kernel_runs_executed = cursor.Size("result executed runs");
      result.shared_cache_hits = cursor.Size("result shared hits");
    }
    result.delta_power = ReadRange(reader, "range-power");
    result.delta_time = ReadRange(reader, "range-time");
    result.delta_acc = ReadRange(reader, "range-acc");
    {
      const std::vector<std::string> tokens = reader.Expect("solution");
      TokenCursor cursor(tokens, reader);
      result.solution = ReadConfig(cursor, reader);
      cursor.Done("solution");
    }
    {
      const std::vector<std::string> tokens =
          reader.Expect("solution-measurement", 11);
      TokenCursor cursor(tokens, reader);
      result.solution_measurement = ReadMeasurement(cursor);
    }
    {
      const std::vector<std::string> tokens =
          reader.Expect("solution-operators", 2);
      result.solution_adder = DecodeToken(tokens[0]);
      result.solution_multiplier = DecodeToken(tokens[1]);
    }
    {
      const std::vector<std::string> tokens = reader.Expect("best-feasible");
      TokenCursor cursor(tokens, reader);
      result.has_best_feasible = cursor.Flag("best-feasible flag");
      if (result.has_best_feasible)
        result.best_feasible = ReadConfig(cursor, reader);
      cursor.Done("best-feasible");
    }
    {
      const std::vector<std::string> tokens =
          reader.Expect("best-measurement", 11);
      TokenCursor cursor(tokens, reader);
      result.best_feasible_measurement = ReadMeasurement(cursor);
    }
    {
      const std::vector<std::string> tokens = reader.Expect("rewards");
      TokenCursor cursor(tokens, reader);
      const std::size_t count = cursor.Size("reward count");
      if (tokens.size() != count + 1)
        reader.Fail("rewards list length does not match its count");
      result.rewards.reserve(count);
      for (std::size_t i = 0; i < count; ++i)
        result.rewards.push_back(cursor.Finite("reward value"));
    }
    {
      TokenCursor count_cursor(reader.Expect("trace", 1), reader);
      const std::size_t count = count_cursor.Size("trace count");
      result.trace.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::vector<std::string> tokens = reader.Expect("t");
        TokenCursor cursor(tokens, reader);
        StepRecord record;
        record.step = cursor.Size("trace step");
        record.action = cursor.Size("trace action");
        record.reward = cursor.Finite("trace reward");
        record.cumulative_reward = cursor.Finite("trace cumulative");
        record.config = ReadConfig(cursor, reader);
        record.measurement = ReadMeasurement(cursor);
        cursor.Done("trace record");
        result.trace.push_back(std::move(record));
      }
    }
    {
      const std::vector<std::string> tokens = reader.Expect("memo", 5);
      TokenCursor cursor(tokens, reader);
      const std::size_t count = cursor.Size("memo entry count");
      checkpoint.evaluator.kernel_runs = cursor.Size("memo kernel runs");
      checkpoint.evaluator.cache_hits = cursor.Size("memo cache hits");
      checkpoint.evaluator.cache_misses = cursor.Size("memo cache misses");
      checkpoint.evaluator.shared_hits = cursor.Size("memo shared hits");
      checkpoint.evaluator.entries = ReadEntries(reader, count);
    }
    if (reader.PeekTag() == "surrogate") {
      Evaluator::CacheState::SurrogateState& surrogate =
          checkpoint.evaluator.surrogate;
      {
        TokenCursor cursor(reader.Expect("surrogate", 5), reader);
        surrogate.enabled = cursor.Flag("surrogate enabled flag");
        surrogate.hits = cursor.Size("surrogate hits");
        surrogate.deferred = cursor.Size("surrogate deferred");
        checkpoint.result.surrogate_hits =
            cursor.Size("result surrogate hits");
        checkpoint.result.kernel_runs_deferred =
            cursor.Size("result kernel runs deferred");
      }
      if (surrogate.enabled) {
        {
          TokenCursor cursor(reader.Expect("s-state", 2), reader);
          surrogate.model.audit_counter = cursor.U64("surrogate audit counter");
          surrogate.model.counts_unstable =
              cursor.Flag("surrogate counts-unstable flag");
        }
        {
          TokenCursor cursor(reader.Expect("s-observations", 1), reader);
          const std::size_t count = cursor.Size("surrogate observation count");
          surrogate.model.observations.reserve(count);
          for (std::size_t i = 0; i < count; ++i) {
            TokenCursor line(reader.Expect("o"), reader);
            surrogate.model.observations.push_back(ReadConfig(line, reader));
            line.Done("surrogate observation");
          }
        }
        {
          TokenCursor cursor(reader.Expect("s-predicted", 1), reader);
          const std::size_t count = cursor.Size("surrogate prediction count");
          surrogate.model.predicted.reserve(count);
          for (std::size_t i = 0; i < count; ++i) {
            TokenCursor line(reader.Expect("p"), reader);
            Configuration config = ReadConfig(line, reader);
            instrument::Measurement measurement = ReadMeasurement(line);
            line.Done("surrogate prediction");
            surrogate.model.predicted.emplace_back(std::move(config),
                                                   measurement);
          }
        }
      }
    }
    reader.ExpectEnd();
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& error) {
    // Value-level parse failures (NaN injection, non-numeric tokens) arrive
    // as std::invalid_argument from the strict token parsers.
    reader.Fail(error.what());
  }

  // Internal consistency (structural corruption that parses token-by-token).
  if (checkpoint.result.rewards.size() != checkpoint.result.steps)
    throw CheckpointError(
        "checkpoint inconsistent: rewards count does not match step count");
  if (!checkpoint.result.trace.empty() &&
      checkpoint.result.trace.size() != checkpoint.result.steps)
    throw CheckpointError(
        "checkpoint inconsistent: trace length does not match step count");
  if (!checkpoint.finished) {
    if (checkpoint.env.interned.empty())
      throw CheckpointError(
          "checkpoint inconsistent: mid-run snapshot has no interned states");
    if (checkpoint.state >= checkpoint.env.interned.size())
      throw CheckpointError(
          "checkpoint inconsistent: current state id is not interned");
    if (checkpoint.agent_state.empty())
      throw CheckpointError(
          "checkpoint inconsistent: mid-run snapshot has no agent state");
  }
  return checkpoint;
}

void Checkpoint::Save(const std::string& path) const {
  AtomicWriteCheckpointFile(path, Serialize(), "Checkpoint::Save");
}

Checkpoint Checkpoint::Load(const std::string& path) {
  return Deserialize(ReadCheckpointFile(path, "Checkpoint::Load"));
}

// --------------------------------------------------------------------------
// SharedCacheCheckpoint
// --------------------------------------------------------------------------

std::string SharedCacheCheckpoint::Serialize() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // locale-independent numbers
  out << "axdse-cache v" << kFormatVersion << "\n";
  out << "signature " << EncodeToken(signature) << "\n";
  out << "stats " << stats.hits << " " << stats.misses << " " << stats.inserts
      << " " << stats.rejected << " " << stats.size << "\n";
  out << "entries " << entries.size() << "\n";
  WriteEntries(out, entries);
  out << "end\n";
  return out.str();
}

SharedCacheCheckpoint SharedCacheCheckpoint::Deserialize(
    const std::string& text) {
  LineReader reader(text);
  SharedCacheCheckpoint checkpoint;
  try {
    {
      const std::vector<std::string> tokens = reader.Expect("axdse-cache", 1);
      const std::string expected = "v" + std::to_string(kFormatVersion);
      if (tokens[0] != expected)
        reader.Fail("format version mismatch: found '" + tokens[0] +
                    "', this build reads '" + expected + "'");
    }
    checkpoint.signature = DecodeToken(reader.Expect("signature", 1)[0]);
    {
      const std::vector<std::string> tokens = reader.Expect("stats", 5);
      TokenCursor cursor(tokens, reader);
      checkpoint.stats.hits = cursor.Size("cache stats hits");
      checkpoint.stats.misses = cursor.Size("cache stats misses");
      checkpoint.stats.inserts = cursor.Size("cache stats inserts");
      checkpoint.stats.rejected = cursor.Size("cache stats rejected");
      checkpoint.stats.size = cursor.Size("cache stats size");
    }
    {
      TokenCursor cursor(reader.Expect("entries", 1), reader);
      const std::size_t count = cursor.Size("cache entry count");
      checkpoint.entries = ReadEntries(reader, count);
    }
    reader.ExpectEnd();
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& error) {
    reader.Fail(error.what());
  }
  if (checkpoint.stats.size != checkpoint.entries.size())
    throw CheckpointError(
        "cache checkpoint inconsistent: stored size does not match entries");
  return checkpoint;
}

void SharedCacheCheckpoint::Save(const std::string& path) const {
  AtomicWriteCheckpointFile(path, Serialize(), "SharedCacheCheckpoint::Save");
}

SharedCacheCheckpoint SharedCacheCheckpoint::Load(const std::string& path) {
  return SharedCacheCheckpoint::Deserialize(
      ReadCheckpointFile(path, "SharedCacheCheckpoint::Load"));
}

// --------------------------------------------------------------------------
// File naming
// --------------------------------------------------------------------------

std::uint64_t StableHash64(const std::string& text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

namespace {
std::string Hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}
}  // namespace

std::string JobCheckpointFileName(const std::string& request_text,
                                  std::uint64_t seed) {
  return "job-" +
         Hex16(StableHash64(request_text + "#" + std::to_string(seed))) +
         ".ckpt";
}

std::string CacheCheckpointFileName(const std::string& signature) {
  return "cache-" + Hex16(StableHash64(signature)) + ".ckpt";
}

}  // namespace axdse::dse
