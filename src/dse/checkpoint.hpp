#pragma once
// dse::Checkpoint — versioned, deterministic text serialization of the FULL
// exploration state of one (request, seed) job: agent internals (Q-table
// rows, DoubleQ's second table, Q(lambda) eligibility traces, SARSA's
// pending on-policy update, the epsilon-schedule step counter, the
// xoshiro256** RNG words), the environment (current configuration, interning
// order, round-robin pointer, last measurement), the partial
// ExplorationResult (trace, rewards, objective ranges, best-feasible), and
// the evaluator's private memo plus every cost counter. The headline
// invariant: a run suspended at ANY step k and resumed from its checkpoint
// produces byte-identical solutions, traces, rewards, and JSON/CSV exports
// to the uninterrupted run — for every agent kind, cache mode, and worker
// count.
//
// Format: line-oriented text, strict field order, shortest-round-trip
// doubles (util::ShortestDouble), version-tagged first line. Anything
// unexpected — truncation, version or agent mismatch, reordered fields,
// NaN-injected values — raises CheckpointError from the parser, BEFORE any
// Explorer/Engine state is touched.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dse/environment.hpp"
#include "dse/evaluator.hpp"
#include "dse/explorer.hpp"
#include "instrument/shared_evaluation_cache.hpp"

namespace axdse::dse {

/// Typed failure of checkpoint parsing, validation, or file IO. Thrown
/// before any exploration state is mutated: a failed load leaves the
/// Explorer/Engine exactly as it was.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One job's complete suspend/resume snapshot.
struct Checkpoint {
  /// Bumped on any incompatible format change; loading another version
  /// throws CheckpointError (format drift is pinned by the golden fixture
  /// under tests/golden/).
  static constexpr unsigned kFormatVersion = 1;

  // --- identity ------------------------------------------------------------
  /// ExplorationRequest::ToString() of the run this snapshot belongs to
  /// (empty for standalone Explorer use; the Engine always fills and
  /// verifies it).
  std::string request;
  /// Absolute agent seed of the job (request seed + seed index).
  std::uint64_t seed = 0;
  /// ToString(AgentKind) of the suspended run; verified on resume.
  std::string agent_kind;
  /// True for a completed run persisted for batch resume: `result` is final
  /// and the mid-run sections below are empty.
  bool finished = false;

  // --- mid-episode progress ------------------------------------------------
  std::size_t episode = 0;         ///< episode index being executed
  std::size_t episode_steps = 0;   ///< steps taken inside that episode
  double episode_cumulative = 0.0; ///< reward accumulated inside it
  double trace_cumulative = 0.0;   ///< cross-episode running reward (traces)
  rl::StateId state = 0;           ///< the state the agent acts from next

  // --- environment ---------------------------------------------------------
  AxDseEnvironment::State env;

  // --- agent ---------------------------------------------------------------
  /// Opaque rl::Agent::SaveState() text block.
  std::string agent_state;

  // --- partial (or final) result -------------------------------------------
  ExplorationResult result;

  // --- evaluator -----------------------------------------------------------
  Evaluator::CacheState evaluator;

  /// Deterministic text serialization: identical state => identical bytes
  /// (all unordered containers are sorted on the way out).
  std::string Serialize() const;

  /// Strict inverse of Serialize(). Throws CheckpointError (with a line
  /// number) on truncated, version-mismatched, reordered, NaN-injected, or
  /// otherwise malformed input.
  static Checkpoint Deserialize(const std::string& text);

  /// Atomically writes Serialize() to `path` (temp file + rename), creating
  /// parent directories. Throws CheckpointError on IO failure.
  void Save(const std::string& path) const;

  /// Reads and Deserializes `path`. Throws CheckpointError if the file is
  /// missing, unreadable, or malformed.
  static Checkpoint Load(const std::string& path);
};

/// Persisted state of one shared evaluation cache group, saved alongside the
/// job snapshots of a suspended batch so resumed cache statistics stay
/// byte-identical to the uninterrupted run's.
struct SharedCacheCheckpoint {
  static constexpr unsigned kFormatVersion = 1;

  /// The Engine's cache-group signature (see SharedCacheReport::signature).
  std::string signature;
  std::vector<std::pair<Configuration, instrument::Measurement>> entries;
  instrument::CacheStats stats;

  std::string Serialize() const;
  static SharedCacheCheckpoint Deserialize(const std::string& text);
  void Save(const std::string& path) const;
  static SharedCacheCheckpoint Load(const std::string& path);
};

/// Atomically AND durably writes `content` to `path`: unique temp file,
/// fsync of the temp fd BEFORE the rename (so the published file can never
/// be empty or truncated after a crash), rename, then fsync of the parent
/// directory (so power loss cannot forget the rename). Parent directories
/// are created on demand; partial temp files are unlinked on failure (e.g.
/// ENOSPC) before the CheckpointError surfaces. Shared by every snapshot
/// writer — job checkpoints, shared-cache state, campaign chunks, shard
/// leases — so they cannot diverge on durability protocol. `what` prefixes
/// CheckpointError messages.
void AtomicWriteCheckpointFile(const std::string& path,
                               const std::string& content, const char* what);

/// Reads `path` whole; throws CheckpointError (prefixed with `what`) when
/// the file is missing or unreadable.
std::string ReadCheckpointFile(const std::string& path, const char* what);

/// Stable (process- and platform-independent) FNV-1a 64-bit hash, used to
/// derive checkpoint file names from request serializations.
std::uint64_t StableHash64(const std::string& text) noexcept;

/// Snapshot file name of one job inside a checkpoint directory:
/// "job-<16 hex digits>.ckpt" over (request serialization, absolute seed).
std::string JobCheckpointFileName(const std::string& request_text,
                                  std::uint64_t seed);

/// Snapshot file name of one shared-cache group:
/// "cache-<16 hex digits>.ckpt" over the group signature.
std::string CacheCheckpointFileName(const std::string& signature);

}  // namespace axdse::dse
