#include "dse/configuration.hpp"

#include <cmath>

namespace axdse::dse {

double SpaceShape::Log2Size() const noexcept {
  if (num_adders == 0 || num_multipliers == 0) return 0.0;
  return std::log2(static_cast<double>(num_adders)) +
         std::log2(static_cast<double>(num_multipliers)) +
         static_cast<double>(num_variables);
}

SpaceShape ShapeOf(const axc::OperatorSet& operators,
                   std::size_t num_variables) noexcept {
  SpaceShape shape;
  shape.num_adders = operators.AdderCount();
  shape.num_multipliers = operators.MultiplierCount();
  shape.num_variables = num_variables;
  return shape;
}

bool FitsShape(const SpaceShape& shape,
               const Configuration& config) noexcept {
  return config.NumVariables() == shape.num_variables &&
         config.AdderIndex() < shape.num_adders &&
         config.MultiplierIndex() < shape.num_multipliers;
}

Configuration InitialConfiguration(const SpaceShape& shape) {
  return Configuration(shape.num_variables);
}

Configuration RandomConfiguration(const SpaceShape& shape, util::Rng& rng) {
  Configuration config(shape.num_variables);
  config.SetAdderIndex(
      static_cast<std::uint32_t>(rng.PickIndex(shape.num_adders)));
  config.SetMultiplierIndex(
      static_cast<std::uint32_t>(rng.PickIndex(shape.num_multipliers)));
  for (std::size_t i = 0; i < shape.num_variables; ++i)
    config.SetVariable(i, rng.Bernoulli(0.5));
  return config;
}

void NextAdder(Configuration& config, const SpaceShape& shape) noexcept {
  config.SetAdderIndex(static_cast<std::uint32_t>(
      (config.AdderIndex() + 1) % shape.num_adders));
}

void PrevAdder(Configuration& config, const SpaceShape& shape) noexcept {
  config.SetAdderIndex(static_cast<std::uint32_t>(
      (config.AdderIndex() + shape.num_adders - 1) % shape.num_adders));
}

void NextMultiplier(Configuration& config, const SpaceShape& shape) noexcept {
  config.SetMultiplierIndex(static_cast<std::uint32_t>(
      (config.MultiplierIndex() + 1) % shape.num_multipliers));
}

void PrevMultiplier(Configuration& config, const SpaceShape& shape) noexcept {
  config.SetMultiplierIndex(static_cast<std::uint32_t>(
      (config.MultiplierIndex() + shape.num_multipliers - 1) %
      shape.num_multipliers));
}

void RandomNeighborMove(Configuration& config, const SpaceShape& shape,
                        util::Rng& rng) {
  const std::size_t kind = rng.PickIndex(shape.num_variables > 0 ? 5 : 4);
  switch (kind) {
    case 0:
      NextAdder(config, shape);
      break;
    case 1:
      PrevAdder(config, shape);
      break;
    case 2:
      NextMultiplier(config, shape);
      break;
    case 3:
      PrevMultiplier(config, shape);
      break;
    default:
      config.ToggleVariable(rng.PickIndex(shape.num_variables));
      break;
  }
}

}  // namespace axdse::dse
