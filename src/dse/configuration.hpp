#pragma once
// The design-space point explored by the DSE. Structurally this is the
// instrumentation layer's ApproxSelection (adder index, multiplier index,
// variable bit-vector); the helpers here add the moves used by the RL action
// space and the baseline explorers.

#include <cstddef>

#include "axc/catalog.hpp"
#include "instrument/approx_selection.hpp"
#include "util/rng.hpp"

namespace axdse::dse {

/// Alias: a configuration IS an approximation selection.
using Configuration = instrument::ApproxSelection;

/// Bounds of the configuration space for one kernel.
struct SpaceShape {
  std::size_t num_adders = 0;
  std::size_t num_multipliers = 0;
  std::size_t num_variables = 0;

  /// log2 of the space size contribution of the variable mask plus the
  /// operator choices (for reporting).
  double Log2Size() const noexcept;
};

/// Shape of the space induced by an operator set and a variable count.
SpaceShape ShapeOf(const axc::OperatorSet& operators,
                   std::size_t num_variables) noexcept;

/// True when `config` is a point of the space `shape` describes (matching
/// variable count, operator indices in range). The single validity
/// predicate shared by the evaluator, the environment, and the checkpoint
/// resume path.
bool FitsShape(const SpaceShape& shape, const Configuration& config) noexcept;

/// The all-precise starting configuration (exact operators, no variables).
Configuration InitialConfiguration(const SpaceShape& shape);

/// Uniformly random configuration (used by baselines).
Configuration RandomConfiguration(const SpaceShape& shape, util::Rng& rng);

/// In-place moves used by local-search baselines and the environment's
/// action application. All wrap cyclically / stay in range.
void NextAdder(Configuration& config, const SpaceShape& shape) noexcept;
void PrevAdder(Configuration& config, const SpaceShape& shape) noexcept;
void NextMultiplier(Configuration& config, const SpaceShape& shape) noexcept;
void PrevMultiplier(Configuration& config, const SpaceShape& shape) noexcept;

/// Applies one uniformly random neighbor move (adder +-1, multiplier +-1, or
/// a random variable toggle).
void RandomNeighborMove(Configuration& config, const SpaceShape& shape,
                        util::Rng& rng);

}  // namespace axdse::dse
