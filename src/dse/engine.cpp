#include "dse/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "dse/evaluator.hpp"

namespace axdse::dse {

namespace {

/// One (request, seed) exploration job.
struct Job {
  std::size_t request_index = 0;
  std::size_t seed_index = 0;
};

/// Signature components may contain the separators; escape them so the
/// mapping request -> signature stays injective (distinct kernel identities
/// must never share a measurement cache).
std::string EscapeSignatureToken(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '%')
      out += "%25";
    else if (c == '|')
      out += "%7c";
    else if (c == '=')
      out += "%3d";
    else
      out.push_back(c);
  }
  return out;
}

/// Cache identity of a registry request: same string <=> registry Create()
/// yields behaviorally identical kernels (factories are deterministic in
/// (name, size, seed, extra)), so their jobs may share measurements.
std::string RegistrySignature(const ExplorationRequest& request) {
  std::ostringstream out;
  out << EscapeSignatureToken(request.kernel)
      << "|size=" << request.params.size << "|seed=" << request.params.seed;
  for (const auto& [key, value] : request.params.extra)
    out << "|" << EscapeSignatureToken(key) << "="
        << EscapeSignatureToken(value);
  return out.str();
}

/// Slot a job writes into; slots are preassigned so the batch outcome does
/// not depend on which worker ran which job.
struct JobOutcome {
  ExplorationResult result;
  RewardConfig reward;
  std::string kernel_name;
  std::exception_ptr error;
};

std::string ModalKey(const std::map<std::string, std::size_t>& votes) {
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [key, count] : votes) {
    if (count > best_count) {  // map order makes ties lexicographic-first
      best = key;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::string RequestResult::ModalAdder() const { return ModalKey(adder_votes); }

std::string RequestResult::ModalMultiplier() const {
  return ModalKey(multiplier_votes);
}

std::size_t BatchResult::TotalRuns() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.runs.size();
  return total;
}

std::size_t BatchResult::TotalSteps() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results)
    for (const ExplorationResult& run : r.runs) total += run.steps;
  return total;
}

std::size_t BatchResult::TotalDistinctEvaluations() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.cache.distinct_evaluations;
  return total;
}

std::size_t BatchResult::TotalExecutedRuns() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.cache.executed_runs;
  return total;
}

std::size_t BatchResult::TotalSavedRuns() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.cache.saved_runs;
  return total;
}

Engine::Engine(const EngineOptions& options,
               const workloads::KernelRegistry& registry)
    : options_(options), registry_(&registry) {}

std::size_t Engine::NumWorkers() const noexcept {
  if (options_.num_workers > 0) return options_.num_workers;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

BatchResult Engine::Run(const std::vector<ExplorationRequest>& requests) const {
  for (const ExplorationRequest& request : requests) {
    request.Validate();
    // Fail fast on unresolvable names — a typo in one request of a large
    // batch must not surface only after every other job has run.
    if (!request.kernel_override && !registry_->Has(request.kernel)) {
      std::string known;
      for (const std::string& name : registry_->Names())
        known += known.empty() ? name : ", " + name;
      throw std::invalid_argument("Engine::Run: unknown kernel '" +
                                  request.kernel + "' (registered: " + known +
                                  ")");
    }
  }

  // Group CacheMode::kShared requests by kernel identity: one
  // SharedEvaluationCache per distinct signature, handed to every job of the
  // group. kernel_override instances are distinguished by pointer but named
  // by first-appearance order, so exported signatures are reproducible.
  std::map<std::string, std::shared_ptr<instrument::SharedEvaluationCache>>
      caches;
  std::map<std::string, std::size_t> cache_jobs;
  std::map<const workloads::Kernel*, std::size_t> override_ids;
  std::vector<std::shared_ptr<instrument::SharedEvaluationCache>>
      request_cache(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const ExplorationRequest& request = requests[r];
    if (request.cache_mode != CacheMode::kShared) continue;
    std::string signature;
    if (request.kernel_override) {
      const auto [it, inserted] = override_ids.emplace(
          request.kernel_override.get(), override_ids.size());
      (void)inserted;
      signature = "override#" + std::to_string(it->second);
    } else {
      signature = RegistrySignature(request);
    }
    auto& slot = caches[signature];
    // First request of a group fixes the capacity bound (documented on
    // ExplorationRequest::cache_capacity).
    if (!slot) {
      instrument::SharedEvaluationCache::Options options;
      options.capacity = request.cache_capacity;
      slot = std::make_shared<instrument::SharedEvaluationCache>(options);
    }
    cache_jobs[signature] += request.num_seeds;
    request_cache[r] = slot;
  }

  std::vector<Job> jobs;
  for (std::size_t r = 0; r < requests.size(); ++r)
    for (std::size_t s = 0; s < requests[r].num_seeds; ++s)
      jobs.push_back(Job{r, s});
  std::vector<JobOutcome> outcomes(jobs.size());

  std::atomic<std::size_t> next_job{0};
  const auto worker = [&]() noexcept {
    while (true) {
      const std::size_t index = next_job.fetch_add(1);
      if (index >= jobs.size()) return;
      const Job& job = jobs[index];
      JobOutcome& out = outcomes[index];
      try {
        const ExplorationRequest& request = requests[job.request_index];
        // Resolve the kernel: the caller's instance when overridden (shared
        // read-only across this request's jobs), otherwise a fresh
        // deterministic instance from the registry so workers stay fully
        // independent.
        std::shared_ptr<const workloads::Kernel> kernel =
            request.kernel_override;
        if (!kernel) kernel = registry_->Create(request.kernel, request.params);
        // The engine owns the evaluator for exactly the job's lifetime —
        // explorer and environment only ever see a live reference.
        const auto evaluator = std::make_unique<Evaluator>(
            *kernel, request_cache[job.request_index]);
        const RewardConfig reward =
            MakePaperRewardConfig(*evaluator, request.thresholds);
        ExplorerConfig config = request.ToExplorerConfig();
        config.seed = request.seed + job.seed_index;
        Explorer explorer(*evaluator, reward, config);
        out.result = explorer.Explore();
        out.reward = reward;
        out.kernel_name = kernel->Name();
      } catch (...) {
        out.error = std::current_exception();
      }
    }
  };

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(NumWorkers(), jobs.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // First failure in job order — deterministic regardless of which worker
  // hit it first.
  for (const JobOutcome& outcome : outcomes)
    if (outcome.error) std::rethrow_exception(outcome.error);

  // Fold per-request aggregates serially, in request and seed order.
  BatchResult batch;
  batch.results.resize(requests.size());
  std::size_t outcome_index = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    RequestResult& request_result = batch.results[r];
    request_result.request = requests[r];
    util::RunningStats power_stats;
    util::RunningStats time_stats;
    util::RunningStats acc_stats;
    util::RunningStats step_stats;
    std::size_t feasible = 0;
    request_result.cache.mode = requests[r].cache_mode;
    request_result.runs.reserve(requests[r].num_seeds);
    for (std::size_t s = 0; s < requests[r].num_seeds; ++s) {
      JobOutcome& outcome = outcomes[outcome_index++];
      if (s == 0) {
        request_result.kernel_name = std::move(outcome.kernel_name);
        request_result.reward = outcome.reward;
      }
      const ExplorationResult& run = outcome.result;
      request_result.cache.distinct_evaluations += run.kernel_runs;
      request_result.cache.executed_runs += run.kernel_runs_executed;
      request_result.cache.local_hits += run.cache_hits;
      request_result.cache.shared_hits += run.shared_cache_hits;
      power_stats.Add(run.solution_measurement.delta_power_mw);
      time_stats.Add(run.solution_measurement.delta_time_ns);
      acc_stats.Add(run.solution_measurement.delta_acc);
      step_stats.Add(static_cast<double>(run.steps));
      if (run.solution_measurement.delta_acc <= outcome.reward.acc_threshold)
        ++feasible;
      ++request_result.adder_votes[run.solution_adder];
      ++request_result.multiplier_votes[run.solution_multiplier];
      request_result.runs.push_back(std::move(outcome.result));
    }
    request_result.solution_delta_power = util::Summarize(power_stats);
    request_result.solution_delta_time = util::Summarize(time_stats);
    request_result.solution_delta_acc = util::Summarize(acc_stats);
    request_result.steps = util::Summarize(step_stats);
    request_result.feasible_fraction =
        static_cast<double>(feasible) /
        static_cast<double>(requests[r].num_seeds);
    request_result.cache.saved_runs = request_result.cache.distinct_evaluations -
                                      request_result.cache.executed_runs;
  }

  // std::map iteration = signature order, so the report list is stable.
  batch.shared_caches.reserve(caches.size());
  for (const auto& [signature, cache] : caches)
    batch.shared_caches.push_back(
        SharedCacheReport{signature, cache_jobs[signature], cache->Stats()});
  return batch;
}

RequestResult Engine::RunOne(const ExplorationRequest& request) const {
  BatchResult batch = Run({request});
  return std::move(batch.results.front());
}

}  // namespace axdse::dse
