#include "dse/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <filesystem>
#include <iterator>
#include <limits>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "dse/checkpoint.hpp"
#include "dse/evaluator.hpp"

namespace axdse::dse {

namespace {

/// One (request, seed) exploration job.
struct Job {
  std::size_t request_index = 0;
  std::size_t seed_index = 0;
};

/// Signature components may contain the separators; escape them so the
/// mapping request -> signature stays injective (distinct kernel identities
/// must never share a measurement cache).
std::string EscapeSignatureToken(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '%')
      out += "%25";
    else if (c == '|')
      out += "%7c";
    else if (c == '=')
      out += "%3d";
    else
      out.push_back(c);
  }
  return out;
}

/// Cache identity of a registry request: same string <=> registry Create()
/// yields behaviorally identical kernels (factories are deterministic in
/// (spec, seed)). KernelSpec::ToString() is canonical, so the spec string
/// plus the data seed is the whole identity.
std::string RegistrySignature(const ExplorationRequest& request) {
  return EscapeSignatureToken(request.kernel.ToString()) +
         "|seed=" + std::to_string(request.kernel_seed);
}

/// Slot a job writes into; slots are preassigned so the batch outcome does
/// not depend on which worker ran which job.
struct JobOutcome {
  ExplorationResult result;
  RewardConfig reward;
  std::string kernel_name;
  std::exception_ptr error;
  /// The job hit the checkpoint step budget and suspended mid-run.
  bool suspended = false;
};

std::string ModalKey(const std::map<std::string, std::size_t>& votes) {
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [key, count] : votes) {
    if (count > best_count) {  // map order makes ties lexicographic-first
      best = key;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::string RequestResult::ModalAdder() const { return ModalKey(adder_votes); }

std::string RequestResult::ModalMultiplier() const {
  return ModalKey(multiplier_votes);
}

std::size_t BatchResult::TotalRuns() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.runs.size();
  return total;
}

std::size_t BatchResult::TotalSteps() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results)
    for (const ExplorationResult& run : r.runs) total += run.steps;
  return total;
}

std::size_t BatchResult::TotalDistinctEvaluations() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.cache.distinct_evaluations;
  return total;
}

std::size_t BatchResult::TotalExecutedRuns() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.cache.executed_runs;
  return total;
}

std::size_t BatchResult::TotalSavedRuns() const noexcept {
  std::size_t total = 0;
  for (const RequestResult& r : results) total += r.cache.saved_runs;
  return total;
}

Engine::Engine(const EngineOptions& options,
               const workloads::KernelRegistry& registry)
    : options_(options), registry_(&registry) {}

std::size_t Engine::NumWorkers() const noexcept {
  if (options_.num_workers > 0) return options_.num_workers;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

BatchResult Engine::Run(const std::vector<ExplorationRequest>& requests) const {
  return Run(requests, CheckpointOptions{});
}

BatchResult Engine::Run(const std::vector<ExplorationRequest>& requests,
                        const CheckpointOptions& checkpoint) const {
  return Run(requests, checkpoint, RunHooks{});
}

BatchResult Engine::SaveBatchCheckpoint(
    const std::vector<ExplorationRequest>& requests,
    const std::string& directory, std::size_t step_budget) const {
  CheckpointOptions checkpoint;
  checkpoint.directory = directory;
  checkpoint.step_budget = step_budget;
  return Run(requests, checkpoint);
}

BatchResult Engine::ResumeBatch(
    const std::vector<ExplorationRequest>& requests,
    const std::string& directory) const {
  CheckpointOptions checkpoint;
  checkpoint.directory = directory;
  return Run(requests, checkpoint);
}

BatchResult Engine::Run(const std::vector<ExplorationRequest>& requests,
                        const CheckpointOptions& checkpoint,
                        const RunHooks& hooks) const {
  namespace fs = std::filesystem;
  const bool checkpointing = !checkpoint.directory.empty();
  if (hooks.should_suspend && !checkpointing)
    throw std::invalid_argument(
        "Engine::Run: RunHooks::should_suspend requires a checkpoint "
        "directory (a suspended job must have somewhere to persist)");
  // Steps between hook invocations; 0 = hooks only at finish/suspend.
  const std::size_t hook_interval =
      hooks.Active() ? (hooks.interval > 0 ? hooks.interval : 1024) : 0;
  for (const ExplorationRequest& request : requests) {
    request.Validate();
    // Fail fast on unresolvable names — a typo in one request of a large
    // batch must not surface only after every other job has run.
    if (!request.kernel_override && !registry_->Has(request.kernel.name)) {
      std::string known;
      for (const std::string& name : registry_->Names())
        known += known.empty() ? name : ", " + name;
      throw std::invalid_argument("Engine::Run: unknown kernel '" +
                                  request.kernel.name +
                                  "' (registered: " + known + ")");
    }
    if (checkpointing && request.kernel_override)
      throw std::invalid_argument(
          "Engine::Run: checkpointing requires registry-named kernels "
          "(kernel_override instances are not serializable)");
  }

  // Job snapshots are keyed by request serialization + absolute seed; the
  // serializations double as the identity stored inside each snapshot.
  std::vector<std::string> request_texts(requests.size());
  if (checkpointing)
    for (std::size_t r = 0; r < requests.size(); ++r)
      request_texts[r] = requests[r].ToString();

  // Group CacheMode::kShared requests by kernel identity: one
  // SharedEvaluationCache per distinct signature, handed to every job of the
  // group. kernel_override instances are distinguished by pointer but named
  // by first-appearance order, so exported signatures are reproducible.
  std::map<std::string, std::shared_ptr<instrument::SharedEvaluationCache>>
      caches;
  std::map<std::string, std::size_t> cache_jobs;
  std::map<const workloads::Kernel*, std::size_t> override_ids;
  std::vector<std::shared_ptr<instrument::SharedEvaluationCache>>
      request_cache(requests.size());
  // Cache groups whose cache came from RunHooks::cache_provider: owned by
  // the caller, exempt from the engine's snapshot persist/restore.
  std::set<std::string> provided_caches;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const ExplorationRequest& request = requests[r];
    if (request.cache_mode != CacheMode::kShared) continue;
    std::string signature;
    if (request.kernel_override) {
      const auto [it, inserted] = override_ids.emplace(
          request.kernel_override.get(), override_ids.size());
      (void)inserted;
      signature = "override#" + std::to_string(it->second);
    } else {
      signature = RegistrySignature(request);
    }
    auto& slot = caches[signature];
    // First request of a group fixes the capacity bound (documented on
    // ExplorationRequest::cache_capacity).
    if (!slot) {
      if (hooks.cache_provider) {
        slot = hooks.cache_provider(signature, request.cache_capacity);
        if (slot) provided_caches.insert(signature);
      }
      if (!slot) {
        instrument::SharedEvaluationCache::Options options;
        options.capacity = request.cache_capacity;
        slot = std::make_shared<instrument::SharedEvaluationCache>(options);
      }
    }
    cache_jobs[signature] += request.num_seeds;
    request_cache[r] = slot;
  }

  // Restore suspended shared-cache groups BEFORE any worker starts, so a
  // resumed batch replays the uninterrupted run's cache behaviour (and its
  // exported statistics) byte for byte. Snapshot identity is the kernel
  // signature QUALIFIED BY THE WHOLE BATCH: a different batch over the same
  // kernels sharing one directory must neither restore nor delete this
  // batch's cache state.
  std::map<std::string, std::string> cache_paths;       // signature -> path
  std::map<std::string, std::string> cache_identities;  // signature -> id
  if (checkpointing) {
    std::string batch_key;
    for (const std::string& text : request_texts) {
      batch_key += text;
      batch_key += '\n';
    }
    const std::string prefix =
        "batch#" + std::to_string(StableHash64(batch_key)) + "|";
    for (const auto& [signature, cache] : caches) {
      if (provided_caches.count(signature) != 0) continue;
      const std::string identity = prefix + signature;
      const std::string path = (fs::path(checkpoint.directory) /
                                CacheCheckpointFileName(identity))
                                   .string();
      cache_paths[signature] = path;
      cache_identities[signature] = identity;
      std::error_code ec;
      if (fs::exists(path, ec)) {
        const SharedCacheCheckpoint snapshot =
            SharedCacheCheckpoint::Load(path);
        if (snapshot.signature != identity)
          throw CheckpointError("Engine::Run: cache snapshot at " + path +
                                " belongs to '" + snapshot.signature +
                                "', expected '" + identity + "'");
        cache->Restore(snapshot.entries, snapshot.stats);
      }
    }
  }

  std::vector<Job> jobs;
  for (std::size_t r = 0; r < requests.size(); ++r)
    for (std::size_t s = 0; s < requests[r].num_seeds; ++s)
      jobs.push_back(Job{r, s});
  std::vector<JobOutcome> outcomes(jobs.size());

  std::atomic<std::size_t> next_job{0};
  const auto worker = [&]() noexcept {
    while (true) {
      const std::size_t index = next_job.fetch_add(1);
      if (index >= jobs.size()) return;
      const Job& job = jobs[index];
      JobOutcome& out = outcomes[index];
      try {
        const ExplorationRequest& request = requests[job.request_index];
        // Resolve the kernel: the caller's instance when overridden (shared
        // read-only across this request's jobs), otherwise a fresh
        // deterministic instance from the registry so workers stay fully
        // independent.
        std::shared_ptr<const workloads::Kernel> kernel =
            request.kernel_override;
        if (!kernel)
          kernel = registry_->Create(request.kernel, request.kernel_seed);
        // The engine owns the evaluator for exactly the job's lifetime —
        // explorer and environment only ever see a live reference.
        const auto evaluator = std::make_unique<Evaluator>(
            *kernel, request_cache[job.request_index]);
        const RewardConfig reward =
            MakePaperRewardConfig(*evaluator, request.thresholds);
        // Surrogate tier: only without trace recording — traces must hold
        // real measurements, so the tier stays off for traced runs.
        if (request.surrogate && !request.record_trace)
          evaluator->EnableSurrogate(reward.acc_threshold);
        ExplorerConfig config = request.ToExplorerConfig();
        config.seed = request.seed + job.seed_index;
        Explorer explorer(*evaluator, reward, config);

        // Progress snapshot from the live explorer (must be called before
        // Finish(), which consumes the run state).
        const auto emit = [&](bool finished, bool suspended) {
          if (!hooks.on_progress) return;
          JobProgress progress;
          progress.request_index = job.request_index;
          progress.seed_index = job.seed_index;
          progress.seed = config.seed;
          progress.steps = explorer.StepsTaken();
          progress.cumulative_reward = explorer.CumulativeRewardSoFar();
          if (const instrument::Measurement* best =
                  explorer.BestFeasibleSoFar()) {
            progress.has_best = true;
            progress.best = *best;
          }
          progress.finished = finished;
          progress.suspended = suspended;
          hooks.on_progress(progress);
        };

        if (!checkpointing && hook_interval == 0) {
          out.result = explorer.Explore();
        } else if (!checkpointing) {
          // Hooked but snapshot-free: chunked stepping purely so progress
          // callbacks fire; results are identical to Explore().
          while (!explorer.Finished()) {
            explorer.RunSteps(hook_interval);
            emit(explorer.Finished(), false);
          }
          out.result = explorer.Finish();
        } else {
          const std::string& request_text = request_texts[job.request_index];
          const std::string path =
              (fs::path(checkpoint.directory) /
               JobCheckpointFileName(request_text, config.seed))
                  .string();
          const auto stamp = [&](Checkpoint& snapshot) {
            snapshot.request = request_text;
            snapshot.seed = config.seed;
          };

          // Resume: a mid-run snapshot restores the explorer; a finished
          // one short-circuits the job entirely (its queries must not hit
          // the shared cache a second time).
          bool done = false;
          std::error_code ec;
          if (fs::exists(path, ec)) {
            Checkpoint snapshot = Checkpoint::Load(path);
            if (snapshot.request != request_text ||
                snapshot.seed != config.seed)
              throw CheckpointError(
                  "Engine::Run: snapshot at " + path +
                  " belongs to a different job (request/seed mismatch)");
            if (snapshot.finished) {
              out.result = std::move(snapshot.result);
              // stage_counts is derived data (recomputed from the solution
              // at Finish()), not part of the snapshot format.
              out.result.stage_counts =
                  kernel->StageCounts(out.result.solution);
              done = true;
              if (hooks.on_progress) {
                // The explorer never ran; report from the restored result.
                JobProgress progress;
                progress.request_index = job.request_index;
                progress.seed_index = job.seed_index;
                progress.seed = config.seed;
                progress.steps = out.result.steps;
                progress.cumulative_reward = out.result.cumulative_reward;
                if (out.result.has_best_feasible) {
                  progress.has_best = true;
                  progress.best = out.result.best_feasible_measurement;
                }
                progress.finished = true;
                hooks.on_progress(progress);
              }
            } else {
              explorer.ResumeFrom(snapshot);
            }
          }

          if (!done) {
            const std::size_t interval = request.checkpoint_interval > 0
                                             ? request.checkpoint_interval
                                             : checkpoint.interval;
            const std::size_t budget = checkpoint.step_budget;
            std::size_t new_steps = 0;
            std::size_t since_save = 0;
            bool suspended = false;
            while (true) {
              std::size_t chunk = std::numeric_limits<std::size_t>::max();
              if (interval > 0) chunk = interval;
              if (hook_interval > 0) chunk = std::min(chunk, hook_interval);
              if (budget > 0) chunk = std::min(chunk, budget - new_steps);
              const std::size_t taken = explorer.RunSteps(chunk);
              new_steps += taken;
              since_save += taken;
              if (explorer.Finished()) break;
              if (budget > 0 && new_steps >= budget) {
                suspended = true;
                break;
              }
              if (hooks.should_suspend && hooks.should_suspend()) {
                suspended = true;
                break;
              }
              emit(false, false);
              if (interval > 0 && since_save >= interval) {
                Checkpoint snapshot = explorer.Suspend();
                stamp(snapshot);
                snapshot.Save(path);
                since_save = 0;
              }
            }
            if (suspended) {
              Checkpoint snapshot = explorer.Suspend();
              stamp(snapshot);
              snapshot.Save(path);
              out.result = explorer.PartialResult();
              out.suspended = true;
              emit(false, true);
            } else {
              emit(true, false);
              out.result = explorer.Finish();
              // Always persist the completion: any later invocation against
              // this directory (after a budget suspension elsewhere, a
              // failed sibling job, or a crash) must load this job's result
              // instead of re-running it — a re-run against the persisted
              // shared caches would distort the exported statistics. The
              // file is removed with the rest once the batch completes.
              Checkpoint final_snapshot;
              final_snapshot.finished = true;
              final_snapshot.agent_kind = dse::ToString(request.agent_kind);
              stamp(final_snapshot);
              final_snapshot.result = out.result;
              final_snapshot.Save(path);
            }
          }
        }
        out.reward = reward;
        out.kernel_name = kernel->Name();
      } catch (...) {
        // Never swallow a job failure: wrap it with the job's identity (the
        // batch is rethrown far from the failing request) and nest the
        // original exception so callers can reach the root cause.
        const ExplorationRequest& request = requests[job.request_index];
        const std::string kernel_name =
            request.kernel_override ? "<override>" : request.kernel.ToString();
        std::string what = "unknown error";
        try {
          throw;
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        try {
          std::throw_with_nested(BatchJobError(
              "Engine::Run: job failed (request #" +
                  std::to_string(job.request_index) + ", kernel '" +
                  kernel_name + "', seed " +
                  std::to_string(request.seed + job.seed_index) + "): " + what,
              job.request_index, request.seed + job.seed_index, kernel_name));
        } catch (...) {
          out.error = std::current_exception();
        }
      }
    }
  };

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(NumWorkers(), jobs.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // First failure in job order — deterministic regardless of which worker
  // hit it first.
  std::exception_ptr first_error;
  for (const JobOutcome& outcome : outcomes)
    if (outcome.error) {
      first_error = outcome.error;
      break;
    }

  std::size_t unfinished = 0;
  for (const JobOutcome& outcome : outcomes)
    if (outcome.suspended) ++unfinished;

  if (checkpointing && (unfinished > 0 || first_error)) {
    // Persist each shared-cache group next to the job snapshots — also on
    // the error path, where other jobs may already have written advanced
    // snapshots. All workers have joined, so the snapshot is quiescent;
    // under budget suspension its contents (every configuration any job
    // touched before suspending, computed exactly once) and counters are
    // scheduling-independent. Provider-owned caches are the caller's to
    // persist (or not).
    for (const auto& [signature, cache] : caches) {
      if (provided_caches.count(signature) != 0) continue;
      SharedCacheCheckpoint snapshot;
      snapshot.signature = cache_identities.at(signature);
      snapshot.entries = cache->Entries();
      snapshot.stats = cache->Stats();
      snapshot.Save(cache_paths.at(signature));
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  if (checkpointing && unfinished == 0) {
    // Batch complete: nothing left to resume; drop this batch's files.
    std::error_code ec;
    for (std::size_t r = 0; r < requests.size(); ++r)
      for (std::size_t s = 0; s < requests[r].num_seeds; ++s)
        fs::remove(fs::path(checkpoint.directory) /
                       JobCheckpointFileName(request_texts[r],
                                             requests[r].seed + s),
                   ec);
    for (const auto& [signature, path] : cache_paths) fs::remove(path, ec);
  }

  // Fold per-request aggregates serially, in request and seed order.
  BatchResult batch;
  batch.unfinished_jobs = unfinished;
  batch.results.resize(requests.size());
  std::size_t outcome_index = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    RequestResult& request_result = batch.results[r];
    request_result.request = requests[r];
    util::RunningStats power_stats;
    util::RunningStats time_stats;
    util::RunningStats acc_stats;
    util::RunningStats step_stats;
    std::size_t feasible = 0;
    request_result.cache.mode = requests[r].cache_mode;
    request_result.runs.reserve(requests[r].num_seeds);
    for (std::size_t s = 0; s < requests[r].num_seeds; ++s) {
      JobOutcome& outcome = outcomes[outcome_index++];
      if (s == 0) {
        request_result.kernel_name = std::move(outcome.kernel_name);
        request_result.reward = outcome.reward;
      }
      const ExplorationResult& run = outcome.result;
      request_result.cache.distinct_evaluations += run.kernel_runs;
      request_result.cache.executed_runs += run.kernel_runs_executed;
      request_result.cache.local_hits += run.cache_hits;
      request_result.cache.shared_hits += run.shared_cache_hits;
      request_result.cache.surrogate_hits += run.surrogate_hits;
      request_result.cache.deferred_runs += run.kernel_runs_deferred;
      power_stats.Add(run.solution_measurement.delta_power_mw);
      time_stats.Add(run.solution_measurement.delta_time_ns);
      acc_stats.Add(run.solution_measurement.delta_acc);
      step_stats.Add(static_cast<double>(run.steps));
      if (run.solution_measurement.delta_acc <= outcome.reward.acc_threshold)
        ++feasible;
      ++request_result.adder_votes[run.solution_adder];
      ++request_result.multiplier_votes[run.solution_multiplier];
      request_result.runs.push_back(std::move(outcome.result));
    }
    request_result.solution_delta_power = util::Summarize(power_stats);
    request_result.solution_delta_time = util::Summarize(time_stats);
    request_result.solution_delta_acc = util::Summarize(acc_stats);
    request_result.steps = util::Summarize(step_stats);
    request_result.feasible_fraction =
        static_cast<double>(feasible) /
        static_cast<double>(requests[r].num_seeds);
    request_result.cache.saved_runs = request_result.cache.distinct_evaluations -
                                      request_result.cache.executed_runs;
  }

  // std::map iteration = signature order, so the report list is stable.
  batch.shared_caches.reserve(caches.size());
  for (const auto& [signature, cache] : caches)
    batch.shared_caches.push_back(
        SharedCacheReport{signature, cache_jobs[signature], cache->Stats()});
  return batch;
}

std::vector<instrument::Measurement> Engine::Score(
    const ExplorationRequest& identity,
    const std::vector<Configuration>& configs, std::size_t lanes) const {
  identity.Validate();
  if (!identity.kernel_override && !registry_->Has(identity.kernel.name))
    throw std::invalid_argument("Engine::Score: unknown kernel '" +
                                identity.kernel.name + "'");
  std::shared_ptr<const workloads::Kernel> kernel = identity.kernel_override;
  if (!kernel)
    kernel = registry_->Create(identity.kernel, identity.kernel_seed);
  Evaluator evaluator(*kernel);
  if (lanes == 0) lanes = instrument::MultiApproxContext::kMaxLanes;
  std::vector<instrument::Measurement> out;
  out.reserve(configs.size());
  if (lanes <= 1) {
    for (const Configuration& config : configs)
      out.push_back(evaluator.Evaluate(config));
    return out;
  }
  // MultiEvaluate() flushes at kMaxLanes on its own; smaller widths chunk
  // here so the lane passes never exceed the caller's bound.
  for (std::size_t begin = 0; begin < configs.size(); begin += lanes) {
    const std::size_t end = std::min(configs.size(), begin + lanes);
    const std::vector<Configuration> chunk(configs.begin() + begin,
                                           configs.begin() + end);
    std::vector<instrument::Measurement> part = evaluator.MultiEvaluate(chunk);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

RequestResult Engine::RunOne(const ExplorationRequest& request) const {
  BatchResult batch = Run({request});
  return std::move(batch.results.front());
}

}  // namespace axdse::dse
