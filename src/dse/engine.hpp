#pragma once
// dse::Engine — the batch execution layer of the facade. Takes a vector of
// ExplorationRequests, expands each into `num_seeds` independent jobs, and
// runs the jobs on a std::thread worker pool. Every job gets its own kernel
// instance (or shares the request's read-only kernel_override), its own
// engine-owned Evaluator, and writes into a preassigned result slot, so the
// BatchResult is bit-identical regardless of worker count or scheduling
// order. The operator characterization behind every kernel is the shared,
// immutable EvoApproxCatalog singleton.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "dse/request.hpp"
#include "util/statistics.hpp"

namespace axdse::dse {

/// Engine tuning knobs.
struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The
  /// result is identical for any worker count (only wall-clock changes).
  std::size_t num_workers = 0;
};

/// Outcome of one request: the per-seed ExplorationResults plus the
/// multi-seed aggregation that used to live in MultiRunResult.
struct RequestResult {
  /// The request as executed.
  ExplorationRequest request;
  /// Resolved kernel name, e.g. "matmul-10x10".
  std::string kernel_name;
  /// The reward thresholds derived from the precise run (identical across
  /// seeds — evaluation is deterministic).
  RewardConfig reward;

  /// Per-seed results; run i used agent seed `request.seed + i`.
  std::vector<ExplorationResult> runs;

  /// Summaries of the per-run solution metrics (count == runs.size()).
  util::Summary solution_delta_power;
  util::Summary solution_delta_time;
  util::Summary solution_delta_acc;
  util::Summary steps;

  /// Operator type codes selected by the per-seed solutions.
  std::map<std::string, std::size_t> adder_votes;
  std::map<std::string, std::size_t> multiplier_votes;

  /// Fraction of runs whose solution respected the accuracy threshold.
  double feasible_fraction = 0.0;

  /// Most-voted operator type codes (ties: lexicographically smallest).
  std::string ModalAdder() const;
  std::string ModalMultiplier() const;
};

/// Outcome of one Engine::Run call, in request order.
struct BatchResult {
  std::vector<RequestResult> results;

  /// Total explorations across all requests (sum of runs.size()).
  std::size_t TotalRuns() const noexcept;
  /// Total environment steps taken across all runs.
  std::size_t TotalSteps() const noexcept;
};

/// Executes request batches. Stateless between Run() calls; one Engine can
/// be reused freely. Kernel names resolve against the registry given at
/// construction (the global one by default).
class Engine {
 public:
  explicit Engine(
      const EngineOptions& options = {},
      const workloads::KernelRegistry& registry =
          workloads::KernelRegistry::Global());

  /// Validates and runs all requests (each times num_seeds explorations) on
  /// the worker pool and returns results in request order. Throws
  /// std::invalid_argument on an invalid request or unknown kernel; the
  /// first failing job's exception (in job order) is rethrown after all
  /// workers finish.
  BatchResult Run(const std::vector<ExplorationRequest>& requests) const;

  /// Convenience: single-request batch.
  RequestResult RunOne(const ExplorationRequest& request) const;

  /// Effective worker count (resolves the 0 = hardware default).
  std::size_t NumWorkers() const noexcept;

 private:
  EngineOptions options_;
  const workloads::KernelRegistry* registry_;
};

}  // namespace axdse::dse
