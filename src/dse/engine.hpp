#pragma once
// dse::Engine — the batch execution layer of the facade. Takes a vector of
// ExplorationRequests, expands each into `num_seeds` independent jobs, and
// runs the jobs on a std::thread worker pool. Every job gets its own kernel
// instance (or shares the request's read-only kernel_override), its own
// engine-owned Evaluator, and writes into a preassigned result slot, so the
// result payload — solutions, traces, rewards, and every per-run field — is
// bit-identical regardless of worker count or scheduling order. The
// operator characterization behind every kernel is the shared, immutable
// EvoApproxCatalog singleton.
//
// Requests with CacheMode::kShared additionally share one sharded
// SharedEvaluationCache per kernel identity, so a configuration measured by
// any job in the group is never executed again by the others — solutions,
// traces, and rewards stay byte-identical to private mode; only kernel-run
// counts (cost) change. The aggregate cache statistics are also
// worker-count-independent for an unbounded cache, except that when SEVERAL
// requests share one cache group (or a capacity bound is set) the
// per-request executed/saved split is scheduling-dependent — only the group
// totals are stable (see CacheUsage::executed_runs).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dse/request.hpp"
#include "instrument/shared_evaluation_cache.hpp"
#include "util/statistics.hpp"

namespace axdse::dse {

/// Aggregate cache behaviour of one request's jobs.
struct CacheUsage {
  CacheMode mode = CacheMode::kPrivate;
  /// Distinct configurations evaluated, summed over the request's runs —
  /// the kernel executions private mode performs. Deterministic always.
  std::size_t distinct_evaluations = 0;
  /// Kernel executions actually performed. Equal to distinct_evaluations in
  /// private mode. With an unbounded shared cache the total over a cache
  /// group is deterministic for any worker count (each configuration is
  /// computed exactly once); when several requests share one cache, how the
  /// executions split between them is scheduling-dependent.
  std::size_t executed_runs = 0;
  /// Kernel executions avoided: distinct_evaluations - executed_runs.
  std::size_t saved_runs = 0;
  /// Private per-job memo hits (repeat visits along each job's own path).
  std::size_t local_hits = 0;
  /// Evaluations answered by the shared cache.
  std::size_t shared_hits = 0;
  /// Evaluations answered by the surrogate tier, summed over the request's
  /// runs (0 with surrogate off). Deterministic for any worker count.
  std::size_t surrogate_hits = 0;
  /// Distinct configurations skipped by the surrogate and never executed —
  /// kernel runs the request saved outright. Deterministic always.
  std::size_t deferred_runs = 0;
};

/// Engine tuning knobs.
struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The
  /// result is identical for any worker count (only wall-clock changes).
  std::size_t num_workers = 0;
};

/// Batch checkpoint/resume policy (see dse/checkpoint.hpp). Disabled unless
/// `directory` is non-empty. With a directory set, every (request, seed)
/// job keeps one snapshot file keyed by the request serialization plus its
/// absolute seed, shared-cache groups persist alongside, and a rerun of the
/// same batch against the same directory resumes instead of restarting —
/// with byte-identical results, traces, rewards, and JSON/CSV exports to
/// the uninterrupted run. Requires registry-named kernels
/// (kernel_override is not serializable; Run() throws otherwise).
struct CheckpointOptions {
  /// Snapshot directory (created on demand). Empty = checkpointing off.
  std::string directory;
  /// Autosave period in environment steps (0 = save only at suspension or
  /// completion). ExplorationRequest::checkpoint_interval overrides this
  /// per request when non-zero.
  std::size_t interval = 0;
  /// Cooperative preemption: each job takes at most this many NEW steps in
  /// this invocation, then suspends into `directory`. Suspended runs carry
  /// stop reason "suspended" and are counted by BatchResult::unfinished_jobs;
  /// rerunning the batch with the same directory continues them. 0 = run to
  /// completion.
  std::size_t step_budget = 0;
};

/// Mid-run snapshot of one (request, seed) job, handed to
/// RunHooks::on_progress. Cheap by construction: counters only, no result
/// copies.
struct JobProgress {
  std::size_t request_index = 0;
  std::size_t seed_index = 0;
  /// Absolute agent seed (request seed + seed index).
  std::uint64_t seed = 0;
  /// Environment steps taken so far, including steps restored from a
  /// checkpoint snapshot.
  std::size_t steps = 0;
  /// Reward accumulated so far (across episodes, including the open one).
  double cumulative_reward = 0.0;
  /// Best feasible measurement seen so far; has_best is false until one
  /// exists.
  bool has_best = false;
  instrument::Measurement best;
  /// The job ran its last step (Finish() comes next).
  bool finished = false;
  /// The job suspended into the checkpoint directory.
  bool suspended = false;
};

/// Observation and control hooks for Engine::Run. All callbacks are invoked
/// from worker threads (possibly several concurrently); they must be
/// thread-safe and cheap. Hooks never change results — only scheduling,
/// cost counters (cache_provider), and what the caller gets to observe.
struct RunHooks {
  /// Environment steps between hook invocations per job (on_progress calls
  /// and should_suspend polls). 0 picks a default of 1024 when either hook
  /// is set.
  std::size_t interval = 0;
  /// Called roughly every `interval` steps per job, plus once when the job
  /// finishes or suspends.
  std::function<void(const JobProgress&)> on_progress;
  /// Polled between step slices; returning true suspends the job into the
  /// checkpoint directory exactly like an exhausted step budget (requires
  /// CheckpointOptions::directory; Run throws std::invalid_argument
  /// otherwise). The engine's cooperative-drain hook.
  std::function<bool()> should_suspend;
  /// When set, CacheMode::kShared groups ask this for their cache instead
  /// of constructing one, letting a long-lived caller share measurement
  /// caches ACROSS Run calls (same-kernel jobs warm-start each other).
  /// Returning nullptr falls back to a Run-local cache. Provider-owned
  /// caches are NOT checkpoint-persisted/restored by the engine (the caller
  /// owns their lifetime), so cost counters of shared-mode jobs may differ
  /// between a drained-and-resumed run and an uninterrupted one — logical
  /// results never do.
  std::function<std::shared_ptr<instrument::SharedEvaluationCache>(
      const std::string& signature, std::size_t capacity)>
      cache_provider;

  /// True when any observation/control hook is set.
  bool Active() const noexcept {
    return static_cast<bool>(on_progress) || static_cast<bool>(should_suspend);
  }
};

/// Outcome of one request: the per-seed ExplorationResults plus the
/// multi-seed aggregation that used to live in MultiRunResult.
struct RequestResult {
  /// The request as executed.
  ExplorationRequest request;
  /// Resolved kernel name, e.g. "matmul-10x10".
  std::string kernel_name;
  /// The reward thresholds derived from the precise run (identical across
  /// seeds — evaluation is deterministic).
  RewardConfig reward;

  /// Per-seed results; run i used agent seed `request.seed + i`.
  std::vector<ExplorationResult> runs;

  /// Summaries of the per-run solution metrics (count == runs.size()).
  util::Summary solution_delta_power;
  util::Summary solution_delta_time;
  util::Summary solution_delta_acc;
  util::Summary steps;

  /// Operator type codes selected by the per-seed solutions.
  std::map<std::string, std::size_t> adder_votes;
  std::map<std::string, std::size_t> multiplier_votes;

  /// Fraction of runs whose solution respected the accuracy threshold.
  double feasible_fraction = 0.0;

  /// Aggregate cache behaviour of this request's jobs.
  CacheUsage cache;

  /// Most-voted operator type codes (ties: lexicographically smallest).
  std::string ModalAdder() const;
  std::string ModalMultiplier() const;
};

/// Final state of one shared cache group after the batch. Jobs share one
/// cache iff their requests have the same signature: registry requests map
/// to "<kernel spec>|seed=K" (the canonical KernelSpec string plus the data
/// seed), kernel_override requests to "override#N" with N the override's
/// first-appearance index in the batch (stable across worker counts and
/// reruns).
struct SharedCacheReport {
  std::string signature;
  /// Jobs that shared this cache (sum of num_seeds over its requests).
  std::size_t jobs = 0;
  instrument::CacheStats stats;
};

/// Outcome of one Engine::Run call, in request order.
struct BatchResult {
  std::vector<RequestResult> results;

  /// One report per shared cache group, sorted by signature (empty when the
  /// batch ran entirely with private caches).
  std::vector<SharedCacheReport> shared_caches;

  /// Jobs suspended by CheckpointOptions::step_budget in this invocation
  /// (their partial results carry stop reason "suspended"). 0 for a batch
  /// that ran to completion.
  std::size_t unfinished_jobs = 0;

  /// True when every job finished (nothing left to resume).
  bool Complete() const noexcept { return unfinished_jobs == 0; }

  /// Total explorations across all requests (sum of runs.size()).
  std::size_t TotalRuns() const noexcept;
  /// Total environment steps taken across all runs.
  std::size_t TotalSteps() const noexcept;
  /// Distinct-configuration evaluations across all runs (the kernel
  /// executions an all-private batch performs).
  std::size_t TotalDistinctEvaluations() const noexcept;
  /// Kernel executions actually performed across all runs.
  std::size_t TotalExecutedRuns() const noexcept;
  /// Kernel executions avoided by shared caching.
  std::size_t TotalSavedRuns() const noexcept;
};

/// Failure of one (request, seed) job inside Engine::Run. The engine lets
/// every worker drain, then rethrows the first failing job's error in job
/// order (deterministic for any worker count), wrapped in this type with
/// the original exception nested — catch BatchJobError for the job identity
/// and std::rethrow_if_nested() to reach the root cause.
class BatchJobError : public std::runtime_error {
 public:
  BatchJobError(const std::string& message, std::size_t request_index,
                std::uint64_t seed, std::string kernel)
      : std::runtime_error(message),
        request_index_(request_index),
        seed_(seed),
        kernel_(std::move(kernel)) {}

  /// Index of the failing request in the Run() batch.
  std::size_t RequestIndex() const noexcept { return request_index_; }
  /// Absolute agent seed of the failing job (request seed + seed index).
  std::uint64_t Seed() const noexcept { return seed_; }
  /// Kernel name of the failing request ("<override>" for instances).
  const std::string& Kernel() const noexcept { return kernel_; }

 private:
  std::size_t request_index_ = 0;
  std::uint64_t seed_ = 0;
  std::string kernel_;
};

/// Executes request batches. Stateless between Run() calls; one Engine can
/// be reused freely. Kernel names resolve against the registry given at
/// construction (the global one by default).
class Engine {
 public:
  explicit Engine(
      const EngineOptions& options = {},
      const workloads::KernelRegistry& registry =
          workloads::KernelRegistry::Global());

  /// Validates and runs all requests (each times num_seeds explorations) on
  /// the worker pool and returns results in request order. Throws
  /// std::invalid_argument on an invalid request or unknown kernel; the
  /// first failing job's exception (in job order) is rethrown after all
  /// workers finish.
  BatchResult Run(const std::vector<ExplorationRequest>& requests) const;

  /// Run() under a checkpoint policy: jobs resume from snapshots already in
  /// `checkpoint.directory`, autosave every `interval` steps, suspend after
  /// `step_budget` new steps, and the batch's snapshot files are removed
  /// once every job completed. Throws CheckpointError on malformed or
  /// mismatched snapshot files (before any result is produced) and
  /// std::invalid_argument when checkpointing is combined with
  /// kernel_override requests.
  BatchResult Run(const std::vector<ExplorationRequest>& requests,
                  const CheckpointOptions& checkpoint) const;

  /// Run() with observation/control hooks (see RunHooks): per-job progress
  /// callbacks, cooperative suspension polling, and external shared-cache
  /// provision. Hooks never change logical results.
  BatchResult Run(const std::vector<ExplorationRequest>& requests,
                  const CheckpointOptions& checkpoint,
                  const RunHooks& hooks) const;

  /// Convenience preemption entry: runs each job for at most `step_budget`
  /// NEW steps, then suspends the batch into `directory` (per-job snapshots
  /// plus shared-cache state). The returned BatchResult reports the partial
  /// runs; finish them later with ResumeBatch().
  BatchResult SaveBatchCheckpoint(
      const std::vector<ExplorationRequest>& requests,
      const std::string& directory, std::size_t step_budget) const;

  /// Convenience resume entry: continues a batch previously suspended into
  /// `directory` (jobs without a snapshot start from scratch) and runs it to
  /// completion, after which the directory's snapshot files are removed.
  /// The result is byte-identical to running the batch uninterrupted.
  BatchResult ResumeBatch(const std::vector<ExplorationRequest>& requests,
                          const std::string& directory) const;

  /// Convenience: single-request batch.
  RequestResult RunOne(const ExplorationRequest& request) const;

  /// Scores a list of candidate configurations of ONE kernel identity (the
  /// request names the kernel/size/seed/params; its exploration fields are
  /// ignored) through a single evaluator, lane-parallel: uncached
  /// configurations are grouped into lane passes of up to `lanes`
  /// configurations per kernel traversal (0 = the full
  /// MultiApproxContext::kMaxLanes width, 1 = the sequential scalar path).
  /// Measurements come back in input order and are bit-identical to the
  /// sequential path for any lane width. Throws std::invalid_argument on an
  /// unknown kernel or a configuration that does not fit the kernel's shape.
  std::vector<instrument::Measurement> Score(
      const ExplorationRequest& identity,
      const std::vector<Configuration>& configs, std::size_t lanes = 0) const;

  /// Effective worker count (resolves the 0 = hardware default).
  std::size_t NumWorkers() const noexcept;

 private:
  EngineOptions options_;
  const workloads::KernelRegistry* registry_;
};

}  // namespace axdse::dse
