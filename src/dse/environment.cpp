#include "dse/environment.hpp"

#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace axdse::dse {

AxDseEnvironment::AxDseEnvironment(Evaluator& evaluator,
                                   const RewardConfig& reward,
                                   ActionSpaceKind action_space)
    : evaluator_(&evaluator),
      reward_(reward),
      action_space_(action_space),
      shape_(evaluator.Shape()),
      config_(InitialConfiguration(shape_)) {
  reward_.Validate();
  if (shape_.num_variables == 0)
    throw std::invalid_argument(
        "AxDseEnvironment: kernel exposes no approximable variables");
  last_measurement_ = evaluator_->Evaluate(config_);
}

std::size_t AxDseEnvironment::NumActions() const noexcept {
  return NumActionsFor(action_space_, shape_.num_variables);
}

std::string AxDseEnvironment::ActionName(std::size_t action) const {
  if (action >= NumActions())
    throw std::out_of_range("AxDseEnvironment::ActionName");
  if (action_space_ == ActionSpaceKind::kCompact) {
    switch (action) {
      case 0:
        return "adder+1";
      case 1:
        return "multiplier+1";
      default:
        return "toggle(next)";
    }
  }
  switch (action) {
    case 0:
      return "adder+1";
    case 1:
      return "adder-1";
    case 2:
      return "multiplier+1";
    case 3:
      return "multiplier-1";
    default: {
      const std::size_t var = action - 4;
      return "toggle(" + evaluator_->Kernel().Variables()[var].name + ")";
    }
  }
}

rl::StateId AxDseEnvironment::Reset(std::uint64_t /*seed*/) {
  config_ = InitialConfiguration(shape_);
  round_robin_variable_ = 0;
  last_measurement_ = evaluator_->Evaluate(config_);
  return Intern(config_);
}

void AxDseEnvironment::ApplyAction(std::size_t action) {
  if (action_space_ == ActionSpaceKind::kCompact) {
    switch (action) {
      case 0:
        NextAdder(config_, shape_);
        return;
      case 1:
        NextMultiplier(config_, shape_);
        return;
      case 2:
        config_.ToggleVariable(round_robin_variable_);
        round_robin_variable_ =
            (round_robin_variable_ + 1) % shape_.num_variables;
        return;
      default:
        throw std::out_of_range("AxDseEnvironment::Step: action");
    }
  }
  switch (action) {
    case 0:
      NextAdder(config_, shape_);
      return;
    case 1:
      PrevAdder(config_, shape_);
      return;
    case 2:
      NextMultiplier(config_, shape_);
      return;
    case 3:
      PrevMultiplier(config_, shape_);
      return;
    default: {
      const std::size_t var = action - 4;
      if (var >= shape_.num_variables)
        throw std::out_of_range("AxDseEnvironment::Step: action");
      config_.ToggleVariable(var);
      return;
    }
  }
}

rl::StepResult AxDseEnvironment::Step(std::size_t action) {
  ApplyAction(action);
  last_measurement_ = evaluator_->Evaluate(config_);
  const RewardOutcome outcome =
      ComputeReward(reward_, config_, last_measurement_, shape_);
  rl::StepResult result;
  result.next_state = Intern(config_);
  result.reward = outcome.reward;
  result.terminated = outcome.saturated;
  result.truncated = false;
  return result;
}

AxDseEnvironment::State AxDseEnvironment::GetState() const {
  State state;
  state.config = config_;
  state.measurement = last_measurement_;
  state.round_robin_variable = round_robin_variable_;
  state.interned = states_;
  return state;
}

void AxDseEnvironment::ValidateState(const SpaceShape& shape,
                                     const State& state) {
  if (state.interned.empty())
    throw std::invalid_argument(
        "AxDseEnvironment::ValidateState: no interned configurations");
  if (state.round_robin_variable >= shape.num_variables)
    throw std::invalid_argument(
        "AxDseEnvironment::ValidateState: round-robin variable out of range");
  const auto validate = [&](const Configuration& config) {
    if (!FitsShape(shape, config))
      throw std::invalid_argument(
          "AxDseEnvironment::ValidateState: configuration does not match "
          "the kernel's space");
  };
  validate(state.config);
  std::unordered_set<Configuration, Configuration::Hash> seen;
  seen.reserve(state.interned.size());
  for (const Configuration& config : state.interned) {
    validate(config);
    if (!seen.insert(config).second)
      throw std::invalid_argument(
          "AxDseEnvironment::ValidateState: duplicate interned "
          "configuration");
  }
  if (seen.find(state.config) == seen.end())
    throw std::invalid_argument(
        "AxDseEnvironment::ValidateState: current configuration is not "
        "interned");
}

void AxDseEnvironment::SetState(const State& state) {
  ValidateState(shape_, state);
  std::unordered_map<Configuration, rl::StateId, Configuration::Hash> ids;
  ids.reserve(state.interned.size());
  for (std::size_t i = 0; i < state.interned.size(); ++i)
    ids.emplace(state.interned[i], static_cast<rl::StateId>(i));

  config_ = state.config;
  last_measurement_ = state.measurement;
  round_robin_variable_ = state.round_robin_variable;
  states_ = state.interned;
  ids_ = std::move(ids);
}

rl::StateId AxDseEnvironment::Intern(const Configuration& config) {
  const auto it = ids_.find(config);
  if (it != ids_.end()) return it->second;
  const rl::StateId id = states_.size();
  states_.push_back(config);
  ids_.emplace(config, id);
  return id;
}

const Configuration& AxDseEnvironment::ConfigOfState(rl::StateId state) const {
  if (state >= states_.size())
    throw std::out_of_range("AxDseEnvironment::ConfigOfState");
  return states_[static_cast<std::size_t>(state)];
}

}  // namespace axdse::dse
