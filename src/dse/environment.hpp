#pragma once
// The paper's RL environment (its Figure 1 / Equation 1): the state is
// (adder, multiplier, variables_approx) plus the observed Δacc/Δpower/Δtime;
// actions change the adder type, change the multiplier type, or add/remove
// one variable; rewards follow Algorithm 1.

#include <string>
#include <unordered_map>
#include <vector>

#include "dse/configuration.hpp"
#include "dse/evaluator.hpp"
#include "dse/reward.hpp"
#include "rl/env.hpp"

namespace axdse::dse {

/// How the paper's three action kinds are concretized (DESIGN.md §1).
enum class ActionSpaceKind {
  /// 4 + num_variables actions: adder +1/-1, multiplier +1/-1 (cyclic), and
  /// one toggle action per variable. The default.
  kFull,
  /// Exactly three actions (the paper's literal enumeration): next adder,
  /// next multiplier, toggle the round-robin-next variable.
  kCompact,
};

/// Action count `kind` induces over `num_variables` approximable variables.
/// The single source of truth for the environment's action space — also
/// used by the checkpoint resume path, which rebuilds agents before an
/// environment exists.
constexpr std::size_t NumActionsFor(ActionSpaceKind kind,
                                    std::size_t num_variables) noexcept {
  return kind == ActionSpaceKind::kFull ? 4 + num_variables : 3;
}

/// Gymnasium-style environment over the approximate-configuration space of
/// one kernel. States are interned configuration ids; the full observation
/// (configuration + measured deltas) is available via ConfigOfState() /
/// LastMeasurement().
class AxDseEnvironment final : public rl::Env {
 public:
  /// The evaluator must outlive the environment.
  /// Throws std::invalid_argument on invalid reward config.
  AxDseEnvironment(Evaluator& evaluator, const RewardConfig& reward,
                   ActionSpaceKind action_space = ActionSpaceKind::kFull);

  /// Returns to the all-precise configuration.
  rl::StateId Reset(std::uint64_t seed) override;

  /// Applies the action, evaluates the new configuration, and rewards it per
  /// Algorithm 1. `terminated` mirrors the algorithm's saturation flag.
  rl::StepResult Step(std::size_t action) override;

  std::size_t NumActions() const noexcept override;

  /// Name of an action (for traces), e.g. "adder+1" or "toggle(x)".
  std::string ActionName(std::size_t action) const;

  /// The configuration the environment is currently in.
  const Configuration& CurrentConfig() const noexcept { return config_; }

  /// Observations for the current configuration (Δacc, Δpower, Δtime...).
  const instrument::Measurement& LastMeasurement() const noexcept {
    return last_measurement_;
  }

  /// Configuration interned under `state`. Throws std::out_of_range for ids
  /// never produced by this environment.
  const Configuration& ConfigOfState(rl::StateId state) const;

  /// Number of distinct configurations visited (interned states).
  std::size_t NumInternedStates() const noexcept { return states_.size(); }

  const RewardConfig& Reward() const noexcept { return reward_; }
  const SpaceShape& Shape() const noexcept { return shape_; }
  ActionSpaceKind ActionSpace() const noexcept { return action_space_; }

  /// Snapshot of the environment's mutable exploration state (for
  /// dse::Checkpoint). `interned` lists every visited configuration in
  /// StateId order — resumed Q-tables key on those ids, so the interning
  /// order must be restored verbatim.
  struct State {
    Configuration config;
    instrument::Measurement measurement;
    std::size_t round_robin_variable = 0;
    std::vector<Configuration> interned;
  };

  State GetState() const;

  /// Checks that `state` is restorable into a space of shape `shape`:
  /// every configuration fits, `interned` is non-empty, duplicate-free, and
  /// contains `config`, and the round-robin pointer is in range. Throws
  /// std::invalid_argument otherwise. The single validator behind
  /// SetState() — the checkpoint resume path calls it up front (before an
  /// environment exists) so a bad snapshot can be rejected before anything
  /// is mutated.
  static void ValidateState(const SpaceShape& shape, const State& state);

  /// Restores a snapshot taken by GetState(), after ValidateState(). The
  /// stored measurement is trusted verbatim — re-evaluating here would
  /// distort cache statistics that the checkpoint restores separately.
  /// Throws std::invalid_argument on an invalid snapshot; the environment
  /// is only modified once everything validated.
  void SetState(const State& state);

 private:
  rl::StateId Intern(const Configuration& config);
  void ApplyAction(std::size_t action);

  Evaluator* evaluator_;
  RewardConfig reward_;
  ActionSpaceKind action_space_;
  SpaceShape shape_;
  Configuration config_;
  instrument::Measurement last_measurement_;
  std::vector<Configuration> states_;
  std::unordered_map<Configuration, rl::StateId, Configuration::Hash> ids_;
  std::size_t round_robin_variable_ = 0;
};

}  // namespace axdse::dse
