#include "dse/evaluator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace axdse::dse {

Evaluator::Evaluator(
    const workloads::Kernel& kernel,
    std::shared_ptr<instrument::SharedEvaluationCache> shared_cache)
    : kernel_(&kernel),
      energy_(kernel.Operators()),
      context_(kernel.Operators(), kernel.NumVariables()),
      shape_(ShapeOf(kernel.Operators(), kernel.NumVariables())),
      shared_cache_(std::move(shared_cache)) {
  // Golden run: all-precise configuration. Always executed locally — the
  // golden outputs are the accuracy baseline every later Evaluate() needs,
  // so a shared cache cannot stand in for this run.
  context_.Configure(InitialConfiguration(shape_));
  precise_outputs_ = kernel_->Run(context_);
  ++kernel_runs_;
  if (precise_outputs_.empty())
    throw std::invalid_argument("Evaluator: kernel produced no outputs");
  double abs_sum = 0.0;
  for (const double v : precise_outputs_) abs_sum += std::abs(v);
  mean_abs_output_ = abs_sum / static_cast<double>(precise_outputs_.size());
  const energy::CostEstimate precise_cost =
      energy_.PreciseCost(context_.Counts());
  precise_power_mw_ = precise_cost.power_mw;
  precise_time_ns_ = precise_cost.time_ns;

  // Seed the private cache with the golden configuration so the all-precise
  // point is never executed twice. (Private only: every evaluator of a
  // shared group seeds its own, so a shared golden entry would never be
  // read — it would just waste a slot of a capacity-bounded cache.)
  instrument::Measurement golden;
  golden.counts = context_.Counts();
  golden.precise_power_mw = precise_power_mw_;
  golden.precise_time_ns = precise_time_ns_;
  golden.approx_power_mw = precise_power_mw_;
  golden.approx_time_ns = precise_time_ns_;
  cache_.Insert(InitialConfiguration(shape_), golden);
}

instrument::Measurement Evaluator::Measure(const Configuration& config) {
  context_.Configure(config);
  const std::vector<double> outputs = kernel_->Run(context_);
  ++kernel_runs_;
  return BuildMeasurement(config, context_.Counts(), outputs);
}

instrument::Measurement Evaluator::BuildMeasurement(
    const Configuration& config, const energy::OpCounts& counts,
    std::span<const double> outputs) const {
  instrument::Measurement m;
  m.counts = counts;
  m.delta_acc = kernel_->AccuracyError(precise_outputs_, outputs);
  const energy::CostEstimate approx_cost =
      energy_.Cost(m.counts, config.AdderIndex(), config.MultiplierIndex());
  m.approx_power_mw = approx_cost.power_mw;
  m.approx_time_ns = approx_cost.time_ns;
  m.precise_power_mw = precise_power_mw_;
  m.precise_time_ns = precise_time_ns_;
  m.delta_power_mw = precise_power_mw_ - approx_cost.power_mw;
  m.delta_time_ns = precise_time_ns_ - approx_cost.time_ns;
  return m;
}

std::vector<instrument::Measurement> Evaluator::RunLanesBatch(
    const std::vector<Configuration>& pending) {
  std::vector<instrument::Measurement> measured(pending.size());
  if (pending.size() == 1) {
    measured[0] = Measure(pending[0]);
  } else {
    if (!multi_context_)
      multi_context_ = std::make_unique<instrument::MultiApproxContext>(
          kernel_->Operators(), kernel_->NumVariables());
    multi_context_->Configure(pending);
    const std::vector<double> outputs = kernel_->RunLanes(*multi_context_);
    // KernelRuns() counts per-configuration scoring work (the checkpoint /
    // determinism invariant), not physical passes.
    kernel_runs_ += pending.size();
    const std::size_t out_size = outputs.size() / pending.size();
    for (std::size_t j = 0; j < pending.size(); ++j)
      measured[j] = BuildMeasurement(
          pending[j], multi_context_->Counts(j),
          std::span<const double>(outputs).subspan(j * out_size, out_size));
  }
  for (std::size_t j = 0; j < pending.size(); ++j) {
    cache_.Insert(pending[j], measured[j]);
    if (shared_cache_) shared_cache_->Insert(pending[j], measured[j]);
  }
  return measured;
}

std::vector<instrument::Measurement> Evaluator::MultiEvaluate(
    const std::vector<Configuration>& configs) {
  std::vector<instrument::Measurement> results(configs.size());
  // Sequential fallback: the surrogate's skip/observe decisions are coupled
  // to evaluation order, and a kernel without lane support gains nothing.
  if (surrogate_ || !kernel_->SupportsLanes()) {
    for (std::size_t i = 0; i < configs.size(); ++i)
      results[i] = Evaluate(configs[i]);
    return results;
  }
  std::vector<Configuration> pending;
  std::vector<std::size_t> pending_idx;
  pending.reserve(instrument::MultiApproxContext::kMaxLanes);
  const auto flush = [&] {
    if (pending.empty()) return;
    const std::vector<instrument::Measurement> measured =
        RunLanesBatch(pending);
    for (std::size_t j = 0; j < pending.size(); ++j)
      results[pending_idx[j]] = measured[j];
    pending.clear();
    pending_idx.clear();
  };
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Configuration& config = configs[i];
    if (!FitsShape(shape_, config))
      throw std::invalid_argument(
          "Evaluator::MultiEvaluate: configuration does not match the "
          "kernel's space (variable count or operator index out of range)");
    // A repeat of a pending lane must observe that lane's insert first, so
    // its Lookup below is a private hit exactly as in the sequential path.
    bool repeat = false;
    for (const Configuration& p : pending)
      if (p == config) {
        repeat = true;
        break;
      }
    if (repeat) flush();
    if (const auto cached = cache_.Lookup(config); cached.has_value()) {
      results[i] = *cached;
      continue;
    }
    if (shared_cache_) {
      if (const auto hit = shared_cache_->Lookup(config); hit.has_value()) {
        ++shared_hits_;
        cache_.Insert(config, *hit);
        results[i] = *hit;
        continue;
      }
    }
    pending.push_back(config);
    pending_idx.push_back(i);
    if (pending.size() == instrument::MultiApproxContext::kMaxLanes) flush();
  }
  flush();
  return results;
}

std::vector<instrument::Measurement> Evaluator::GroundTruthMany(
    const std::vector<Configuration>& configs) {
  std::vector<instrument::Measurement> results(configs.size());
  if (!kernel_->SupportsLanes()) {
    for (std::size_t i = 0; i < configs.size(); ++i)
      results[i] = GroundTruth(configs[i]);
    return results;
  }
  // Drops the surrogate prediction for a freshly ground-truthed
  // configuration — the scalar GroundTruth()'s epilogue, applied per
  // configuration in batch order.
  const auto invalidate = [&](const Configuration& config) {
    if (surrogate_ && surrogate_->Lookup(config) != nullptr) {
      surrogate_->Invalidate(config);
      if (kernel_runs_deferred_ > 0) --kernel_runs_deferred_;
    }
  };
  std::vector<Configuration> pending;
  std::vector<std::size_t> pending_idx;
  pending.reserve(instrument::MultiApproxContext::kMaxLanes);
  const auto flush = [&] {
    if (pending.empty()) return;
    const std::vector<instrument::Measurement> measured =
        RunLanesBatch(pending);
    for (std::size_t j = 0; j < pending.size(); ++j) {
      results[pending_idx[j]] = measured[j];
      invalidate(pending[j]);
    }
    pending.clear();
    pending_idx.clear();
  };
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Configuration& config = configs[i];
    if (!FitsShape(shape_, config))
      throw std::invalid_argument(
          "Evaluator::GroundTruthMany: configuration does not match the "
          "kernel's space");
    bool repeat = false;
    for (const Configuration& p : pending)
      if (p == config) {
        repeat = true;
        break;
      }
    if (repeat) flush();
    // A private-cache hit is already ground truth (predictions are memoized
    // in the surrogate, never in the private memo) — same early return, no
    // invalidation, as the scalar GroundTruth().
    if (const auto cached = cache_.Lookup(config); cached.has_value()) {
      results[i] = *cached;
      continue;
    }
    if (shared_cache_) {
      if (const auto hit = shared_cache_->Lookup(config); hit.has_value()) {
        ++shared_hits_;
        cache_.Insert(config, *hit);
        results[i] = *hit;
        invalidate(config);
        continue;
      }
    }
    pending.push_back(config);
    pending_idx.push_back(i);
    if (pending.size() == instrument::MultiApproxContext::kMaxLanes) flush();
  }
  flush();
  return results;
}

void Evaluator::EnableSurrogate(double acc_threshold,
                                const SurrogateOptions& options) {
  if (surrogate_)
    throw std::logic_error("Evaluator::EnableSurrogate: already enabled");
  surrogate_ = std::make_unique<SurrogateModel>(
      shape_, acc_threshold, energy_, precise_power_mw_, precise_time_ns_,
      options);
}

bool Evaluator::IsPredicted(const Configuration& config) const {
  return surrogate_ && surrogate_->Lookup(config) != nullptr;
}

instrument::Measurement Evaluator::GroundTruth(const Configuration& config) {
  if (!FitsShape(shape_, config))
    throw std::invalid_argument(
        "Evaluator::GroundTruth: configuration does not match the kernel's "
        "space");
  if (const auto cached = cache_.Lookup(config); cached.has_value())
    return *cached;
  const instrument::Measurement m = ComputeAndCache(config);
  if (surrogate_ && surrogate_->Lookup(config) != nullptr) {
    surrogate_->Invalidate(config);
    if (kernel_runs_deferred_ > 0) --kernel_runs_deferred_;
  }
  return m;
}

Evaluator::CacheState Evaluator::CaptureCacheState() const {
  CacheState state;
  state.entries.reserve(cache_.Entries().size());
  for (const auto& [config, measurement] : cache_.Entries())
    state.entries.emplace_back(config, measurement);
  state.kernel_runs = kernel_runs_;
  state.cache_hits = cache_.Hits();
  state.cache_misses = cache_.Misses();
  state.shared_hits = shared_hits_;
  state.surrogate.enabled = surrogate_ != nullptr;
  state.surrogate.hits = surrogate_hits_;
  state.surrogate.deferred = kernel_runs_deferred_;
  if (surrogate_) state.surrogate.model = surrogate_->CaptureState();
  return state;
}

void Evaluator::PrewarmCache(
    const std::vector<std::pair<Configuration, instrument::Measurement>>&
        entries) {
  // Validate everything first: a throw must leave the memo untouched.
  for (const auto& [config, measurement] : entries) {
    (void)measurement;
    if (!FitsShape(shape_, config))
      throw std::invalid_argument(
          "Evaluator::PrewarmCache: entry does not match the kernel's "
          "configuration space");
  }
  for (const auto& [config, measurement] : entries)
    cache_.Insert(config, measurement);
}

void Evaluator::RestoreCounters(std::size_t kernel_runs,
                                std::size_t cache_hits,
                                std::size_t cache_misses,
                                std::size_t shared_hits) {
  kernel_runs_ = kernel_runs;
  shared_hits_ = shared_hits;
  cache_.RestoreStats(cache_hits, cache_misses);
}

void Evaluator::RestoreSurrogate(const CacheState::SurrogateState& state) {
  if (state.enabled != (surrogate_ != nullptr))
    throw std::invalid_argument(
        "Evaluator::RestoreSurrogate: snapshot surrogate enablement does not "
        "match this evaluator");
  surrogate_hits_ = state.hits;
  kernel_runs_deferred_ = state.deferred;
  if (!surrogate_) return;
  surrogate_->RestoreState(
      state.model, [this](const Configuration& config) {
        const auto cached = cache_.Lookup(config);
        if (!cached.has_value())
          throw std::invalid_argument(
              "Evaluator::RestoreSurrogate: observation is missing from the "
              "restored memo");
        return *cached;
      });
}

instrument::Measurement Evaluator::ComputeAndCache(const Configuration& config) {
  instrument::Measurement m;
  if (shared_cache_) {
    bool computed = false;
    m = shared_cache_->FetchOrCompute(
        config, [&] { return Measure(config); }, &computed);
    if (!computed) ++shared_hits_;
  } else {
    m = Measure(config);
  }
  cache_.Insert(config, m);
  return m;
}

instrument::Measurement Evaluator::Evaluate(const Configuration& config) {
  if (!FitsShape(shape_, config))
    throw std::invalid_argument(
        "Evaluator::Evaluate: configuration does not match the kernel's "
        "space (variable count or operator index out of range)");

  // Private cache first: repeat visits along this exploration's own path
  // never touch the shared shards (keeps contention to genuinely new work).
  if (const auto cached = cache_.Lookup(config); cached.has_value())
    return *cached;

  // Surrogate tier. The skip decision happens BEFORE the shared cache is
  // consulted, from job-local state only — whether another worker already
  // computed this configuration must not influence this run's trajectory.
  if (surrogate_) {
    if (const instrument::Measurement* predicted = surrogate_->Lookup(config)) {
      ++surrogate_hits_;
      return *predicted;
    }
    instrument::Measurement predicted;
    if (surrogate_->TrySkip(config, &predicted)) {
      ++surrogate_hits_;
      ++kernel_runs_deferred_;
      return predicted;
    }
  }

  const instrument::Measurement m = ComputeAndCache(config);
  if (surrogate_) surrogate_->Observe(config, m);
  return m;
}

}  // namespace axdse::dse
