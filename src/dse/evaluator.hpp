#pragma once
// Deterministic configuration evaluator: runs the instrumented kernel under a
// configuration and produces the paper's observations (Δacc per Eq. 2,
// Δpower, Δtime from the per-op characterization), memoized per
// configuration.

#include <vector>

#include "dse/configuration.hpp"
#include "energy/energy_model.hpp"
#include "instrument/evaluation_cache.hpp"
#include "instrument/measurement.hpp"
#include "workloads/kernel.hpp"

namespace axdse::dse {

/// Evaluates configurations for one kernel. Owns the context, the energy
/// model, the golden (precise) run, and the evaluation cache.
/// Not thread-safe; use one Evaluator per exploration.
class Evaluator {
 public:
  /// Runs the precise version once to capture golden outputs, op counts,
  /// and precise power/time. The kernel must outlive the evaluator.
  explicit Evaluator(const workloads::Kernel& kernel);

  /// Measures `config` (cache-backed). Throws std::invalid_argument if the
  /// configuration shape does not match the kernel.
  instrument::Measurement Evaluate(const Configuration& config);

  /// The kernel being explored.
  const workloads::Kernel& Kernel() const noexcept { return *kernel_; }

  /// Shape of this kernel's configuration space.
  const SpaceShape& Shape() const noexcept { return shape_; }

  /// Mean of |precise output| — the basis of the paper's accuracy threshold
  /// (acc_th = 0.4 x average precise output).
  double MeanAbsPreciseOutput() const noexcept { return mean_abs_output_; }

  /// Cost of the precise run under the additive per-op model.
  double PrecisePowerMw() const noexcept { return precise_power_mw_; }
  double PreciseTimeNs() const noexcept { return precise_time_ns_; }

  /// Golden outputs (for reporting / tests).
  const std::vector<double>& PreciseOutputs() const noexcept {
    return precise_outputs_;
  }

  /// Number of actual kernel executions (distinct configurations).
  std::size_t KernelRuns() const noexcept { return kernel_runs_; }

  /// Number of cache hits across Evaluate() calls.
  std::size_t CacheHits() const noexcept { return cache_.Hits(); }

 private:
  const workloads::Kernel* kernel_;
  energy::EnergyModel energy_;
  instrument::ApproxContext context_;
  SpaceShape shape_;
  std::vector<double> precise_outputs_;
  double mean_abs_output_ = 0.0;
  double precise_power_mw_ = 0.0;
  double precise_time_ns_ = 0.0;
  instrument::EvaluationCache cache_;
  std::size_t kernel_runs_ = 0;
};

}  // namespace axdse::dse
