#pragma once
// Deterministic configuration evaluator: runs the instrumented kernel under a
// configuration and produces the paper's observations (Δacc per Eq. 2,
// Δpower, Δtime from the per-op characterization), memoized per
// configuration.

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "dse/configuration.hpp"
#include "dse/surrogate.hpp"
#include "energy/energy_model.hpp"
#include "instrument/evaluation_cache.hpp"
#include "instrument/measurement.hpp"
#include "instrument/multi_approx_context.hpp"
#include "instrument/shared_evaluation_cache.hpp"
#include "workloads/kernel.hpp"

namespace axdse::dse {

/// Evaluates configurations for one kernel. Owns the context, the energy
/// model, the golden (precise) run, and a private evaluation cache; an
/// external SharedEvaluationCache can be layered behind the private one so
/// concurrent evaluators of the same kernel identity reuse each other's
/// kernel runs. Not thread-safe; use one Evaluator per exploration (the
/// shared cache itself is fully thread-safe).
class Evaluator {
 public:
  /// Runs the precise version once to capture golden outputs, op counts,
  /// and precise power/time. The kernel must outlive the evaluator.
  /// `shared_cache`, when non-null, is consulted on private-cache misses
  /// and must be dedicated to this kernel identity (same name, size, seed,
  /// and extras — the Engine guarantees this); sharing a cache between
  /// different kernels would serve measurements of the wrong workload.
  explicit Evaluator(
      const workloads::Kernel& kernel,
      std::shared_ptr<instrument::SharedEvaluationCache> shared_cache =
          nullptr);

  /// Measures `config` (cache-backed). Throws std::invalid_argument if the
  /// configuration shape does not match the kernel.
  ///
  /// With the surrogate tier enabled the answer may be a PREDICTED
  /// measurement (see dse/surrogate.hpp): Δpower/Δtime exact, Δacc a
  /// confident over-threshold prediction. Predicted answers are memoized —
  /// repeat visits return the same bytes — and IsPredicted() tells them
  /// apart from ground truth.
  instrument::Measurement Evaluate(const Configuration& config);

  /// Scores a batch of sibling configurations, lane-parallel where
  /// profitable: uncached configurations are collected into groups of up to
  /// MultiApproxContext::kMaxLanes and scored in ONE kernel pass each, with
  /// per-lane counts/outputs bit-identical to the scalar path — so every
  /// returned Measurement, the private-cache contents, and the
  /// hit/miss/KernelRuns() counters are exactly what the equivalent
  /// sequential Evaluate() loop would have produced. (KernelRuns() counts
  /// per-configuration scoring work: a lane pass over k configurations
  /// counts k, keeping checkpoint/determinism invariants intact.)
  ///
  /// Falls back to the sequential loop verbatim when the surrogate tier is
  /// enabled (its skip/observe decisions are order-coupled) or the kernel
  /// has no lane support. With a shared cache attached, batch lanes consult
  /// it up front and publish results with Insert() instead of coordinating
  /// through FetchOrCompute(); shared-tier statistics were already
  /// scheduling-dependent and stay that way.
  std::vector<instrument::Measurement> MultiEvaluate(
      const std::vector<Configuration>& configs);

  /// GroundTruth() over a batch, lane-parallel where profitable. Safe (and
  /// useful) with the surrogate enabled: ground-truthing never feeds
  /// Observe(), so batching preserves the scalar sequence's surrogate
  /// bookkeeping exactly — predictions are invalidated and
  /// KernelRunsDeferred() decremented per configuration, in order.
  std::vector<instrument::Measurement> GroundTruthMany(
      const std::vector<Configuration>& configs);

  /// Enables the surrogate tier (idempotent re-enable is an error). Must be
  /// called on a fresh evaluator, before the first Evaluate(), with the
  /// run's accuracy threshold (RewardConfig::acc_threshold).
  void EnableSurrogate(double acc_threshold,
                       const SurrogateOptions& options = {});

  bool SurrogateEnabled() const noexcept { return surrogate_ != nullptr; }

  /// True when Evaluate(config) is currently answered by a surrogate
  /// prediction rather than a real kernel run.
  bool IsPredicted(const Configuration& config) const;

  /// Forces a real measurement of `config` (the correctness valve): runs the
  /// kernel (or consults the caches) even if the surrogate predicted it, and
  /// drops the prediction so every later Evaluate() returns ground truth.
  instrument::Measurement GroundTruth(const Configuration& config);

  /// Evaluate() calls answered by the surrogate tier (first-time skips and
  /// memoized repeat visits). Deterministic per run.
  std::size_t SurrogateHits() const noexcept { return surrogate_hits_; }

  /// Distinct configurations skipped by the surrogate and (still) never
  /// executed — the kernel runs saved. GroundTruth() decrements.
  std::size_t KernelRunsDeferred() const noexcept {
    return kernel_runs_deferred_;
  }

  /// The kernel being explored.
  const workloads::Kernel& Kernel() const noexcept { return *kernel_; }

  /// Shape of this kernel's configuration space.
  const SpaceShape& Shape() const noexcept { return shape_; }

  /// Mean of |precise output| — the basis of the paper's accuracy threshold
  /// (acc_th = 0.4 x average precise output).
  double MeanAbsPreciseOutput() const noexcept { return mean_abs_output_; }

  /// Cost of the precise run under the additive per-op model.
  double PrecisePowerMw() const noexcept { return precise_power_mw_; }
  double PreciseTimeNs() const noexcept { return precise_time_ns_; }

  /// Golden outputs (for reporting / tests).
  const std::vector<double>& PreciseOutputs() const noexcept {
    return precise_outputs_;
  }

  /// Number of actual kernel executions by THIS evaluator. Without a shared
  /// cache this equals DistinctEvaluations(); with one it is lower (shared
  /// hits replace executions) and depends on scheduling.
  std::size_t KernelRuns() const noexcept { return kernel_runs_; }

  /// Number of private-cache hits across Evaluate() calls (deterministic —
  /// repeat visits along this evaluator's own exploration path).
  std::size_t CacheHits() const noexcept { return cache_.Hits(); }

  /// Evaluations answered by the shared cache (0 without one).
  std::size_t SharedHits() const noexcept { return shared_hits_; }

  /// Distinct configurations this evaluator evaluated — the kernel runs a
  /// private-cache evaluator would have executed. Identical across cache
  /// modes and worker counts; KernelRuns() + SharedHits().
  std::size_t DistinctEvaluations() const noexcept {
    return kernel_runs_ + shared_hits_;
  }

  /// The external cache handle (null when running privately).
  const instrument::SharedEvaluationCache* SharedCache() const noexcept {
    return shared_cache_.get();
  }

  /// Snapshot of the evaluator's mutable state (for dse::Checkpoint): the
  /// private memo entries plus every counter a resumed run must reproduce.
  struct CacheState {
    std::vector<std::pair<Configuration, instrument::Measurement>> entries;
    std::size_t kernel_runs = 0;
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t shared_hits = 0;

    /// Surrogate-tier state riding along with the memo snapshot. `model` is
    /// only meaningful when `enabled`.
    struct SurrogateState {
      bool enabled = false;
      std::size_t hits = 0;
      std::size_t deferred = 0;
      SurrogateModel::State model;
    };
    SurrogateState surrogate;
  };

  /// Captures the current memo contents and counters. Entry order is
  /// unspecified — the checkpoint serializer sorts.
  CacheState CaptureCacheState() const;

  /// Inserts memo entries without touching any counter (Insert() does not
  /// count as a hit or miss). Called BEFORE the environment is rebuilt on
  /// resume so its constructor evaluation is a private hit — it must never
  /// reach the shared cache, whose statistics would drift.
  void PrewarmCache(
      const std::vector<std::pair<Configuration, instrument::Measurement>>&
          entries);

  /// Overwrites the counters with checkpointed values. Called LAST on
  /// resume, after the rebuild evaluations above bumped them.
  void RestoreCounters(std::size_t kernel_runs, std::size_t cache_hits,
                       std::size_t cache_misses, std::size_t shared_hits);

  /// Restores the surrogate tier from a snapshot: replays the observation
  /// sequence against the (already prewarmed) private memo so the model
  /// refits exactly as the original run did, then installs the memoized
  /// predictions and counters. The enablement flag must match
  /// SurrogateEnabled() and every observation must be present in the memo
  /// (the resume path pre-validates both); violations throw
  /// std::invalid_argument. Call after PrewarmCache(), before
  /// RestoreCounters().
  void RestoreSurrogate(const CacheState::SurrogateState& state);

 private:
  /// Runs the kernel under `config` and builds the measurement (the
  /// cache-miss path; increments kernel_runs_).
  instrument::Measurement Measure(const Configuration& config);

  /// Derives a Measurement from one configuration's op counts and outputs
  /// (shared by the scalar and the lane-parallel compute paths).
  instrument::Measurement BuildMeasurement(const Configuration& config,
                                           const energy::OpCounts& counts,
                                           std::span<const double> outputs) const;

  /// Scores `pending` (1..kMaxLanes distinct uncached configurations) in one
  /// lane-parallel kernel pass (scalar Measure() for a single lane), inserts
  /// each measurement into the private — and, when attached, shared — cache
  /// in lane order, and returns the measurements in the same order.
  std::vector<instrument::Measurement> RunLanesBatch(
      const std::vector<Configuration>& pending);

  const workloads::Kernel* kernel_;
  energy::EnergyModel energy_;
  instrument::ApproxContext context_;
  SpaceShape shape_;
  std::vector<double> precise_outputs_;
  double mean_abs_output_ = 0.0;
  double precise_power_mw_ = 0.0;
  double precise_time_ns_ = 0.0;
  /// Ground-truths `config` on a private-cache miss (shared cache first when
  /// attached) and inserts the result into the private memo.
  instrument::Measurement ComputeAndCache(const Configuration& config);

  instrument::EvaluationCache cache_;
  std::shared_ptr<instrument::SharedEvaluationCache> shared_cache_;
  // Lane-parallel context, built on the first multi-lane batch.
  std::unique_ptr<instrument::MultiApproxContext> multi_context_;
  std::size_t kernel_runs_ = 0;
  std::size_t shared_hits_ = 0;
  std::unique_ptr<SurrogateModel> surrogate_;
  std::size_t surrogate_hits_ = 0;
  std::size_t kernel_runs_deferred_ = 0;
};

}  // namespace axdse::dse
