#include "dse/explorer.hpp"

#include <cassert>
#include <stdexcept>

#include "dse/baselines.hpp"

namespace axdse::dse {

std::unique_ptr<rl::Agent> MakeAgent(AgentKind kind, std::size_t num_actions,
                                     const rl::AgentConfig& config,
                                     double lambda, std::uint64_t seed) {
  switch (kind) {
    case AgentKind::kQLearning:
      return std::make_unique<rl::QLearningAgent>(num_actions, config, seed);
    case AgentKind::kSarsa:
      return std::make_unique<rl::SarsaAgent>(num_actions, config, seed);
    case AgentKind::kExpectedSarsa:
      return std::make_unique<rl::ExpectedSarsaAgent>(num_actions, config,
                                                      seed);
    case AgentKind::kDoubleQ:
      return std::make_unique<rl::DoubleQLearningAgent>(num_actions, config,
                                                        seed);
    case AgentKind::kQLambda:
      return std::make_unique<rl::QLambdaAgent>(num_actions, config, lambda,
                                                seed);
  }
  throw std::invalid_argument("MakeAgent: unknown agent kind");
}

const char* ToString(AgentKind kind) noexcept {
  switch (kind) {
    case AgentKind::kQLearning:
      return "q-learning";
    case AgentKind::kSarsa:
      return "sarsa";
    case AgentKind::kExpectedSarsa:
      return "expected-sarsa";
    case AgentKind::kDoubleQ:
      return "double-q";
    case AgentKind::kQLambda:
      return "q-lambda";
  }
  return "unknown";
}

Explorer::Explorer(Evaluator& evaluator, const RewardConfig& reward,
                   const ExplorerConfig& config)
    : evaluator_(&evaluator), reward_(reward), config_(config) {
  assert(evaluator_ != nullptr);  // the evaluator reference must stay alive
  reward_.Validate();
  if (config_.episodes == 0)
    throw std::invalid_argument("Explorer: episodes == 0");
}

ExplorationResult Explorer::Explore() {
  AxDseEnvironment env(*evaluator_, reward_, config_.action_space);
  const std::unique_ptr<rl::Agent> agent = MakeAgent(
      config_.agent_kind, env.NumActions(), config_.agent, config_.lambda,
      config_.seed);

  ExplorationResult result;
  result.episodes = config_.episodes;

  const auto consider_best = [&](const Configuration& config,
                                 const instrument::Measurement& m) {
    if (m.delta_acc > reward_.acc_threshold) return;
    const double objective = BaselineObjective(reward_, m);
    if (!result.has_best_feasible ||
        objective >
            BaselineObjective(reward_, result.best_feasible_measurement)) {
      result.has_best_feasible = true;
      result.best_feasible = config;
      result.best_feasible_measurement = m;
    }
  };

  double cumulative = 0.0;
  std::size_t global_step = 0;
  const rl::StepCallback on_step = [&](std::size_t /*episode_step*/,
                                       rl::StateId /*state*/,
                                       std::size_t action,
                                       const rl::StepResult& sr) {
    const instrument::Measurement& m = env.LastMeasurement();
    cumulative += sr.reward;
    result.delta_power.Update(m.delta_power_mw);
    result.delta_time.Update(m.delta_time_ns);
    result.delta_acc.Update(m.delta_acc);
    consider_best(env.CurrentConfig(), m);
    if (config_.record_trace) {
      StepRecord record;
      record.step = global_step;
      record.action = action;
      record.reward = sr.reward;
      record.cumulative_reward = cumulative;
      record.config = env.CurrentConfig();
      record.measurement = m;
      result.trace.push_back(std::move(record));
    }
    ++global_step;
  };

  rl::TrainOptions options;
  options.max_steps = config_.max_steps;
  options.stop_at_cumulative_reward = config_.max_cumulative_reward;

  for (std::size_t episode = 0; episode < config_.episodes; ++episode) {
    const rl::TrainResult train = rl::RunEpisode(
        env, *agent, options, config_.seed + episode, on_step);
    result.steps += train.steps;
    result.stop_reason = train.stop_reason;
    result.cumulative_reward += train.cumulative_reward;
    result.rewards.insert(result.rewards.end(), train.rewards.begin(),
                          train.rewards.end());
  }

  result.solution = env.CurrentConfig();
  result.solution_measurement = env.LastMeasurement();

  // Optional greedy rollout: follow the learned policy without exploration
  // and fold the visited configurations into the best-feasible tracking.
  if (config_.greedy_rollout_steps > 0) {
    rl::StateId state = env.Reset(config_.seed);
    for (std::size_t i = 0; i < config_.greedy_rollout_steps; ++i) {
      const std::size_t action = agent->Table().GreedyAction(state);
      const rl::StepResult sr = env.Step(action);
      consider_best(env.CurrentConfig(), env.LastMeasurement());
      state = sr.next_state;
      if (sr.terminated) break;
    }
  }

  const axc::OperatorSet& ops = evaluator_->Kernel().Operators();
  result.solution_adder = ops.adders[result.solution.AdderIndex()].type_code;
  result.solution_multiplier =
      ops.multipliers[result.solution.MultiplierIndex()].type_code;
  result.kernel_runs = evaluator_->DistinctEvaluations();
  result.cache_hits = evaluator_->CacheHits();
  result.kernel_runs_executed = evaluator_->KernelRuns();
  result.shared_cache_hits = evaluator_->SharedHits();
  return result;
}

ExplorationResult ExploreKernel(const workloads::Kernel& kernel,
                                const ExplorerConfig& config,
                                const PaperThresholdFactors& factors) {
  Evaluator evaluator(kernel);
  const RewardConfig reward = MakePaperRewardConfig(evaluator, factors);
  Explorer explorer(evaluator, reward, config);
  return explorer.Explore();
}

}  // namespace axdse::dse
