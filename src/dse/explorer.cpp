#include "dse/explorer.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "dse/baselines.hpp"
#include "dse/checkpoint.hpp"

namespace axdse::dse {

std::unique_ptr<rl::Agent> MakeAgent(AgentKind kind, std::size_t num_actions,
                                     const rl::AgentConfig& config,
                                     double lambda, std::uint64_t seed) {
  switch (kind) {
    case AgentKind::kQLearning:
      return std::make_unique<rl::QLearningAgent>(num_actions, config, seed);
    case AgentKind::kSarsa:
      return std::make_unique<rl::SarsaAgent>(num_actions, config, seed);
    case AgentKind::kExpectedSarsa:
      return std::make_unique<rl::ExpectedSarsaAgent>(num_actions, config,
                                                      seed);
    case AgentKind::kDoubleQ:
      return std::make_unique<rl::DoubleQLearningAgent>(num_actions, config,
                                                        seed);
    case AgentKind::kQLambda:
      return std::make_unique<rl::QLambdaAgent>(num_actions, config, lambda,
                                                seed);
  }
  throw std::invalid_argument("MakeAgent: unknown agent kind");
}

const char* ToString(AgentKind kind) noexcept {
  switch (kind) {
    case AgentKind::kQLearning:
      return "q-learning";
    case AgentKind::kSarsa:
      return "sarsa";
    case AgentKind::kExpectedSarsa:
      return "expected-sarsa";
    case AgentKind::kDoubleQ:
      return "double-q";
    case AgentKind::kQLambda:
      return "q-lambda";
  }
  return "unknown";
}

namespace {

/// The historical best-feasible tracking: keep the feasible configuration
/// with the highest normalized-savings objective.
void ConsiderBest(const RewardConfig& reward, ExplorationResult& result,
                  const Configuration& config,
                  const instrument::Measurement& m) {
  if (m.delta_acc > reward.acc_threshold) return;
  const double objective = BaselineObjective(reward, m);
  if (!result.has_best_feasible ||
      objective > BaselineObjective(reward, result.best_feasible_measurement)) {
    result.has_best_feasible = true;
    result.best_feasible = config;
    result.best_feasible_measurement = m;
  }
}

}  // namespace

/// Live exploration state. Mirrors exactly what the historical one-shot
/// Explore() kept in locals, so the incremental loop and the checkpoint
/// subsystem reproduce its behavior bit for bit.
struct Explorer::Run {
  AxDseEnvironment env;
  std::unique_ptr<rl::Agent> agent;
  ExplorationResult result;

  rl::StateId state = 0;           ///< the state the agent acts from next
  std::size_t episode = 0;         ///< episode being executed
  std::size_t episode_steps = 0;   ///< steps taken inside it
  double episode_cumulative = 0.0; ///< reward accumulated inside it
  /// Running reward across ALL episodes — the trace's cumulative column.
  /// Kept separate from result.cumulative_reward (updated per episode) to
  /// preserve the historical floating-point summation order.
  double trace_cumulative = 0.0;
  bool finished = false;

  Run(Evaluator& evaluator, const RewardConfig& reward,
      ActionSpaceKind action_space)
      : env(evaluator, reward, action_space) {}
};

Explorer::Explorer(Evaluator& evaluator, const RewardConfig& reward,
                   const ExplorerConfig& config)
    : evaluator_(&evaluator), reward_(reward), config_(config) {
  assert(evaluator_ != nullptr);  // the evaluator reference must stay alive
  reward_.Validate();
  if (config_.episodes == 0)
    throw std::invalid_argument("Explorer: episodes == 0");
  if (config_.max_steps == 0)
    throw std::invalid_argument("Explorer: max_steps == 0");
}

Explorer::~Explorer() = default;

void Explorer::EnsureStarted() {
  if (consumed_)
    throw std::logic_error("Explorer: the exploration was already finished");
  if (run_) return;
  run_ = std::make_unique<Run>(*evaluator_, reward_, config_.action_space);
  run_->agent = MakeAgent(config_.agent_kind, run_->env.NumActions(),
                          config_.agent, config_.lambda, config_.seed);
  run_->result.episodes = config_.episodes;
  run_->agent->BeginEpisode();
  run_->state = run_->env.Reset(config_.seed);
}

void Explorer::StepOnce() {
  Run& run = *run_;
  const std::size_t action = run.agent->SelectAction(run.state);
  const rl::StepResult sr = run.env.Step(action);
  run.agent->Observe(run.state, action, sr.reward, sr.next_state,
                     sr.terminated);
  run.result.rewards.push_back(sr.reward);
  run.episode_cumulative += sr.reward;
  ++run.episode_steps;

  const instrument::Measurement& m = run.env.LastMeasurement();
  run.trace_cumulative += sr.reward;
  run.result.delta_power.Update(m.delta_power_mw);
  run.result.delta_time.Update(m.delta_time_ns);
  // A surrogate-predicted Δacc is a confident over-threshold guess, not a
  // measurement; its Δpower/Δtime are exact (computed from observed op
  // counts) and fold normally, but the accuracy range only collects ground
  // truth.
  if (!evaluator_->IsPredicted(run.env.CurrentConfig()))
    run.result.delta_acc.Update(m.delta_acc);
  ConsiderBest(reward_, run.result, run.env.CurrentConfig(), m);
  if (config_.record_trace) {
    StepRecord record;
    record.step = run.result.steps;
    record.action = action;
    record.reward = sr.reward;
    record.cumulative_reward = run.trace_cumulative;
    record.config = run.env.CurrentConfig();
    record.measurement = m;
    run.result.trace.push_back(std::move(record));
  }
  ++run.result.steps;
  run.state = sr.next_state;

  // Episode stop conditions, in the trainer's historical precedence.
  bool episode_over = true;
  if (sr.terminated) {
    run.result.stop_reason = rl::StopReason::kTerminated;
  } else if (sr.truncated) {
    run.result.stop_reason = rl::StopReason::kTruncated;
  } else if (run.episode_cumulative >= config_.max_cumulative_reward) {
    run.result.stop_reason = rl::StopReason::kRewardCap;
  } else if (run.episode_steps >= config_.max_steps) {
    run.result.stop_reason = rl::StopReason::kStepLimit;
  } else {
    episode_over = false;
  }
  if (!episode_over) return;

  run.result.cumulative_reward += run.episode_cumulative;
  ++run.episode;
  if (run.episode >= config_.episodes) {
    run.finished = true;
    return;
  }
  // Next episode: the value tables persist, episode-scoped agent state and
  // the environment position reset (same calls the trainer used to make).
  run.episode_steps = 0;
  run.episode_cumulative = 0.0;
  run.agent->BeginEpisode();
  run.state = run.env.Reset(config_.seed + run.episode);
}

bool Explorer::Finished() const noexcept { return run_ && run_->finished; }

std::size_t Explorer::StepsTaken() const noexcept {
  return run_ ? run_->result.steps : 0;
}

double Explorer::CumulativeRewardSoFar() const noexcept {
  if (!run_) return 0.0;
  return run_->result.cumulative_reward + run_->episode_cumulative;
}

const instrument::Measurement* Explorer::BestFeasibleSoFar() const noexcept {
  if (!run_ || !run_->result.has_best_feasible) return nullptr;
  return &run_->result.best_feasible_measurement;
}

std::size_t Explorer::RunSteps(std::size_t max_new_steps) {
  if (max_new_steps == 0)
    throw std::invalid_argument("Explorer::RunSteps: max_new_steps == 0");
  EnsureStarted();
  std::size_t taken = 0;
  while (!run_->finished && taken < max_new_steps) {
    StepOnce();
    ++taken;
  }
  return taken;
}

void Explorer::FillSolutionFields(ExplorationResult& result) const {
  const axc::OperatorSet& ops = evaluator_->Kernel().Operators();
  result.solution_adder = ops.adders[result.solution.AdderIndex()].type_code;
  result.solution_multiplier =
      ops.multipliers[result.solution.MultiplierIndex()].type_code;
  // Recomputed (not cached) so a later call always reflects the CURRENT
  // solution configuration; non-pipeline kernels return an empty vector.
  result.stage_counts = evaluator_->Kernel().StageCounts(result.solution);
  result.kernel_runs = evaluator_->DistinctEvaluations();
  result.cache_hits = evaluator_->CacheHits();
  result.kernel_runs_executed = evaluator_->KernelRuns();
  result.shared_cache_hits = evaluator_->SharedHits();
  result.surrogate_hits = evaluator_->SurrogateHits();
  result.kernel_runs_deferred = evaluator_->KernelRunsDeferred();
}

ExplorationResult Explorer::Finish() {
  if (!run_ || !run_->finished)
    throw std::logic_error("Explorer::Finish: the exploration is not finished");
  Run& run = *run_;
  run.result.solution = run.env.CurrentConfig();
  run.result.solution_measurement = run.env.LastMeasurement();

  // Correctness valve of the surrogate tier: the reported solution is always
  // a real measurement. If the run ended on a surrogate-predicted
  // configuration, execute it now (the prediction is dropped, so the
  // exported solution row and the Δacc range reflect ground truth).
  //
  // When both valve points need ground truth and no rollout sits between
  // them, the two runs share one lane pass; GroundTruthMany() preserves the
  // sequential sequence's caches, counters, and surrogate bookkeeping
  // exactly, so this is purely a throughput move.
  // (Equal endpoints fall through: there the sequential sequence resolves
  // the second valve via the first one's dropped prediction, and the batch
  // would diverge from it.)
  if (config_.greedy_rollout_steps == 0 &&
      evaluator_->IsPredicted(run.result.solution) &&
      run.result.has_best_feasible &&
      !(run.result.best_feasible == run.result.solution) &&
      evaluator_->IsPredicted(run.result.best_feasible)) {
    const std::vector<instrument::Measurement> truths =
        evaluator_->GroundTruthMany(
            {run.result.solution, run.result.best_feasible});
    run.result.solution_measurement = truths[0];
    run.result.delta_acc.Update(truths[0].delta_acc);
    run.result.best_feasible_measurement = truths[1];
    run.result.delta_acc.Update(truths[1].delta_acc);
    FillSolutionFields(run.result);
    ExplorationResult result = std::move(run.result);
    run_.reset();
    consumed_ = true;
    return result;
  }
  if (evaluator_->IsPredicted(run.result.solution)) {
    run.result.solution_measurement =
        evaluator_->GroundTruth(run.result.solution);
    run.result.delta_acc.Update(run.result.solution_measurement.delta_acc);
  }

  // Optional greedy rollout: follow the learned policy without exploration
  // and fold the visited configurations into the best-feasible tracking.
  if (config_.greedy_rollout_steps > 0) {
    rl::StateId state = run.env.Reset(config_.seed);
    for (std::size_t i = 0; i < config_.greedy_rollout_steps; ++i) {
      const std::size_t action = run.agent->Table().GreedyAction(state);
      const rl::StepResult sr = run.env.Step(action);
      ConsiderBest(reward_, run.result, run.env.CurrentConfig(),
                   run.env.LastMeasurement());
      state = sr.next_state;
      if (sr.terminated) break;
    }
  }

  // Same valve for the best-feasible point (after the rollout, which may
  // update it): its selection ranked only by the exact power/time objective,
  // but its reported Δacc must be a real measurement — it feeds the
  // best-per-kernel tables and the campaign Pareto fronts.
  if (run.result.has_best_feasible &&
      evaluator_->IsPredicted(run.result.best_feasible)) {
    run.result.best_feasible_measurement =
        evaluator_->GroundTruth(run.result.best_feasible);
    run.result.delta_acc.Update(run.result.best_feasible_measurement.delta_acc);
  }

  FillSolutionFields(run.result);
  ExplorationResult result = std::move(run.result);
  run_.reset();
  consumed_ = true;
  return result;
}

ExplorationResult Explorer::PartialResult() const {
  if (!run_)
    throw std::logic_error("Explorer::PartialResult: exploration not started");
  ExplorationResult result = run_->result;
  result.stop_reason = rl::StopReason::kSuspended;
  // Fold in the open episode so the reported cumulative covers every step.
  result.cumulative_reward += run_->episode_cumulative;
  result.solution = run_->env.CurrentConfig();
  result.solution_measurement = run_->env.LastMeasurement();
  FillSolutionFields(result);
  return result;
}

ExplorationResult Explorer::Explore() {
  EnsureStarted();
  while (!run_->finished) StepOnce();
  return Finish();
}

Checkpoint Explorer::Suspend() const {
  if (!run_ || consumed_)
    throw std::logic_error("Explorer::Suspend: no active exploration");
  if (run_->finished)
    throw std::logic_error(
        "Explorer::Suspend: the exploration already finished — call Finish() "
        "and persist the final result instead");
  Checkpoint checkpoint;
  checkpoint.agent_kind = ToString(config_.agent_kind);
  checkpoint.finished = false;
  checkpoint.episode = run_->episode;
  checkpoint.episode_steps = run_->episode_steps;
  checkpoint.episode_cumulative = run_->episode_cumulative;
  checkpoint.trace_cumulative = run_->trace_cumulative;
  checkpoint.state = run_->state;
  checkpoint.env = run_->env.GetState();
  std::ostringstream agent;
  run_->agent->SaveState(agent);
  checkpoint.agent_state = agent.str();
  checkpoint.result = run_->result;
  checkpoint.evaluator = evaluator_->CaptureCacheState();
  return checkpoint;
}

void Explorer::ResumeFrom(const Checkpoint& checkpoint) {
  if (run_ || consumed_)
    throw CheckpointError(
        "Explorer::ResumeFrom: the exploration already started; resume "
        "requires a freshly constructed explorer");
  if (checkpoint.finished)
    throw CheckpointError(
        "Explorer::ResumeFrom: checkpoint is of a finished run — nothing to "
        "resume (use its stored result directly)");
  if (checkpoint.agent_kind != ToString(config_.agent_kind))
    throw CheckpointError("Explorer::ResumeFrom: checkpoint was taken with "
                          "agent '" +
                          checkpoint.agent_kind + "', this explorer runs '" +
                          ToString(config_.agent_kind) + "'");
  if (checkpoint.result.episodes != config_.episodes ||
      checkpoint.episode >= config_.episodes)
    throw CheckpointError(
        "Explorer::ResumeFrom: episode configuration mismatch");
  if (checkpoint.episode_steps >= config_.max_steps)
    throw CheckpointError(
        "Explorer::ResumeFrom: episode step counter exceeds max_steps");
  if (config_.record_trace
          ? checkpoint.result.trace.size() != checkpoint.result.steps
          : !checkpoint.result.trace.empty())
    throw CheckpointError(
        "Explorer::ResumeFrom: trace does not match the record_trace "
        "setting");

  // Validate the environment snapshot against THIS kernel's space up front
  // (same validator SetState uses): a failure below must leave the explorer
  // and its evaluator untouched.
  const SpaceShape& shape = evaluator_->Shape();
  try {
    AxDseEnvironment::ValidateState(shape, checkpoint.env);
  } catch (const std::exception& error) {
    throw CheckpointError(
        std::string("Explorer::ResumeFrom: environment state: ") +
        error.what());
  }
  if (checkpoint.state >= checkpoint.env.interned.size())
    throw CheckpointError(
        "Explorer::ResumeFrom: current state id is not interned");

  // Surrogate snapshot validation, also up front: the enablement flags must
  // agree and every model observation must be replayable from the memo
  // entries about to be prewarmed, so RestoreSurrogate() below cannot fail
  // after state was mutated.
  const Evaluator::CacheState::SurrogateState& surrogate_ckpt =
      checkpoint.evaluator.surrogate;
  if (surrogate_ckpt.enabled != evaluator_->SurrogateEnabled())
    throw CheckpointError(
        "Explorer::ResumeFrom: checkpoint surrogate enablement does not "
        "match this explorer's evaluator");
  if (surrogate_ckpt.enabled) {
    std::unordered_set<Configuration, Configuration::Hash> memo_configs;
    memo_configs.reserve(checkpoint.evaluator.entries.size());
    for (const auto& [config, measurement] : checkpoint.evaluator.entries) {
      (void)measurement;
      memo_configs.insert(config);
    }
    for (const Configuration& config : surrogate_ckpt.model.observations)
      if (memo_configs.find(config) == memo_configs.end())
        throw CheckpointError(
            "Explorer::ResumeFrom: surrogate observation is not among the "
            "checkpoint's memo entries");
    for (const auto& [config, measurement] : surrogate_ckpt.model.predicted) {
      (void)measurement;
      if (!FitsShape(shape, config))
        throw CheckpointError(
            "Explorer::ResumeFrom: surrogate prediction does not fit the "
            "kernel's configuration space");
    }
  }

  // 1. Rebuild the agent from the blob. Failures here are pure: the agent is
  //    a local until everything committed.
  std::unique_ptr<rl::Agent> agent = MakeAgent(
      config_.agent_kind,
      NumActionsFor(config_.action_space, shape.num_variables), config_.agent,
      config_.lambda, config_.seed);
  std::istringstream agent_in(checkpoint.agent_state);
  try {
    agent->LoadState(agent_in);
  } catch (const std::exception& error) {
    throw CheckpointError(std::string("Explorer::ResumeFrom: agent state: ") +
                          error.what());
  }

  // 2. Prewarm the private memo BEFORE the environment rebuild, so the
  //    rebuild's evaluation of the initial configuration is a private hit
  //    and never reaches a shared cache (whose statistics the engine
  //    restores separately and byte-compares). PrewarmCache validates every
  //    entry before inserting any, so a throw here mutates nothing.
  try {
    evaluator_->PrewarmCache(checkpoint.evaluator.entries);
  } catch (const std::exception& error) {
    throw CheckpointError(std::string("Explorer::ResumeFrom: memo state: ") +
                          error.what());
  }

  // 3. Rebuild the environment and restore its position/interning.
  auto run = std::make_unique<Run>(*evaluator_, reward_, config_.action_space);
  run->env.SetState(checkpoint.env);  // revalidates; known-good here

  // 3b. Replay the surrogate model (validated above; reads the prewarmed
  //     memo, so it must run before the counter overwrite).
  evaluator_->RestoreSurrogate(surrogate_ckpt);

  // 4. Counters last: overwrite the rebuild's bumps with the exact
  //    checkpointed values.
  evaluator_->RestoreCounters(
      checkpoint.evaluator.kernel_runs, checkpoint.evaluator.cache_hits,
      checkpoint.evaluator.cache_misses, checkpoint.evaluator.shared_hits);

  run->agent = std::move(agent);
  run->result = checkpoint.result;
  run->result.episodes = config_.episodes;
  run->state = checkpoint.state;
  run->episode = checkpoint.episode;
  run->episode_steps = checkpoint.episode_steps;
  run->episode_cumulative = checkpoint.episode_cumulative;
  run->trace_cumulative = checkpoint.trace_cumulative;
  run->finished = false;
  run_ = std::move(run);
}

}  // namespace axdse::dse
