#pragma once
// The top-level exploration driver: wires kernel -> evaluator -> environment
// -> Q-learning agent, runs the paper's single long episode, and collects
// everything Table III and Figures 2-4 need (per-step trace, min/solution/max
// per objective, the solution configuration and its operator names).
//
// This is the single-run core. Applications should normally go through the
// axdse.hpp facade instead: describe runs as dse::ExplorationRequest values
// and execute them (batched, multi-seed, parallel) with dse::Engine or
// axdse::Session.

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dse/environment.hpp"
#include "rl/trainer.hpp"

namespace axdse::dse {

/// Which learning algorithm drives the exploration. The paper uses plain
/// Q-learning; the alternatives are extensions for the agent ablation.
enum class AgentKind {
  kQLearning,
  kSarsa,
  kExpectedSarsa,
  kDoubleQ,
  kQLambda,
};

/// Returns a freshly constructed agent of the given kind.
std::unique_ptr<rl::Agent> MakeAgent(AgentKind kind, std::size_t num_actions,
                                     const rl::AgentConfig& config,
                                     double lambda, std::uint64_t seed);

/// Human-readable agent name.
const char* ToString(AgentKind kind) noexcept;

/// Exploration hyper-parameters.
struct ExplorerConfig {
  /// Step cap (paper: 10,000). With `episodes > 1` this is the per-episode
  /// cap.
  std::size_t max_steps = 10000;
  /// The paper's stop rule: halt once cumulative reward reaches this
  /// (per episode).
  double max_cumulative_reward = 500.0;
  /// Number of training episodes. The paper runs exactly one long episode;
  /// more episodes restart from the all-precise configuration while the
  /// agent's value table persists.
  std::size_t episodes = 1;
  /// Learning algorithm (paper: Q-learning).
  AgentKind agent_kind = AgentKind::kQLearning;
  /// Agent hyper-parameters.
  rl::AgentConfig agent;
  /// Trace-decay for AgentKind::kQLambda.
  double lambda = 0.8;
  /// Action-space concretization.
  ActionSpaceKind action_space = ActionSpaceKind::kFull;
  /// Seed for the agent's exploration randomness.
  std::uint64_t seed = 1;
  /// Keep the full per-step trace (needed for the figures; costs memory).
  bool record_trace = true;
  /// After training, roll the greedy policy out for this many steps from the
  /// initial state and fold the visited configurations into the
  /// best-feasible tracking (0 disables).
  std::size_t greedy_rollout_steps = 0;
};

/// One step of the exploration trace (a figure data point).
struct StepRecord {
  std::size_t step = 0;
  std::size_t action = 0;
  double reward = 0.0;
  double cumulative_reward = 0.0;
  Configuration config;
  instrument::Measurement measurement;
};

/// Closed min/max range of one objective over the exploration.
struct ObjectiveRange {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Folds one observation in; NaN inputs are ignored so a single undefined
  /// Δ cannot poison the range for the rest of the run.
  void Update(double value) noexcept {
    if (std::isnan(value)) return;
    if (value < min) min = value;
    if (value > max) max = value;
  }
};

/// Everything the paper reports for one benchmark exploration.
struct ExplorationResult {
  /// The configuration of the last step — the paper's "solution" row.
  Configuration solution;
  instrument::Measurement solution_measurement;
  /// Type codes of the solution's operators (e.g. "00M", "17MJ").
  std::string solution_adder;
  std::string solution_multiplier;

  /// min / max of each Δ observed across all steps (Table III rows).
  ObjectiveRange delta_power;
  ObjectiveRange delta_time;
  ObjectiveRange delta_acc;

  std::size_t steps = 0;
  rl::StopReason stop_reason = rl::StopReason::kStepLimit;
  double cumulative_reward = 0.0;

  /// Distinct configurations this run evaluated / private-cache hits along
  /// its path. Both are deterministic: identical across cache modes and
  /// worker counts (in private-cache mode kernel_runs is exactly the number
  /// of kernel executions).
  std::size_t kernel_runs = 0;
  std::size_t cache_hits = 0;
  /// Kernel executions actually performed by this run. Equals kernel_runs
  /// in private-cache mode; with a shared cache it is lower and depends on
  /// scheduling (only per-cache-group totals are deterministic).
  std::size_t kernel_runs_executed = 0;
  /// Evaluations answered by the shared cache (0 in private-cache mode).
  std::size_t shared_cache_hits = 0;

  /// Evaluations answered by the surrogate tier (0 with surrogate off):
  /// first-time skips plus memoized repeat visits of skipped configurations.
  std::size_t surrogate_hits = 0;
  /// Distinct configurations the surrogate skipped that were never executed
  /// — the kernel runs this run saved outright.
  std::size_t kernel_runs_deferred = 0;

  /// Episodes actually run.
  std::size_t episodes = 1;

  /// Per-step rewards (Figure 4) and full trace (Figures 2-3) when recorded.
  /// With multiple episodes both are concatenated in order.
  std::vector<double> rewards;
  std::vector<StepRecord> trace;

  /// Best *feasible* configuration seen anywhere during exploration (and the
  /// optional greedy rollout), ranked by the normalized savings objective
  /// (BaselineObjective). Often strictly better than the paper's
  /// last-step "solution".
  bool has_best_feasible = false;
  Configuration best_feasible;
  instrument::Measurement best_feasible_measurement;

  /// Per-stage operation counts of the solution configuration, recomputed
  /// via workloads::Kernel::StageCounts. Empty for single-stage kernels;
  /// for pipelines the per-stage sums equal the whole-kernel counts.
  std::vector<workloads::StageOpCounts> stage_counts;
};

struct Checkpoint;  // dse/checkpoint.hpp

/// Runs the paper's Q-learning exploration for one kernel.
///
/// Two ways to drive it:
///   * Explore() — the historical one-shot call: runs every episode to its
///     stop condition and returns the finished result.
///   * the incremental API — RunSteps() advances the exploration a bounded
///     number of environment steps; Suspend() serializes the complete
///     mid-run state into a dse::Checkpoint; a FRESH explorer (same
///     evaluator kernel, reward, and config) restored via ResumeFrom()
///     continues the run so that the final result, trace, rewards, and
///     counters are byte-identical to an uninterrupted Explore().
class Explorer {
 public:
  /// The evaluator must outlive the explorer. The evaluator must be fresh
  /// (no Evaluate() calls yet) for the byte-identical resume guarantee.
  Explorer(Evaluator& evaluator, const RewardConfig& reward,
           const ExplorerConfig& config);
  ~Explorer();

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Runs the exploration to completion (all remaining episodes) and
  /// finalizes the result. Usable after ResumeFrom() to finish a restored
  /// run.
  ExplorationResult Explore();

  // --- incremental API ----------------------------------------------------

  /// True once every episode has ended. A finished run only awaits Finish().
  bool Finished() const noexcept;

  /// Environment steps taken so far (across episodes).
  std::size_t StepsTaken() const noexcept;

  /// Reward accumulated so far, including the open episode (0 before the
  /// first step). Cheap enough to poll every few steps for progress
  /// reporting; does not touch the result.
  double CumulativeRewardSoFar() const noexcept;

  /// Best feasible measurement seen so far, or nullptr when none (or the
  /// run has not started). The pointee is owned by the live run: it is
  /// invalidated by the next RunSteps()/Finish() call.
  const instrument::Measurement* BestFeasibleSoFar() const noexcept;

  /// Advances up to `max_new_steps` environment steps (stopping early when
  /// the run finishes) and returns the number actually taken. Starts the
  /// run lazily on first use. Throws std::invalid_argument on 0.
  std::size_t RunSteps(std::size_t max_new_steps);

  /// Finalizes and returns the result (solution fields, optional greedy
  /// rollout, operator codes, cost counters). Requires Finished(); the
  /// explorer is consumed afterwards. Throws std::logic_error otherwise.
  ExplorationResult Finish();

  /// Snapshot of the in-progress result for reporting a suspended run:
  /// the partial trace/rewards plus the current configuration as a
  /// provisional solution, stop reason rl::StopReason::kSuspended. Does not
  /// consume the explorer. Throws std::logic_error before the first step.
  ExplorationResult PartialResult() const;

  // --- checkpointing ------------------------------------------------------

  /// Serializes the complete mid-run state (agent, environment, partial
  /// result, evaluator memo and counters). The caller owns the identity
  /// fields (Checkpoint::request/seed) — Suspend() fills everything else.
  /// Throws std::logic_error before the first step or after Finish().
  Checkpoint Suspend() const;

  /// Restores a mid-run snapshot into this (freshly constructed, never
  /// stepped) explorer. Validates agent kind, episode bounds, and every
  /// configuration against this explorer's kernel space BEFORE mutating
  /// anything: on CheckpointError the explorer (and its evaluator) is
  /// exactly as it was and may still run from scratch.
  void ResumeFrom(const Checkpoint& checkpoint);

  const ExplorerConfig& Config() const noexcept { return config_; }

 private:
  struct Run;  // live exploration state (env, agent, partial result)

  void EnsureStarted();
  void StepOnce();
  void FillSolutionFields(ExplorationResult& result) const;

  Evaluator* evaluator_;
  RewardConfig reward_;
  ExplorerConfig config_;
  std::unique_ptr<Run> run_;
  bool consumed_ = false;
};

}  // namespace axdse::dse
