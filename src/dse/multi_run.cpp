#include "dse/multi_run.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "dse/engine.hpp"

namespace axdse::dse {

namespace {
std::string ModalKey(const std::map<std::string, std::size_t>& votes) {
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [key, count] : votes) {
    if (count > best_count) {  // map order makes ties lexicographic-first
      best = key;
      best_count = count;
    }
  }
  return best;
}
}  // namespace

std::string MultiRunResult::ModalAdder() const { return ModalKey(adder_votes); }

std::string MultiRunResult::ModalMultiplier() const {
  return ModalKey(multiplier_votes);
}

MultiRunResult ExploreKernelMultiSeed(const workloads::Kernel& kernel,
                                      const ExplorerConfig& base,
                                      std::size_t num_seeds,
                                      const PaperThresholdFactors& factors) {
  if (num_seeds == 0)
    throw std::invalid_argument("ExploreKernelMultiSeed: num_seeds == 0");

  // Thin shim over the Engine: one request, `num_seeds` parallel jobs. The
  // caller-built ExplorerConfig is preserved verbatim via explorer_override
  // (the engine still assigns seed base.seed + i per run); traces are
  // dropped to keep memory flat across many seeds, as before.
  ExplorationRequest request;
  request.kernel = kernel.Name();
  request.kernel_override = std::shared_ptr<const workloads::Kernel>(
      std::shared_ptr<const workloads::Kernel>(), &kernel);  // non-owning
  ExplorerConfig config = base;
  config.record_trace = false;
  request.explorer_override = config;
  request.max_steps = base.max_steps;
  request.episodes = base.episodes;
  request.seed = base.seed;
  request.num_seeds = num_seeds;
  request.thresholds = factors;
  // Seeds of one kernel walk overlapping neighborhoods; share their
  // evaluation cache (results are identical, kernel runs drop sharply).
  request.cache_mode = CacheMode::kShared;

  RequestResult result = Engine().RunOne(request);

  MultiRunResult aggregate;
  aggregate.runs = std::move(result.runs);
  aggregate.solution_delta_power = result.solution_delta_power;
  aggregate.solution_delta_time = result.solution_delta_time;
  aggregate.solution_delta_acc = result.solution_delta_acc;
  aggregate.steps = result.steps;
  aggregate.adder_votes = std::move(result.adder_votes);
  aggregate.multiplier_votes = std::move(result.multiplier_votes);
  aggregate.feasible_fraction = result.feasible_fraction;
  aggregate.distinct_evaluations = result.cache.distinct_evaluations;
  aggregate.kernel_runs_executed = result.cache.executed_runs;
  aggregate.kernel_runs_saved = result.cache.saved_runs;
  return aggregate;
}

}  // namespace axdse::dse
