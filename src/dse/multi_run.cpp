#include "dse/multi_run.hpp"

#include <stdexcept>

namespace axdse::dse {

namespace {
std::string ModalKey(const std::map<std::string, std::size_t>& votes) {
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [key, count] : votes) {
    if (count > best_count) {  // map order makes ties lexicographic-first
      best = key;
      best_count = count;
    }
  }
  return best;
}
}  // namespace

std::string MultiRunResult::ModalAdder() const { return ModalKey(adder_votes); }

std::string MultiRunResult::ModalMultiplier() const {
  return ModalKey(multiplier_votes);
}

MultiRunResult ExploreKernelMultiSeed(const workloads::Kernel& kernel,
                                      const ExplorerConfig& base,
                                      std::size_t num_seeds,
                                      const PaperThresholdFactors& factors) {
  if (num_seeds == 0)
    throw std::invalid_argument("ExploreKernelMultiSeed: num_seeds == 0");

  MultiRunResult aggregate;
  aggregate.runs.reserve(num_seeds);
  util::RunningStats power_stats;
  util::RunningStats time_stats;
  util::RunningStats acc_stats;
  util::RunningStats step_stats;
  std::size_t feasible = 0;

  for (std::size_t i = 0; i < num_seeds; ++i) {
    Evaluator evaluator(kernel);
    const RewardConfig reward = MakePaperRewardConfig(evaluator, factors);
    ExplorerConfig config = base;
    config.seed = base.seed + i;
    config.record_trace = false;  // keep memory flat across many seeds
    Explorer explorer(evaluator, reward, config);
    ExplorationResult result = explorer.Explore();

    power_stats.Add(result.solution_measurement.delta_power_mw);
    time_stats.Add(result.solution_measurement.delta_time_ns);
    acc_stats.Add(result.solution_measurement.delta_acc);
    step_stats.Add(static_cast<double>(result.steps));
    if (result.solution_measurement.delta_acc <= reward.acc_threshold)
      ++feasible;
    ++aggregate.adder_votes[result.solution_adder];
    ++aggregate.multiplier_votes[result.solution_multiplier];
    aggregate.runs.push_back(std::move(result));
  }

  aggregate.solution_delta_power = util::Summarize(power_stats);
  aggregate.solution_delta_time = util::Summarize(time_stats);
  aggregate.solution_delta_acc = util::Summarize(acc_stats);
  aggregate.steps = util::Summarize(step_stats);
  aggregate.feasible_fraction =
      static_cast<double>(feasible) / static_cast<double>(num_seeds);
  return aggregate;
}

}  // namespace axdse::dse
