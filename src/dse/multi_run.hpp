#pragma once
// Multi-seed exploration statistics. The paper reports one exploration per
// benchmark; this harness repeats the exploration across seeds and
// summarizes the solution metrics (mean/stddev/min/max) and the operator
// selections (vote histogram) — the robustness view a released tool needs.
//
// Deprecated surface: new code should go through the axdse.hpp facade —
// build a dse::ExplorationRequest with num_seeds > 1 and run it with
// dse::Engine (or axdse::Session), which executes the seeds on a worker
// pool and returns the same aggregates in RequestResult. The function below
// is a thin shim over that engine, kept for source compatibility.

#include <map>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "util/statistics.hpp"

namespace axdse::dse {

/// Aggregated outcome of `runs.size()` independent explorations that differ
/// only in the agent seed.
struct MultiRunResult {
  /// Per-seed results, in seed order.
  std::vector<ExplorationResult> runs;

  /// Summaries of the per-run *solution* metrics.
  util::Summary solution_delta_power;
  util::Summary solution_delta_time;
  util::Summary solution_delta_acc;
  util::Summary steps;

  /// How often each operator type code was selected in the solutions.
  std::map<std::string, std::size_t> adder_votes;
  std::map<std::string, std::size_t> multiplier_votes;

  /// Fraction of runs whose solution respected the accuracy threshold.
  double feasible_fraction = 0.0;

  /// Cache economics of the batch: distinct configurations evaluated across
  /// the seeds versus kernel executions actually performed (the shim runs
  /// the seeds with a shared evaluation cache, so executed <= distinct).
  std::size_t distinct_evaluations = 0;
  std::size_t kernel_runs_executed = 0;
  std::size_t kernel_runs_saved = 0;

  /// Most-voted operator type codes (ties: lexicographically smallest).
  std::string ModalAdder() const;
  std::string ModalMultiplier() const;
};

/// Runs `num_seeds` explorations of `kernel` with seeds base.seed,
/// base.seed+1, ... and paper-style thresholds. Traces are dropped to keep
/// memory flat; per-run solution data is retained.
/// Throws std::invalid_argument if num_seeds == 0.
/// Deprecated: prefer dse::Engine with a multi-seed ExplorationRequest
/// (this shim already executes through it, parallel across seeds — note
/// `kernel` is therefore shared across workers and its Run() must be
/// const-thread-safe, as the Kernel interface now requires).
MultiRunResult ExploreKernelMultiSeed(
    const workloads::Kernel& kernel, const ExplorerConfig& base,
    std::size_t num_seeds, const PaperThresholdFactors& factors = {});

}  // namespace axdse::dse
