#include "dse/pareto.hpp"

#include <unordered_set>

namespace axdse::dse {

bool Dominates(const instrument::Measurement& a,
               const instrument::Measurement& b) noexcept {
  const bool no_worse = a.delta_power_mw >= b.delta_power_mw &&
                        a.delta_time_ns >= b.delta_time_ns &&
                        a.delta_acc <= b.delta_acc;
  const bool strictly_better = a.delta_power_mw > b.delta_power_mw ||
                               a.delta_time_ns > b.delta_time_ns ||
                               a.delta_acc < b.delta_acc;
  return no_worse && strictly_better;
}

std::vector<ParetoPoint> ParetoFront(const std::vector<ParetoPoint>& points) {
  // Deduplicate by objective vector: distinct configurations with identical
  // operator coverage measure identically (e.g. redundant variable subsets)
  // and would otherwise survive side by side — keep the first witness.
  std::vector<const ParetoPoint*> unique;
  {
    struct Key {
      double p, t, a;
      bool operator==(const Key&) const = default;
    };
    struct KeyHash {
      std::size_t operator()(const Key& k) const noexcept {
        const std::hash<double> h;
        return h(k.p) ^ (h(k.t) << 1) ^ (h(k.a) << 2);
      }
    };
    std::unordered_set<Key, KeyHash> seen;
    unique.reserve(points.size());
    for (const ParetoPoint& p : points) {
      const Key key{p.measurement.delta_power_mw, p.measurement.delta_time_ns,
                    p.measurement.delta_acc};
      if (seen.insert(key).second) unique.push_back(&p);
    }
  }
  std::vector<ParetoPoint> front;
  for (const ParetoPoint* candidate : unique) {
    bool dominated = false;
    for (const ParetoPoint* other : unique) {
      if (other != candidate &&
          Dominates(other->measurement, candidate->measurement)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(*candidate);
  }
  return front;
}

IncrementalParetoFront::InsertOutcome IncrementalParetoFront::Insert(
    const ParetoPoint& point) {
  ++seen_;
  for (const ParetoPoint& existing : points_) {
    if (Dominates(existing.measurement, point.measurement))
      return InsertOutcome::kDominated;
    // First-witness semantics, matching ParetoFront(): an identical
    // objective vector is already represented.
    if (existing.measurement.delta_power_mw == point.measurement.delta_power_mw &&
        existing.measurement.delta_time_ns == point.measurement.delta_time_ns &&
        existing.measurement.delta_acc == point.measurement.delta_acc)
      return InsertOutcome::kDuplicate;
  }
  std::erase_if(points_, [&point](const ParetoPoint& existing) {
    return Dominates(point.measurement, existing.measurement);
  });
  points_.push_back(point);
  return InsertOutcome::kInserted;
}

std::vector<ParetoPoint> ParetoFrontOfTrace(
    const std::vector<StepRecord>& trace) {
  std::vector<ParetoPoint> points;
  points.reserve(trace.size());
  for (const StepRecord& record : trace)
    points.push_back({record.config, record.measurement});
  return ParetoFront(points);
}

}  // namespace axdse::dse
