#pragma once
// Pareto utilities over exploration results: the paper frames the problem as
// multi-objective (maximize Δpower and Δtime, minimize Δacc); the front over
// the visited configurations is the natural summary of an exploration beyond
// the single "solution" row.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "dse/configuration.hpp"
#include "dse/explorer.hpp"
#include "instrument/measurement.hpp"

namespace axdse::dse {

/// One candidate point. `label` is optional provenance (e.g. which campaign
/// cell and seed produced the point); it plays no role in dominance.
struct ParetoPoint {
  Configuration config;
  instrument::Measurement measurement;
  std::string label;

  ParetoPoint() = default;
  ParetoPoint(Configuration config_in, instrument::Measurement measurement_in,
              std::string label_in = {})
      : config(std::move(config_in)),
        measurement(measurement_in),
        label(std::move(label_in)) {}
};

/// True if `a` dominates `b`: a is no worse on every objective
/// (Δpower max, Δtime max, Δacc min) and strictly better on at least one.
bool Dominates(const instrument::Measurement& a,
               const instrument::Measurement& b) noexcept;

/// Non-dominated subset of `points`. Points with identical objective
/// vectors collapse to their first occurrence (distinct configurations with
/// identical operator coverage measure identically). O(n^2); exploration
/// traces are <= 10k points.
std::vector<ParetoPoint> ParetoFront(const std::vector<ParetoPoint>& points);

/// Extracts the front from an exploration trace.
std::vector<ParetoPoint> ParetoFrontOfTrace(
    const std::vector<StepRecord>& trace);

/// Streaming Pareto front: points are inserted one at a time (a campaign
/// folds results in as each Engine chunk finishes) and the front is pruned
/// incrementally, so the full point cloud never has to be materialized.
///
/// Invariant: after any sequence of Insert() calls, Points() equals
/// ParetoFront() over the same sequence — same survivors, same order
/// (insertion order of the first witness of each surviving objective
/// vector).
class IncrementalParetoFront {
 public:
  /// What Insert() did with the point.
  enum class InsertOutcome {
    kInserted,   ///< non-dominated; now part of the front
    kDominated,  ///< some front point dominates it — rejected
    kDuplicate,  ///< objective vector already on the front — rejected
  };

  /// Offers one point. Inserting may evict existing points the new point
  /// dominates (order of the survivors is preserved).
  InsertOutcome Insert(const ParetoPoint& point);

  /// Current front, in insertion order of the surviving points.
  const std::vector<ParetoPoint>& Points() const noexcept { return points_; }

  /// Points offered so far (accepted + rejected).
  std::size_t SeenCount() const noexcept { return seen_; }

  std::size_t Size() const noexcept { return points_.size(); }
  bool Empty() const noexcept { return points_.empty(); }

 private:
  std::vector<ParetoPoint> points_;
  std::size_t seen_ = 0;
};

}  // namespace axdse::dse
