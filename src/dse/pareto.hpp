#pragma once
// Pareto utilities over exploration results: the paper frames the problem as
// multi-objective (maximize Δpower and Δtime, minimize Δacc); the front over
// the visited configurations is the natural summary of an exploration beyond
// the single "solution" row.

#include <vector>

#include "dse/configuration.hpp"
#include "dse/explorer.hpp"
#include "instrument/measurement.hpp"

namespace axdse::dse {

/// One candidate point.
struct ParetoPoint {
  Configuration config;
  instrument::Measurement measurement;
};

/// True if `a` dominates `b`: a is no worse on every objective
/// (Δpower max, Δtime max, Δacc min) and strictly better on at least one.
bool Dominates(const instrument::Measurement& a,
               const instrument::Measurement& b) noexcept;

/// Non-dominated subset of `points`. Points with identical objective
/// vectors collapse to their first occurrence (distinct configurations with
/// identical operator coverage measure identically). O(n^2); exploration
/// traces are <= 10k points.
std::vector<ParetoPoint> ParetoFront(const std::vector<ParetoPoint>& points);

/// Extracts the front from an exploration trace.
std::vector<ParetoPoint> ParetoFrontOfTrace(
    const std::vector<StepRecord>& trace);

}  // namespace axdse::dse
