#include "dse/request.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <locale>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/number_format.hpp"

namespace axdse::dse {

namespace {

using util::ShortestDouble;

double ParseDouble(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    throw std::invalid_argument("ExplorationRequest::Parse: value '" + value +
                                "' for key '" + key + "' is not a number");
  return v;
}

std::uint64_t ParseUnsigned(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0')
    throw std::invalid_argument("ExplorationRequest::Parse: value '" + value +
                                "' for key '" + key +
                                "' is not a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

bool ParseBool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw std::invalid_argument("ExplorationRequest::Parse: value '" + value +
                              "' for key '" + key + "' is not a boolean");
}

}  // namespace

/// Free-text fields (labels, kernel names, extra keys/values) may contain
/// whitespace, ';', or '=' — escape them so the token format stays
/// lossless. Only '%', '=', and the token separators are encoded.
std::string EscapeRequestToken(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case ' ':
        out += "%20";
        break;
      case '\t':
        out += "%09";
        break;
      case '\n':
        out += "%0a";
        break;
      case '\r':
        out += "%0d";
        break;
      case ';':
        out += "%3b";
        break;
      case '=':
        out += "%3d";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeRequestToken(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const std::string hex = text.substr(i + 1, 2);
      char* end = nullptr;
      const long code = std::strtol(hex.c_str(), &end, 16);
      if (end == hex.c_str() + 2) {
        out.push_back(static_cast<char>(code));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i]);
  }
  return out;
}

namespace {

constexpr auto EscapeToken = &EscapeRequestToken;
constexpr auto UnescapeToken = &UnescapeRequestToken;

void RequireInRange(const char* name, double value, double lo, double hi) {
  if (!(value >= lo && value <= hi))
    throw std::invalid_argument(std::string("ExplorationRequest: ") + name +
                                " out of range");
}

}  // namespace

const char* ToString(CacheMode mode) noexcept {
  switch (mode) {
    case CacheMode::kPrivate:
      return "private";
    case CacheMode::kShared:
      return "shared";
  }
  return "unknown";
}

CacheMode CacheModeFromName(const std::string& name) {
  for (const CacheMode mode : {CacheMode::kPrivate, CacheMode::kShared})
    if (name == ToString(mode)) return mode;
  throw std::invalid_argument("CacheModeFromName: unknown cache mode '" +
                              name + "' (known: private, shared)");
}

const char* ToString(ActionSpaceKind kind) noexcept {
  switch (kind) {
    case ActionSpaceKind::kFull:
      return "full";
    case ActionSpaceKind::kCompact:
      return "compact";
  }
  return "unknown";
}

AgentKind AgentKindFromName(const std::string& name) {
  for (const AgentKind kind :
       {AgentKind::kQLearning, AgentKind::kSarsa, AgentKind::kExpectedSarsa,
        AgentKind::kDoubleQ, AgentKind::kQLambda})
    if (name == ToString(kind)) return kind;
  throw std::invalid_argument("AgentKindFromName: unknown agent '" + name +
                              "' (known: q-learning, sarsa, expected-sarsa, "
                              "double-q, q-lambda)");
}

ActionSpaceKind ActionSpaceFromName(const std::string& name) {
  for (const ActionSpaceKind kind :
       {ActionSpaceKind::kFull, ActionSpaceKind::kCompact})
    if (name == ToString(kind)) return kind;
  throw std::invalid_argument(
      "ActionSpaceFromName: unknown action space '" + name +
      "' (known: full, compact)");
}

void ExplorationRequest::Validate() const {
  if (kernel.name.empty() && !kernel_override)
    throw std::invalid_argument(
        "ExplorationRequest: kernel name is empty and no kernel instance "
        "was provided");
  if (max_steps == 0)
    throw std::invalid_argument("ExplorationRequest: max_steps == 0");
  if (episodes == 0)
    throw std::invalid_argument("ExplorationRequest: episodes == 0");
  if (num_seeds == 0)
    throw std::invalid_argument("ExplorationRequest: num_seeds == 0");
  if (!(alpha > 0.0 && alpha <= 1.0))
    throw std::invalid_argument("ExplorationRequest: alpha not in (0, 1]");
  RequireInRange("gamma", gamma, 0.0, 1.0);
  RequireInRange("lambda", lambda, 0.0, 1.0);
  RequireInRange("epsilon_start", epsilon_start, 0.0, 1.0);
  RequireInRange("epsilon_end", epsilon_end, 0.0, 1.0);
  if (std::isnan(max_cumulative_reward))
    throw std::invalid_argument(
        "ExplorationRequest: max_cumulative_reward is NaN");
  const std::pair<const char*, double> factors[] = {
      {"accuracy_factor", thresholds.accuracy_factor},
      {"power_factor", thresholds.power_factor},
      {"time_factor", thresholds.time_factor},
      {"max_reward", thresholds.max_reward}};
  for (const auto& [name, value] : factors)
    if (!(std::isfinite(value) && value > 0.0))
      throw std::invalid_argument(std::string("ExplorationRequest: ") + name +
                                  " must be finite and > 0");
}

ExplorerConfig ExplorationRequest::ToExplorerConfig() const {
  if (explorer_override) return *explorer_override;
  ExplorerConfig config;
  config.max_steps = max_steps;
  config.max_cumulative_reward = max_cumulative_reward;
  config.episodes = episodes;
  config.agent_kind = agent_kind;
  config.lambda = lambda;
  config.action_space = action_space;
  config.seed = seed;
  config.record_trace = record_trace;
  config.greedy_rollout_steps = greedy_rollout_steps;
  config.agent.alpha = alpha;
  config.agent.gamma = gamma;
  config.agent.initial_q = initial_q;
  const std::size_t decay =
      epsilon_decay_steps > 0
          ? epsilon_decay_steps
          : std::max<std::size_t>(std::size_t{1}, max_steps * 3 / 4);
  config.agent.epsilon =
      rl::EpsilonSchedule::Linear(epsilon_start, epsilon_end, decay);
  return config;
}

std::string ExplorationRequest::DisplayName() const {
  return label.empty() ? kernel.ToString() : label;
}

std::string ExplorationRequest::ToString() const {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // locale-independent numbers
  // The spec's own escaping leaves no separators, so the token embeds raw;
  // Parse splits tokens on the FIRST '=', so '=' inside the extras block is
  // safe.
  out << "kernel=" << kernel.ToString();
  out << " kernel-seed=" << kernel_seed;
  out << " agent=" << dse::ToString(agent_kind);
  out << " action-space=" << dse::ToString(action_space);
  out << " steps=" << max_steps;
  out << " reward-cap=" << ShortestDouble(max_cumulative_reward);
  out << " episodes=" << episodes;
  out << " seeds=" << num_seeds;
  out << " seed=" << seed;
  out << " rollout=" << greedy_rollout_steps;
  out << " trace=" << (record_trace ? 1 : 0);
  out << " cache=" << dse::ToString(cache_mode);
  out << " cache-capacity=" << cache_capacity;
  out << " checkpoint-interval=" << checkpoint_interval;
  out << " surrogate=" << (surrogate ? 1 : 0);
  out << " alpha=" << ShortestDouble(alpha);
  out << " gamma=" << ShortestDouble(gamma);
  out << " initial-q=" << ShortestDouble(initial_q);
  out << " lambda=" << ShortestDouble(lambda);
  out << " eps-start=" << ShortestDouble(epsilon_start);
  out << " eps-end=" << ShortestDouble(epsilon_end);
  out << " eps-decay=" << epsilon_decay_steps;
  out << " acc-factor=" << ShortestDouble(thresholds.accuracy_factor);
  out << " power-factor=" << ShortestDouble(thresholds.power_factor);
  out << " time-factor=" << ShortestDouble(thresholds.time_factor);
  out << " max-reward=" << ShortestDouble(thresholds.max_reward);
  if (!label.empty()) out << " label=" << EscapeToken(label);
  return out.str();
}

ExplorationRequest ExplorationRequest::Parse(const std::string& text) {
  ExplorationRequest request;
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));

  for (const std::string& token : tokens) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument(
          "ExplorationRequest::Parse: token '" + token +
          "' is not of the form key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kernel") {
      request.kernel = workloads::KernelSpec::Parse(value);
    } else if (key == "kernel-seed") {
      request.kernel_seed = ParseUnsigned(key, value);
    } else if (key == "agent") {
      request.agent_kind = AgentKindFromName(value);
    } else if (key == "action-space") {
      request.action_space = ActionSpaceFromName(value);
    } else if (key == "steps") {
      request.max_steps = static_cast<std::size_t>(ParseUnsigned(key, value));
    } else if (key == "reward-cap") {
      request.max_cumulative_reward = ParseDouble(key, value);
    } else if (key == "episodes") {
      request.episodes = static_cast<std::size_t>(ParseUnsigned(key, value));
    } else if (key == "seeds") {
      request.num_seeds = static_cast<std::size_t>(ParseUnsigned(key, value));
    } else if (key == "seed") {
      request.seed = ParseUnsigned(key, value);
    } else if (key == "rollout") {
      request.greedy_rollout_steps =
          static_cast<std::size_t>(ParseUnsigned(key, value));
    } else if (key == "trace") {
      request.record_trace = ParseBool(key, value);
    } else if (key == "cache") {
      request.cache_mode = CacheModeFromName(value);
    } else if (key == "cache-capacity") {
      request.cache_capacity =
          static_cast<std::size_t>(ParseUnsigned(key, value));
    } else if (key == "checkpoint-interval") {
      request.checkpoint_interval =
          static_cast<std::size_t>(ParseUnsigned(key, value));
    } else if (key == "surrogate") {
      request.surrogate = ParseBool(key, value);
    } else if (key == "alpha") {
      request.alpha = ParseDouble(key, value);
    } else if (key == "gamma") {
      request.gamma = ParseDouble(key, value);
    } else if (key == "initial-q") {
      request.initial_q = ParseDouble(key, value);
    } else if (key == "lambda") {
      request.lambda = ParseDouble(key, value);
    } else if (key == "eps-start") {
      request.epsilon_start = ParseDouble(key, value);
    } else if (key == "eps-end") {
      request.epsilon_end = ParseDouble(key, value);
    } else if (key == "eps-decay") {
      request.epsilon_decay_steps =
          static_cast<std::size_t>(ParseUnsigned(key, value));
    } else if (key == "acc-factor") {
      request.thresholds.accuracy_factor = ParseDouble(key, value);
    } else if (key == "power-factor") {
      request.thresholds.power_factor = ParseDouble(key, value);
    } else if (key == "time-factor") {
      request.thresholds.time_factor = ParseDouble(key, value);
    } else if (key == "max-reward") {
      request.thresholds.max_reward = ParseDouble(key, value);
    } else if (key == "label") {
      request.label = UnescapeToken(value);
    } else {
      throw std::invalid_argument("ExplorationRequest::Parse: unknown key '" +
                                  key + "'");
    }
  }
  return request;
}

ExplorationRequest ExplorationRequest::FromCli(const util::CliArgs& args) {
  // The kernel identity is assembled from the convenience flags first: the
  // positional argument (a full spec string, e.g. "matmul@10{blocks=8}" or
  // just a name), --kernel=<spec>, --size=N, and --kernel.KEY=VALUE all
  // fold into one KernelSpec emitted as a single kernel= token.
  workloads::KernelSpec spec;
  bool have_spec = false;
  if (!args.Positional().empty()) {
    spec = workloads::KernelSpec::Parse(args.Positional()[0]);
    have_spec = true;
  }
  std::string text;
  for (const auto& [key, value] : args.Flags()) {
    if (value.empty()) {
      // The only meaningful bare flags are the booleans: --trace == trace=1,
      // --surrogate == surrogate=1. Anything else bare is a flag that lost
      // its value — fail loudly rather than silently falling back to the
      // default.
      if (key == "trace" || key == "surrogate") {
        text += (text.empty() ? "" : " ") + key + "=1";
        continue;
      }
      throw std::invalid_argument("ExplorationRequest::FromCli: flag --" +
                                  key + " has no value");
    }
    if (key == "kernel") {
      spec = workloads::KernelSpec::Parse(value);
      have_spec = true;
      continue;
    }
    if (key == "size") {
      spec.size = static_cast<std::size_t>(ParseUnsigned(key, value));
      have_spec = true;
      continue;
    }
    if (key.rfind("kernel.", 0) == 0) {
      const std::string extra_key = key.substr(7);
      if (extra_key.empty())
        throw std::invalid_argument(
            "ExplorationRequest::FromCli: empty kernel extra key");
      spec.extra[extra_key] = value;
      have_spec = true;
      continue;
    }
    text += (text.empty() ? "" : " ") + key + "=" + value;
  }
  if (have_spec) {
    const std::string spec_token = "kernel=" + spec.ToString();
    text = text.empty() ? spec_token : spec_token + " " + text;
  }
  return Parse(text);
}

bool operator==(const ExplorationRequest& a, const ExplorationRequest& b) {
  return a.ToString() == b.ToString();
}

bool operator!=(const ExplorationRequest& a, const ExplorationRequest& b) {
  return !(a == b);
}

RequestBuilder::RequestBuilder(std::string kernel) {
  request_.kernel.name = std::move(kernel);
}

RequestBuilder::RequestBuilder(
    std::shared_ptr<const workloads::Kernel> kernel) {
  KernelInstance(std::move(kernel));
}

RequestBuilder& RequestBuilder::Kernel(std::string name) {
  request_.kernel.name = std::move(name);
  return *this;
}

RequestBuilder& RequestBuilder::Spec(workloads::KernelSpec spec) {
  request_.kernel = std::move(spec);
  return *this;
}

RequestBuilder& RequestBuilder::KernelInstance(
    std::shared_ptr<const workloads::Kernel> k) {
  if (!k)
    throw std::invalid_argument("RequestBuilder::KernelInstance: null kernel");
  request_.kernel.name = k->Name();
  request_.kernel_override = std::move(k);
  return *this;
}

RequestBuilder& RequestBuilder::Size(std::size_t size) {
  request_.kernel.size = size;
  return *this;
}

RequestBuilder& RequestBuilder::KernelSeed(std::uint64_t seed) {
  request_.kernel_seed = seed;
  return *this;
}

RequestBuilder& RequestBuilder::KernelParam(const std::string& key,
                                            std::string value) {
  request_.kernel.extra[key] = std::move(value);
  return *this;
}

RequestBuilder& RequestBuilder::Label(std::string label) {
  request_.label = std::move(label);
  return *this;
}

RequestBuilder& RequestBuilder::Agent(AgentKind kind) {
  request_.agent_kind = kind;
  return *this;
}

RequestBuilder& RequestBuilder::Agent(const std::string& name) {
  request_.agent_kind = AgentKindFromName(name);
  return *this;
}

RequestBuilder& RequestBuilder::ActionSpace(ActionSpaceKind kind) {
  request_.action_space = kind;
  return *this;
}

RequestBuilder& RequestBuilder::MaxSteps(std::size_t steps) {
  request_.max_steps = steps;
  return *this;
}

RequestBuilder& RequestBuilder::RewardCap(double cap) {
  request_.max_cumulative_reward = cap;
  return *this;
}

RequestBuilder& RequestBuilder::Episodes(std::size_t episodes) {
  request_.episodes = episodes;
  return *this;
}

RequestBuilder& RequestBuilder::Seeds(std::size_t num_seeds) {
  request_.num_seeds = num_seeds;
  return *this;
}

RequestBuilder& RequestBuilder::Seed(std::uint64_t seed) {
  request_.seed = seed;
  return *this;
}

RequestBuilder& RequestBuilder::GreedyRollout(std::size_t steps) {
  request_.greedy_rollout_steps = steps;
  return *this;
}

RequestBuilder& RequestBuilder::RecordTrace(bool record) {
  request_.record_trace = record;
  return *this;
}

RequestBuilder& RequestBuilder::Cache(CacheMode mode) {
  request_.cache_mode = mode;
  return *this;
}

RequestBuilder& RequestBuilder::SharedCache(bool shared) {
  request_.cache_mode = shared ? CacheMode::kShared : CacheMode::kPrivate;
  return *this;
}

RequestBuilder& RequestBuilder::CacheCapacity(std::size_t capacity) {
  request_.cache_capacity = capacity;
  return *this;
}

RequestBuilder& RequestBuilder::CheckpointInterval(std::size_t steps) {
  request_.checkpoint_interval = steps;
  return *this;
}

RequestBuilder& RequestBuilder::Surrogate(bool enabled) {
  request_.surrogate = enabled;
  return *this;
}

RequestBuilder& RequestBuilder::Alpha(double alpha) {
  request_.alpha = alpha;
  return *this;
}

RequestBuilder& RequestBuilder::Gamma(double gamma) {
  request_.gamma = gamma;
  return *this;
}

RequestBuilder& RequestBuilder::InitialQ(double q) {
  request_.initial_q = q;
  return *this;
}

RequestBuilder& RequestBuilder::Lambda(double lambda) {
  request_.lambda = lambda;
  return *this;
}

RequestBuilder& RequestBuilder::Epsilon(double start, double end,
                                        std::size_t decay_steps) {
  request_.epsilon_start = start;
  request_.epsilon_end = end;
  request_.epsilon_decay_steps = decay_steps;
  return *this;
}

RequestBuilder& RequestBuilder::Thresholds(
    const PaperThresholdFactors& factors) {
  request_.thresholds = factors;
  return *this;
}

RequestBuilder& RequestBuilder::AccuracyFactor(double factor) {
  request_.thresholds.accuracy_factor = factor;
  return *this;
}

RequestBuilder& RequestBuilder::PowerFactor(double factor) {
  request_.thresholds.power_factor = factor;
  return *this;
}

RequestBuilder& RequestBuilder::TimeFactor(double factor) {
  request_.thresholds.time_factor = factor;
  return *this;
}

RequestBuilder& RequestBuilder::MaxReward(double reward) {
  request_.thresholds.max_reward = reward;
  return *this;
}

ExplorationRequest RequestBuilder::Build() const {
  request_.Validate();
  return request_;
}

}  // namespace axdse::dse
