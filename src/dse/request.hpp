#pragma once
// ExplorationRequest: one validated, serializable description of a DSE run —
// which kernel (by registry name + parameters), which agent and action
// space, the step/reward budget, the paper's threshold recipe, and how many
// seeds to repeat it over. It subsumes the scattered ExplorerConfig /
// RewardConfig / PaperThresholdFactors surface behind a single value type
// that round-trips through std::string (for CLI and config-file use), is
// built fluently via RequestBuilder, and is executed — serially or on a
// worker pool — by dse::Engine.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "dse/explorer.hpp"
#include "util/cli.hpp"
#include "workloads/registry.hpp"

namespace axdse::dse {

/// How a request's jobs use the evaluation cache.
///
/// kPrivate — every (request, seed) job owns its memo table; jobs never see
/// each other's kernel runs (the historical behavior).
/// kShared — all jobs in the batch with the same kernel identity (name,
/// size, kernel seed, extras — or the same kernel_override instance) share
/// one SharedEvaluationCache, so a configuration any job has measured is
/// never executed again by the others. Solutions, traces, and rewards are
/// byte-identical to private mode for any worker count; only the number of
/// kernel executions changes.
enum class CacheMode {
  kPrivate,
  kShared,
};

/// Percent-escaping used by the request (and campaign) token grammar: '%',
/// '=', ';', and whitespace are encoded so free-text values survive the
/// space-separated key=value format losslessly.
std::string EscapeRequestToken(const std::string& text);
/// Inverse of EscapeRequestToken.
std::string UnescapeRequestToken(const std::string& text);

/// Human-readable cache-mode name ("private" / "shared").
const char* ToString(CacheMode mode) noexcept;

/// Inverse of ToString(CacheMode). Throws std::invalid_argument.
CacheMode CacheModeFromName(const std::string& name);

/// Human-readable action-space name ("full" / "compact").
const char* ToString(ActionSpaceKind kind) noexcept;

/// Inverse of ToString(AgentKind). Throws std::invalid_argument for names
/// that match no agent.
AgentKind AgentKindFromName(const std::string& name);

/// Inverse of ToString(ActionSpaceKind). Throws std::invalid_argument.
ActionSpaceKind ActionSpaceFromName(const std::string& name);

/// A complete, self-contained exploration job description.
struct ExplorationRequest {
  // --- What to explore -----------------------------------------------------
  /// The typed kernel identity: registry name, primary size, and extras
  /// (see workloads::KernelSpec). `kernel.name` may stay empty only when
  /// `kernel_override` is set.
  workloads::KernelSpec kernel;
  /// Seed for the kernel's input-data generation (KernelParams::seed).
  /// Deliberately outside the spec: the same kernel identity explored under
  /// different data seeds still groups as one kernel in campaign reports.
  std::uint64_t kernel_seed = 42;
  /// Display name for reports; DisplayName() falls back to the spec string.
  std::string label;

  // --- How to explore ------------------------------------------------------
  AgentKind agent_kind = AgentKind::kQLearning;
  ActionSpaceKind action_space = ActionSpaceKind::kFull;
  std::size_t max_steps = 10000;
  double max_cumulative_reward = 500.0;
  std::size_t episodes = 1;
  /// Number of repeated explorations; run i uses agent seed `seed + i`.
  std::size_t num_seeds = 1;
  std::uint64_t seed = 1;
  std::size_t greedy_rollout_steps = 0;
  /// Keep per-step traces (costs memory; off by default for batches).
  bool record_trace = false;
  /// Evaluation-cache mode (see CacheMode). Shared mode changes only cost,
  /// never results.
  CacheMode cache_mode = CacheMode::kPrivate;
  /// Entry bound for the shared cache (0 = unbounded). A bounded cache
  /// rejects new entries once full (no eviction), trading extra kernel runs
  /// for a memory ceiling; results are still identical. When several
  /// requests share one cache, the first request's bound wins.
  std::size_t cache_capacity = 0;
  /// Checkpoint autosave period in environment steps for this request's
  /// jobs, overriding CheckpointOptions::interval when non-zero. Only
  /// meaningful when the engine runs with a checkpoint directory; see
  /// dse/checkpoint.hpp.
  std::size_t checkpoint_interval = 0;
  /// Enable the surrogate evaluator tier (dse/surrogate.hpp): skip kernel
  /// runs the online model confidently predicts infeasible, with the
  /// ground-truth valve on solutions. Ignored (surrogate stays off) when
  /// `record_trace` is set — traces must contain real measurements only.
  bool surrogate = false;

  // --- Agent hyper-parameters ---------------------------------------------
  double alpha = 0.1;
  double gamma = 0.95;
  double initial_q = 0.0;
  double lambda = 0.8;  ///< trace decay, used by AgentKind::kQLambda only
  /// Linear epsilon schedule: start -> end over `epsilon_decay_steps` steps;
  /// 0 decay steps means "3/4 of max_steps" (the benches' convention).
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_steps = 0;

  // --- Reward thresholds (the paper's Section III recipe) ------------------
  PaperThresholdFactors thresholds;

  // --- Escape hatches (not serialized) -------------------------------------
  /// Explore this kernel instance instead of constructing one from the
  /// registry. The pointee must stay alive for the duration of the run and
  /// its Run() must be const-thread-safe (all built-ins are).
  std::shared_ptr<const workloads::Kernel> kernel_override;
  /// Bypasses the request's explorer fields entirely, preserving a
  /// caller-built ExplorerConfig verbatim. The engine still overrides the
  /// seed per run.
  std::optional<ExplorerConfig> explorer_override;

  /// Checks invariants (budget > 0, rates in range, a kernel name or
  /// instance present). Registry membership of the name is checked by the
  /// engine, which knows the registry. Throws std::invalid_argument.
  void Validate() const;

  /// Lowers the request to the single-run ExplorerConfig it describes
  /// (or returns `explorer_override` verbatim when set).
  ExplorerConfig ToExplorerConfig() const;

  /// `label` when set, otherwise the kernel spec string.
  std::string DisplayName() const;

  /// Serializes every serializable field as space-separated key=value
  /// tokens, e.g. "kernel=matmul@10{granularity=row-col} kernel-seed=42
  /// ... acc-factor=0.4". The kernel identity is one KernelSpec token (its
  /// own escaping keeps it free of separators). Stable field order; doubles
  /// use shortest-round-trip formatting, so Parse(ToString()) is lossless.
  std::string ToString() const;

  /// Inverse of ToString(). Accepts whitespace- and/or ';'-separated
  /// key=value tokens. Throws std::invalid_argument on unknown keys or
  /// unparsable values.
  static ExplorationRequest Parse(const std::string& text);

  /// Builds a request from command-line flags (same keys as ToString, plus
  /// the first positional argument as the kernel name). Flags not given
  /// keep their defaults.
  static ExplorationRequest FromCli(const util::CliArgs& args);
};

/// Equality over the serialized representation (escape hatches excluded).
bool operator==(const ExplorationRequest& a, const ExplorationRequest& b);
bool operator!=(const ExplorationRequest& a, const ExplorationRequest& b);

/// Fluent construction of ExplorationRequests:
///
///   auto request = RequestBuilder("matmul").Size(10).KernelSeed(42)
///                      .MaxSteps(10000).Seed(7).Seeds(5).Build();
///
/// Build() validates and returns the finished value.
class RequestBuilder {
 public:
  RequestBuilder() = default;
  explicit RequestBuilder(std::string kernel);
  /// Starts from an existing kernel instance (see kernel_override).
  explicit RequestBuilder(std::shared_ptr<const workloads::Kernel> kernel);

  RequestBuilder& Kernel(std::string name);
  /// Installs a complete kernel identity in one call.
  RequestBuilder& Spec(workloads::KernelSpec spec);
  RequestBuilder& KernelInstance(std::shared_ptr<const workloads::Kernel> k);
  RequestBuilder& Size(std::size_t size);
  RequestBuilder& KernelSeed(std::uint64_t seed);
  RequestBuilder& KernelParam(const std::string& key, std::string value);
  RequestBuilder& Label(std::string label);

  RequestBuilder& Agent(AgentKind kind);
  RequestBuilder& Agent(const std::string& name);
  RequestBuilder& ActionSpace(ActionSpaceKind kind);
  RequestBuilder& MaxSteps(std::size_t steps);
  RequestBuilder& RewardCap(double cap);
  RequestBuilder& Episodes(std::size_t episodes);
  RequestBuilder& Seeds(std::size_t num_seeds);
  RequestBuilder& Seed(std::uint64_t seed);
  RequestBuilder& GreedyRollout(std::size_t steps);
  RequestBuilder& RecordTrace(bool record = true);
  RequestBuilder& Cache(CacheMode mode);
  RequestBuilder& SharedCache(bool shared = true);
  RequestBuilder& CacheCapacity(std::size_t capacity);
  RequestBuilder& CheckpointInterval(std::size_t steps);
  RequestBuilder& Surrogate(bool enabled = true);

  RequestBuilder& Alpha(double alpha);
  RequestBuilder& Gamma(double gamma);
  RequestBuilder& InitialQ(double q);
  RequestBuilder& Lambda(double lambda);
  RequestBuilder& Epsilon(double start, double end,
                          std::size_t decay_steps = 0);

  RequestBuilder& Thresholds(const PaperThresholdFactors& factors);
  RequestBuilder& AccuracyFactor(double factor);
  RequestBuilder& PowerFactor(double factor);
  RequestBuilder& TimeFactor(double factor);
  RequestBuilder& MaxReward(double reward);

  /// Validates and returns the request. Throws std::invalid_argument.
  ExplorationRequest Build() const;

 private:
  ExplorationRequest request_;
};

}  // namespace axdse::dse
