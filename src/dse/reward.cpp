#include "dse/reward.hpp"

#include <cmath>
#include <stdexcept>

namespace axdse::dse {

void RewardConfig::Validate() const {
  if (!(max_reward > 0.0))
    throw std::invalid_argument("RewardConfig: max_reward must be > 0");
  if (!std::isfinite(acc_threshold) || !std::isfinite(power_threshold) ||
      !std::isfinite(time_threshold))
    throw std::invalid_argument("RewardConfig: thresholds must be finite");
}

RewardOutcome ComputeReward(const RewardConfig& config,
                            const Configuration& state,
                            const instrument::Measurement& measurement,
                            const SpaceShape& shape) {
  RewardOutcome out;
  if (measurement.delta_acc <= config.acc_threshold) {
    const bool most_aggressive_operators =
        state.AdderIndex() + 1 == shape.num_adders &&
        state.MultiplierIndex() + 1 == shape.num_multipliers;
    if (most_aggressive_operators && state.AllVariablesSelected()) {
      out.reward = config.max_reward;
      out.saturated = true;
    } else if (measurement.delta_power_mw >= config.power_threshold &&
               measurement.delta_time_ns >= config.time_threshold) {
      out.reward = config.step_reward;
    } else {
      out.reward = config.step_penalty;
    }
  } else {
    out.reward = -config.max_reward;
  }
  return out;
}

RewardConfig MakePaperRewardConfig(const Evaluator& evaluator,
                                   const PaperThresholdFactors& factors) {
  RewardConfig config;
  config.acc_threshold =
      factors.accuracy_factor * evaluator.MeanAbsPreciseOutput();
  config.power_threshold = factors.power_factor * evaluator.PrecisePowerMw();
  config.time_threshold = factors.time_factor * evaluator.PreciseTimeNs();
  config.max_reward = factors.max_reward;
  config.Validate();
  return config;
}

}  // namespace axdse::dse
