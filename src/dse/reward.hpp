#pragma once
// The paper's Algorithm 1 ("RL Rewards at step i"), faithfully:
//
//   if Δacc <= acc_th:
//     if adder == N_add-1 and mul == N_mul-1 and all variables selected:
//       reward = +R; terminate            (saturation: maximum approximation)
//     elif Δpower >= p_th and Δtime >= t_th:
//       reward = +1
//     else:
//       reward = -1
//   else:
//     reward = -R
//
// plus the paper's experimental threshold recipe: p_th and t_th are 50% of
// the precise run's power/time; acc_th is 0.4x the average precise output.

#include "dse/configuration.hpp"
#include "dse/evaluator.hpp"
#include "instrument/measurement.hpp"

namespace axdse::dse {

/// Reward-function parameters.
struct RewardConfig {
  double acc_threshold = 0.0;    ///< acc_th: max tolerable accuracy loss (MAE)
  double power_threshold = 0.0;  ///< p_th: required Δpower gain (mW)
  double time_threshold = 0.0;   ///< t_th: required Δtime gain (ns)
  double max_reward = 100.0;     ///< R: saturation reward / -R violation
  double step_reward = 1.0;      ///< reward when both gains clear thresholds
  double step_penalty = -1.0;    ///< reward when feasible but gains too small

  /// Validates invariants (max_reward > 0, thresholds finite).
  /// Throws std::invalid_argument on violation.
  void Validate() const;
};

/// Reward plus the saturation flag of Algorithm 1.
struct RewardOutcome {
  double reward = 0.0;
  bool saturated = false;  ///< the "terminate = True" branch fired
};

/// Evaluates Algorithm 1 for one state (configuration + measurement).
RewardOutcome ComputeReward(const RewardConfig& config,
                            const Configuration& state,
                            const instrument::Measurement& measurement,
                            const SpaceShape& shape);

/// Experimental-setup factors from the paper's Section III.
struct PaperThresholdFactors {
  double accuracy_factor = 0.4;  ///< acc_th = factor * mean precise output
  double power_factor = 0.5;     ///< p_th = factor * precise power
  double time_factor = 0.5;      ///< t_th = factor * precise time
  double max_reward = 100.0;
};

/// Builds the RewardConfig the paper's experiments use, from the precise-run
/// statistics captured by the evaluator.
RewardConfig MakePaperRewardConfig(
    const Evaluator& evaluator,
    const PaperThresholdFactors& factors = PaperThresholdFactors{});

}  // namespace axdse::dse
