#include "dse/shard.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "dse/checkpoint.hpp"
#include "util/fault_injection.hpp"
#include "util/number_format.hpp"

namespace axdse::dse {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using util::ParseUnsignedToken;

std::string Hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

[[noreturn]] void LeaseError(const std::string& message) {
  throw ShardError("ShardLease: " + message);
}

[[noreturn]] void ManifestError(const std::string& message) {
  throw ShardError("ShardManifest: " + message);
}

std::uint64_t ParseHex16(const std::string& hex, const char* what) {
  if (hex.size() != 16) throw ShardError(std::string(what) + ": malformed hash");
  std::uint64_t value = 0;
  for (const char c : hex) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else
      throw ShardError(std::string(what) + ": malformed hash");
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

bool IsIdentifier(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_'))
      return false;
  return true;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// ParseUnsignedToken throws std::invalid_argument; shard parsers surface
/// ShardError instead.
std::uint64_t ShardUnsigned(const std::string& token, const char* what) {
  try {
    return ParseUnsignedToken(token, what);
  } catch (const std::exception& e) {
    throw ShardError(e.what());
  }
}

/// Whole-file read that never throws: nullopt when missing or unreadable.
/// The claim path treats both the same way — as unclaimed work.
std::optional<std::string> ReadFileIfPossible(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return content.str();
}

/// O_EXCL claim of a virgin lease: kernel-level mutual exclusion between
/// racing first claimants. The content lands with write+fsync; a process
/// killed between create and write leaves a zero-length lease, which every
/// reader treats as torn (reclaimable), never as fatal.
bool TryExclusiveCreate(const std::string& path, const std::string& content) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw ShardError("ShardWorker: cannot create lease " + path + ": " +
                     std::strerror(errno));
  }
  const std::size_t length =
      util::fault::ShortWriteLength("shard.lease.write", content.size());
  bool ok = true;
  std::size_t offset = 0;
  while (offset < length) {
    const ::ssize_t n = ::write(fd, content.data() + offset, length - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    offset += static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    std::error_code ec;
    fs::remove(path, ec);
    throw ShardError("ShardWorker: write failed for lease " + path);
  }
  return true;
}

void AtomicShardWrite(const std::string& path, const std::string& content,
                      const char* what) {
  try {
    AtomicWriteCheckpointFile(path, content, what);
  } catch (const CheckpointError& e) {
    throw ShardError(e.what());
  }
}

}  // namespace

// --- on-disk formats --------------------------------------------------------

std::string ShardLease::Serialize() const {
  std::ostringstream out;
  out << "axdse-shard-lease v" << kFormatVersion << "\n";
  out << "lease " << Hex16(spec_hash) << " " << chunk_index << " " << owner
      << " " << generation << " " << heartbeat << "\n";
  out << "end\n";
  return out.str();
}

ShardLease ShardLease::Deserialize(const std::string& text) {
  if (text.empty() || text.back() != '\n')
    LeaseError("truncated (missing trailing newline)");
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.size() != 3) LeaseError("expected exactly 3 lines");
  if (lines[0] != "axdse-shard-lease v" + std::to_string(kFormatVersion))
    LeaseError("unsupported header '" + lines[0] + "'");
  const std::vector<std::string> tokens = SplitTokens(lines[1]);
  if (tokens.size() != 6 || tokens[0] != "lease")
    LeaseError("malformed lease line");
  ShardLease lease;
  lease.spec_hash = ParseHex16(tokens[1], "ShardLease");
  lease.chunk_index = static_cast<std::size_t>(
      ShardUnsigned(tokens[2], "ShardLease chunk index"));
  lease.owner = tokens[3];
  if (!IsIdentifier(lease.owner)) LeaseError("malformed owner id");
  lease.generation = ShardUnsigned(tokens[4], "ShardLease generation");
  lease.heartbeat = ShardUnsigned(tokens[5], "ShardLease heartbeat");
  // "Future" counters beyond any value a real claim history can produce are
  // corruption; reject them so generation+1 arithmetic can never overflow.
  if (lease.generation == 0 || lease.generation > kMaxCounter)
    LeaseError("generation out of bounds");
  if (lease.heartbeat > kMaxCounter) LeaseError("heartbeat out of bounds");
  if (lines[2] != "end") LeaseError("missing trailer");
  return lease;
}

std::string ShardManifest::Serialize() const {
  std::ostringstream out;
  out << "axdse-shard-campaign v" << kFormatVersion << "\n";
  out << "chunks " << chunk_cells << " " << num_cells << "\n";
  out << "spec " << spec_text << "\n";
  out << "end\n";
  return out.str();
}

ShardManifest ShardManifest::Deserialize(const std::string& text) {
  if (text.empty() || text.back() != '\n')
    ManifestError("truncated (missing trailing newline)");
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.size() != 4) ManifestError("expected exactly 4 lines");
  if (lines[0] != "axdse-shard-campaign v" + std::to_string(kFormatVersion))
    ManifestError("unsupported header '" + lines[0] + "'");
  const std::vector<std::string> tokens = SplitTokens(lines[1]);
  if (tokens.size() != 3 || tokens[0] != "chunks")
    ManifestError("malformed chunks line");
  ShardManifest manifest;
  manifest.chunk_cells = static_cast<std::size_t>(
      ShardUnsigned(tokens[1], "ShardManifest chunk cells"));
  manifest.num_cells = static_cast<std::size_t>(
      ShardUnsigned(tokens[2], "ShardManifest cell count"));
  if (manifest.chunk_cells == 0) ManifestError("chunk cells must be >= 1");
  if (lines[2].rfind("spec ", 0) != 0) ManifestError("missing spec line");
  manifest.spec_text = lines[2].substr(5);
  if (manifest.spec_text.empty()) ManifestError("empty spec");
  if (lines[3] != "end") ManifestError("missing trailer");
  return manifest;
}

std::string ShardManifestFileName() { return "campaign.manifest"; }

std::string ShardLeaseFileName(std::size_t chunk_index) {
  return "chunk-" + std::to_string(chunk_index) + ".lease";
}

std::string ShardChunkResultFileName(std::size_t chunk_index) {
  return "chunk-" + std::to_string(chunk_index) + ".done";
}

// --- worker -----------------------------------------------------------------

namespace {

/// Everything Run() resolves once up front and the per-chunk helpers share.
struct ShardContext {
  const Engine* engine = nullptr;
  ShardOptions options;
  std::vector<ExplorationRequest> grid;
  std::size_t chunk_cells = 0;
  std::size_t num_chunks = 0;
  std::string spec_text;
  std::uint64_t spec_hash = 0;

  std::string Path(const std::string& name) const {
    return (fs::path(options.state_directory) / name).string();
  }
  std::size_t FirstCell(std::size_t chunk) const {
    return chunk * chunk_cells;
  }
  std::vector<ExplorationRequest> Slice(std::size_t chunk) const {
    const std::size_t begin = FirstCell(chunk);
    const std::size_t end = std::min(begin + chunk_cells, grid.size());
    return {grid.begin() + static_cast<std::ptrdiff_t>(begin),
            grid.begin() + static_cast<std::ptrdiff_t>(end)};
  }
};

/// Last observation of a peer-owned lease, for staleness detection on this
/// process's steady clock.
struct LeaseObservation {
  bool observed = false;
  std::uint64_t generation = 0;
  std::uint64_t heartbeat = 0;
  Clock::time_point last_change;
};

enum class ClaimOutcome { kClaimed, kReclaimed, kOwnedByPeer, kForeign };

/// True when `path` holds a valid result document for `chunk` of THIS
/// campaign. Anything else — missing, torn, foreign, wrong slice — counts
/// as "no result": the worker re-executes and atomically overwrites, so a
/// corrupt file heals instead of wedging the campaign.
bool HasValidChunkResult(const ShardContext& ctx, std::size_t chunk) {
  const std::optional<std::string> text =
      ReadFileIfPossible(ctx.Path(ShardChunkResultFileName(chunk)));
  if (!text) return false;
  try {
    const CampaignChunkCheckpoint snapshot =
        CampaignChunkCheckpoint::Deserialize(*text);
    if (snapshot.spec_hash != ctx.spec_hash ||
        snapshot.chunk_index != chunk ||
        snapshot.first_cell != ctx.FirstCell(chunk))
      return false;
    const std::vector<ExplorationRequest> slice = ctx.Slice(chunk);
    if (snapshot.cells.size() != slice.size()) return false;
    for (std::size_t i = 0; i < slice.size(); ++i)
      if (snapshot.cells[i].request.ToString() != slice[i].ToString())
        return false;
    return true;
  } catch (const CheckpointError&) {
    return false;
  }
}

/// One claim attempt on `chunk`. Never throws on corrupt files; throws
/// ShardError only on real IO failures and genuinely foreign leases.
ClaimOutcome TryClaim(const ShardContext& ctx, std::size_t chunk,
                      LeaseObservation& observation,
                      std::uint64_t& my_generation) {
  const std::string lease_path = ctx.Path(ShardLeaseFileName(chunk));
  const std::optional<std::string> text = ReadFileIfPossible(lease_path);
  if (!text) {
    ShardLease lease;
    lease.spec_hash = ctx.spec_hash;
    lease.chunk_index = chunk;
    lease.owner = ctx.options.worker_id;
    lease.generation = 1;
    lease.heartbeat = 0;
    if (TryExclusiveCreate(lease_path, lease.Serialize())) {
      util::fault::Point("shard.claimed");
      my_generation = 1;
      return ClaimOutcome::kClaimed;
    }
    // Lost the O_EXCL race this instant; observe the winner next pass.
    return ClaimOutcome::kOwnedByPeer;
  }

  std::uint64_t next_generation = 0;
  bool stale = false;
  try {
    const ShardLease lease = ShardLease::Deserialize(*text);
    if (lease.spec_hash != ctx.spec_hash || lease.chunk_index != chunk)
      throw ShardError(
          "ShardWorker: lease " + lease_path +
          " belongs to a different campaign or chunk — the state directory "
          "is not this campaign's");
    if (lease.owner == ctx.options.worker_id) {
      // Our own id on a lease we don't hold in this incarnation: a previous
      // process with this worker id died. Reclaim immediately — one live
      // process per worker id is the operator contract.
      next_generation = lease.generation + 1;
      stale = true;
    } else if (!observation.observed ||
               observation.generation != lease.generation ||
               observation.heartbeat != lease.heartbeat) {
      observation.observed = true;
      observation.generation = lease.generation;
      observation.heartbeat = lease.heartbeat;
      observation.last_change = Clock::now();
      return ClaimOutcome::kOwnedByPeer;
    } else if (Clock::now() - observation.last_change <
               ctx.options.lease_ttl) {
      return ClaimOutcome::kOwnedByPeer;
    } else {
      next_generation = lease.generation + 1;
      stale = true;
    }
  } catch (const ShardError&) {
    if (stale) throw;  // the foreign-lease diagnosis above
    // Torn/truncated/zero-length/garbage lease: atomic writes make this
    // impossible from our own protocol, so treat it as external damage and
    // reclaim right away.
    next_generation = observation.generation + 1;
    stale = true;
  }
  if (!stale) return ClaimOutcome::kOwnedByPeer;

  ShardLease claim;
  claim.spec_hash = ctx.spec_hash;
  claim.chunk_index = chunk;
  claim.owner = ctx.options.worker_id;
  claim.generation = next_generation;
  claim.heartbeat = 0;
  AtomicShardWrite(lease_path, claim.Serialize(), "ShardLease::Save");
  // Read-back: another reclaimer may have renamed over us in the same
  // window. Losing here is harmless (we simply don't execute); even the
  // residual both-read-back-success race only costs duplicate deterministic
  // work, never a wrong merge (results are committed atomically and folded
  // once per chunk index).
  const std::optional<std::string> confirm = ReadFileIfPossible(lease_path);
  if (!confirm) return ClaimOutcome::kOwnedByPeer;
  try {
    const ShardLease now_on_disk = ShardLease::Deserialize(*confirm);
    if (now_on_disk.owner != ctx.options.worker_id ||
        now_on_disk.generation != claim.generation)
      return ClaimOutcome::kOwnedByPeer;
  } catch (const ShardError&) {
    return ClaimOutcome::kOwnedByPeer;
  }
  util::fault::Point("shard.claimed");
  observation = LeaseObservation{};
  my_generation = claim.generation;
  return ClaimOutcome::kReclaimed;
}

/// Removes every engine snapshot of `slice`'s jobs (and their shared-cache
/// groups are keyed per run, so chunk re-execution regenerates them). Used
/// once when a resume hits a corrupt snapshot: drop and recompute beats
/// dying, and determinism makes the recomputed chunk byte-identical.
void RemoveEngineSnapshots(const ShardContext& ctx,
                           const std::vector<ExplorationRequest>& slice) {
  std::error_code ec;
  for (const ExplorationRequest& request : slice) {
    const std::string request_text = request.ToString();
    for (std::size_t s = 0; s < request.num_seeds; ++s)
      fs::remove(ctx.Path(JobCheckpointFileName(request_text,
                                                request.seed + s)),
                 ec);
  }
  for (const auto& entry :
       fs::directory_iterator(ctx.options.state_directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("cache-", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".ckpt")
      fs::remove(entry.path(), ec);
  }
}

/// Executes one claimed chunk. Returns true when the chunk's result
/// document was committed; false when the lease was lost mid-run and the
/// chunk was cooperatively suspended for its new owner.
bool ExecuteChunk(const ShardContext& ctx, std::size_t chunk,
                  std::uint64_t my_generation) {
  const std::vector<ExplorationRequest> slice = ctx.Slice(chunk);
  const std::string lease_path = ctx.Path(ShardLeaseFileName(chunk));

  std::mutex heartbeat_mutex;
  Clock::time_point last_refresh = Clock::now();
  std::atomic<bool> lost{false};

  RunHooks hooks;
  hooks.interval = 128;
  hooks.on_progress = [&](const JobProgress&) {
    // Called from several engine workers; one refresher at a time, the
    // rest skip. Rate-limited to heartbeat_period even when a refresh
    // fails, so a wedged filesystem can't busy-loop us.
    std::unique_lock<std::mutex> lock(heartbeat_mutex, std::try_to_lock);
    if (!lock.owns_lock()) return;
    const Clock::time_point now = Clock::now();
    if (now - last_refresh < ctx.options.heartbeat_period) return;
    last_refresh = now;
    const std::optional<std::string> text = ReadFileIfPossible(lease_path);
    if (text) {
      try {
        const ShardLease on_disk = ShardLease::Deserialize(*text);
        if (on_disk.owner != ctx.options.worker_id ||
            on_disk.generation != my_generation) {
          lost.store(true, std::memory_order_relaxed);
          return;
        }
        ShardLease refreshed = on_disk;
        refreshed.heartbeat = on_disk.heartbeat + 1;
        util::fault::Point("shard.heartbeat");
        AtomicShardWrite(lease_path, refreshed.Serialize(),
                         "ShardLease::Save");
        return;
      } catch (const ShardError&) {
        // Torn or unwritable lease: fall through and rewrite our claim —
        // if a peer actually took it over, the next refresh sees them.
      }
    }
    ShardLease rewrite;
    rewrite.spec_hash = ctx.spec_hash;
    rewrite.chunk_index = chunk;
    rewrite.owner = ctx.options.worker_id;
    rewrite.generation = my_generation;
    rewrite.heartbeat = 1;
    try {
      AtomicShardWrite(lease_path, rewrite.Serialize(), "ShardLease::Save");
    } catch (const ShardError&) {
      // Heartbeats are best-effort; a failed one only risks an early
      // reclaim, which is safe.
    }
  };
  hooks.should_suspend = [&] { return lost.load(std::memory_order_relaxed); };

  CheckpointOptions engine_checkpoint;
  engine_checkpoint.directory = ctx.options.state_directory;
  engine_checkpoint.interval = ctx.options.checkpoint_interval;

  BatchResult batch;
  try {
    batch = ctx.engine->Run(slice, engine_checkpoint, hooks);
  } catch (const CheckpointError&) {
    // A dead owner can't leave torn snapshots (writes are atomic+durable),
    // but external corruption can. Drop the chunk's snapshots and compute
    // it from scratch — determinism makes the result identical.
    RemoveEngineSnapshots(ctx, slice);
    batch = ctx.engine->Run(slice, engine_checkpoint, hooks);
  }
  if (!batch.Complete()) return false;  // lease lost, suspended for new owner

  util::fault::Point("shard.executed");

  CampaignChunkCheckpoint snapshot;
  snapshot.spec_hash = ctx.spec_hash;
  snapshot.chunk_index = chunk;
  snapshot.first_cell = ctx.FirstCell(chunk);
  snapshot.cells.reserve(batch.results.size());
  for (const RequestResult& result : batch.results)
    snapshot.cells.push_back(CampaignAggregator::Reduce(result));
  try {
    snapshot.Save(ctx.Path(ShardChunkResultFileName(chunk)));
  } catch (const CheckpointError& e) {
    throw ShardError(e.what());
  }
  util::fault::Point("shard.committed");

  std::error_code ec;
  fs::remove(lease_path, ec);  // best-effort; done-file checks win anyway
  return true;
}

void InitOrVerifyManifest(const ShardContext& ctx) {
  const std::string path = ctx.Path(ShardManifestFileName());
  ShardManifest mine;
  mine.spec_text = ctx.spec_text;
  mine.chunk_cells = ctx.chunk_cells;
  mine.num_cells = ctx.grid.size();
  if (!fs::exists(path))
    AtomicShardWrite(path, mine.Serialize(), "ShardManifest::Save");
  // Read back what actually won (racing writers of the SAME campaign write
  // identical bytes; a different campaign loses here, deterministically).
  const std::optional<std::string> text = ReadFileIfPossible(path);
  if (!text)
    throw ShardError("ShardWorker: cannot read manifest " + path);
  const ShardManifest on_disk = ShardManifest::Deserialize(*text);
  if (on_disk.spec_text != mine.spec_text ||
      on_disk.chunk_cells != mine.chunk_cells ||
      on_disk.num_cells != mine.num_cells)
    throw ShardError(
        "ShardWorker: state directory " + ctx.options.state_directory +
        " belongs to a different campaign or chunking (manifest spec/chunk "
        "mismatch) — use a fresh directory or the original spec and "
        "chunk_cells");
}

}  // namespace

ShardRunReport ShardWorker::Run(const CampaignSpec& spec,
                                const ShardOptions& options) const {
  if (options.state_directory.empty())
    throw ShardError("ShardWorker: state_directory is required");
  if (!IsIdentifier(options.worker_id))
    throw ShardError(
        "ShardWorker: worker_id must be a non-empty identifier (letters, "
        "digits, '-', '_')");
  if (options.lease_ttl <= std::chrono::milliseconds::zero() ||
      options.heartbeat_period <= std::chrono::milliseconds::zero() ||
      options.poll_period <= std::chrono::milliseconds::zero())
    throw ShardError(
        "ShardWorker: lease_ttl, heartbeat_period, and poll_period must be "
        "positive");
  spec.Validate();

  ShardContext ctx;
  ctx.engine = engine_;
  ctx.options = options;
  ctx.grid = spec.Expand();
  ctx.chunk_cells =
      options.chunk_cells == 0 ? ctx.grid.size() : options.chunk_cells;
  ctx.num_chunks = (ctx.grid.size() + ctx.chunk_cells - 1) / ctx.chunk_cells;
  ctx.spec_text = spec.ToString();
  ctx.spec_hash = StableHash64(ctx.spec_text);

  std::error_code ec;
  fs::create_directories(options.state_directory, ec);
  if (ec)
    throw ShardError("ShardWorker: cannot create state directory " +
                     options.state_directory + ": " + ec.message());
  InitOrVerifyManifest(ctx);

  ShardRunReport report;
  std::vector<bool> done(ctx.num_chunks, false);
  std::vector<LeaseObservation> observations(ctx.num_chunks);

  while (true) {
    bool all_done = true;
    bool progressed = false;
    for (std::size_t chunk = 0; chunk < ctx.num_chunks; ++chunk) {
      if (done[chunk]) continue;
      if (HasValidChunkResult(ctx, chunk)) {
        done[chunk] = true;
        ++report.chunks_skipped;
        progressed = true;
        continue;
      }
      all_done = false;
      if (options.max_chunks != 0 &&
          report.chunks_executed >= options.max_chunks)
        continue;
      std::uint64_t my_generation = 0;
      const ClaimOutcome claim =
          TryClaim(ctx, chunk, observations[chunk], my_generation);
      if (claim != ClaimOutcome::kClaimed &&
          claim != ClaimOutcome::kReclaimed)
        continue;
      if (ExecuteChunk(ctx, chunk, my_generation)) {
        done[chunk] = true;
        ++report.chunks_executed;
        if (claim == ClaimOutcome::kReclaimed) ++report.chunks_reclaimed;
      } else {
        ++report.chunks_yielded;
      }
      progressed = true;
    }
    if (all_done) {
      report.complete = true;
      break;
    }
    if (options.max_chunks != 0 &&
        report.chunks_executed >= options.max_chunks)
      break;
    if (!options.wait_for_completion && !progressed) break;
    if (!progressed) std::this_thread::sleep_for(options.poll_period);
  }
  return report;
}

// --- merge ------------------------------------------------------------------

CampaignResult MergeShardedCampaign(const std::string& state_directory) {
  const std::string manifest_path =
      (fs::path(state_directory) / ShardManifestFileName()).string();
  const std::optional<std::string> manifest_text =
      ReadFileIfPossible(manifest_path);
  if (!manifest_text)
    throw ShardError("MergeShardedCampaign: cannot read manifest " +
                     manifest_path);
  const ShardManifest manifest = ShardManifest::Deserialize(*manifest_text);

  CampaignSpec spec;
  try {
    spec = CampaignSpec::Parse(manifest.spec_text);
    spec.Validate();
  } catch (const std::invalid_argument& e) {
    throw ShardError(std::string("MergeShardedCampaign: manifest spec does "
                                 "not parse: ") +
                     e.what());
  }
  const std::vector<ExplorationRequest> grid = spec.Expand();
  if (grid.size() != manifest.num_cells)
    throw ShardError(
        "MergeShardedCampaign: manifest cell count does not match its spec");
  const std::uint64_t spec_hash = StableHash64(spec.ToString());
  const std::size_t num_chunks =
      (grid.size() + manifest.chunk_cells - 1) / manifest.chunk_cells;

  CampaignResult result;
  result.spec = spec;
  result.num_cells = grid.size();

  CampaignAggregator aggregator;
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const std::string path =
        (fs::path(state_directory) / ShardChunkResultFileName(chunk))
            .string();
    const std::optional<std::string> text = ReadFileIfPossible(path);
    if (!text)
      throw ShardError("MergeShardedCampaign: chunk " +
                       std::to_string(chunk) +
                       " has no result document (" + path +
                       ") — run a shard worker to completion first");
    CampaignChunkCheckpoint snapshot;
    try {
      snapshot = CampaignChunkCheckpoint::Deserialize(*text);
    } catch (const CheckpointError& e) {
      throw ShardError("MergeShardedCampaign: " + path + ": " + e.what());
    }
    const std::size_t first = chunk * manifest.chunk_cells;
    const std::size_t end =
        std::min(first + manifest.chunk_cells, grid.size());
    if (snapshot.spec_hash != spec_hash || snapshot.chunk_index != chunk ||
        snapshot.first_cell != first ||
        snapshot.cells.size() != end - first)
      throw ShardError("MergeShardedCampaign: " + path +
                       " belongs to a different campaign or chunking");
    for (std::size_t i = 0; i < snapshot.cells.size(); ++i)
      if (snapshot.cells[i].request.ToString() !=
          grid[first + i].ToString())
        throw ShardError("MergeShardedCampaign: " + path +
                         " does not match the expanded grid");
    for (CampaignCell& cell : snapshot.cells) aggregator.Add(std::move(cell));
  }

  result.cells = aggregator.Cells();
  result.fronts = aggregator.Fronts();
  result.best = aggregator.Best();
  return result;
}

// --- status -----------------------------------------------------------------

ShardStatusReport ShardStatus(const std::string& state_directory,
                              std::chrono::milliseconds probe) {
  const std::string manifest_path =
      (fs::path(state_directory) / ShardManifestFileName()).string();
  const std::optional<std::string> manifest_text =
      ReadFileIfPossible(manifest_path);
  if (!manifest_text)
    throw ShardError("ShardStatus: cannot read manifest " + manifest_path);
  const ShardManifest manifest = ShardManifest::Deserialize(*manifest_text);

  ShardContext ctx;
  ctx.options.state_directory = state_directory;
  try {
    CampaignSpec spec = CampaignSpec::Parse(manifest.spec_text);
    spec.Validate();
    ctx.grid = spec.Expand();
    ctx.spec_text = spec.ToString();
  } catch (const std::invalid_argument& e) {
    throw ShardError(
        std::string("ShardStatus: manifest spec does not parse: ") +
        e.what());
  }
  if (ctx.grid.size() != manifest.num_cells)
    throw ShardError(
        "ShardStatus: manifest cell count does not match its spec");
  ctx.chunk_cells = manifest.chunk_cells;
  ctx.num_chunks =
      (ctx.grid.size() + manifest.chunk_cells - 1) / manifest.chunk_cells;
  ctx.spec_hash = StableHash64(ctx.spec_text);

  ShardStatusReport report;
  report.num_chunks = ctx.num_chunks;

  // One read-only pass; claimed leases keep their counters for the probe.
  std::map<std::size_t, std::pair<std::uint64_t, std::uint64_t>> claimed;
  for (std::size_t chunk = 0; chunk < ctx.num_chunks; ++chunk) {
    if (HasValidChunkResult(ctx, chunk)) {
      ++report.done;
      continue;
    }
    const std::optional<std::string> text =
        ReadFileIfPossible(ctx.Path(ShardLeaseFileName(chunk)));
    if (!text) {
      ++report.unclaimed;
      continue;
    }
    try {
      const ShardLease lease = ShardLease::Deserialize(*text);
      claimed.emplace(chunk,
                      std::make_pair(lease.generation, lease.heartbeat));
    } catch (const ShardError&) {
      ++report.stale;  // torn lease: reclaimable work
    }
  }

  if (probe.count() > 0 && !claimed.empty()) {
    // A claimed lease whose (generation, heartbeat) did not move over the
    // probe window has an owner that stopped heartbeating.
    std::this_thread::sleep_for(probe);
    for (const auto& [chunk, counters] : claimed) {
      const std::optional<std::string> text =
          ReadFileIfPossible(ctx.Path(ShardLeaseFileName(chunk)));
      bool alive = false;
      if (text) {
        try {
          const ShardLease lease = ShardLease::Deserialize(*text);
          alive =
              std::make_pair(lease.generation, lease.heartbeat) != counters;
        } catch (const ShardError&) {
        }
      } else {
        // The lease vanished mid-probe: its owner just released it.
        alive = true;
      }
      if (alive)
        ++report.claimed;
      else
        ++report.stale;
    }
  } else {
    report.claimed = claimed.size();
  }
  return report;
}

}  // namespace axdse::dse
