#pragma once
// dse::Shard — crash-safe multi-process campaign execution. A campaign's
// expanded grid is split into chunk work units (the same chunks
// Campaign::Run checkpoints); any number of ShardWorker processes point at
// one shared state directory and claim chunks through owner lease files:
//
//   campaign.manifest   spec + chunking, written once, verified by everyone
//   chunk-<i>.lease     owner claim: worker id, generation, heartbeat
//   chunk-<i>.done      the chunk's result document (a CampaignChunkCheckpoint)
//   job-*.ckpt ...      the engine's ordinary mid-chunk job snapshots
//
// Claim protocol: a virgin chunk is claimed by O_EXCL-creating its lease; a
// lease whose owner stopped heartbeating for lease_ttl (observed on the
// watcher's own monotonic clock — no cross-process clock is trusted), or
// that is torn/truncated/unparsable, is reclaimed by atomically replacing
// it with generation+1. Every lease write is temp+fsync+rename, so a
// half-written lease is never visible except through external corruption —
// and corruption is handled, not fatal: an unreadable lease or result file
// counts as unclaimed work, never as a crash.
//
// Safety argument: chunk execution is deterministic (the engine's results
// are worker-count- and resume-independent), so even the unavoidable
// lease-race window — two workers briefly executing the same chunk after a
// reclaim — is benign: both compute byte-identical result documents, the
// atomic rename publishes one of them, and MergeShardedCampaign folds each
// chunk index exactly once. A shard SIGKILLed at ANY instruction therefore
// never loses or double-counts work: its lease goes stale, a survivor
// reclaims, resumes the dead worker's engine snapshots (or recomputes), and
// the merged axdse-campaign-v1 JSON/CSV is byte-identical to an
// uninterrupted single-process Campaign::Run of the same spec and chunk
// size. Deliberate deaths at exact hazard points are available through
// util::fault (AXDSE_FAULT=shard.executed:2 and friends).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "dse/campaign.hpp"

namespace axdse::dse {

/// Typed failure of shard coordination: invalid options, a state directory
/// belonging to a different campaign, lease/manifest parse errors, or an
/// incomplete directory handed to MergeShardedCampaign. File corruption on
/// the claim path is NOT an error (torn files are reclaimed as unclaimed
/// work); only genuinely foreign or unusable state raises this.
class ShardError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Owner lease of one chunk work unit. Serialized line-oriented like every
/// other on-disk format in dse/ (version-tagged, strict parse).
struct ShardLease {
  static constexpr unsigned kFormatVersion = 1;
  /// Generations and heartbeats beyond this bound are rejected as corrupt
  /// ("future-generation" files cannot wedge reclaim into overflow).
  static constexpr std::uint64_t kMaxCounter = 1ULL << 48;

  /// StableHash64 of CampaignSpec::ToString() — leases bind to a campaign.
  std::uint64_t spec_hash = 0;
  std::size_t chunk_index = 0;
  /// Claiming worker id (identifier alphabet: letters, digits, '-', '_').
  std::string owner;
  /// Claim count of this chunk, monotonically increasing across reclaims.
  std::uint64_t generation = 0;
  /// Refreshed by the owner while the chunk executes; a watcher that sees
  /// (generation, heartbeat) unchanged for lease_ttl declares the lease
  /// stale. A counter, not a timestamp: no cross-process clock is trusted.
  std::uint64_t heartbeat = 0;

  std::string Serialize() const;
  /// Strict inverse of Serialize(). Throws ShardError on truncated,
  /// version-mismatched, malformed, or out-of-bound input.
  static ShardLease Deserialize(const std::string& text);
};

/// The state directory's identity record: every worker (and the merge)
/// verifies its campaign spec and chunking against this before touching any
/// chunk, so two different campaigns can never interleave one directory.
struct ShardManifest {
  static constexpr unsigned kFormatVersion = 1;

  std::string spec_text;        ///< CampaignSpec::ToString()
  std::size_t chunk_cells = 0;  ///< grid cells per chunk (resolved, >= 1)
  std::size_t num_cells = 0;    ///< full grid size

  std::string Serialize() const;
  /// Throws ShardError on malformed input.
  static ShardManifest Deserialize(const std::string& text);
};

/// File names inside a shard state directory.
std::string ShardManifestFileName();
std::string ShardLeaseFileName(std::size_t chunk_index);
std::string ShardChunkResultFileName(std::size_t chunk_index);

/// Shard worker policy.
struct ShardOptions {
  /// Shared state directory (created on demand). Required.
  std::string state_directory;
  /// This worker's identity in lease files. Required; identifier alphabet
  /// (letters, digits, '-', '_'); reusing the id of a crashed worker is
  /// fine — a worker reclaims its own stale leases immediately.
  std::string worker_id;
  /// Grid cells per chunk. Part of the campaign's identity (all workers and
  /// the single-process reference must agree). 0 = the whole grid.
  std::size_t chunk_cells = 8;
  /// Engine autosave period in environment steps while executing a chunk
  /// (see CheckpointOptions::interval); snapshots land in the state
  /// directory where a reclaiming worker resumes them. 0 = save only at
  /// suspension.
  std::size_t checkpoint_interval = 0;
  /// Execute at most this many chunks, then return (0 = no limit). Chunks
  /// found already done don't count.
  std::size_t max_chunks = 0;
  /// A lease whose (generation, heartbeat) stays unchanged this long on the
  /// watcher's steady clock is stale and gets reclaimed.
  std::chrono::milliseconds lease_ttl{10000};
  /// How often the owner refreshes its heartbeat while executing.
  std::chrono::milliseconds heartbeat_period{2000};
  /// Sleep between scans while every remaining chunk is owned by live
  /// peers.
  std::chrono::milliseconds poll_period{250};
  /// When true (default), Run returns only once EVERY chunk has a result
  /// document — the worker polls peers' leases and reclaims stale ones, so
  /// any worker exiting successfully proves the directory is mergeable.
  /// When false, Run returns as soon as no chunk is claimable.
  bool wait_for_completion = true;
};

/// What one ShardWorker::Run call did.
struct ShardRunReport {
  std::size_t chunks_executed = 0;   ///< chunks this worker completed
  std::size_t chunks_reclaimed = 0;  ///< of those, begun on a reclaimed lease
  std::size_t chunks_skipped = 0;    ///< found already done (any worker)
  std::size_t chunks_yielded = 0;    ///< abandoned after losing the lease
  /// Every chunk had a valid result document when Run returned.
  bool complete = false;
};

/// Claims and executes campaign chunks from a shared state directory.
/// Stateless between Run() calls; typically one ShardWorker per process,
/// many processes per campaign.
class ShardWorker {
 public:
  explicit ShardWorker(const Engine& engine) : engine_(&engine) {}

  /// Validates spec and options, writes-or-verifies the manifest, then
  /// loops: claim a chunk (virgin, stale, or torn lease), execute it
  /// through the engine (resuming any job snapshots a dead owner left),
  /// commit its result document, release the lease. Throws ShardError on
  /// unusable options or a foreign state directory; never throws on
  /// corrupt lease/result files (they are reclaimed).
  ShardRunReport Run(const CampaignSpec& spec,
                     const ShardOptions& options) const;

 private:
  const Engine* engine_;
};

/// Read-only snapshot of a shard state directory's progress. Disjoint
/// per-chunk categories: done + claimed + stale + unclaimed == num_chunks.
struct ShardStatusReport {
  std::size_t num_chunks = 0;
  /// Chunks with a valid result document for this campaign.
  std::size_t done = 0;
  /// Chunks with a parsable lease and no result — presumed live.
  std::size_t claimed = 0;
  /// Chunks with a torn/unparsable lease, or (when probed) a lease whose
  /// (generation, heartbeat) did not advance over the probe window.
  std::size_t stale = 0;
  /// Chunks with neither a lease nor a result.
  std::size_t unclaimed = 0;
  bool Complete() const noexcept { return done == num_chunks; }
};

/// Scans a shard state directory WITHOUT claiming, writing, or reclaiming
/// anything — safe to run next to live workers. With `probe` > 0 the
/// claimed leases are sampled twice, `probe` apart, and ones whose
/// heartbeat did not advance are reported stale (pick a probe longer than
/// the workers' heartbeat period, default 2000 ms, to avoid false
/// positives); with probe == 0 staleness covers only torn lease files.
/// Throws ShardError when the directory has no usable manifest.
ShardStatusReport ShardStatus(const std::string& state_directory,
                              std::chrono::milliseconds probe =
                                  std::chrono::milliseconds{0});

/// Folds every chunk result document of a completed sharded campaign into
/// one CampaignResult, in grid order — deterministic regardless of shard
/// count, interleaving, or crash/reclaim history, so
/// report::WriteCampaignJson/Csv of the merged result is byte-identical to
/// a single-process Campaign::Run of the manifest's spec and chunk size.
/// Each chunk index is folded exactly once (a chunk can never be
/// double-counted). Throws ShardError when the manifest is missing/invalid
/// or any chunk result is missing or unreadable (merge is strict where
/// workers are lenient: an incomplete campaign must not silently merge).
CampaignResult MergeShardedCampaign(const std::string& state_directory);

}  // namespace axdse::dse
