#include "dse/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace axdse::dse {

namespace {

// Numeric anchors of the log-space model. kEps keeps log() defined at
// Δacc = 0; the clamp bounds keep deeply feasible (Δacc ~ 0) and wildly
// infeasible observations from dominating the residual scale — only the
// neighbourhood of the threshold matters for the skip decision.
constexpr double kEps = 1e-12;
constexpr double kClampBelow = 6.0;
constexpr double kClampAbove = 20.0;

// Bound on the quadratic counts model's feature dimension (1 + V + V(V-1)/2)
// — beyond it the exact normal-equation fit gets too expensive and the
// surrogate falls back to the mask memo alone.
constexpr std::size_t kMaxCountsDim = 512;
// Retry cadence (in new distinct masks) of the counts fit while it is not
// yet validated.
constexpr std::size_t kCountsFitInterval = 64;

// Reads/writes OpCounts as an indexable quadruple, in declaration order.
std::uint64_t CountField(const axdse::energy::OpCounts& counts, int field) {
  switch (field) {
    case 0: return counts.precise_adds;
    case 1: return counts.approx_adds;
    case 2: return counts.precise_muls;
    default: return counts.approx_muls;
  }
}

void SetCountField(axdse::energy::OpCounts& counts, int field,
                   std::uint64_t value) {
  switch (field) {
    case 0: counts.precise_adds = value; break;
    case 1: counts.approx_adds = value; break;
    case 2: counts.precise_muls = value; break;
    default: counts.approx_muls = value; break;
  }
}

}  // namespace

SurrogateModel::SurrogateModel(const SpaceShape& shape, double acc_threshold,
                               const energy::EnergyModel& energy,
                               double precise_power_mw, double precise_time_ns,
                               const SurrogateOptions& options)
    : shape_(shape),
      acc_threshold_(acc_threshold),
      cut_(std::log(std::max(acc_threshold, 0.0) + kEps)),
      energy_(&energy),
      precise_power_mw_(precise_power_mw),
      precise_time_ns_(precise_time_ns),
      options_(options) {
  dim_ = 1 + shape_.num_adders + shape_.num_multipliers + shape_.num_variables;
  min_samples_ = std::max(options_.min_samples, 2 * dim_);
  const std::size_t v = shape_.num_variables;
  const std::size_t quad_dim = 1 + v + v * (v - 1) / 2;
  counts_dim_ = quad_dim <= kMaxCountsDim ? quad_dim : 0;
}

SurrogateModel::FullKey SurrogateModel::FullKeyOf(const Configuration& config) {
  FullKey key;
  key.reserve(2 + config.MaskWords().size());
  key.push_back(config.AdderIndex());
  key.push_back(config.MultiplierIndex());
  key.insert(key.end(), config.MaskWords().begin(), config.MaskWords().end());
  return key;
}

SurrogateModel::MaskKey SurrogateModel::MaskKeyOf(const Configuration& config) {
  return config.MaskWords();
}

std::vector<double> SurrogateModel::Features(const Configuration& config) const {
  // [bias | adder one-hot | multiplier one-hot | variable indicators].
  // The operator one-hots are gated by "any variable selected": with an
  // empty mask no operation is approximate and Δacc is 0 no matter which
  // operators are nominally selected, so those rows must not teach the model
  // anything about the operators.
  std::vector<double> f(dim_, 0.0);
  f[0] = 1.0;
  const double any = config.NoneSelected() ? 0.0 : 1.0;
  f[1 + config.AdderIndex()] = any;
  f[1 + shape_.num_adders + config.MultiplierIndex()] = any;
  const std::size_t vars_base = 1 + shape_.num_adders + shape_.num_multipliers;
  for (std::size_t v = 0; v < shape_.num_variables; ++v)
    if (config.VariableSelected(v)) f[vars_base + v] = 1.0;
  return f;
}

bool SurrogateModel::IsSaturation(const Configuration& config) const noexcept {
  return shape_.num_adders > 0 && shape_.num_multipliers > 0 &&
         config.AdderIndex() + 1 == shape_.num_adders &&
         config.MultiplierIndex() + 1 == shape_.num_multipliers &&
         config.AllVariablesSelected();
}

SurrogateModel::Point SurrogateModel::PointOf(const Configuration& config) {
  Point p;
  p.adder = config.AdderIndex();
  p.multiplier = config.MultiplierIndex();
  p.mask = config.MaskWords();
  return p;
}

bool SurrogateModel::Dominates(const Point& a, const Point& b) {
  if (a.adder < b.adder || a.multiplier < b.multiplier) return false;
  for (std::size_t w = 0; w < b.mask.size(); ++w)
    if ((b.mask[w] & ~a.mask[w]) != 0) return false;  // b selects more than a
  return true;
}

std::vector<double> SurrogateModel::MaskFeatures(const MaskKey& mask) const {
  const std::size_t v_count = shape_.num_variables;
  std::vector<double> f(counts_dim_, 0.0);
  f[0] = 1.0;
  const auto bit = [&](std::size_t v) {
    return (mask[v / 64] >> (v % 64)) & 1u ? 1.0 : 0.0;
  };
  for (std::size_t v = 0; v < v_count; ++v) f[1 + v] = bit(v);
  std::size_t k = 1 + v_count;
  for (std::size_t i = 0; i < v_count; ++i)
    for (std::size_t j = i + 1; j < v_count; ++j) f[k++] = bit(i) * bit(j);
  return f;
}

void SurrogateModel::TryFitCounts() {
  // Exact fit (no ridge): the counts of every straight-line kernel are an
  // integer-valued quadratic in the mask bits, so the model is only trusted
  // when it reproduces EVERY observed mask exactly after rounding.
  util::LinearModelFit fits[4];
  for (int field = 0; field < 4; ++field) {
    fits[field] =
        util::FitLinearModel(counts_rows_, counts_targets_[field], 0.0);
    if (!fits[field].Ok()) return;
  }
  for (std::size_t i = 0; i < counts_rows_.size(); ++i) {
    for (int field = 0; field < 4; ++field) {
      const double pred = fits[field].Predict(counts_rows_[i]);
      if (!std::isfinite(pred) ||
          std::abs(pred - counts_targets_[field][i]) >= 0.5)
        return;
    }
  }
  for (int field = 0; field < 4; ++field) counts_fits_[field] = fits[field];
  counts_model_ok_ = true;
}

bool SurrogateModel::PredictCounts(const MaskKey& mask,
                                   energy::OpCounts* out) const {
  if (!counts_model_ok_) return false;
  const std::vector<double> f = MaskFeatures(mask);
  for (int field = 0; field < 4; ++field) {
    const double pred = counts_fits_[field].Predict(f);
    if (!std::isfinite(pred)) return false;
    const double rounded = std::round(pred);
    if (rounded < 0.0) return false;
    SetCountField(*out, field, static_cast<std::uint64_t>(rounded));
  }
  return true;
}

void SurrogateModel::Refit() {
  fit_ = util::FitLinearModel(rows_, targets_, options_.ridge_lambda);
  if (!fit_.Ok()) return;
  double max_residual = 0.0;
  for (std::size_t i = 0; i < rows_.size(); ++i)
    max_residual = std::max(max_residual,
                            std::abs(fit_.Predict(rows_[i]) - targets_[i]));
  margin_ = std::max(options_.margin_factor *
                         std::max({max_residual, prequential_max_,
                                   options_.residual_floor}),
                     calibration_floor_);
}

void SurrogateModel::Observe(const Configuration& config,
                             const instrument::Measurement& m) {
  if (!FitsShape(shape_, config))
    throw std::invalid_argument(
        "SurrogateModel::Observe: configuration does not fit the space");

  // Margin self-calibration against every ground truth BEFORE it joins the
  // training set. This is an honest out-of-sample (prequential) error of
  // exactly the model a skip of this configuration would have used — audits
  // routinely route confident configurations through here, so the skip
  // region itself is probed. Two floors, both permanent:
  //   * the running max prequential error scales the margin like the
  //     training residuals do, but without their optimism;
  //   * a confidently-misclassified observation pushes the margin past its
  //     own confidence (with headroom) so that exact mistake cannot recur.
  if (fit_.Ok()) {
    const double pred = fit_.Predict(Features(config));
    if (std::isfinite(pred)) {
      const double y = std::clamp(std::log(std::max(m.delta_acc, 0.0) + kEps),
                                  cut_ - kClampBelow, cut_ + kClampAbove);
      prequential_max_ = std::max(prequential_max_, std::abs(pred - y));
      const bool pred_infeasible = pred > cut_;
      const bool true_infeasible = m.delta_acc > acc_threshold_;
      if (pred_infeasible != true_infeasible)
        calibration_floor_ =
            std::max(calibration_floor_, 1.25 * std::abs(pred - cut_));
      margin_ = std::max(
          options_.margin_factor *
              std::max(prequential_max_, options_.residual_floor),
          calibration_floor_);
    }
  }

  // Learn (or cross-check) the operation counts of this variable mask. The
  // op split depends only on which variables are selected, not on the
  // operator choice — if two runs with the same mask ever disagree, that
  // assumption is wrong for this kernel and exact-cost prediction is
  // impossible: stop skipping permanently.
  const auto [it, inserted] = mask_counts_.emplace(MaskKeyOf(config), m.counts);
  if (!inserted && !(it->second == m.counts)) counts_unstable_ = true;
  if (inserted && counts_dim_ > 0) {
    // A validated quadratic counts model must keep matching reality: one
    // off-model mask means its predictions cannot be trusted anywhere.
    if (counts_model_ok_) {
      energy::OpCounts predicted;
      if (!PredictCounts(it->first, &predicted) || !(predicted == m.counts))
        counts_unstable_ = true;
    }
    counts_rows_.push_back(MaskFeatures(it->first));
    for (int field = 0; field < 4; ++field)
      counts_targets_[field].push_back(
          static_cast<double>(CountField(m.counts, field)));
    if (!counts_model_ok_ && !counts_unstable_ &&
        counts_rows_.size() >= counts_dim_ &&
        (counts_rows_.size() - counts_dim_) % kCountsFitInterval == 0)
      TryFitCounts();
  }

  // Record the ground truth as a dominance witness, keeping each set an
  // antichain: the feasible side only Pareto-maximal points (the most
  // aggressive configurations known feasible), the infeasible side only
  // Pareto-minimal ones — anything else witnesses nothing those cannot.
  {
    const Point point = PointOf(config);
    if (m.delta_acc <= acc_threshold_) {
      bool covered = false;
      for (const Point& q : feasible_witnesses_)
        if (Dominates(q, point)) { covered = true; break; }
      if (!covered) {
        std::erase_if(feasible_witnesses_,
                      [&](const Point& q) { return Dominates(point, q); });
        feasible_witnesses_.push_back(point);
      }
    } else {
      bool covered = false;
      for (const Point& q : infeasible_witnesses_)
        if (Dominates(point, q)) { covered = true; break; }
      if (!covered) {
        std::erase_if(infeasible_witnesses_,
                      [&](const Point& q) { return Dominates(q, point); });
        infeasible_witnesses_.push_back(point);
      }
    }
  }

  observations_.push_back(config);
  rows_.push_back(Features(config));
  targets_.push_back(std::clamp(
      std::log(std::max(m.delta_acc, 0.0) + kEps), cut_ - kClampBelow,
      cut_ + kClampAbove));

  const std::size_t interval = std::max<std::size_t>(options_.refit_interval, 1);
  if (rows_.size() >= min_samples_ &&
      (rows_.size() - min_samples_) % interval == 0)
    Refit();
}

const instrument::Measurement* SurrogateModel::Lookup(
    const Configuration& config) const {
  const auto it = predicted_.find(FullKeyOf(config));
  return it == predicted_.end() ? nullptr : &it->second;
}

bool SurrogateModel::TrySkip(const Configuration& config,
                             instrument::Measurement* out) {
  if (acc_threshold_ <= 0.0 || counts_unstable_ || !fit_.Ok()) return false;
  // Never skip the states with special roles in Algorithm 1: the all-precise
  // direction (empty mask, trivially feasible) and the saturation terminate
  // state.
  if (config.NoneSelected() || IsSaturation(config)) return false;
  // Exact operation counts of this configuration's mask: the ground-truth
  // memo first, the validated quadratic model for unseen masks.
  energy::OpCounts counts;
  const auto counts_it = mask_counts_.find(MaskKeyOf(config));
  if (counts_it != mask_counts_.end()) {
    counts = counts_it->second;
  } else if (!PredictCounts(MaskKeyOf(config), &counts)) {
    return false;
  }

  const double pred = fit_.Predict(Features(config));
  if (!std::isfinite(pred) || std::abs(pred - cut_) <= margin_) return false;

  // Independent structural confirmation: a dominance witness on the
  // predicted side. A feasible skip needs an observed feasible point at
  // least as aggressive as the candidate; an infeasible skip an observed
  // infeasible point at most as aggressive.
  const Point point = PointOf(config);
  bool witnessed = false;
  if (pred < cut_) {
    for (const Point& q : feasible_witnesses_)
      if (Dominates(q, point)) { witnessed = true; break; }
  } else {
    for (const Point& q : infeasible_witnesses_)
      if (Dominates(point, q)) { witnessed = true; break; }
  }
  if (!witnessed) return false;

  // Skip-eligible. Deterministic audit: every Nth eligible configuration is
  // executed anyway, feeding the model a ground truth exactly where it is
  // most confident.
  ++audit_counter_;
  if (options_.audit_period > 0 && audit_counter_ % options_.audit_period == 0)
    return false;

  // Predicted Δacc = exp(pred) - kEps lands on the same side of the
  // threshold as the prediction: pred > cut_ + margin_ puts it strictly
  // above acc_threshold, pred < cut_ - margin_ strictly below (margin_ > 0).
  // ConsiderBest and the reward therefore classify the point exactly as a
  // correct true measurement would.
  instrument::Measurement m;
  m.counts = counts;
  m.delta_acc = std::max(std::exp(std::min(pred, 700.0)) - kEps, 0.0);
  const energy::CostEstimate approx_cost = energy_->Cost(
      m.counts, config.AdderIndex(), config.MultiplierIndex());
  m.approx_power_mw = approx_cost.power_mw;
  m.approx_time_ns = approx_cost.time_ns;
  m.precise_power_mw = precise_power_mw_;
  m.precise_time_ns = precise_time_ns_;
  m.delta_power_mw = precise_power_mw_ - approx_cost.power_mw;
  m.delta_time_ns = precise_time_ns_ - approx_cost.time_ns;

  predicted_.emplace(FullKeyOf(config), m);
  *out = m;
  return true;
}

void SurrogateModel::Invalidate(const Configuration& config) {
  predicted_.erase(FullKeyOf(config));
}

SurrogateModel::State SurrogateModel::CaptureState() const {
  State state;
  state.audit_counter = audit_counter_;
  state.counts_unstable = counts_unstable_;
  state.observations = observations_;
  state.predicted.reserve(predicted_.size());
  for (const auto& [key, measurement] : predicted_) {
    Configuration config(shape_.num_variables);
    config.SetAdderIndex(static_cast<std::uint32_t>(key[0]));
    config.SetMultiplierIndex(static_cast<std::uint32_t>(key[1]));
    for (std::size_t v = 0; v < shape_.num_variables; ++v)
      if ((key[2 + v / 64] >> (v % 64)) & 1u) config.SetVariable(v, true);
    state.predicted.emplace_back(std::move(config), measurement);
  }
  return state;
}

void SurrogateModel::RestoreState(
    const State& state,
    const std::function<instrument::Measurement(const Configuration&)>&
        measurement_of) {
  for (const Configuration& config : state.observations)
    Observe(config, measurement_of(config));
  audit_counter_ = state.audit_counter;
  counts_unstable_ = counts_unstable_ || state.counts_unstable;
  for (const auto& [config, measurement] : state.predicted) {
    if (!FitsShape(shape_, config))
      throw std::invalid_argument(
          "SurrogateModel::RestoreState: predicted configuration does not "
          "fit the space");
    predicted_.insert_or_assign(FullKeyOf(config), measurement);
  }
}

}  // namespace axdse::dse
