#pragma once
// dse::SurrogateModel — the surrogate evaluator tier (autoAx / ApproxGNN
// direction): a lightweight online model trained from this evaluator's own
// ground-truth measurements that predicts the accuracy degradation of unseen
// configurations, so the Evaluator can SKIP kernel runs it is confident
// about.
//
// The correctness argument rests on how Algorithm 1 consumes Δacc: only
// through the feasibility test Δacc <= acc_th. For an infeasible state the
// reward is exactly -R regardless of power/time; for a feasible state the
// reward is +/-1 from the power/time thresholds (EXACT here, via the counts
// memo below) and best-feasible ranking uses BaselineObjective, which for
// feasible points reads only power/time. So a prediction whose FEASIBILITY
// CLASSIFICATION is correct leaves the RL trajectory, the final fronts, and
// the best-feasible selections byte-identical to a surrogate-off run while
// the kernel run is saved. TrySkip therefore skips on BOTH sides of the
// threshold — but only when TWO independent signals agree: the predicted
// log(Δacc) clears the threshold cut by a self-calibrating safety margin
// (derived from the fit's out-of-sample errors), AND a ground-truth
// dominance witness exists on the same side (the operator catalogs are
// accuracy-ordered, so a config approximating strictly less than an
// observed feasible point is feasible, and one approximating strictly more
// than an observed infeasible point is infeasible, up to rare error
// cancellation). The remaining valves:
//   * the saturation configuration (Algorithm 1's terminate state) and
//     empty-mask configurations are never skipped;
//   * Δpower/Δtime of a predicted measurement are EXACT, computed through
//     the same EnergyModel the real measurement path uses from either a
//     mask -> OpCounts memo of earlier ground-truth runs or a quadratic
//     counts model (operation counts are bias + per-variable + pairwise
//     terms in the mask bits for every straight-line kernel) that is only
//     trusted after it reproduces EVERY observed mask's counts exactly and
//     is cross-checked against each later observation. A mask whose counts
//     are unavailable on both paths, or counts ever observed to be
//     input-dependent or off-model, disable skipping;
//   * every `audit_period`-th skip-eligible configuration is executed anyway
//     (a deterministic honesty probe that keeps feeding the model);
//   * the Explorer ground-truths the final solution and best-feasible
//     configurations if they were answered by prediction
//     (Evaluator::GroundTruth), so reported solutions, best-feasible rows,
//     and Pareto-front points are always real measurements.
//
// Model: ridge regression (util::FitLinearModel) in log(Δacc) space over
// one-hot operator features gated by "any variable selected" plus
// per-variable indicators. Predictions are memoized so repeat visits of a
// skipped configuration are answered identically forever (determinism across
// suspend/resume), and all state is capturable/replayable for the checkpoint
// subsystem.
//
// Deterministic by construction: the model trains only on this evaluator's
// own evaluation sequence (never on shared-cache traffic, which is
// scheduling-dependent), refits at fixed observation counts, and takes the
// skip decision BEFORE any shared cache is consulted.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "dse/configuration.hpp"
#include "energy/energy_model.hpp"
#include "instrument/measurement.hpp"
#include "util/linear_regression.hpp"

namespace axdse::dse {

/// Tuning knobs of the surrogate tier. The defaults are deliberately
/// conservative: a missed skip costs one kernel run, a wrong skip could cost
/// result fidelity (guarded empirically by the BENCH_surrogate CI gate).
struct SurrogateOptions {
  /// Ground-truth observations before the first fit (raised internally to
  /// 2x the feature dimension when that is larger).
  std::size_t min_samples = 48;
  /// Refit cadence in observations after the first fit.
  std::size_t refit_interval = 32;
  /// Skip only when |prediction - threshold| > margin_factor * residual
  /// scale (the fit's max absolute training residual, floored below).
  double margin_factor = 1.0;
  /// Floor of the residual scale (log-space units).
  double residual_floor = 3.0;
  /// Every Nth skip-eligible configuration is executed anyway (0 disables
  /// auditing).
  std::size_t audit_period = 8;
  /// Ridge regularization of the fit.
  double ridge_lambda = 1e-3;
};

/// Online infeasibility predictor for one Evaluator. Not thread-safe (like
/// the Evaluator that owns it).
class SurrogateModel {
 public:
  /// `energy` must outlive the model (the owning Evaluator guarantees it).
  /// `acc_threshold` is RewardConfig::acc_threshold; a non-positive
  /// threshold disables skipping entirely.
  SurrogateModel(const SpaceShape& shape, double acc_threshold,
                 const energy::EnergyModel& energy, double precise_power_mw,
                 double precise_time_ns, const SurrogateOptions& options = {});

  /// Feeds one ground-truth measurement: appends a training observation,
  /// updates the mask -> OpCounts memo (detecting input-dependent counts),
  /// and refits on cadence.
  void Observe(const Configuration& config, const instrument::Measurement& m);

  /// The memoized predicted measurement of a previously skipped
  /// configuration, or nullptr. Repeat visits MUST be answered from here
  /// first so a configuration skipped once keeps its predicted value even
  /// after the model drifts.
  const instrument::Measurement* Lookup(const Configuration& config) const;

  /// Skip decision for a configuration seen for the first time. On true the
  /// predicted measurement (exact Δpower/Δtime, confidently classified Δacc
  /// on either side of the threshold) was memoized and copied to *out; on
  /// false the caller must ground-truth.
  bool TrySkip(const Configuration& config, instrument::Measurement* out);

  /// Drops a memoized prediction after its ground truth was computed (the
  /// Explorer's solution valve). No-op when `config` was never skipped.
  void Invalidate(const Configuration& config);

  /// Distinct configurations currently answered by prediction only.
  std::size_t NumPredicted() const noexcept { return predicted_.size(); }

  /// Serializable model state (see dse/checkpoint.hpp): everything a
  /// replayed restore cannot rebuild from the observation sequence itself.
  struct State {
    std::uint64_t audit_counter = 0;
    bool counts_unstable = false;
    /// Ground-truth observations in insertion order (measurements are
    /// re-read from the restored private memo on replay).
    std::vector<Configuration> observations;
    /// Memoized predictions (order unspecified; serializer sorts).
    std::vector<std::pair<Configuration, instrument::Measurement>> predicted;
  };

  State CaptureState() const;

  /// Rebuilds the model by replaying `state.observations` through
  /// `measurement_of` (ground-truth lookup, normally the restored private
  /// memo), then installs the memoized predictions and counters verbatim.
  /// Must be called on a freshly constructed model. Throws
  /// std::invalid_argument when a configuration does not fit the space;
  /// `measurement_of` may itself throw on a failed lookup. The caller
  /// (checkpoint resume) pre-validates, so a throw here indicates snapshot
  /// corruption.
  void RestoreState(
      const State& state,
      const std::function<instrument::Measurement(const Configuration&)>&
          measurement_of);

 private:
  /// Deterministic map key of a full configuration: adder index, multiplier
  /// index, then mask words.
  using FullKey = std::vector<std::uint64_t>;
  /// Map key of a variable mask alone (mask words).
  using MaskKey = std::vector<std::uint64_t>;

  static FullKey FullKeyOf(const Configuration& config);
  static MaskKey MaskKeyOf(const Configuration& config);

  std::vector<double> Features(const Configuration& config) const;
  void Refit();
  bool IsSaturation(const Configuration& config) const noexcept;

  /// Compact (adder, multiplier, mask) triple of the dominance order.
  struct Point {
    std::uint32_t adder = 0;
    std::uint32_t multiplier = 0;
    std::vector<std::uint64_t> mask;
  };
  /// a approximates at least as aggressively as b: operator indices >= and
  /// mask a superset (operator sets are accuracy-ordered, so this implies
  /// Δacc(a) >= Δacc(b) up to error cancellation).
  static bool Dominates(const Point& a, const Point& b);
  static Point PointOf(const Configuration& config);

  /// Quadratic mask features [bias | x_v | x_i*x_j (i<j)] of the counts
  /// model.
  std::vector<double> MaskFeatures(const MaskKey& mask) const;
  /// Fits the per-field quadratic counts models and validates them against
  /// every observed mask (exact integer match required).
  void TryFitCounts();
  /// Counts of an unseen mask through the validated quadratic model; false
  /// when the model is not (yet) trusted.
  bool PredictCounts(const MaskKey& mask, energy::OpCounts* out) const;

  SpaceShape shape_;
  double acc_threshold_ = 0.0;
  double cut_ = 0.0;  ///< log(acc_threshold + eps)
  const energy::EnergyModel* energy_;
  double precise_power_mw_ = 0.0;
  double precise_time_ns_ = 0.0;
  SurrogateOptions options_;
  std::size_t dim_ = 0;
  std::size_t min_samples_ = 0;

  std::vector<std::vector<double>> rows_;    ///< training features
  std::vector<double> targets_;              ///< clamped log(Δacc)
  std::vector<Configuration> observations_;  ///< insertion order, for capture
  util::LinearModelFit fit_;
  double margin_ = 0.0;
  /// Permanent margin floor raised past every confidently-misclassified
  /// ground truth (self-calibration; see Observe). Never shrinks.
  double calibration_floor_ = 0.0;
  /// Running max out-of-sample (pre-training) prediction error — the honest
  /// error scale the margin is derived from. Never shrinks.
  double prequential_max_ = 0.0;

  /// Dominance witnesses: ground-truth feasible / infeasible points. A skip
  /// additionally requires a witness on its side of the threshold (see
  /// TrySkip), so a barely-misplaced regression alone can never misclassify.
  std::vector<Point> feasible_witnesses_;
  std::vector<Point> infeasible_witnesses_;

  std::map<MaskKey, energy::OpCounts> mask_counts_;
  bool counts_unstable_ = false;
  std::uint64_t audit_counter_ = 0;

  /// Quadratic counts model (one fit per OpCounts field), derived purely
  /// from the observation sequence so restore-by-replay reproduces it.
  std::size_t counts_dim_ = 0;  ///< 0 disables the model (space too large)
  std::vector<std::vector<double>> counts_rows_;  ///< one row per new mask
  std::vector<double> counts_targets_[4];
  util::LinearModelFit counts_fits_[4];
  bool counts_model_ok_ = false;

  std::map<FullKey, instrument::Measurement> predicted_;
};

}  // namespace axdse::dse
