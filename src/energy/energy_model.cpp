#include "energy/energy_model.hpp"

#include <stdexcept>

namespace axdse::energy {

EnergyModel::EnergyModel(axc::OperatorSet operators)
    : operators_(std::move(operators)) {
  if (operators_.adders.empty() || operators_.multipliers.empty())
    throw std::invalid_argument("EnergyModel: operator set must be non-empty");
}

CostEstimate EnergyModel::Cost(const OpCounts& counts, std::size_t adder_index,
                               std::size_t multiplier_index) const {
  if (adder_index >= operators_.adders.size())
    throw std::out_of_range("EnergyModel::Cost: adder_index");
  if (multiplier_index >= operators_.multipliers.size())
    throw std::out_of_range("EnergyModel::Cost: multiplier_index");
  const axc::AdderSpec& exact_add = operators_.adders.front();
  const axc::MultiplierSpec& exact_mul = operators_.multipliers.front();
  const axc::AdderSpec& add = operators_.adders[adder_index];
  const axc::MultiplierSpec& mul = operators_.multipliers[multiplier_index];

  CostEstimate cost;
  cost.power_mw = static_cast<double>(counts.precise_adds) * exact_add.power_mw +
                  static_cast<double>(counts.approx_adds) * add.power_mw +
                  static_cast<double>(counts.precise_muls) * exact_mul.power_mw +
                  static_cast<double>(counts.approx_muls) * mul.power_mw;
  cost.time_ns = static_cast<double>(counts.precise_adds) * exact_add.time_ns +
                 static_cast<double>(counts.approx_adds) * add.time_ns +
                 static_cast<double>(counts.precise_muls) * exact_mul.time_ns +
                 static_cast<double>(counts.approx_muls) * mul.time_ns;
  return cost;
}

CostEstimate EnergyModel::PreciseCost(const OpCounts& counts) const {
  OpCounts all_precise;
  all_precise.precise_adds = counts.TotalAdds();
  all_precise.precise_muls = counts.TotalMuls();
  return Cost(all_precise, 0, 0);
}

CostDeltas EnergyModel::Deltas(const OpCounts& counts, std::size_t adder_index,
                               std::size_t multiplier_index) const {
  const CostEstimate precise = PreciseCost(counts);
  const CostEstimate approx = Cost(counts, adder_index, multiplier_index);
  CostDeltas d;
  d.delta_power_mw = precise.power_mw - approx.power_mw;
  d.delta_time_ns = precise.time_ns - approx.time_ns;
  return d;
}

}  // namespace axdse::energy
