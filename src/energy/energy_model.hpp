#pragma once
// Power / computation-time model.
//
// The paper evaluates each approximate version from *pre-characterized*
// per-operator power (mW) and latency (ns): the cost of a run is the sum of
// the per-operation costs of every addition and multiplication it executes
// (Table III arithmetic confirms this additive model; see DESIGN.md §1).
// Δpower = power(precise run) - power(approximate run), likewise Δtime.

#include <cstdint>

#include "axc/catalog.hpp"

namespace axdse::energy {

/// Counts of arithmetic operations executed during one kernel run, split by
/// whether the operation went through the approximate operator or the
/// precise one (an op is approximate when any of its variables is selected).
struct OpCounts {
  std::uint64_t precise_adds = 0;
  std::uint64_t approx_adds = 0;
  std::uint64_t precise_muls = 0;
  std::uint64_t approx_muls = 0;

  std::uint64_t TotalAdds() const noexcept { return precise_adds + approx_adds; }
  std::uint64_t TotalMuls() const noexcept { return precise_muls + approx_muls; }

  /// Batched accounting: credits `n` additions to the approximate or the
  /// precise bucket in one step (the instrumented batch primitives hoist
  /// counting out of their inner loops — `+= n`, not `++` per op).
  void AccumulateAdds(bool approx, std::uint64_t n) noexcept {
    (approx ? approx_adds : precise_adds) += n;
  }
  /// Batched accounting for multiplications.
  void AccumulateMuls(bool approx, std::uint64_t n) noexcept {
    (approx ? approx_muls : precise_muls) += n;
  }

  OpCounts& operator+=(const OpCounts& other) noexcept {
    precise_adds += other.precise_adds;
    approx_adds += other.approx_adds;
    precise_muls += other.precise_muls;
    approx_muls += other.approx_muls;
    return *this;
  }
  friend bool operator==(const OpCounts&, const OpCounts&) = default;
};

/// Estimated cost of one run under the additive per-op model.
struct CostEstimate {
  double power_mw = 0.0;
  double time_ns = 0.0;
};

/// Δ between the precise run and an approximate run (positive = the
/// approximation saves power/time).
struct CostDeltas {
  double delta_power_mw = 0.0;
  double delta_time_ns = 0.0;
};

/// Maps operation counts to power/time using a catalog operator set.
/// Precise-bucket ops are billed at the exact operator (index 0); approximate
/// ops at the selected operator's published characterization.
class EnergyModel {
 public:
  /// The operator set is copied (specs hold shared immutable models, so the
  /// copy is cheap) — the model owns everything it needs.
  explicit EnergyModel(axc::OperatorSet operators);

  /// Cost of a run whose approximate ops used adder/multiplier at the given
  /// catalog indices. Throws std::out_of_range on invalid indices.
  CostEstimate Cost(const OpCounts& counts, std::size_t adder_index,
                    std::size_t multiplier_index) const;

  /// Cost of the fully precise run executing the same operation counts.
  CostEstimate PreciseCost(const OpCounts& counts) const;

  /// PreciseCost(counts) - Cost(counts, ...), component-wise.
  CostDeltas Deltas(const OpCounts& counts, std::size_t adder_index,
                    std::size_t multiplier_index) const;

  const axc::OperatorSet& Operators() const noexcept { return operators_; }

 private:
  axc::OperatorSet operators_;
};

}  // namespace axdse::energy
