#include "instrument/approx_context.hpp"

#include <stdexcept>

namespace axdse::instrument {

// ---------------------------------------------------------------------------
// ApproxSelection
// ---------------------------------------------------------------------------

ApproxSelection::ApproxSelection(std::size_t num_variables)
    : num_variables_(num_variables), mask_((num_variables + 63) / 64, 0) {}

bool ApproxSelection::VariableSelected(std::size_t i) const {
  if (i >= num_variables_)
    throw std::out_of_range("ApproxSelection::VariableSelected");
  return (mask_[i / 64] >> (i % 64)) & 1ULL;
}

void ApproxSelection::SetVariable(std::size_t i, bool selected) {
  if (i >= num_variables_)
    throw std::out_of_range("ApproxSelection::SetVariable");
  if (selected)
    mask_[i / 64] |= 1ULL << (i % 64);
  else
    mask_[i / 64] &= ~(1ULL << (i % 64));
}

void ApproxSelection::ToggleVariable(std::size_t i) {
  if (i >= num_variables_)
    throw std::out_of_range("ApproxSelection::ToggleVariable");
  mask_[i / 64] ^= 1ULL << (i % 64);
}

std::size_t ApproxSelection::SelectedCount() const noexcept {
  std::size_t count = 0;
  for (const std::uint64_t word : mask_)
    count += static_cast<std::size_t>(__builtin_popcountll(word));
  return count;
}

bool ApproxSelection::AllVariablesSelected() const noexcept {
  return num_variables_ != 0 && SelectedCount() == num_variables_;
}

std::string ApproxSelection::ToString() const {
  std::string vars;
  vars.reserve(num_variables_);
  for (std::size_t i = 0; i < num_variables_; ++i)
    vars += (mask_[i / 64] >> (i % 64)) & 1ULL ? '1' : '0';
  return "add=" + std::to_string(adder_index_) +
         " mul=" + std::to_string(multiplier_index_) + " vars=" + vars;
}

namespace {

// Full 64x64->128 multiply folded hi^lo: one mulx-class instruction mixes
// every input bit into every output bit, so a single round per word replaces
// FNV-1a's byte-at-a-time avalanche. Constants are from splitmix64.
inline std::uint64_t Mulx64(std::uint64_t x, std::uint64_t y) noexcept {
#if defined(__SIZEOF_INT128__)
  const unsigned __int128 r =
      static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(y);
  return static_cast<std::uint64_t>(r) ^ static_cast<std::uint64_t>(r >> 64);
#else
  // Portable 32-bit-limb fallback; weaker hi bits but still a fine hash.
  const std::uint64_t lo = x * y;
  const std::uint64_t hi = (x >> 32) * (y >> 32) + (((x & 0xffffffffULL) *
                                                    (y >> 32)) >>
                                                   32);
  return lo ^ hi;
#endif
}

}  // namespace

std::size_t ApproxSelection::Hash::operator()(
    const ApproxSelection& s) const noexcept {
  // Mulx mixing over the packed fields; stable within a process run.
  std::uint64_t h = (static_cast<std::uint64_t>(s.adder_index_) << 32) |
                    s.multiplier_index_;
  h = Mulx64(h ^ s.num_variables_, 0x9e3779b97f4a7c15ULL);
  for (const std::uint64_t word : s.mask_)
    h = Mulx64(h ^ word, 0xbf58476d1ce4e5b9ULL);
  return static_cast<std::size_t>(h);
}

// ---------------------------------------------------------------------------
// ApproxContext
// ---------------------------------------------------------------------------

ApproxContext::ApproxContext(axc::OperatorSet operators,
                             std::size_t num_variables)
    : operators_(std::move(operators)), num_variables_(num_variables) {
  if (operators_.adders.empty() || operators_.multipliers.empty())
    throw std::invalid_argument("ApproxContext: operator set must be non-empty");
  Configure(ApproxSelection(num_variables));
}

void ApproxContext::Configure(const ApproxSelection& selection) {
  if (selection.NumVariables() != num_variables_)
    throw std::invalid_argument("ApproxContext::Configure: variable count");
  if (selection.AdderIndex() >= operators_.adders.size())
    throw std::invalid_argument("ApproxContext::Configure: adder index");
  if (selection.MultiplierIndex() >= operators_.multipliers.size())
    throw std::invalid_argument("ApproxContext::Configure: multiplier index");
  selection_ = selection;
  // Compile the plan: resolve the four operators in play to POD descriptors
  // so the per-op hot path never touches the virtual hierarchy again.
  plan_.add[0] = operators_.adders.front().model->PlanDescriptor();
  plan_.add[1] =
      operators_.adders[selection.AdderIndex()].model->PlanDescriptor();
  plan_.mul[0] = operators_.multipliers.front().model->PlanDescriptor();
  plan_.mul[1] =
      operators_.multipliers[selection.MultiplierIndex()].model->PlanDescriptor();
  counts_ = {};
}

}  // namespace axdse::instrument
