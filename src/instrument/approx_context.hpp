#pragma once
// Execution context standing in for the paper's "automatic code
// instrumentation": kernels route every addition/multiplication through the
// context, which (a) dispatches to the precise or the selected approximate
// operator depending on whether any variable involved in the operation is
// selected, and (b) accounts operation counts for the energy model.
//
// Dispatch is compiled, not virtual: an ApproxSelection is fixed for an
// entire kernel run, so Configure() resolves the four operators in play
// (precise/approximate adder and multiplier) to POD descriptors ONCE per
// configuration (axc::OperatorPlan). Every scalar op then goes through a
// flat, inlinable switch; the batched primitives (DotAccumulate /
// AxpyAccumulate) additionally hoist selection resolution, opcode dispatch,
// and op-count accounting out of their inner loops. The virtual
// Adder/Multiplier hierarchy remains the catalog/characterization API —
// operators outside the built-in families dispatch through it via the
// kVirtual descriptor, with unchanged behavior.

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <type_traits>

#include "axc/catalog.hpp"
#include "axc/execution_plan.hpp"
#include "energy/energy_model.hpp"
#include "instrument/approx_selection.hpp"
#include "instrument/mac_chains.hpp"

namespace axdse::instrument {

/// Variables involved in one arithmetic operation (operands and/or result, as
/// declared by the kernel author). The operation is approximated when any of
/// them is selected in the active ApproxSelection.
using VarList = std::initializer_list<std::size_t>;

/// Per-run instrumentation context. Not thread-safe (one context per running
/// evaluation); cheap to reset between runs.
///
/// Variable ids in VarList arguments must be < NumVariables(): the bound is
/// validated once per configuration in Configure() (and asserted in debug
/// builds on every op), not branch-checked per scalar operation. The checked
/// accessor for external callers is IsApproximated() /
/// ApproxSelection::VariableSelected().
class ApproxContext {
 public:
  /// Binds the context to an operator set (copied; specs share immutable
  /// models) and the kernel's variable count.
  ApproxContext(axc::OperatorSet operators, std::size_t num_variables);

  /// Installs the configuration for subsequent operations, compiles the
  /// operator plan, and clears counts. Throws std::invalid_argument if
  /// indices/variable count don't match the bound operator set / variable
  /// count.
  void Configure(const ApproxSelection& selection);

  /// Active configuration.
  const ApproxSelection& Selection() const noexcept { return selection_; }

  /// Operation counts accumulated since the last Configure()/ResetCounts().
  const energy::OpCounts& Counts() const noexcept { return counts_; }

  /// Clears operation counts only.
  void ResetCounts() noexcept { counts_ = {}; }

  /// True if variable `var` is approximated under the active selection.
  /// Bounds-checked: throws std::out_of_range for var >= NumVariables().
  bool IsApproximated(std::size_t var) const {
    return selection_.VariableSelected(var);
  }

  /// True when any listed variable is selected — the per-op approximation
  /// decision. Public so kernels can resolve a variable group once and then
  /// run a loop of *Resolved ops (see DESIGN notes in the header comment).
  bool AnyApproximated(VarList vars) const noexcept {
    const std::uint64_t* mask = selection_.MaskWords().data();
    for (const std::size_t v : vars) {
      assert(v < num_variables_ && "ApproxContext: variable id out of range");
      if ((mask[v >> 6] >> (v & 63)) & 1ULL) return true;
    }
    return false;
  }

  /// Signed addition on the given variables. Counted as one add.
  std::int64_t Add(std::int64_t a, std::int64_t b, VarList vars) noexcept {
    return AddResolved(AnyApproximated(vars), a, b);
  }

  /// Signed multiplication on the given variables. Counted as one mul.
  std::int64_t Mul(std::int64_t a, std::int64_t b, VarList vars) noexcept {
    return MulResolved(AnyApproximated(vars), a, b);
  }

  /// Signed addition with a pre-resolved approximation decision (from
  /// AnyApproximated, hoisted out of the caller's loop). Counted as one add.
  std::int64_t AddResolved(bool approx, std::int64_t a,
                           std::int64_t b) noexcept {
    counts_.AccumulateAdds(approx, 1);
    return axc::DispatchAddSigned(plan_.add[approx], a, b);
  }

  /// Signed multiplication with a pre-resolved decision. Counted as one mul.
  std::int64_t MulResolved(bool approx, std::int64_t a,
                           std::int64_t b) noexcept {
    counts_.AccumulateMuls(approx, 1);
    return axc::DispatchMulSigned(plan_.mul[approx], a, b);
  }

  /// Batched MAC: returns the chained accumulation
  ///   acc = Add(acc, Mul(a[i*stride_a], b[i*stride_b]))  for i in [0, n)
  /// with the multiply approximated when any of `mul_vars` is selected and
  /// the accumulation when any of `add_vars` is — both decisions and the
  /// operator dispatch are resolved once, and counts are credited `+= n`.
  /// Bit-identical to the equivalent loop of Mul()/Add() calls (operand
  /// order preserved: element product first operand is `a`, accumulation
  /// first operand is the running `acc`).
  ///
  /// When both element types are unsigned the whole chain is provably
  /// non-negative (all catalog data widths keep magnitudes far below 2^63),
  /// so the sign-magnitude wrappers reduce to the identity and the inner
  /// loop runs on raw magnitudes.
  template <class A, class B>
  std::int64_t DotAccumulate(std::int64_t acc, const A* a,
                             std::size_t stride_a, const B* b,
                             std::size_t stride_b, std::size_t n,
                             VarList mul_vars, VarList add_vars) noexcept {
    static_assert(std::is_integral_v<A> && std::is_integral_v<B>,
                  "DotAccumulate operates on integral element types");
    if (n == 0) return acc;
    const bool mul_approx = AnyApproximated(mul_vars);
    const bool add_approx = AnyApproximated(add_vars);
    counts_.AccumulateMuls(mul_approx, n);
    counts_.AccumulateAdds(add_approx, n);
    return detail::DotChain(plan_.mul[mul_approx], plan_.add[add_approx], acc,
                            a, stride_a, b, stride_b, n);
  }

  /// Batched AXPY: y[i] = Add(y[i], Mul(alpha, x[i])) for i in [0, n) —
  /// `alpha` is the product's FIRST operand (asymmetric families care).
  /// Selection resolution, dispatch, and counting are hoisted exactly like
  /// DotAccumulate; bit-identical to the equivalent scalar loop.
  template <class X>
  void AxpyAccumulate(std::int64_t* y, const X* x, std::size_t n,
                      std::int64_t alpha, VarList mul_vars,
                      VarList add_vars) noexcept {
    static_assert(std::is_integral_v<X>,
                  "AxpyAccumulate operates on integral element types");
    if (n == 0) return;
    const bool mul_approx = AnyApproximated(mul_vars);
    const bool add_approx = AnyApproximated(add_vars);
    counts_.AccumulateMuls(mul_approx, n);
    counts_.AccumulateAdds(add_approx, n);
    detail::AxpyChain(plan_.mul[mul_approx], plan_.add[add_approx], y, x, n,
                      alpha);
  }

  /// Number of kernel variables this context was built for.
  std::size_t NumVariables() const noexcept { return num_variables_; }

  /// The bound operator set.
  const axc::OperatorSet& Operators() const noexcept { return operators_; }

  /// The operator plan compiled by the last Configure() ([0] precise,
  /// [1] approximate) — exposed for dispatch-equivalence tests and benches.
  const axc::OperatorPlan& Plan() const noexcept { return plan_; }

 private:
  axc::OperatorSet operators_;
  std::size_t num_variables_;
  ApproxSelection selection_;
  energy::OpCounts counts_;
  // Compiled once per Configure(): POD descriptors for the precise and the
  // selected approximate operator pair.
  axc::OperatorPlan plan_;
};

}  // namespace axdse::instrument
