#pragma once
// Execution context standing in for the paper's "automatic code
// instrumentation": kernels route every addition/multiplication through the
// context, which (a) dispatches to the precise or the selected approximate
// operator depending on whether any variable involved in the operation is
// selected, and (b) accounts operation counts for the energy model.

#include <cstdint>
#include <initializer_list>

#include "axc/catalog.hpp"
#include "energy/energy_model.hpp"
#include "instrument/approx_selection.hpp"

namespace axdse::instrument {

/// Variables involved in one arithmetic operation (operands and/or result, as
/// declared by the kernel author). The operation is approximated when any of
/// them is selected in the active ApproxSelection.
using VarList = std::initializer_list<std::size_t>;

/// Per-run instrumentation context. Not thread-safe (one context per running
/// evaluation); cheap to reset between runs.
class ApproxContext {
 public:
  /// Binds the context to an operator set (copied; specs share immutable
  /// models) and the kernel's variable count.
  ApproxContext(axc::OperatorSet operators, std::size_t num_variables);

  /// Installs the configuration for subsequent operations and clears counts.
  /// Throws std::invalid_argument if indices/variable count don't match the
  /// bound operator set / variable count.
  void Configure(const ApproxSelection& selection);

  /// Active configuration.
  const ApproxSelection& Selection() const noexcept { return selection_; }

  /// Operation counts accumulated since the last Configure()/ResetCounts().
  const energy::OpCounts& Counts() const noexcept { return counts_; }

  /// Clears operation counts only.
  void ResetCounts() noexcept { counts_ = {}; }

  /// True if variable `var` is approximated under the active selection.
  bool IsApproximated(std::size_t var) const {
    return selection_.VariableSelected(var);
  }

  /// Signed addition on the given variables. Counted as one add.
  std::int64_t Add(std::int64_t a, std::int64_t b, VarList vars);

  /// Signed multiplication on the given variables. Counted as one mul.
  std::int64_t Mul(std::int64_t a, std::int64_t b, VarList vars);

  /// Number of kernel variables this context was built for.
  std::size_t NumVariables() const noexcept { return num_variables_; }

  /// The bound operator set.
  const axc::OperatorSet& Operators() const noexcept { return operators_; }

 private:
  bool AnySelected(VarList vars) const;

  axc::OperatorSet operators_;
  std::size_t num_variables_;
  ApproxSelection selection_;
  energy::OpCounts counts_;
  // Hot-path caches resolved at Configure() time.
  const axc::Adder* approx_adder_ = nullptr;
  const axc::Multiplier* approx_multiplier_ = nullptr;
  const axc::Adder* exact_adder_ = nullptr;
  const axc::Multiplier* exact_multiplier_ = nullptr;
};

}  // namespace axdse::instrument
