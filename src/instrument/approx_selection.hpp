#pragma once
// The paper's design-space point (its Equation 1, minus the observed deltas):
// which adder, which multiplier, and which subset of program variables is
// approximated. This is simultaneously the RL environment's configuration,
// the Q-table's state key, and the evaluation-cache key.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace axdse::instrument {

/// One approximate version of the application:
/// (adder index, multiplier index, variables_approx bit-vector).
/// Operator indices refer to an accuracy-ordered axc::OperatorSet
/// (0 = exact, last = most aggressive).
class ApproxSelection {
 public:
  ApproxSelection() = default;

  /// All-precise starting point: exact operators, no variable selected.
  explicit ApproxSelection(std::size_t num_variables);

  std::size_t NumVariables() const noexcept { return num_variables_; }
  std::uint32_t AdderIndex() const noexcept { return adder_index_; }
  std::uint32_t MultiplierIndex() const noexcept { return multiplier_index_; }

  void SetAdderIndex(std::uint32_t index) noexcept { adder_index_ = index; }
  void SetMultiplierIndex(std::uint32_t index) noexcept {
    multiplier_index_ = index;
  }

  /// True if variable `i` is selected for approximation.
  /// Throws std::out_of_range for i >= NumVariables(). This is the CHECKED
  /// accessor for external callers; the evaluate hot path never branches on
  /// bounds — ApproxContext validates the variable count once per
  /// Configure() and reads MaskWords() directly.
  bool VariableSelected(std::size_t i) const;

  /// Selects / deselects variable `i`.
  void SetVariable(std::size_t i, bool selected);

  /// Flips variable `i`.
  void ToggleVariable(std::size_t i);

  /// Number of selected variables.
  std::size_t SelectedCount() const noexcept;

  /// True when every variable is selected (part of the paper's saturation
  /// termination test). False when there are zero variables.
  bool AllVariablesSelected() const noexcept;

  /// True when no variable is selected.
  bool NoneSelected() const noexcept { return SelectedCount() == 0; }

  /// Raw mask words (bit i of word w = variable 64*w + i), for hashing.
  const std::vector<std::uint64_t>& MaskWords() const noexcept { return mask_; }

  /// Compact display, e.g. "add=4 mul=5 vars=1000...0".
  std::string ToString() const;

  friend bool operator==(const ApproxSelection&,
                         const ApproxSelection&) = default;

  /// Hash functor usable with unordered containers.
  struct Hash {
    std::size_t operator()(const ApproxSelection& s) const noexcept;
  };

 private:
  std::uint32_t adder_index_ = 0;
  std::uint32_t multiplier_index_ = 0;
  std::size_t num_variables_ = 0;
  std::vector<std::uint64_t> mask_;
};

}  // namespace axdse::instrument
