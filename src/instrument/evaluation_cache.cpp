#include "instrument/evaluation_cache.hpp"

namespace axdse::instrument {

std::optional<Measurement> EvaluationCache::Lookup(const ApproxSelection& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvaluationCache::Insert(const ApproxSelection& key,
                             const Measurement& value) {
  map_[key] = value;
}

void EvaluationCache::Clear() noexcept {
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace axdse::instrument
