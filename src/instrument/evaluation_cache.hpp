#pragma once
// Memoizes configuration -> Measurement. The environment is deterministic
// per configuration (fixed kernel inputs, behavioral operators), so repeat
// visits during exploration — extremely common under ±1 / toggle actions —
// cost a hash lookup instead of a kernel run.

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "instrument/approx_selection.hpp"
#include "instrument/measurement.hpp"

namespace axdse::instrument {

/// Unbounded memo table with hit/miss statistics.
class EvaluationCache {
 public:
  /// Returns the cached measurement, or std::nullopt on miss.
  std::optional<Measurement> Lookup(const ApproxSelection& key);

  /// Inserts (or overwrites) the measurement for `key`.
  void Insert(const ApproxSelection& key, const Measurement& value);

  /// Number of distinct configurations stored.
  std::size_t Size() const noexcept { return map_.size(); }

  /// Lookup statistics.
  std::size_t Hits() const noexcept { return hits_; }
  std::size_t Misses() const noexcept { return misses_; }

  /// Drops all entries and statistics.
  void Clear() noexcept;

  /// Read access to the stored entries (for checkpointing; iteration order
  /// is unspecified — sort before serializing).
  const std::unordered_map<ApproxSelection, Measurement, ApproxSelection::Hash>&
  Entries() const noexcept {
    return map_;
  }

  /// Overwrites the hit/miss statistics (checkpoint restore: Insert() never
  /// touches them, so prewarming plus this call reproduces a suspended
  /// cache's observable state exactly).
  void RestoreStats(std::size_t hits, std::size_t misses) noexcept {
    hits_ = hits;
    misses_ = misses;
  }

 private:
  std::unordered_map<ApproxSelection, Measurement, ApproxSelection::Hash> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace axdse::instrument
