#pragma once
// Shared MAC-chain inner loops: the one implementation of the batched
// dot/axpy arithmetic, parameterized on resolved operator descriptors.
// Both the scalar ApproxContext (one configuration) and the lane-parallel
// MultiApproxContext (one representative lane per dedup group) dispatch
// through these, so "batched == scalar" holds by construction for the loop
// bodies and a SIMD change lands in both paths at once.
//
// SIMD policy (gated by the AXDSE_NO_SIMD build option):
//  - Exact accumulation is uint64 modular addition — associative and
//    commutative — so a vectorized reduction reorders bit-identically.
//    The u8 table path and the exact*exact path carry `omp simd` pragmas.
//  - Approximate adds are NOT associative (carry truncation etc.): those
//    chains keep the strict element order and never get a reduction pragma.
//  - Element-independent loops (AXPY) may vectorize freely: no iteration
//    reads another's output, so lane order cannot change results.
// Compiled with -fopenmp-simd the pragmas vectorize without any OpenMP
// runtime dependency; with AXDSE_NO_SIMD they are compiled out entirely and
// the loops run scalar (the forced-fallback CI flavor).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "axc/execution_plan.hpp"

#if defined(AXDSE_NO_SIMD)
#define AXDSE_SIMD_LOOP
#define AXDSE_SIMD_REDUCTION(var)
#else
#define AXDSE_PRAGMA_(text) _Pragma(#text)
#define AXDSE_SIMD_LOOP AXDSE_PRAGMA_(omp simd)
#define AXDSE_SIMD_REDUCTION(var) AXDSE_PRAGMA_(omp simd reduction(+ : var))
#endif

namespace axdse::instrument::detail {

/// Chained MAC: returns acc after n steps of
///   acc = add(acc, mul(a[i*stride_a], b[i*stride_b]))
/// with both operators fixed to the given descriptors. Bit-identical to the
/// equivalent loop of scalar DispatchMulSigned/DispatchAddSigned calls
/// (operand order preserved: element product first operand is `a`,
/// accumulation first operand is the running `acc`).
template <class A, class B>
inline std::int64_t DotChain(const axc::MulOpDescriptor& mul_d,
                             const axc::AddOpDescriptor& add_d,
                             std::int64_t acc, const A* a, std::size_t stride_a,
                             const B* b, std::size_t stride_b,
                             std::size_t n) noexcept {
  static_assert(std::is_integral_v<A> && std::is_integral_v<B>,
                "DotChain operates on integral element types");
  if (n == 0) return acc;
  if constexpr (std::is_unsigned_v<A> && std::is_unsigned_v<B> &&
                sizeof(A) == 1 && sizeof(B) == 1) {
    // 8-bit operands: approximate multipliers memoize their full 256x256
    // domain (MulOpDescriptor::table8), turning the family math into one
    // load per MAC. Bit-identical by construction.
    if (const std::uint32_t* table8 = mul_d.table8) {
      assert(acc >= 0);
      if (add_d.code == axc::AddOpCode::kExact) {
        // Exact accumulation of table products: modular uint64 addition is
        // associative, so the vectorized reduction is bit-identical.
        std::uint64_t uacc = static_cast<std::uint64_t>(acc);
        AXDSE_SIMD_REDUCTION(uacc)
        for (std::size_t i = 0; i < n; ++i) {
          uacc += table8[(static_cast<std::uint64_t>(a[i * stride_a]) << 8) |
                         static_cast<std::uint64_t>(b[i * stride_b])];
        }
        return static_cast<std::int64_t>(uacc);
      }
      return axc::WithAddOp(add_d, [&](auto add) {
        std::uint64_t uacc = static_cast<std::uint64_t>(acc);
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t product =
              table8[(static_cast<std::uint64_t>(a[i * stride_a]) << 8) |
                     static_cast<std::uint64_t>(b[i * stride_b])];
          uacc = add(uacc, product);
        }
        return static_cast<std::int64_t>(uacc);
      });
    }
  }
  if constexpr (std::is_unsigned_v<A> && std::is_unsigned_v<B>) {
    // Fully exact unit-stride chain: plain multiply-accumulate, again safe
    // to reorder as a vector reduction.
    if (mul_d.code == axc::MulOpCode::kExact &&
        add_d.code == axc::AddOpCode::kExact && stride_a == 1 &&
        stride_b == 1) {
      assert(acc >= 0);
      std::uint64_t uacc = static_cast<std::uint64_t>(acc);
      AXDSE_SIMD_REDUCTION(uacc)
      for (std::size_t i = 0; i < n; ++i) {
        uacc += static_cast<std::uint64_t>(a[i]) *
                static_cast<std::uint64_t>(b[i]);
      }
      return static_cast<std::int64_t>(uacc);
    }
  }
  return axc::WithMulOp(mul_d, [&](auto mul) {
    return axc::WithAddOp(add_d, [&](auto add) {
      if constexpr (std::is_unsigned_v<A> && std::is_unsigned_v<B>) {
        // Both element types unsigned: the whole chain is provably
        // non-negative (catalog data widths keep magnitudes far below
        // 2^63), so the sign-magnitude wrappers reduce to the identity.
        assert(acc >= 0);
        std::uint64_t uacc = static_cast<std::uint64_t>(acc);
        if (stride_a == 1 && stride_b == 1) {
          // Contiguous operands on a separate loop: with the strides
          // pinned the optimizer can unroll/vectorize (the strided loop
          // below defeats that).
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t product =
                mul(static_cast<std::uint64_t>(a[i]),
                    static_cast<std::uint64_t>(b[i]));
            uacc = add(uacc, product);
          }
          return static_cast<std::int64_t>(uacc);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t product =
              mul(static_cast<std::uint64_t>(a[i * stride_a]),
                  static_cast<std::uint64_t>(b[i * stride_b]));
          uacc = add(uacc, product);
        }
        return static_cast<std::int64_t>(uacc);
      } else {
        std::int64_t signed_acc = acc;
        for (std::size_t i = 0; i < n; ++i) {
          const std::int64_t product = axc::ops::SignedMul(
              mul, static_cast<std::int64_t>(a[i * stride_a]),
              static_cast<std::int64_t>(b[i * stride_b]));
          signed_acc = axc::ops::SignedAdd(add, signed_acc, product);
        }
        return signed_acc;
      }
    });
  });
}

/// AXPY chain: y[i] = add(y[i], mul(alpha, x[i])) for i in [0, n) — `alpha`
/// is the product's FIRST operand (asymmetric families care). Elements are
/// independent, so the loop may vectorize without reordering hazards.
template <class X>
inline void AxpyChain(const axc::MulOpDescriptor& mul_d,
                      const axc::AddOpDescriptor& add_d, std::int64_t* y,
                      const X* x, std::size_t n, std::int64_t alpha) noexcept {
  static_assert(std::is_integral_v<X>,
                "AxpyChain operates on integral element types");
  if (n == 0) return;
  const bool alpha_neg = alpha < 0;
  const std::uint64_t alpha_mag = axc::ops::UnsignedMagnitude(alpha);
  axc::WithMulOp(mul_d, [&](auto mul) {
    axc::WithAddOp(add_d, [&](auto add) {
      AXDSE_SIMD_LOOP
      for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t xv = static_cast<std::int64_t>(x[i]);
        const std::uint64_t mag =
            mul(alpha_mag, axc::ops::UnsignedMagnitude(xv));
        const std::int64_t product =
            axc::ops::ApplySign(alpha_neg != (xv < 0), mag);
        y[i] = axc::ops::SignedAdd(add, y[i], product);
      }
    });
  });
}

}  // namespace axdse::instrument::detail
