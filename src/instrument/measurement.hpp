#pragma once
// The observations the environment returns for one approximate version:
// accuracy degradation and power / computation-time reductions relative to
// the precise run (the Δacc, Δpower, Δtime of the paper's Equation 1),
// plus the raw cost figures for reporting.

#include "energy/energy_model.hpp"

namespace axdse::instrument {

/// Measured behaviour of one configuration.
struct Measurement {
  /// MAE between precise and approximate outputs (paper Eq. 2).
  double delta_acc = 0.0;
  /// power(precise) - power(approx), mW; positive = saving.
  double delta_power_mw = 0.0;
  /// time(precise) - time(approx), ns; positive = saving.
  double delta_time_ns = 0.0;

  /// Raw costs for reporting / thresholds.
  double precise_power_mw = 0.0;
  double precise_time_ns = 0.0;
  double approx_power_mw = 0.0;
  double approx_time_ns = 0.0;

  /// Operation counts of the measured run.
  energy::OpCounts counts;
};

}  // namespace axdse::instrument
