#include "instrument/multi_approx_context.hpp"

#include <algorithm>
#include <stdexcept>

namespace axdse::instrument {

MultiApproxContext::MultiApproxContext(axc::OperatorSet operators,
                                       std::size_t num_variables)
    : operators_(std::move(operators)), num_variables_(num_variables) {
  if (operators_.adders.empty() || operators_.multipliers.empty())
    throw std::invalid_argument(
        "MultiApproxContext: operator set must be non-empty");
  const ApproxSelection precise(num_variables);
  Configure(&precise, 1);
}

void MultiApproxContext::Configure(const ApproxSelection* selections,
                                   std::size_t num_lanes) {
  if (num_lanes == 0 || num_lanes > kMaxLanes)
    throw std::invalid_argument("MultiApproxContext::Configure: lane count");
  for (std::size_t l = 0; l < num_lanes; ++l) {
    const ApproxSelection& s = selections[l];
    if (s.NumVariables() != num_variables_)
      throw std::invalid_argument(
          "MultiApproxContext::Configure: variable count");
    if (s.AdderIndex() >= operators_.adders.size())
      throw std::invalid_argument("MultiApproxContext::Configure: adder index");
    if (s.MultiplierIndex() >= operators_.multipliers.size())
      throw std::invalid_argument(
          "MultiApproxContext::Configure: multiplier index");
  }
  num_lanes_ = num_lanes;
  selections_.assign(selections, selections + num_lanes);
  // Compile one plan per lane (same resolution as the scalar Configure) and
  // canonicalize descriptor identities across lanes by content, so the
  // partition logic sees "same operator" wherever dispatch is provably
  // identical — including a lane whose selected approximate operator IS the
  // exact one.
  std::vector<axc::AddOpDescriptor> distinct_adds;
  std::vector<axc::MulOpDescriptor> distinct_muls;
  const auto add_key = [&](const axc::AddOpDescriptor& d) {
    for (std::size_t i = 0; i < distinct_adds.size(); ++i)
      if (distinct_adds[i] == d) return static_cast<std::uint8_t>(i);
    distinct_adds.push_back(d);
    return static_cast<std::uint8_t>(distinct_adds.size() - 1);
  };
  const auto mul_key = [&](const axc::MulOpDescriptor& d) {
    for (std::size_t i = 0; i < distinct_muls.size(); ++i)
      if (distinct_muls[i] == d) return static_cast<std::uint8_t>(i);
    distinct_muls.push_back(d);
    return static_cast<std::uint8_t>(distinct_muls.size() - 1);
  };
  for (std::size_t l = 0; l < num_lanes_; ++l) {
    const ApproxSelection& s = selections_[l];
    axc::OperatorPlan& plan = plans_[l];
    plan.add[0] = operators_.adders.front().model->PlanDescriptor();
    plan.add[1] = operators_.adders[s.AdderIndex()].model->PlanDescriptor();
    plan.mul[0] = operators_.multipliers.front().model->PlanDescriptor();
    plan.mul[1] =
        operators_.multipliers[s.MultiplierIndex()].model->PlanDescriptor();
    for (int b = 0; b < 2; ++b) {
      add_id_[l][b] = add_key(plan.add[b]);
      mul_id_[l][b] = mul_key(plan.mul[b]);
    }
    for (int ab = 0; ab < 2; ++ab)
      for (int mb = 0; mb < 2; ++mb)
        key_[l][ab][mb] = static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(add_id_[l][ab]) << 8) |
            mul_id_[l][mb]);
    counts_[l] = {};
  }
  // Per-variable lane masks: one OR per variable group resolves all lanes'
  // decisions at once.
  var_lane_mask_.assign(num_variables_, 0);
  for (std::size_t l = 0; l < num_lanes_; ++l) {
    const std::uint64_t* words = selections_[l].MaskWords().data();
    for (std::size_t v = 0; v < num_variables_; ++v)
      if ((words[v >> 6] >> (v & 63)) & 1ULL)
        var_lane_mask_[v] |= 1ULL << l;
  }
  // Invalidate the memoized dispatch plans: bump the generation (re-zeroing
  // the stamp table only on 16-bit wrap-around, so Configure stays O(lanes)).
  dot_plans_.clear();
  dot_plans_.reserve(16);
  if (++gen_ == 0) {
    std::fill(plan_gen_.begin(), plan_gen_.end(), std::uint16_t{0});
    gen_ = 1;
  }
}

const MultiApproxContext::DotPlan& MultiApproxContext::BuildDotPlan(
    std::size_t slot, std::uint64_t mm, std::uint64_t am,
    std::size_t n) noexcept {
  DotPlan plan;
  plan.mm = mm;
  plan.am = am;
  plan.pending_n = n;
  for (std::size_t l = 0; l < num_lanes_; ++l)
    plan.keys[l] = key_[l][(am >> l) & 1][(mm >> l) & 1];
  PartitionFromKeys(plan.keys, plan.rep);
  for (std::size_t l = 0; l < num_lanes_; ++l)
    if (plan.rep[l] == l)
      plan.groups[plan.num_groups++] = static_cast<std::uint8_t>(l);
  dot_plans_.push_back(plan);
  plan_slot_[slot] = static_cast<std::uint16_t>(dot_plans_.size() - 1);
  plan_gen_[slot] = gen_;
  return dot_plans_.back();
}

}  // namespace axdse::instrument
