#pragma once
// Lane-parallel instrumentation context: scores up to kMaxLanes candidate
// ApproxSelections of ONE kernel in a single pass over the kernel's inputs.
// Values flow through the kernel in structure-of-arrays form (`Lanes`: one
// accumulator per candidate), so the input traversal, index math, and
// control flow are paid once for the whole batch.
//
// Dedup is dataflow-level: every Lanes value carries an equality partition
// `rep` over the active lanes — rep[l] is the smallest lane whose value
// history is provably identical to lane l's. Each primitive refines the
// incoming partition(s) with the per-lane operator descriptors it actually
// dispatches — by CONTENT identity, not the approx decision bit, so a lane
// whose selected "approximate" operator resolves to the same descriptor as
// the precise one merges with the precise lanes — and then computes each
// group once through its representative lane (via the shared MAC chains in
// instrument/mac_chains.hpp, so group arithmetic is bit-identical to the
// scalar ApproxContext by construction). Sibling configurations produced by
// an RL random walk typically resolve to 2–4 distinct descriptor pairs, so
// most lanes ride along for a broadcast copy.
//
// Per-lane OpCounts are accumulated with each lane's OWN decision and the
// full element count, independent of grouping: Counts(l) is exactly what a
// scalar ApproxContext configured with Selection(l) would report.
//
// Not thread-safe (one context per running evaluation), same as the scalar
// context.

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "axc/catalog.hpp"
#include "axc/execution_plan.hpp"
#include "energy/energy_model.hpp"
#include "instrument/approx_selection.hpp"
#include "instrument/approx_context.hpp"
#include "instrument/mac_chains.hpp"

namespace axdse::instrument {

class MultiApproxContext {
 public:
  /// Maximum candidate configurations per pass. Eight keeps `Lanes` at one
  /// cache line of values plus a word of partition, and matches the widest
  /// profitable batch observed on the Table-3 grids.
  static constexpr std::size_t kMaxLanes = 8;

  /// Canonical lane partition: rep[l] = smallest active lane whose value
  /// history is identical to lane l's (rep[l] <= l, rep[rep[l]] == rep[l]).
  /// Entries for inactive lanes are 0 so partitions compare as one uint64.
  using Partition = std::array<std::uint8_t, kMaxLanes>;

  /// A lane-parallel signed value: per-lane payloads plus the equality
  /// partition they carry. Kernels may transform `v` lane-wise with any
  /// deterministic pure function (negate, shift, abs, scale...) — that
  /// preserves the partition invariant, so keep `rep` untouched.
  struct Lanes {
    std::array<std::int64_t, kMaxLanes> v{};
    Partition rep{};
  };

  /// Binds the context to an operator set (copied) and the kernel's variable
  /// count; starts configured with one all-precise lane.
  MultiApproxContext(axc::OperatorSet operators, std::size_t num_variables);

  /// Installs `num_lanes` (1..kMaxLanes) candidate selections, compiles one
  /// operator plan per lane, canonicalizes descriptor identities across
  /// lanes for the dedup partitions, and clears all per-lane counts. Throws
  /// std::invalid_argument exactly where the scalar Configure would (lane
  /// count, variable count, operator indices).
  void Configure(const ApproxSelection* selections, std::size_t num_lanes);
  void Configure(const std::vector<ApproxSelection>& selections) {
    Configure(selections.data(), selections.size());
  }

  std::size_t NumLanes() const noexcept { return num_lanes_; }
  std::size_t NumVariables() const noexcept { return num_variables_; }
  const axc::OperatorSet& Operators() const noexcept { return operators_; }

  /// Lane `lane`'s active selection / accumulated counts.
  const ApproxSelection& Selection(std::size_t lane) const {
    assert(lane < num_lanes_);
    return selections_[lane];
  }
  const energy::OpCounts& Counts(std::size_t lane) const {
    assert(lane < num_lanes_);
    FlushDotCharges();
    return counts_[lane];
  }

  /// Per-lane approximation decision for one variable group: bit l is set
  /// when lane l approximates an op touching these variables. The lane
  /// counterpart of ApproxContext::AnyApproximated — kernels hoist it out
  /// of loops the same way.
  std::uint64_t ApproxLaneMask(VarList vars) const noexcept {
    std::uint64_t mask = 0;
    for (const std::size_t v : vars) {
      assert(v < num_variables_ &&
             "MultiApproxContext: variable id out of range");
      mask |= var_lane_mask_[v];
    }
    return mask;
  }

  /// All lanes carrying the same value: one dedup group.
  Lanes Broadcast(std::int64_t value) const noexcept {
    Lanes out;
    for (std::size_t l = 0; l < num_lanes_; ++l) out.v[l] = value;
    return out;
  }

  /// Lane-parallel signed addition with a pre-resolved per-lane decision
  /// mask (from ApproxLaneMask). Counted as one add per lane.
  Lanes AddResolved(std::uint64_t approx_mask, const Lanes& a,
                    const Lanes& b) noexcept {
    std::uint16_t keys[kMaxLanes];
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      const bool ap = (approx_mask >> l) & 1;
      keys[l] = add_id_[l][ap];
      counts_[l].AccumulateAdds(ap, 1);
    }
    Lanes out;
    MeetPair(a.rep, b.rep, keys, out.rep);
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      AssertGrouped(a, l);
      AssertGrouped(b, l);
      if (out.rep[l] == l) {
        out.v[l] = axc::DispatchAddSigned(plans_[l].add[(approx_mask >> l) & 1],
                                          a.v[l], b.v[l]);
      } else {
        out.v[l] = out.v[out.rep[l]];
      }
    }
    return out;
  }

  /// Lane-parallel signed multiplication, pre-resolved decision mask.
  Lanes MulResolved(std::uint64_t approx_mask, const Lanes& a,
                    const Lanes& b) noexcept {
    std::uint16_t keys[kMaxLanes];
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      const bool ap = (approx_mask >> l) & 1;
      keys[l] = mul_id_[l][ap];
      counts_[l].AccumulateMuls(ap, 1);
    }
    Lanes out;
    MeetPair(a.rep, b.rep, keys, out.rep);
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      AssertGrouped(a, l);
      AssertGrouped(b, l);
      if (out.rep[l] == l) {
        out.v[l] = axc::DispatchMulSigned(plans_[l].mul[(approx_mask >> l) & 1],
                                          a.v[l], b.v[l]);
      } else {
        out.v[l] = out.v[out.rep[l]];
      }
    }
    return out;
  }

  /// Convenience forms resolving the variable group per call.
  Lanes Add(const Lanes& a, const Lanes& b, VarList vars) noexcept {
    return AddResolved(ApproxLaneMask(vars), a, b);
  }
  Lanes Mul(const Lanes& a, const Lanes& b, VarList vars) noexcept {
    return MulResolved(ApproxLaneMask(vars), a, b);
  }

  /// Lane-parallel batched MAC over SHARED operands and a shared scalar
  /// start value: per lane,
  ///   acc_l = Add_l(acc_l, Mul_l(a[i*stride_a], b[i*stride_b]))
  /// for i in [0, n). The partition is rebuilt per call purely from the
  /// resolved descriptor pairs (the inputs and the start value are shared,
  /// so value history cannot split lanes further) — this is the primitive
  /// where dedup pays: one DotChain per distinct descriptor pair.
  template <class A, class B>
  Lanes DotAccumulate(std::int64_t acc, const A* a, std::size_t stride_a,
                      const B* b, std::size_t stride_b, std::size_t n,
                      VarList mul_vars, VarList add_vars) noexcept {
    if (n == 0) return Broadcast(acc);
    const std::uint64_t mm = ApproxLaneMask(mul_vars);
    const std::uint64_t am = ApproxLaneMask(add_vars);
    const DotPlan& plan = PlanFor(mm, am, n);
    Lanes out;
    out.rep = plan.rep;
    for (std::size_t g = 0; g < plan.num_groups; ++g) {
      const std::size_t l = plan.groups[g];
      out.v[l] = detail::DotChain(plans_[l].mul[(mm >> l) & 1],
                                  plans_[l].add[(am >> l) & 1], acc, a,
                                  stride_a, b, stride_b, n);
    }
    AXDSE_SIMD_LOOP
    for (std::size_t l = 0; l < num_lanes_; ++l) out.v[l] = out.v[out.rep[l]];
    return out;
  }

  /// Chained variant: the start value is itself lane-parallel (conv2d's
  /// row-by-row accumulation). The partition is the meet of the incoming
  /// accumulator's partition with the per-call descriptor keys.
  template <class A, class B>
  Lanes DotAccumulate(const Lanes& acc, const A* a, std::size_t stride_a,
                      const B* b, std::size_t stride_b, std::size_t n,
                      VarList mul_vars, VarList add_vars) noexcept {
    if (n == 0) return acc;
    const std::uint64_t mm = ApproxLaneMask(mul_vars);
    const std::uint64_t am = ApproxLaneMask(add_vars);
    const DotPlan& plan = PlanFor(mm, am, n);
    Lanes out;
    MeetWithKeys(acc.rep, plan.keys, out.rep);
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      AssertGrouped(acc, l);
      if (out.rep[l] == l) {
        out.v[l] = detail::DotChain(plans_[l].mul[(mm >> l) & 1],
                                    plans_[l].add[(am >> l) & 1], acc.v[l], a,
                                    stride_a, b, stride_b, n);
      } else {
        out.v[l] = out.v[out.rep[l]];
      }
    }
    return out;
  }

  /// Dot whose A operand is lane-parallel per element (dct's second pass
  /// reads the first pass's intermediates): groups lanes that agree on the
  /// descriptors AND on every element's partition, then gathers the
  /// representative's element values into a contiguous scratch so the
  /// shared DotChain runs unchanged.
  template <class B>
  Lanes DotAccumulate(std::int64_t acc, const Lanes* a, const B* b,
                      std::size_t stride_b, std::size_t n, VarList mul_vars,
                      VarList add_vars) noexcept {
    if (n == 0) return Broadcast(acc);
    const std::uint64_t mm = ApproxLaneMask(mul_vars);
    const std::uint64_t am = ApproxLaneMask(add_vars);
    const DotPlan& plan = PlanFor(mm, am, n);
    const std::uint16_t* keys = plan.keys;
    Lanes out;
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      std::uint8_t r = static_cast<std::uint8_t>(l);
      for (std::size_t m = 0; m < l; ++m) {
        if (keys[m] != keys[l]) continue;
        bool same = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (a[i].rep[m] != a[i].rep[l]) {
            same = false;
            break;
          }
        }
        if (same) {
          r = static_cast<std::uint8_t>(m);
          break;
        }
      }
      out.rep[l] = r;
    }
    gather_buf_.resize(n);
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      if (out.rep[l] != l) {
        out.v[l] = out.v[out.rep[l]];
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) gather_buf_[i] = a[i].v[l];
      out.v[l] = detail::DotChain(plans_[l].mul[(mm >> l) & 1],
                                  plans_[l].add[(am >> l) & 1], acc,
                                  gather_buf_.data(), std::size_t{1}, b,
                                  stride_b, n);
    }
    return out;
  }

  /// Dot over per-lane operand arrays of per-lane lengths, sharing a
  /// caller-tracked operand partition (kmeans' inertia pass: each lane's
  /// scratch is its cluster's member diffs, and lanes grouped by
  /// `operand_rep` point at the SAME buffer). Counts are charged with each
  /// lane's own length.
  Lanes DotAccumulate(std::int64_t acc,
                      const std::array<const std::int64_t*, kMaxLanes>& a,
                      const std::array<const std::int64_t*, kMaxLanes>& b,
                      const std::array<std::size_t, kMaxLanes>& n,
                      const Partition& operand_rep, VarList mul_vars,
                      VarList add_vars) noexcept {
    const std::uint64_t mm = ApproxLaneMask(mul_vars);
    const std::uint64_t am = ApproxLaneMask(add_vars);
    std::uint16_t keys[kMaxLanes];
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      const bool mb = (mm >> l) & 1;
      const bool ab = (am >> l) & 1;
      keys[l] = key_[l][ab][mb];
      counts_[l].AccumulateMuls(mb, n[l]);
      counts_[l].AccumulateAdds(ab, n[l]);
    }
    Lanes out;
    MeetWithKeys(operand_rep, keys, out.rep);
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      if (out.rep[l] == l) {
        out.v[l] = detail::DotChain(plans_[l].mul[(mm >> l) & 1],
                                    plans_[l].add[(am >> l) & 1], acc, a[l],
                                    std::size_t{1}, b[l], std::size_t{1},
                                    n[l]);
      } else {
        assert(n[l] == n[out.rep[l]] && a[l] == a[out.rep[l]] &&
               b[l] == b[out.rep[l]] &&
               "per-lane dot: grouped lanes must share operands");
        out.v[l] = out.v[out.rep[l]];
      }
    }
    return out;
  }

  /// Lane-parallel batched AXPY over an array of lane values:
  ///   y[i] = Add_l(y[i], Mul_l(alpha, x[i]))  for i in [0, n).
  /// Entry partitions generally differ along the array (fir's tap-major
  /// accumulation touches a growing prefix), so entries are processed in
  /// runs of identical incoming partitions with the operator switch hoisted
  /// per run and group.
  template <class X>
  void AxpyAccumulate(Lanes* y, const X* x, std::size_t n, std::int64_t alpha,
                      VarList mul_vars, VarList add_vars) noexcept {
    if (n == 0) return;
    const std::uint64_t mm = ApproxLaneMask(mul_vars);
    const std::uint64_t am = ApproxLaneMask(add_vars);
    const DotPlan& plan = PlanFor(mm, am, n);
    const std::uint16_t* keys = plan.keys;
    const bool alpha_neg = alpha < 0;
    const std::uint64_t alpha_mag = axc::ops::UnsignedMagnitude(alpha);
    std::size_t i = 0;
    while (i < n) {
      std::size_t end = i + 1;
      while (end < n && RepBits(y[end].rep) == RepBits(y[i].rep)) ++end;
      Partition pi{};
      MeetWithKeys(y[i].rep, keys, pi);
      for (std::size_t l = 0; l < num_lanes_; ++l) {
        if (pi[l] != l) continue;
        axc::WithMulOp(plans_[l].mul[(mm >> l) & 1], [&](auto mul) {
          axc::WithAddOp(plans_[l].add[(am >> l) & 1], [&](auto add) {
            for (std::size_t j = i; j < end; ++j) {
              const std::int64_t xv = static_cast<std::int64_t>(x[j]);
              const std::uint64_t mag =
                  mul(alpha_mag, axc::ops::UnsignedMagnitude(xv));
              const std::int64_t product =
                  axc::ops::ApplySign(alpha_neg != (xv < 0), mag);
              y[j].v[l] = axc::ops::SignedAdd(add, y[j].v[l], product);
            }
          });
        });
      }
      for (std::size_t j = i; j < end; ++j) {
        AssertGroupedBy(y[j], y[j].rep);
        y[j].rep = pi;
        for (std::size_t l = 0; l < num_lanes_; ++l) y[j].v[l] = y[j].v[pi[l]];
      }
      i = end;
    }
  }

 private:
  /// Partitions compare as one machine word.
  static std::uint64_t RepBits(const Partition& p) noexcept {
    return std::bit_cast<std::uint64_t>(p);
  }

  /// rep[l] = first lane with the same per-call key.
  void PartitionFromKeys(const std::uint16_t* keys,
                         Partition& out) const noexcept {
    out = {};
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      std::uint8_t r = static_cast<std::uint8_t>(l);
      for (std::size_t m = 0; m < l; ++m) {
        if (keys[m] == keys[l]) {
          r = static_cast<std::uint8_t>(m);
          break;
        }
      }
      out[l] = r;
    }
  }

  /// Meet of an incoming partition with per-call keys: lanes group iff they
  /// were grouped before AND dispatch the same descriptors now.
  void MeetWithKeys(const Partition& p, const std::uint16_t* keys,
                    Partition& out) const noexcept {
    out = {};
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      std::uint8_t r = static_cast<std::uint8_t>(l);
      for (std::size_t m = 0; m < l; ++m) {
        if (p[m] == p[l] && keys[m] == keys[l]) {
          r = static_cast<std::uint8_t>(m);
          break;
        }
      }
      out[l] = r;
    }
  }

  /// Meet of two operand partitions with per-call keys.
  void MeetPair(const Partition& pa, const Partition& pb,
                const std::uint16_t* keys, Partition& out) const noexcept {
    out = {};
    for (std::size_t l = 0; l < num_lanes_; ++l) {
      std::uint8_t r = static_cast<std::uint8_t>(l);
      for (std::size_t m = 0; m < l; ++m) {
        if (pa[m] == pa[l] && pb[m] == pb[l] && keys[m] == keys[l]) {
          r = static_cast<std::uint8_t>(m);
          break;
        }
      }
      out[l] = r;
    }
  }

  /// Memoized per-(mul_mask, add_mask) dispatch plan for the dot/axpy
  /// primitives: the per-lane descriptor keys, the shared-operand partition
  /// they induce, its group representatives, and the lazily-charged element
  /// count. Rebuilding these per call costs as much as a short dot chain
  /// itself; one evaluation only ever sees a handful of distinct mask pairs,
  /// so they are built once per Configure and O(1)-indexed after that.
  struct DotPlan {
    std::uint16_t keys[kMaxLanes] = {};
    Partition rep{};
    std::uint8_t groups[kMaxLanes] = {};
    std::uint8_t num_groups = 0;
    std::uint64_t mm = 0;
    std::uint64_t am = 0;
    /// Elements charged through this plan since the last FlushDotCharges():
    /// each lane owes `pending_n` muls and adds under its own decision bit,
    /// exactly what eager per-call charging would have accumulated.
    mutable std::uint64_t pending_n = 0;
  };

  /// The plan for one (mul mask, add mask) pair, with `n` elements charged.
  /// Masks fit 8 bits (kMaxLanes == 8), so (mm, am) indexes a flat 64K slot
  /// table; generation stamps make Configure-time invalidation O(1).
  const DotPlan& PlanFor(std::uint64_t mm, std::uint64_t am,
                         std::size_t n) noexcept {
    static_assert(kMaxLanes <= 8, "mask pair must fit the 64K slot table");
    const std::size_t slot = (mm << 8) | am;
    if (plan_gen_[slot] == gen_) {
      const DotPlan& plan = dot_plans_[plan_slot_[slot]];
      plan.pending_n += n;
      return plan;
    }
    return BuildDotPlan(slot, mm, am, n);
  }

  const DotPlan& BuildDotPlan(std::size_t slot, std::uint64_t mm,
                              std::uint64_t am, std::size_t n) noexcept;

  /// Materializes every plan's pending element count into per-lane OpCounts
  /// (linear in the handful of live plans, so Counts() stays cheap).
  void FlushDotCharges() const noexcept {
    for (const DotPlan& plan : dot_plans_) {
      if (plan.pending_n == 0) continue;
      for (std::size_t l = 0; l < num_lanes_; ++l) {
        counts_[l].AccumulateMuls((plan.mm >> l) & 1, plan.pending_n);
        counts_[l].AccumulateAdds((plan.am >> l) & 1, plan.pending_n);
      }
      plan.pending_n = 0;
    }
  }

  /// Debug check of the dedup invariant: a lane's payload equals its
  /// representative's.
  void AssertGrouped([[maybe_unused]] const Lanes& x,
                     [[maybe_unused]] std::size_t l) const noexcept {
    assert(x.v[l] == x.v[x.rep[l]] &&
           "MultiApproxContext: partition invariant violated");
  }
  void AssertGroupedBy([[maybe_unused]] const Lanes& x,
                       [[maybe_unused]] const Partition& p) const noexcept {
#ifndef NDEBUG
    for (std::size_t l = 0; l < num_lanes_; ++l)
      assert(x.v[l] == x.v[p[l]] &&
             "MultiApproxContext: partition invariant violated");
#endif
  }

  axc::OperatorSet operators_;
  std::size_t num_variables_;
  std::size_t num_lanes_ = 1;
  std::vector<ApproxSelection> selections_;
  std::array<axc::OperatorPlan, kMaxLanes> plans_{};
  // Mutable for the lazy dot-charge flush in the const Counts() accessor.
  mutable std::array<energy::OpCounts, kMaxLanes> counts_{};
  // Live dispatch plans plus the (mm, am) -> plan index slot table.
  // plan_gen_[slot] == gen_ marks plan_slot_[slot] valid; bumping gen_
  // invalidates every slot at once (the stamp array is re-zeroed only when
  // the 16-bit generation wraps).
  mutable std::vector<DotPlan> dot_plans_;
  std::vector<std::uint16_t> plan_slot_ =
      std::vector<std::uint16_t>(std::size_t{1} << 16);
  std::vector<std::uint16_t> plan_gen_ =
      std::vector<std::uint16_t>(std::size_t{1} << 16, 0);
  std::uint16_t gen_ = 0;
  // Canonical descriptor identities, assigned by content comparison across
  // all lanes' compiled plans at Configure time: equal ids dispatch
  // identically. Index [lane][approx decision bit].
  std::array<std::array<std::uint8_t, 2>, kMaxLanes> add_id_{};
  std::array<std::array<std::uint8_t, 2>, kMaxLanes> mul_id_{};
  // Packed (add_id << 8) | mul_id per lane and per (add bit, mul bit).
  std::array<std::array<std::array<std::uint16_t, 2>, 2>, kMaxLanes> key_{};
  // Per-variable lane masks: bit l of var_lane_mask_[v] set when lane l's
  // selection includes variable v (SNIPPETS-style bit-mask hoisting).
  std::vector<std::uint64_t> var_lane_mask_;
  // Scratch for the lane-operand gather dot.
  std::vector<std::int64_t> gather_buf_;
};

}  // namespace axdse::instrument
