#include "instrument/shared_evaluation_cache.hpp"

#include <sstream>

namespace axdse::instrument {

std::string CacheStats::ToString() const {
  std::ostringstream out;
  out << "hits=" << hits << " misses=" << misses << " inserts=" << inserts
      << " rejected=" << rejected << " size=" << size;
  return out.str();
}

SharedEvaluationCache::SharedEvaluationCache()
    : SharedEvaluationCache(Options{}) {}

SharedEvaluationCache::SharedEvaluationCache(const Options& options)
    : capacity_(options.capacity) {
  const std::size_t num_shards =
      options.num_shards == 0 ? 1 : options.num_shards;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Distribute the bound so the per-shard bounds sum to exactly
    // capacity_ (the first capacity_ % num_shards shards take the
    // remainder; with capacity_ < num_shards some shards admit nothing).
    if (capacity_ > 0)
      shards_.back()->capacity =
          capacity_ / num_shards + (i < capacity_ % num_shards ? 1 : 0);
  }
}

SharedEvaluationCache::Shard& SharedEvaluationCache::ShardFor(
    const ApproxSelection& key) const {
  // The per-shard unordered_map uses ApproxSelection::Hash for its buckets;
  // remix the same hash (splitmix64 finalizer) so shard choice and bucket
  // choice stay decorrelated.
  std::uint64_t h = static_cast<std::uint64_t>(ApproxSelection::Hash{}(key));
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return *shards_[static_cast<std::size_t>(h % shards_.size())];
}

std::optional<Measurement> SharedEvaluationCache::Lookup(
    const ApproxSelection& key) {
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  return it->second;
}

bool SharedEvaluationCache::Insert(const ApproxSelection& key,
                                   const Measurement& value) {
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second = value;
    return true;
  }
  if (capacity_ > 0 && shard.map.size() >= shard.capacity) {
    ++shard.rejected;
    return false;
  }
  shard.map.emplace(key, value);
  ++shard.inserts;
  return true;
}

Measurement SharedEvaluationCache::FetchOrCompute(
    const ApproxSelection& key, const std::function<Measurement()>& compute,
    bool* computed) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mutex);
  bool waited = false;
  while (true) {
    // A computation we were blocked on may have failed: take our share of
    // its failure record first (so the record drains), but let a published
    // value win — measurements are pure, an Insert() racing the failure
    // carries exactly the bytes the failed computation was after.
    std::exception_ptr pending_error;
    if (waited) {
      if (const auto fit = shard.failures.find(key);
          fit != shard.failures.end()) {
        pending_error = fit->second.error;
        if (--fit->second.remaining == 0) shard.failures.erase(fit);
      }
    }
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      ++shard.hits;
      if (computed) *computed = false;
      return it->second;
    }
    if (pending_error) std::rethrow_exception(pending_error);
    if (capacity_ > 0 && shard.map.size() >= shard.capacity) {
      // The shard is full and entries are never evicted, so this key can
      // never be published: compute without in-flight coordination (waiting
      // on another computer would serialize callers for no benefit). Counts
      // as a miss only — `rejected` tracks admission refusals, and no
      // admission is attempted here.
      ++shard.misses;
      lock.unlock();
      const Measurement value = compute();
      if (computed) *computed = true;
      return value;
    }
    const auto flight = shard.in_flight.find(key);
    if (flight == shard.in_flight.end()) break;
    // Another thread is computing this key; its publish (or failure) wakes
    // us and we re-check. Register so a failure knows how many blocked
    // callers expect the error; deregister on wake (the entry may be gone —
    // or replaced by a later computation's — when the computer finished,
    // hence the guarded decrement).
    ++flight->second;
    waited = true;
    shard.ready.wait(lock);
    if (const auto after = shard.in_flight.find(key);
        after != shard.in_flight.end() && after->second > 0)
      --after->second;
  }
  ++shard.misses;
  shard.in_flight.emplace(key, 0);
  lock.unlock();

  Measurement value;
  try {
    value = compute();
  } catch (...) {
    lock.lock();
    // Leave the error for every caller currently blocked on this key —
    // they rethrow it instead of silently recomputing. Callers arriving
    // from now on find the key released and retry.
    std::size_t waiters = 0;
    if (const auto flight = shard.in_flight.find(key);
        flight != shard.in_flight.end()) {
      waiters = flight->second;
      shard.in_flight.erase(flight);
    }
    if (waiters > 0)
      shard.failures[key] = Shard::Failure{std::current_exception(), waiters};
    shard.ready.notify_all();
    throw;
  }

  lock.lock();
  shard.in_flight.erase(key);
  if (capacity_ > 0 && shard.map.size() >= shard.capacity) {
    // Full shard: the value is returned but not stored; a waiter finding
    // neither value nor in-flight marker recomputes (cost, never values).
    ++shard.rejected;
  } else if (shard.map.emplace(key, value).second) {
    // (emplace can be a no-op if a plain Insert raced us mid-compute; the
    // stored value is identical either way — measurements are pure.)
    ++shard.inserts;
  }
  shard.ready.notify_all();
  if (computed) *computed = true;
  return value;
}

std::size_t SharedEvaluationCache::Size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

CacheStats SharedEvaluationCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.rejected += shard->rejected;
    stats.size += shard->map.size();
  }
  return stats;
}

std::vector<std::pair<ApproxSelection, Measurement>>
SharedEvaluationCache::Entries() const {
  std::vector<std::pair<ApproxSelection, Measurement>> entries;
  entries.reserve(Size());
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, value] : shard->map)
      entries.emplace_back(key, value);
  }
  return entries;
}

void SharedEvaluationCache::Restore(
    const std::vector<std::pair<ApproxSelection, Measurement>>& entries,
    const CacheStats& stats) {
  Clear();
  for (const auto& [key, value] : entries) {
    Shard& shard = ShardFor(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.emplace(key, value);
  }
  // The aggregate counters live in shard 0; Stats() sums over shards, so
  // the restored totals read back exactly.
  Shard& first = *shards_.front();
  const std::lock_guard<std::mutex> lock(first.mutex);
  first.hits = stats.hits;
  first.misses = stats.misses;
  first.inserts = stats.inserts;
  first.rejected = stats.rejected;
}

void SharedEvaluationCache::Clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
    shard->failures.clear();
    shard->hits = 0;
    shard->misses = 0;
    shard->inserts = 0;
    shard->rejected = 0;
  }
}

}  // namespace axdse::instrument
