#pragma once
// Sharded concurrent configuration -> Measurement store, shared by every
// exploration job of one kernel identity inside a dse::Engine batch. The
// paper's RL explorer revisits configurations constantly (±1 / toggle
// actions walk a small neighborhood), and a multi-seed batch walks largely
// overlapping neighborhoods per seed — sharing one memo table across the
// batch removes almost all repeated kernel executions.
//
// Concurrency model: N shards, one mutex each, selected by a mixed key hash,
// so workers exploring disjoint regions rarely contend. FetchOrCompute() is
// the engine's hot path: it guarantees each missing key is computed by
// exactly ONE thread (others block until the value is published), which both
// avoids duplicate kernel runs and keeps the aggregate hit/miss/insert
// statistics deterministic for any worker count when the cache is unbounded.
//
// Capacity bound: optional, split evenly across shards, with deterministic
// admission — a full shard REJECTS new keys instead of evicting old ones.
// Entries are therefore immutable once admitted: because measurements are a
// pure function of the key, a bounded cache can only change *cost* (extra
// kernel runs), never *values*. With a bound, which keys win admission is
// scheduling-dependent, so only unbounded caches report scheduling-
// independent statistics (values stay identical either way).

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "instrument/approx_selection.hpp"
#include "instrument/measurement.hpp"

namespace axdse::instrument {

/// Aggregate cache statistics, summed over all shards.
struct CacheStats {
  std::size_t hits = 0;      ///< lookups answered from the store
  std::size_t misses = 0;    ///< lookups that found nothing (or computed)
  std::size_t inserts = 0;   ///< keys admitted into the store
  std::size_t rejected = 0;  ///< keys refused by the capacity bound
  std::size_t size = 0;      ///< entries currently stored

  std::string ToString() const;
};

/// Thread-safe sharded memo table. All public members may be called
/// concurrently from any number of threads.
class SharedEvaluationCache {
 public:
  struct Options {
    /// Shard count (>= 1; silently raised to 1). More shards = less mutex
    /// contention; 16 comfortably serves typical worker-pool sizes.
    std::size_t num_shards = 16;
    /// Total entry bound, distributed across shards so the per-shard bounds
    /// sum to exactly this value (0 = unbounded). Because keys hash to
    /// shards, an unlucky shard can fill (and reject) before the cache as a
    /// whole reaches the bound — the total is a hard ceiling, not a
    /// guarantee of reaching it.
    std::size_t capacity = 0;
  };

  /// Default options: 16 shards, unbounded.
  SharedEvaluationCache();
  explicit SharedEvaluationCache(const Options& options);

  /// Returns the cached measurement, or std::nullopt on miss. Counts one
  /// hit or miss.
  std::optional<Measurement> Lookup(const ApproxSelection& key);

  /// Stores `value` for `key`. An already-present key is overwritten in
  /// place (measurements are pure, so this never changes what readers see).
  /// A new key is admitted unless its shard is at capacity. Returns true
  /// when the value is stored, false when rejected by the capacity bound.
  bool Insert(const ApproxSelection& key, const Measurement& value);

  /// Returns the value for `key`, running `compute` to produce it on a miss.
  /// At most one thread computes a given key at a time; concurrent callers
  /// of the same key block until the value is published and then read it as
  /// a hit. If `compute` throws, the key is released and the exception
  /// propagates — to the computing caller directly, and to every caller
  /// already blocked on that key (each rethrows the same exception instead
  /// of silently recomputing; a value published concurrently by Insert()
  /// wins over the failure). Callers arriving after the failure retry the
  /// computation. `computed`, when non-null, is set to whether THIS call ran
  /// `compute`.
  Measurement FetchOrCompute(const ApproxSelection& key,
                             const std::function<Measurement()>& compute,
                             bool* computed = nullptr);

  /// Number of entries, summed over shards.
  std::size_t Size() const;

  /// Statistics aggregated across shards. Deterministic for any worker
  /// count when the cache is unbounded and populated via FetchOrCompute.
  CacheStats Stats() const;

  std::size_t NumShards() const noexcept { return shards_.size(); }
  std::size_t Capacity() const noexcept { return capacity_; }

  /// Drops all entries and statistics. Do not call concurrently with
  /// FetchOrCompute computations still in flight.
  void Clear();

  /// Copies out every stored entry (for checkpointing). Iteration order is
  /// unspecified — sort before serializing. Do not call with computations
  /// in flight.
  std::vector<std::pair<ApproxSelection, Measurement>> Entries() const;

  /// Replaces contents and counter statistics with a snapshot previously
  /// taken via Entries()/Stats(). Entries are admitted unconditionally
  /// (they were admitted once; re-applying the capacity bound here could
  /// silently drop them) and the aggregate counters are restored exactly
  /// (CacheStats::size is always recomputed from the stored entries). Only
  /// for quiescent caches — never call concurrently with other members.
  void Restore(const std::vector<std::pair<ApproxSelection, Measurement>>&
                   entries,
               const CacheStats& stats);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable ready;
    std::unordered_map<ApproxSelection, Measurement, ApproxSelection::Hash>
        map;
    /// Keys currently being computed by some FetchOrCompute caller, mapped
    /// to the number of callers blocked waiting on the publish.
    std::unordered_map<ApproxSelection, std::size_t, ApproxSelection::Hash>
        in_flight;
    /// A computation that threw, pending delivery to the `remaining`
    /// callers that were blocked on it when it failed. Records are consumed
    /// (and erased once drained) by the woken waiters, so callers arriving
    /// later retry the computation instead of seeing a stale error.
    struct Failure {
      std::exception_ptr error;
      std::size_t remaining = 0;
    };
    std::unordered_map<ApproxSelection, Failure, ApproxSelection::Hash>
        failures;
    /// This shard's entry bound (0 = unbounded); shard bounds sum to the
    /// cache capacity.
    std::size_t capacity = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t inserts = 0;
    std::size_t rejected = 0;
  };

  Shard& ShardFor(const ApproxSelection& key) const;

  std::size_t capacity_ = 0;
  // unique_ptr: shards hold a mutex and must stay address-stable.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace axdse::instrument
