#include "metrics/error_metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace axdse::metrics {

namespace {
void CheckSpans(std::span<const double> exact, std::span<const double> approx) {
  if (exact.size() != approx.size())
    throw std::invalid_argument("error metric: size mismatch");
  if (exact.empty())
    throw std::invalid_argument("error metric: empty input");
}
}  // namespace

double MeanAbsoluteError(std::span<const double> exact,
                         std::span<const double> approx) {
  CheckSpans(exact, approx);
  double sum = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i)
    sum += std::abs(exact[i] - approx[i]);
  return sum / static_cast<double>(exact.size());
}

double MeanSquaredError(std::span<const double> exact,
                        std::span<const double> approx) {
  CheckSpans(exact, approx);
  double sum = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double d = exact[i] - approx[i];
    sum += d * d;
  }
  return sum / static_cast<double>(exact.size());
}

double RootMeanSquaredError(std::span<const double> exact,
                            std::span<const double> approx) {
  return std::sqrt(MeanSquaredError(exact, approx));
}

double MeanRelativeErrorDistance(std::span<const double> exact,
                                 std::span<const double> approx) {
  CheckSpans(exact, approx);
  double sum = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double abs_err = std::abs(exact[i] - approx[i]);
    if (exact[i] == 0.0) {
      sum += abs_err;  // relative-to-1 convention at exact == 0
    } else {
      sum += abs_err / std::abs(exact[i]);
    }
  }
  return sum / static_cast<double>(exact.size());
}

double ErrorRate(std::span<const double> exact,
                 std::span<const double> approx) {
  CheckSpans(exact, approx);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < exact.size(); ++i)
    if (exact[i] != approx[i]) ++mismatches;
  return static_cast<double>(mismatches) / static_cast<double>(exact.size());
}

double WorstCaseError(std::span<const double> exact,
                      std::span<const double> approx) {
  CheckSpans(exact, approx);
  double worst = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i)
    worst = std::max(worst, std::abs(exact[i] - approx[i]));
  return worst;
}

double Psnr(std::span<const double> reference, std::span<const double> actual,
            double peak) {
  if (!(peak > 0.0)) throw std::invalid_argument("Psnr: peak must be > 0");
  const double mse = MeanSquaredError(reference, actual);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / mse);
}

void ErrorAccumulator::Add(double exact, double approx) noexcept {
  ++count_;
  const double err = exact - approx;
  const double abs_err = std::abs(err);
  if (abs_err != 0.0) ++mismatches_;
  abs_sum_ += abs_err;
  sq_sum_ += err * err;
  rel_sum_ += exact == 0.0 ? abs_err : abs_err / std::abs(exact);
  signed_sum_ += err;
  worst_ = std::max(worst_, abs_err);
}

void ErrorAccumulator::Merge(const ErrorAccumulator& other) noexcept {
  count_ += other.count_;
  mismatches_ += other.mismatches_;
  abs_sum_ += other.abs_sum_;
  sq_sum_ += other.sq_sum_;
  rel_sum_ += other.rel_sum_;
  signed_sum_ += other.signed_sum_;
  worst_ = std::max(worst_, other.worst_);
}

double ErrorAccumulator::Mae() const noexcept {
  return count_ == 0 ? 0.0 : abs_sum_ / static_cast<double>(count_);
}

double ErrorAccumulator::Mse() const noexcept {
  return count_ == 0 ? 0.0 : sq_sum_ / static_cast<double>(count_);
}

double ErrorAccumulator::Mred() const noexcept {
  return count_ == 0 ? 0.0 : rel_sum_ / static_cast<double>(count_);
}

double ErrorAccumulator::ErrorRate() const noexcept {
  return count_ == 0
             ? 0.0
             : static_cast<double>(mismatches_) / static_cast<double>(count_);
}

double ErrorAccumulator::MeanError() const noexcept {
  return count_ == 0 ? 0.0 : signed_sum_ / static_cast<double>(count_);
}

}  // namespace axdse::metrics
