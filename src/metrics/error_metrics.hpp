#pragma once
// Error metrics used throughout the project.
//
// The paper's accuracy metric (its Eq. 2) is the Mean Absolute Error between
// the outputs of the precise and the approximated run. Operator
// characterization (Tables I/II) additionally reports the Mean Relative Error
// Distance (MRED), the standard metric in the approximate-arithmetic
// literature.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace axdse::metrics {

/// One-shot comparison of two equally sized output vectors.
/// All functions throw std::invalid_argument on size mismatch or empty input.

/// Mean Absolute Error: (1/N) * sum |exact_i - approx_i|  (paper Eq. 2).
double MeanAbsoluteError(std::span<const double> exact,
                         std::span<const double> approx);

/// Mean Squared Error.
double MeanSquaredError(std::span<const double> exact,
                        std::span<const double> approx);

/// sqrt(MSE).
double RootMeanSquaredError(std::span<const double> exact,
                            std::span<const double> approx);

/// Mean Relative Error Distance: (1/N) * sum |exact_i - approx_i| / |exact_i|,
/// where terms with exact_i == 0 contribute |approx_i| (the convention used by
/// EvoApproxLib characterization: relative to 1 when the exact value is 0 and
/// the approx differs, 0 when both are 0).
double MeanRelativeErrorDistance(std::span<const double> exact,
                                 std::span<const double> approx);

/// Fraction of positions whose values differ.
double ErrorRate(std::span<const double> exact, std::span<const double> approx);

/// max |exact_i - approx_i|.
double WorstCaseError(std::span<const double> exact,
                      std::span<const double> approx);

/// Peak Signal-to-Noise Ratio in dB: 10 * log10(peak^2 / MSE). Returns
/// +infinity when the signals are identical (MSE == 0). `peak` is the
/// maximum representable signal value (e.g. 255 for 8-bit images); throws
/// std::invalid_argument when peak <= 0 or on size mismatch/empty input.
double Psnr(std::span<const double> reference, std::span<const double> actual,
            double peak);

/// Streaming accumulator computing all supported metrics in one pass.
/// Suitable for exhaustive operator characterization where materializing the
/// full output vectors (2^16 .. 2^64 pairs) is not an option.
class ErrorAccumulator {
 public:
  /// Adds one (exact, approx) observation.
  void Add(double exact, double approx) noexcept;

  /// Merges another accumulator.
  void Merge(const ErrorAccumulator& other) noexcept;

  std::size_t Count() const noexcept { return count_; }
  /// MAE over the observations added so far; 0 when empty.
  double Mae() const noexcept;
  /// MSE over the observations; 0 when empty.
  double Mse() const noexcept;
  /// MRED (see MeanRelativeErrorDistance for the zero convention).
  double Mred() const noexcept;
  /// Fraction of mismatching observations.
  double ErrorRate() const noexcept;
  /// Largest absolute error seen.
  double WorstCase() const noexcept { return worst_; }
  /// Mean error with sign (bias); positive means approx underestimates.
  double MeanError() const noexcept;

 private:
  std::size_t count_ = 0;
  std::size_t mismatches_ = 0;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double rel_sum_ = 0.0;
  double signed_sum_ = 0.0;
  double worst_ = 0.0;
};

}  // namespace axdse::metrics
