#include "report/campaign.hpp"

#include <locale>
#include <sstream>

#include "report/export.hpp"
#include "util/ascii_table.hpp"
#include "util/csv.hpp"
#include "util/number_format.hpp"

namespace axdse::report {

namespace {

using util::ShortestDouble;

void WritePoint(std::ostream& out, const dse::ParetoPoint& point) {
  out << "{\"label\":\"" << JsonEscape(point.label) << "\",\"config\":\""
      << JsonEscape(point.config.ToString())
      << "\",\"delta_power_mw\":" << JsonNum(point.measurement.delta_power_mw)
      << ",\"delta_time_ns\":" << JsonNum(point.measurement.delta_time_ns)
      << ",\"delta_acc\":" << JsonNum(point.measurement.delta_acc) << "}";
}

void WriteStages(std::ostream& out,
                 const std::vector<workloads::StageOpCounts>& stages) {
  out << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"stage\":\"" << JsonEscape(stages[i].stage)
        << "\",\"precise_adds\":" << stages[i].counts.precise_adds
        << ",\"approx_adds\":" << stages[i].counts.approx_adds
        << ",\"precise_muls\":" << stages[i].counts.precise_muls
        << ",\"approx_muls\":" << stages[i].counts.approx_muls << "}";
  }
  out << "]";
}

/// Compact one-cell CSV form of the per-stage counts:
/// "dct=pa:aa:pm:am|quantize=..." — empty for single-stage kernels.
std::string StageCountsCell(
    const std::vector<workloads::StageOpCounts>& stages) {
  std::string cell;
  for (const workloads::StageOpCounts& stage : stages) {
    if (!cell.empty()) cell.push_back('|');
    cell += stage.stage;
    cell.push_back('=');
    cell += std::to_string(stage.counts.precise_adds) + ":" +
            std::to_string(stage.counts.approx_adds) + ":" +
            std::to_string(stage.counts.precise_muls) + ":" +
            std::to_string(stage.counts.approx_muls);
  }
  return cell;
}

void WriteCell(std::ostream& out, const dse::CampaignCell& cell) {
  out << "{\"request\":\"" << JsonEscape(cell.request.ToString())
      << "\",\"label\":\"" << JsonEscape(cell.request.DisplayName())
      << "\",\"kernel\":\"" << JsonEscape(cell.kernel_name)
      << "\",\"agent\":\"" << dse::ToString(cell.request.agent_kind)
      << "\",\"action_space\":\"" << dse::ToString(cell.request.action_space)
      << "\",\"cache_mode\":\"" << dse::ToString(cell.request.cache_mode)
      << "\",\"acc_threshold\":" << JsonNum(cell.reward.acc_threshold)
      << ",\"power_threshold\":" << JsonNum(cell.reward.power_threshold)
      << ",\"time_threshold\":" << JsonNum(cell.reward.time_threshold)
      << ",\"feasible_fraction\":" << JsonNum(cell.feasible_fraction)
      << ",\"modal_adder\":\"" << JsonEscape(cell.modal_adder)
      << "\",\"modal_multiplier\":\"" << JsonEscape(cell.modal_multiplier)
      << "\",\"solution_delta_power\":";
  WriteSummaryJson(out, cell.solution_delta_power);
  out << ",\"solution_delta_time\":";
  WriteSummaryJson(out, cell.solution_delta_time);
  out << ",\"solution_delta_acc\":";
  WriteSummaryJson(out, cell.solution_delta_acc);
  out << ",\"steps\":";
  WriteSummaryJson(out, cell.steps);
  out << ",\"cache\":{\"mode\":\"" << dse::ToString(cell.cache.mode)
      << "\",\"distinct_evaluations\":" << cell.cache.distinct_evaluations
      << ",\"executed_runs\":" << cell.cache.executed_runs
      << ",\"saved_runs\":" << cell.cache.saved_runs
      << ",\"local_hits\":" << cell.cache.local_hits
      << ",\"shared_hits\":" << cell.cache.shared_hits
      << ",\"surrogate_hits\":" << cell.cache.surrogate_hits
      << ",\"deferred_runs\":" << cell.cache.deferred_runs << "}";
  out << ",\"runs\":[";
  for (std::size_t s = 0; s < cell.runs.size(); ++s) {
    const dse::CampaignSeedRun& run = cell.runs[s];
    if (s > 0) out << ",";
    out << "{\"seed\":" << run.seed << ",\"steps\":" << run.steps
        << ",\"stop\":\"" << JsonEscape(run.stop)
        << "\",\"cumulative_reward\":" << JsonNum(run.cumulative_reward)
        << ",\"delta_power_mw\":"
        << JsonNum(run.solution_measurement.delta_power_mw)
        << ",\"delta_time_ns\":"
        << JsonNum(run.solution_measurement.delta_time_ns)
        << ",\"delta_acc\":" << JsonNum(run.solution_measurement.delta_acc)
        << ",\"adder\":\"" << JsonEscape(run.adder) << "\",\"multiplier\":\""
        << JsonEscape(run.multiplier)
        << "\",\"vars_selected\":" << run.solution.SelectedCount()
        << ",\"num_vars\":" << run.solution.NumVariables()
        << ",\"feasible\":" << (run.feasible ? "true" : "false")
        << ",\"objective\":" << JsonNum(run.objective)
        << ",\"kernel_runs\":" << run.kernel_runs
        << ",\"cache_hits\":" << run.cache_hits
        << ",\"surrogate_hits\":" << run.surrogate_hits
        << ",\"kernel_runs_deferred\":" << run.kernel_runs_deferred
        << ",\"stages\":";
    WriteStages(out, run.stage_counts);
    out << "}";
  }
  out << "]}";
}

}  // namespace

void WriteCampaignJson(std::ostream& out, const dse::CampaignResult& result) {
  out.imbue(std::locale::classic());  // locale-independent numbers
  out << "{\"schema\":\"axdse-campaign-v1\",\"spec\":\""
      << JsonEscape(result.spec.ToString())
      << "\",\"num_cells\":" << result.num_cells
      << ",\"cells_completed\":" << result.cells.size()
      << ",\"pending_cells\":" << result.pending_cells
      << ",\"unfinished_jobs\":" << result.unfinished_jobs
      << ",\"complete\":" << (result.Complete() ? "true" : "false")
      << ",\"total_runs\":" << result.TotalRuns()
      << ",\"total_steps\":" << result.TotalSteps() << ",\"best\":[";
  for (std::size_t b = 0; b < result.best.size(); ++b) {
    const dse::CampaignBest& best = result.best[b];
    if (b > 0) out << ",";
    out << "{\"kernel\":\"" << JsonEscape(best.kernel) << "\",\"cell\":\""
        << JsonEscape(best.cell) << "\",\"agent\":\"" << JsonEscape(best.agent)
        << "\",\"seed\":" << best.seed
        << ",\"feasible\":" << (best.feasible ? "true" : "false")
        << ",\"objective\":" << JsonNum(best.objective) << ",\"config\":\""
        << JsonEscape(best.config.ToString())
        << "\",\"delta_power_mw\":" << JsonNum(best.measurement.delta_power_mw)
        << ",\"delta_time_ns\":" << JsonNum(best.measurement.delta_time_ns)
        << ",\"delta_acc\":" << JsonNum(best.measurement.delta_acc) << "}";
  }
  out << "],\"pareto\":[";
  for (std::size_t f = 0; f < result.fronts.size(); ++f) {
    const dse::CampaignFront& front = result.fronts[f];
    if (f > 0) out << ",";
    out << "{\"kernel\":\"" << JsonEscape(front.kernel)
        << "\",\"seen\":" << front.front.SeenCount() << ",\"points\":[";
    const auto& points = front.front.Points();
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (p > 0) out << ",";
      WritePoint(out, points[p]);
    }
    out << "]}";
  }
  out << "],\"cells\":[";
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    if (c > 0) out << ",";
    WriteCell(out, result.cells[c]);
  }
  out << "]}\n";
}

void WriteCampaignCsv(std::ostream& out, const dse::CampaignResult& result) {
  out.imbue(std::locale::classic());  // locale-independent numbers
  util::CsvWriter csv(out);
  csv.WriteRow({"cell", "label", "kernel", "agent", "action_space",
                "cache_mode", "acc_factor", "seed", "steps", "stop",
                "cumulative_reward", "delta_power_mw", "delta_time_ns",
                "delta_acc", "adder", "multiplier", "vars_selected",
                "num_vars", "feasible", "objective", "kernel_runs",
                "cache_hits", "surrogate_hits", "kernel_runs_deferred",
                "stage_counts"});
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const dse::CampaignCell& cell = result.cells[c];
    for (const dse::CampaignSeedRun& run : cell.runs) {
      csv.WriteRow(
          {std::to_string(c), cell.request.DisplayName(), cell.kernel_name,
           dse::ToString(cell.request.agent_kind),
           dse::ToString(cell.request.action_space),
           dse::ToString(cell.request.cache_mode),
           ShortestDouble(cell.request.thresholds.accuracy_factor),
           std::to_string(run.seed), std::to_string(run.steps), run.stop,
           ShortestDouble(run.cumulative_reward),
           ShortestDouble(run.solution_measurement.delta_power_mw),
           ShortestDouble(run.solution_measurement.delta_time_ns),
           ShortestDouble(run.solution_measurement.delta_acc), run.adder,
           run.multiplier, std::to_string(run.solution.SelectedCount()),
           std::to_string(run.solution.NumVariables()),
           run.feasible ? "1" : "0", ShortestDouble(run.objective),
           std::to_string(run.kernel_runs),
           std::to_string(run.cache_hits),
           std::to_string(run.surrogate_hits),
           std::to_string(run.kernel_runs_deferred),
           StageCountsCell(run.stage_counts)});
    }
  }
}

std::string RenderCampaignSummary(const dse::CampaignResult& result) {
  std::ostringstream out;
  {
    util::AsciiTable table("Campaign fronts — per-kernel Pareto and best "
                           "feasible point");
    table.SetHeader({"Kernel", "front", "seen", "best cell", "seed",
                     "objective", "ΔPower (mW)", "ΔTime (ns)", "Δacc"});
    for (std::size_t f = 0; f < result.fronts.size(); ++f) {
      const dse::CampaignFront& front = result.fronts[f];
      const dse::CampaignBest& best = result.best[f];
      table.AddRow({front.kernel, std::to_string(front.front.Size()),
                    std::to_string(front.front.SeenCount()),
                    best.cell + (best.feasible ? "" : " (infeasible)"),
                    std::to_string(best.seed),
                    util::AsciiTable::Num(best.objective),
                    util::AsciiTable::Num(best.measurement.delta_power_mw, 1),
                    util::AsciiTable::Num(best.measurement.delta_time_ns, 1),
                    util::AsciiTable::Num(best.measurement.delta_acc, 2)});
    }
    out << table.Render();
  }
  {
    util::AsciiTable table("Campaign cells (" +
                           std::to_string(result.cells.size()) + " of " +
                           std::to_string(result.num_cells) + ")");
    table.SetHeader({"Cell", "seeds", "ΔPower mean", "ΔTime mean",
                     "Δacc mean", "feasible", "adder", "multiplier"});
    for (const dse::CampaignCell& cell : result.cells)
      table.AddRow(
          {cell.request.DisplayName(), std::to_string(cell.runs.size()),
           util::AsciiTable::Num(cell.solution_delta_power.mean, 1),
           util::AsciiTable::Num(cell.solution_delta_time.mean, 1),
           util::AsciiTable::Num(cell.solution_delta_acc.mean, 2),
           util::AsciiTable::Num(cell.feasible_fraction * 100.0, 0) + "%",
           cell.modal_adder, cell.modal_multiplier});
    out << table.Render();
  }
  return out.str();
}

std::string CampaignJson(const dse::CampaignResult& result) {
  std::ostringstream out;
  WriteCampaignJson(out, result);
  return out.str();
}

std::string CampaignCsv(const dse::CampaignResult& result) {
  std::ostringstream out;
  WriteCampaignCsv(out, result);
  return out.str();
}

}  // namespace axdse::report
