#pragma once
// Machine-readable campaign exports: the cross-run view of a grid sweep —
// per-kernel Pareto fronts and best-point tables plus every cell's
// multi-seed aggregates — as a JSON document (schema "axdse-campaign-v1")
// and a flat CSV (one row per cell x seed). Both emitters are fully
// deterministic (fixed field order, shortest-round-trip doubles), so a
// resumed campaign exports byte-identical documents to an uninterrupted
// one; they read only the measurement fields campaign chunk snapshots
// round-trip (the deltas and the precise power/time baselines).

#include <ostream>
#include <string>

#include "dse/campaign.hpp"

namespace axdse::report {

/// Writes the campaign as a JSON document:
///   {"schema":"axdse-campaign-v1","spec":...,"num_cells":...,
///    "complete":...,"best":[...],"pareto":[...],"cells":[...]}
/// `best` holds one entry per kernel (highest BaselineObjective), `pareto`
/// one front per kernel (points carry their provenance label and
/// configuration), `cells` the per-cell aggregates and seed-runs in grid
/// order.
void WriteCampaignJson(std::ostream& out, const dse::CampaignResult& result);

/// Writes one CSV row per (cell, seed-run), prefixed by a header row.
/// Columns: cell, label, kernel, agent, action_space, cache_mode,
/// acc_factor, seed, steps, stop, cumulative_reward, delta_power_mw,
/// delta_time_ns, delta_acc, adder, multiplier, vars_selected, num_vars,
/// feasible, objective, kernel_runs, cache_hits.
void WriteCampaignCsv(std::ostream& out, const dse::CampaignResult& result);

/// Human-readable summary: the per-kernel front/best table plus one row per
/// cell (mean solution deltas, feasibility, modal operators).
std::string RenderCampaignSummary(const dse::CampaignResult& result);

/// Convenience string forms of the writers above.
std::string CampaignJson(const dse::CampaignResult& result);
std::string CampaignCsv(const dse::CampaignResult& result);

}  // namespace axdse::report
