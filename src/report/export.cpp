#include "report/export.hpp"

#include <cmath>
#include <cstdio>
#include <locale>
#include <sstream>

#include "rl/trainer.hpp"
#include "util/csv.hpp"
#include "util/number_format.hpp"

namespace axdse::report {

namespace {
using util::ShortestDouble;
}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// JSON numbers cannot be inf/nan; emit those as strings.
std::string JsonNum(double value) {
  if (std::isfinite(value)) return ShortestDouble(value);
  std::string quoted("\"");
  quoted += ShortestDouble(value);
  quoted += '"';
  return quoted;
}

void WriteSummaryJson(std::ostream& out, const util::Summary& summary) {
  out << "{\"count\":" << summary.count << ",\"mean\":" << JsonNum(summary.mean)
      << ",\"stddev\":" << JsonNum(summary.stddev)
      << ",\"min\":" << JsonNum(summary.min)
      << ",\"max\":" << JsonNum(summary.max) << "}";
}

namespace {

void WriteVotes(std::ostream& out,
                const std::map<std::string, std::size_t>& votes) {
  out << "{";
  bool first = true;
  for (const auto& [code, count] : votes) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(code) << "\":" << count;
  }
  out << "}";
}

void WriteStages(std::ostream& out,
                 const std::vector<workloads::StageOpCounts>& stages) {
  out << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"stage\":\"" << JsonEscape(stages[i].stage)
        << "\",\"precise_adds\":" << stages[i].counts.precise_adds
        << ",\"approx_adds\":" << stages[i].counts.approx_adds
        << ",\"precise_muls\":" << stages[i].counts.precise_muls
        << ",\"approx_muls\":" << stages[i].counts.approx_muls << "}";
  }
  out << "]";
}

/// Compact one-cell CSV form of the per-stage counts:
/// "dct=pa:aa:pm:am|quantize=..." — empty for single-stage kernels.
std::string StageCountsCell(
    const std::vector<workloads::StageOpCounts>& stages) {
  std::string cell;
  for (const workloads::StageOpCounts& stage : stages) {
    if (!cell.empty()) cell.push_back('|');
    cell += stage.stage;
    cell.push_back('=');
    cell += std::to_string(stage.counts.precise_adds) + ":" +
            std::to_string(stage.counts.approx_adds) + ":" +
            std::to_string(stage.counts.precise_muls) + ":" +
            std::to_string(stage.counts.approx_muls);
  }
  return cell;
}

void WriteRun(std::ostream& out, const dse::ExplorationResult& run,
              std::uint64_t seed) {
  const instrument::Measurement& m = run.solution_measurement;
  out << "{\"seed\":" << seed << ",\"steps\":" << run.steps << ",\"stop\":\""
      << rl::ToString(run.stop_reason) << "\",\"cumulative_reward\":"
      << JsonNum(run.cumulative_reward)
      << ",\"episodes\":" << run.episodes
      << ",\"delta_power_mw\":" << JsonNum(m.delta_power_mw)
      << ",\"delta_time_ns\":" << JsonNum(m.delta_time_ns)
      << ",\"delta_acc\":" << JsonNum(m.delta_acc) << ",\"adder\":\""
      << JsonEscape(run.solution_adder) << "\",\"multiplier\":\""
      << JsonEscape(run.solution_multiplier)
      << "\",\"vars_selected\":" << run.solution.SelectedCount()
      << ",\"num_vars\":" << run.solution.NumVariables()
      << ",\"kernel_runs\":" << run.kernel_runs
      << ",\"cache_hits\":" << run.cache_hits
      << ",\"surrogate_hits\":" << run.surrogate_hits
      << ",\"kernel_runs_deferred\":" << run.kernel_runs_deferred
      << ",\"stages\":";
  WriteStages(out, run.stage_counts);
  out << "}";
}

void WriteCacheUsage(std::ostream& out, const dse::CacheUsage& cache) {
  out << "{\"mode\":\"" << dse::ToString(cache.mode)
      << "\",\"distinct_evaluations\":" << cache.distinct_evaluations
      << ",\"executed_runs\":" << cache.executed_runs
      << ",\"saved_runs\":" << cache.saved_runs
      << ",\"local_hits\":" << cache.local_hits
      << ",\"shared_hits\":" << cache.shared_hits
      << ",\"surrogate_hits\":" << cache.surrogate_hits
      << ",\"deferred_runs\":" << cache.deferred_runs << "}";
}

}  // namespace

void WriteBatchCsv(std::ostream& out, const dse::BatchResult& batch) {
  // Numeric output must not vary with the global locale (no digit
  // grouping, '.' decimal point): these are machine-readable documents.
  out.imbue(std::locale::classic());
  util::CsvWriter csv(out);
  csv.WriteRow({"request", "label", "kernel", "seed", "steps", "stop",
                "cumulative_reward", "episodes", "delta_power_mw",
                "delta_time_ns", "delta_acc", "adder", "multiplier",
                "vars_selected", "num_vars", "feasible", "kernel_runs",
                "cache_hits", "surrogate_hits", "kernel_runs_deferred",
                "cache_mode", "request_executed_runs", "request_saved_runs",
                "stage_counts"});
  for (std::size_t r = 0; r < batch.results.size(); ++r) {
    const dse::RequestResult& result = batch.results[r];
    for (std::size_t s = 0; s < result.runs.size(); ++s) {
      const dse::ExplorationResult& run = result.runs[s];
      const instrument::Measurement& m = run.solution_measurement;
      csv.WriteRow({std::to_string(r), result.request.DisplayName(),
                    result.kernel_name,
                    std::to_string(result.request.seed + s),
                    std::to_string(run.steps), rl::ToString(run.stop_reason),
                    ShortestDouble(run.cumulative_reward),
                    std::to_string(run.episodes),
                    ShortestDouble(m.delta_power_mw),
                    ShortestDouble(m.delta_time_ns),
                    ShortestDouble(m.delta_acc), run.solution_adder,
                    run.solution_multiplier,
                    std::to_string(run.solution.SelectedCount()),
                    std::to_string(run.solution.NumVariables()),
                    m.delta_acc <= result.reward.acc_threshold ? "1" : "0",
                    std::to_string(run.kernel_runs),
                    std::to_string(run.cache_hits),
                    std::to_string(run.surrogate_hits),
                    std::to_string(run.kernel_runs_deferred),
                    dse::ToString(result.cache.mode),
                    std::to_string(result.cache.executed_runs),
                    std::to_string(result.cache.saved_runs),
                    StageCountsCell(run.stage_counts)});
    }
  }
}

void WriteBatchJson(std::ostream& out, const dse::BatchResult& batch) {
  // Numeric output must not vary with the global locale (no digit
  // grouping, '.' decimal point): these are machine-readable documents.
  out.imbue(std::locale::classic());
  out << "{\"total_runs\":" << batch.TotalRuns()
      << ",\"total_steps\":" << batch.TotalSteps()
      << ",\"total_distinct_evaluations\":"
      << batch.TotalDistinctEvaluations()
      << ",\"total_executed_runs\":" << batch.TotalExecutedRuns()
      << ",\"total_saved_runs\":" << batch.TotalSavedRuns()
      << ",\"shared_caches\":[";
  for (std::size_t c = 0; c < batch.shared_caches.size(); ++c) {
    const dse::SharedCacheReport& report = batch.shared_caches[c];
    if (c > 0) out << ",";
    out << "{\"signature\":\"" << JsonEscape(report.signature)
        << "\",\"jobs\":" << report.jobs
        << ",\"hits\":" << report.stats.hits
        << ",\"misses\":" << report.stats.misses
        << ",\"inserts\":" << report.stats.inserts
        << ",\"rejected\":" << report.stats.rejected
        << ",\"size\":" << report.stats.size << "}";
  }
  out << "],\"requests\":[";
  for (std::size_t r = 0; r < batch.results.size(); ++r) {
    const dse::RequestResult& result = batch.results[r];
    if (r > 0) out << ",";
    out << "{\"request\":\"" << JsonEscape(result.request.ToString())
        << "\",\"label\":\"" << JsonEscape(result.request.DisplayName())
        << "\",\"kernel\":\"" << JsonEscape(result.kernel_name)
        << "\",\"acc_threshold\":" << JsonNum(result.reward.acc_threshold)
        << ",\"power_threshold\":" << JsonNum(result.reward.power_threshold)
        << ",\"time_threshold\":" << JsonNum(result.reward.time_threshold)
        << ",\"feasible_fraction\":" << JsonNum(result.feasible_fraction)
        << ",\"modal_adder\":\"" << JsonEscape(result.ModalAdder())
        << "\",\"modal_multiplier\":\""
        << JsonEscape(result.ModalMultiplier()) << "\",";
    out << "\"solution_delta_power\":";
    WriteSummaryJson(out, result.solution_delta_power);
    out << ",\"solution_delta_time\":";
    WriteSummaryJson(out, result.solution_delta_time);
    out << ",\"solution_delta_acc\":";
    WriteSummaryJson(out, result.solution_delta_acc);
    out << ",\"steps\":";
    WriteSummaryJson(out, result.steps);
    out << ",\"cache\":";
    WriteCacheUsage(out, result.cache);
    out << ",\"adder_votes\":";
    WriteVotes(out, result.adder_votes);
    out << ",\"multiplier_votes\":";
    WriteVotes(out, result.multiplier_votes);
    out << ",\"runs\":[";
    for (std::size_t s = 0; s < result.runs.size(); ++s) {
      if (s > 0) out << ",";
      WriteRun(out, result.runs[s], result.request.seed + s);
    }
    out << "]}";
  }
  out << "]}\n";
}

std::string BatchCsv(const dse::BatchResult& batch) {
  std::ostringstream out;
  WriteBatchCsv(out, batch);
  return out.str();
}

std::string BatchJson(const dse::BatchResult& batch) {
  std::ostringstream out;
  WriteBatchJson(out, batch);
  return out.str();
}

}  // namespace axdse::report
