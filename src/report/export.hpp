#pragma once
// Machine-readable exports of Engine batch results: a flat CSV (one row per
// seed-run, for spreadsheets and plotting) and a structured JSON document
// (requests, per-seed runs, aggregates, operator votes). Both emitters are
// fully deterministic — fixed field order, shortest-round-trip double
// formatting — so batches run with different worker counts export
// byte-identical documents (the Engine determinism tests rely on this).

#include <ostream>
#include <string>

#include "dse/engine.hpp"

namespace axdse::report {

/// JSON string escaping shared by every exporter in this library.
std::string JsonEscape(const std::string& text);

/// Deterministic JSON number: shortest-round-trip formatting; inf/NaN are
/// emitted as quoted strings (JSON has no non-finite numbers).
std::string JsonNum(double value);

/// Writes a util::Summary as a JSON object
/// {"count":..,"mean":..,"stddev":..,"min":..,"max":..}.
void WriteSummaryJson(std::ostream& out, const util::Summary& summary);

/// Writes one CSV row per seed-run, prefixed by a header row. Columns:
/// request, label, kernel, seed, steps, stop, cumulative_reward, episodes,
/// delta_power_mw, delta_time_ns, delta_acc, adder, multiplier,
/// vars_selected, num_vars, feasible, kernel_runs, cache_hits, cache_mode,
/// request_executed_runs, request_saved_runs. The per-run kernel_runs /
/// cache_hits columns are the deterministic logical view (identical across
/// cache modes); the request_* columns aggregate the request's actual cache
/// economics and repeat on each of its rows.
void WriteBatchCsv(std::ostream& out, const dse::BatchResult& batch);

/// Writes the batch as a JSON document: batch totals (including
/// total_executed_runs / total_saved_runs and per-group shared_caches
/// stats), then an array of request objects, each with the serialized
/// request string, resolved kernel name, thresholds, per-metric summaries,
/// a "cache" usage object, operator votes, and the per-seed run array.
void WriteBatchJson(std::ostream& out, const dse::BatchResult& batch);

/// Convenience string forms of the writers above.
std::string BatchCsv(const dse::BatchResult& batch);
std::string BatchJson(const dse::BatchResult& batch);

}  // namespace axdse::report
