#include "report/figures.hpp"

#include <locale>
#include <stdexcept>

#include "util/ascii_table.hpp"
#include "util/csv.hpp"
#include "util/statistics.hpp"

namespace axdse::report {

namespace {
using util::AsciiTable;
}  // namespace

TraceSeries ExtractSeries(const std::vector<dse::StepRecord>& trace) {
  TraceSeries series;
  series.delta_power.reserve(trace.size());
  series.delta_time.reserve(trace.size());
  series.delta_acc.reserve(trace.size());
  for (const dse::StepRecord& r : trace) {
    series.delta_power.push_back(r.measurement.delta_power_mw);
    series.delta_time.push_back(r.measurement.delta_time_ns);
    series.delta_acc.push_back(r.measurement.delta_acc);
  }
  return series;
}

std::string RenderExplorationFigure(const std::string& title,
                                    const std::vector<dse::StepRecord>& trace,
                                    std::size_t stride) {
  if (stride == 0)
    throw std::invalid_argument("RenderExplorationFigure: stride == 0");
  if (trace.size() < 2)
    throw std::invalid_argument("RenderExplorationFigure: trace too short");
  const TraceSeries series = ExtractSeries(trace);

  AsciiTable table(title);
  table.SetHeader({"step", "Power (Δ mW)", "Comp. Time (Δ ns)",
                   "Accuracy (Δ MAE)"});
  for (std::size_t i = 0; i < trace.size();
       i += stride) {
    table.AddRow({std::to_string(trace[i].step),
                  AsciiTable::Num(series.delta_power[i], 3),
                  AsciiTable::Num(series.delta_time[i], 3),
                  AsciiTable::Num(series.delta_acc[i], 4)});
  }
  // Always include the final step so the end state is visible.
  if ((trace.size() - 1) % stride != 0) {
    const std::size_t i = trace.size() - 1;
    table.AddSeparator();
    table.AddRow({std::to_string(trace[i].step),
                  AsciiTable::Num(series.delta_power[i], 3),
                  AsciiTable::Num(series.delta_time[i], 3),
                  AsciiTable::Num(series.delta_acc[i], 4)});
  }
  std::string out = table.Render();

  const util::LinearFit power_fit = util::FitLineIndexed(series.delta_power);
  const util::LinearFit time_fit = util::FitLineIndexed(series.delta_time);
  const util::LinearFit acc_fit = util::FitLineIndexed(series.delta_acc);
  AsciiTable trends("Trend lines (OLS over all steps)");
  trends.SetHeader({"series", "slope/step", "intercept", "R^2"});
  const auto trend_row = [&](const std::string& name,
                             const util::LinearFit& fit) {
    trends.AddRow({name, AsciiTable::Num(fit.slope, 5),
                   AsciiTable::Num(fit.intercept, 3),
                   AsciiTable::Num(fit.r_squared, 4)});
  };
  trend_row("Power", power_fit);
  trend_row("Comp. Time", time_fit);
  trend_row("Accuracy", acc_fit);
  out += trends.Render();
  return out;
}

std::string RenderRewardFigure(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& runs,
    std::size_t bin_size) {
  if (runs.empty())
    throw std::invalid_argument("RenderRewardFigure: no runs");
  std::vector<std::vector<double>> binned;
  std::size_t max_bins = 0;
  for (const auto& [name, rewards] : runs) {
    binned.push_back(util::BinnedMeans(rewards, bin_size));
    max_bins = std::max(max_bins, binned.back().size());
  }
  AsciiTable table(title);
  std::vector<std::string> header = {"steps"};
  for (const auto& [name, rewards] : runs) header.push_back(name);
  table.SetHeader(std::move(header));
  for (std::size_t b = 0; b < max_bins; ++b) {
    std::vector<std::string> row = {
        std::to_string(b * bin_size) + "-" +
        std::to_string((b + 1) * bin_size)};
    for (const auto& series : binned)
      row.push_back(b < series.size() ? AsciiTable::Num(series[b], 3) : "");
    table.AddRow(std::move(row));
  }
  return table.Render();
}

void WriteTraceCsv(std::ostream& out,
                   const std::vector<dse::StepRecord>& trace) {
  out.imbue(std::locale::classic());  // locale-independent numbers
  util::CsvWriter csv(out);
  csv.WriteRow({"step", "action", "reward", "cumulative_reward",
                "delta_power_mw", "delta_time_ns", "delta_acc", "adder_index",
                "multiplier_index", "selected_variables"});
  for (const dse::StepRecord& r : trace) {
    csv.WriteNumericRow({static_cast<double>(r.step),
                         static_cast<double>(r.action), r.reward,
                         r.cumulative_reward, r.measurement.delta_power_mw,
                         r.measurement.delta_time_ns, r.measurement.delta_acc,
                         static_cast<double>(r.config.AdderIndex()),
                         static_cast<double>(r.config.MultiplierIndex()),
                         static_cast<double>(r.config.SelectedCount())});
  }
}

}  // namespace axdse::report
