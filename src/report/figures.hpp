#pragma once
// Figure reproductions as text/CSV: the paper's Figure 2/3 (per-step ΔPower,
// ΔComp.Time, ΔAccuracy evolution with trend lines) and Figure 4 (average
// reward per 100-step bin).

#include <ostream>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "util/linear_regression.hpp"

namespace axdse::report {

/// Extracted series from an exploration trace.
struct TraceSeries {
  std::vector<double> delta_power;
  std::vector<double> delta_time;
  std::vector<double> delta_acc;
};

/// Pulls the three objective series out of a trace.
TraceSeries ExtractSeries(const std::vector<dse::StepRecord>& trace);

/// Renders a Figure 2/3-style summary: series sampled every `stride` steps
/// plus OLS trend lines (slope/intercept/R^2) per objective.
std::string RenderExplorationFigure(const std::string& title,
                                    const std::vector<dse::StepRecord>& trace,
                                    std::size_t stride);

/// Renders Figure 4: average reward per `bin_size`-step bin, one column per
/// labelled run (the paper shows MatMul 10x10 next to FIR 100).
std::string RenderRewardFigure(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& runs,
    std::size_t bin_size);

/// Writes the full trace as CSV (step, action, reward, cumulative reward,
/// deltas, operator indices, #selected variables) for offline plotting.
void WriteTraceCsv(std::ostream& out, const std::vector<dse::StepRecord>& trace);

}  // namespace axdse::report
