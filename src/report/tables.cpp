#include "report/tables.hpp"

#include <functional>
#include <stdexcept>

#include "rl/trainer.hpp"
#include "util/ascii_table.hpp"

namespace axdse::report {

namespace {
using util::AsciiTable;

void CheckMeasured(std::size_t specs, std::size_t measured) {
  if (measured != 0 && measured != specs)
    throw std::invalid_argument(
        "render table: measured characterizations must match spec count");
}
}  // namespace

std::string RenderAdderTable(
    const std::string& title, const std::vector<axc::AdderSpec>& specs,
    const std::vector<axc::Characterization>& measured) {
  CheckMeasured(specs.size(), measured.size());
  AsciiTable table(title);
  if (measured.empty()) {
    table.SetHeader({"operator", "Type", "MRED", "Power (mW)",
                     "Computation time (ns)"});
  } else {
    table.SetHeader({"operator", "Type", "MRED", "Power (mW)",
                     "Computation time (ns)", "measured MRED",
                     "behavioral model"});
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const axc::AdderSpec& s = specs[i];
    std::vector<std::string> row = {
        std::to_string(s.bits) + "-bit adder", s.type_code,
        AsciiTable::Num(s.published_mred_pct, 3), AsciiTable::Num(s.power_mw, 4),
        AsciiTable::Num(s.time_ns, 2)};
    if (!measured.empty()) {
      row.push_back(AsciiTable::Num(measured[i].mred * 100.0, 3));
      row.push_back(s.model->Describe());
    }
    table.AddRow(std::move(row));
  }
  return table.Render();
}

std::string RenderMultiplierTable(
    const std::string& title, const std::vector<axc::MultiplierSpec>& specs,
    const std::vector<axc::Characterization>& measured) {
  CheckMeasured(specs.size(), measured.size());
  AsciiTable table(title);
  if (measured.empty()) {
    table.SetHeader({"operator", "Type", "MRED", "Power (mW)",
                     "Computation time (ns)"});
  } else {
    table.SetHeader({"operator", "Type", "MRED", "Power (mW)",
                     "Computation time (ns)", "measured MRED",
                     "behavioral model"});
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const axc::MultiplierSpec& s = specs[i];
    std::vector<std::string> row = {
        std::to_string(s.bits) + "-bit multiplier", s.type_code,
        AsciiTable::Num(s.published_mred_pct, 3), AsciiTable::Num(s.power_mw, 4),
        AsciiTable::Num(s.time_ns, 3)};
    if (!measured.empty()) {
      row.push_back(AsciiTable::Num(measured[i].mred * 100.0, 3));
      row.push_back(s.model->Describe());
    }
    table.AddRow(std::move(row));
  }
  return table.Render();
}

std::string RenderTable3(const std::vector<Table3Column>& columns) {
  AsciiTable table(
      "TABLE III — EXPLORATION RESULTS FOR POWER, COMPUTATION TIME, AND "
      "ACCURACY");
  std::vector<std::string> header = {"Benchmarks"};
  for (const Table3Column& c : columns) header.push_back(c.benchmark);
  table.SetHeader(std::move(header));

  const auto add_metric_rows =
      [&](const std::string& metric,
          const std::function<double(const dse::ExplorationResult&)>& min_of,
          const std::function<double(const dse::ExplorationResult&)>& sol_of,
          const std::function<double(const dse::ExplorationResult&)>& max_of,
          int precision) {
        table.AddSeparator();
        std::vector<std::string> banner = {metric};
        banner.resize(columns.size() + 1);
        table.AddRow(std::move(banner));
        const auto row = [&](const std::string& label, const auto& getter) {
          std::vector<std::string> cells = {label};
          for (const Table3Column& c : columns)
            cells.push_back(AsciiTable::Num(getter(c.result), precision));
          table.AddRow(std::move(cells));
        };
        row("min", min_of);
        row("solution", sol_of);
        row("max", max_of);
      };

  add_metric_rows(
      "Δ Power Consumption (mW)",
      [](const dse::ExplorationResult& r) { return r.delta_power.min; },
      [](const dse::ExplorationResult& r) {
        return r.solution_measurement.delta_power_mw;
      },
      [](const dse::ExplorationResult& r) { return r.delta_power.max; }, 3);
  add_metric_rows(
      "Δ Computation time (ns)",
      [](const dse::ExplorationResult& r) { return r.delta_time.min; },
      [](const dse::ExplorationResult& r) {
        return r.solution_measurement.delta_time_ns;
      },
      [](const dse::ExplorationResult& r) { return r.delta_time.max; }, 3);
  add_metric_rows(
      "Accuracy degradation",
      [](const dse::ExplorationResult& r) { return r.delta_acc.min; },
      [](const dse::ExplorationResult& r) {
        return r.solution_measurement.delta_acc;
      },
      [](const dse::ExplorationResult& r) { return r.delta_acc.max; }, 4);

  table.AddSeparator();
  std::vector<std::string> config_banner = {"Configuration"};
  config_banner.resize(columns.size() + 1);
  table.AddRow(std::move(config_banner));
  std::vector<std::string> adder_row = {"Adder Type"};
  std::vector<std::string> mul_row = {"Multiplier Type"};
  for (const Table3Column& c : columns) {
    adder_row.push_back(c.result.solution_adder);
    mul_row.push_back(c.result.solution_multiplier);
  }
  table.AddRow(std::move(adder_row));
  table.AddRow(std::move(mul_row));
  return table.Render();
}

std::string RenderExplorationSummary(
    const std::vector<Table3Column>& columns) {
  AsciiTable table("Exploration diagnostics");
  table.SetHeader({"Benchmark", "steps", "stop", "cumulative reward",
                   "kernel runs", "cache hits", "selected vars"});
  for (const Table3Column& c : columns) {
    table.AddRow({c.benchmark, std::to_string(c.result.steps),
                  rl::ToString(c.result.stop_reason),
                  AsciiTable::Num(c.result.cumulative_reward, 1),
                  std::to_string(c.result.kernel_runs),
                  std::to_string(c.result.cache_hits),
                  std::to_string(c.result.solution.SelectedCount()) + "/" +
                      std::to_string(c.result.solution.NumVariables())});
  }
  return table.Render();
}

}  // namespace axdse::report
