#pragma once
// Paper-format table renderers: Table I (adders), Table II (multipliers),
// Table III (exploration results), plus the calibration comparison
// (published vs. measured MRED) that documents the EvoApproxLib substitution.

#include <string>
#include <vector>

#include "axc/catalog.hpp"
#include "axc/characterization.hpp"
#include "dse/explorer.hpp"

namespace axdse::report {

/// Renders Table I/II style rows for adders: operator, type, published MRED,
/// power, time — plus measured MRED of the behavioral substitute and the
/// model family, when `measured` has the same length as `specs` (pass empty
/// to omit the measured columns).
std::string RenderAdderTable(const std::string& title,
                             const std::vector<axc::AdderSpec>& specs,
                             const std::vector<axc::Characterization>& measured);

/// Same for multipliers.
std::string RenderMultiplierTable(
    const std::string& title, const std::vector<axc::MultiplierSpec>& specs,
    const std::vector<axc::Characterization>& measured);

/// One benchmark column of the paper's Table III.
struct Table3Column {
  std::string benchmark;  ///< e.g. "MatMul 10x10"
  dse::ExplorationResult result;
};

/// Renders Table III: min/solution/max for ΔPower, ΔTime, accuracy
/// degradation, then the selected adder/multiplier types, one column per
/// benchmark.
std::string RenderTable3(const std::vector<Table3Column>& columns);

/// Renders an exploration summary (steps, stop reason, cache stats,
/// thresholds) — diagnostic companion to Table III.
std::string RenderExplorationSummary(const std::vector<Table3Column>& columns);

}  // namespace axdse::report
