#include "rl/agents.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "rl/state_io.hpp"
#include "util/number_format.hpp"

namespace axdse::rl {

void ValidateAgentConfig(const AgentConfig& config) {
  if (!(config.alpha > 0.0 && config.alpha <= 1.0))
    throw std::invalid_argument("AgentConfig: alpha must be in (0,1]");
  if (!(config.gamma >= 0.0 && config.gamma <= 1.0))
    throw std::invalid_argument("AgentConfig: gamma must be in [0,1]");
}

void Agent::SaveState(std::ostream&) const {
  throw std::logic_error("Agent::SaveState: agent '" + Name() +
                         "' does not support checkpointing");
}

void Agent::LoadState(std::istream&) {
  throw std::logic_error("Agent::LoadState: agent '" + Name() +
                         "' does not support checkpointing");
}

namespace {
std::size_t EpsilonGreedy(const QTable& table, StateId state, double epsilon,
                          util::Rng& rng) {
  if (rng.Bernoulli(epsilon)) return rng.PickIndex(table.NumActions());
  return table.GreedyAction(state, &rng);
}

/// Shared prologue of every agent's saved state:
///   agent <name>
///   step <schedule_step>
///   rng <w0> <w1> <w2> <w3> <has_cached> <cached_gaussian>
void SaveAgentPrologue(std::ostream& out, const std::string& name,
                       std::size_t step, const util::Rng& rng) {
  out << "agent " << name << "\n";
  out << "step " << step << "\n";
  const util::RngState s = rng.GetState();
  out << "rng " << s.words[0] << " " << s.words[1] << " " << s.words[2] << " "
      << s.words[3] << " " << (s.has_cached_gaussian ? 1 : 0) << " "
      << util::ShortestDouble(s.cached_gaussian) << "\n";
}

/// Inverse of SaveAgentPrologue; verifies the stored agent name.
void LoadAgentPrologue(std::istream& in, const std::string& name,
                       std::size_t& step, util::RngState& rng) {
  const std::vector<std::string> agent = state_io::ReadTagged(in, "agent");
  state_io::RequireTokens(agent, 1, "agent state header");
  if (agent[0] != name)
    throw std::invalid_argument("agent state is for '" + agent[0] +
                                "', expected '" + name + "'");
  const std::vector<std::string> step_tokens = state_io::ReadTagged(in, "step");
  state_io::RequireTokens(step_tokens, 1, "agent step");
  step = static_cast<std::size_t>(
      util::ParseUnsignedToken(step_tokens[0], "agent step"));
  const std::vector<std::string> rng_tokens = state_io::ReadTagged(in, "rng");
  state_io::RequireTokens(rng_tokens, 6, "agent rng");
  for (int i = 0; i < 4; ++i)
    rng.words[static_cast<std::size_t>(i)] =
        util::ParseUnsignedToken(rng_tokens[static_cast<std::size_t>(i)],
                                 "agent rng word");
  const std::uint64_t has_cached =
      util::ParseUnsignedToken(rng_tokens[4], "agent rng cached flag");
  if (has_cached > 1)
    throw std::invalid_argument("agent rng cached flag must be 0 or 1");
  rng.has_cached_gaussian = has_cached == 1;
  rng.cached_gaussian =
      util::ParseDoubleToken(rng_tokens[5], "agent rng cached gaussian");
}
}  // namespace

// --------------------------------------------------------------------------
// QLearningAgent
// --------------------------------------------------------------------------

QLearningAgent::QLearningAgent(std::size_t num_actions,
                               const AgentConfig& config, std::uint64_t seed)
    : config_(config), table_(num_actions, config.initial_q), rng_(seed) {
  ValidateAgentConfig(config);
}

double QLearningAgent::CurrentEpsilon() const noexcept {
  return config_.epsilon.Value(step_);
}

std::size_t QLearningAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  return EpsilonGreedy(table_, state, eps, rng_);
}

void QLearningAgent::Observe(StateId state, std::size_t action, double reward,
                             StateId next_state, bool terminated) {
  const double bootstrap =
      terminated ? 0.0 : config_.gamma * table_.MaxValue(next_state);
  const double old_q = table_.Get(state, action);
  table_.Set(state, action,
             old_q + config_.alpha * (reward + bootstrap - old_q));
}

void QLearningAgent::SaveState(std::ostream& out) const {
  SaveAgentPrologue(out, Name(), step_, rng_);
  table_.SaveState(out);
}

void QLearningAgent::LoadState(std::istream& in) {
  std::size_t step = 0;
  util::RngState rng_state;
  LoadAgentPrologue(in, Name(), step, rng_state);
  QTable table(table_.NumActions(), config_.initial_q);
  table.LoadState(in);
  util::Rng rng(0);
  rng.SetState(rng_state);  // validates the generator words
  step_ = step;
  rng_ = rng;
  table_ = std::move(table);
}

// --------------------------------------------------------------------------
// SarsaAgent
// --------------------------------------------------------------------------

SarsaAgent::SarsaAgent(std::size_t num_actions, const AgentConfig& config,
                       std::uint64_t seed)
    : config_(config), table_(num_actions, config.initial_q), rng_(seed) {
  ValidateAgentConfig(config);
}

std::size_t SarsaAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  const std::size_t action = EpsilonGreedy(table_, state, eps, rng_);
  if (pending_.has_value()) {
    // Complete the delayed SARSA update now that a' is known.
    const Pending& p = *pending_;
    const double old_q = table_.Get(p.state, p.action);
    const double target =
        p.reward + config_.gamma * table_.Get(p.next_state, action);
    table_.Set(p.state, p.action, old_q + config_.alpha * (target - old_q));
    pending_.reset();
  }
  return action;
}

void SarsaAgent::Observe(StateId state, std::size_t action, double reward,
                         StateId next_state, bool terminated) {
  if (terminated) {
    const double old_q = table_.Get(state, action);
    table_.Set(state, action, old_q + config_.alpha * (reward - old_q));
    pending_.reset();
    return;
  }
  pending_ = Pending{state, action, reward, next_state};
}

void SarsaAgent::SaveState(std::ostream& out) const {
  SaveAgentPrologue(out, Name(), step_, rng_);
  table_.SaveState(out);
  if (pending_.has_value()) {
    out << "pending 1 " << pending_->state << " " << pending_->action << " "
        << util::ShortestDouble(pending_->reward) << " "
        << pending_->next_state << "\n";
  } else {
    out << "pending 0\n";
  }
}

void SarsaAgent::LoadState(std::istream& in) {
  std::size_t step = 0;
  util::RngState rng_state;
  LoadAgentPrologue(in, Name(), step, rng_state);
  QTable table(table_.NumActions(), config_.initial_q);
  table.LoadState(in);
  const std::vector<std::string> tokens = state_io::ReadTagged(in, "pending");
  std::optional<Pending> pending;
  if (tokens.empty())
    throw std::invalid_argument("sarsa pending: missing flag");
  if (tokens[0] == "1") {
    state_io::RequireTokens(tokens, 5, "sarsa pending");
    Pending p;
    p.state = util::ParseUnsignedToken(tokens[1], "sarsa pending state");
    p.action = static_cast<std::size_t>(
        util::ParseUnsignedToken(tokens[2], "sarsa pending action"));
    if (p.action >= table_.NumActions())
      throw std::invalid_argument("sarsa pending: action out of range");
    p.reward = util::ParseDoubleToken(tokens[3], "sarsa pending reward");
    p.next_state =
        util::ParseUnsignedToken(tokens[4], "sarsa pending next state");
    pending = p;
  } else if (tokens[0] == "0") {
    state_io::RequireTokens(tokens, 1, "sarsa pending");
  } else {
    throw std::invalid_argument("sarsa pending: flag must be 0 or 1");
  }
  util::Rng rng(0);
  rng.SetState(rng_state);
  step_ = step;
  rng_ = rng;
  table_ = std::move(table);
  pending_ = pending;
}

// --------------------------------------------------------------------------
// DoubleQLearningAgent
// --------------------------------------------------------------------------

DoubleQLearningAgent::DoubleQLearningAgent(std::size_t num_actions,
                                           const AgentConfig& config,
                                           std::uint64_t seed)
    : config_(config),
      table_a_(num_actions, config.initial_q),
      table_b_(num_actions, config.initial_q),
      rng_(seed) {
  ValidateAgentConfig(config);
}

std::size_t DoubleQLearningAgent::GreedyOnSum(StateId state) {
  const std::size_t n = table_a_.NumActions();
  double best = -std::numeric_limits<double>::infinity();
  std::size_t tie_count = 0;
  std::size_t choice = 0;
  for (std::size_t a = 0; a < n; ++a) {
    const double q = table_a_.Get(state, a) + table_b_.Get(state, a);
    if (q > best) {
      best = q;
      tie_count = 1;
      choice = a;
    } else if (q == best) {
      ++tie_count;
      if (rng_.UniformBelow(tie_count) == 0) choice = a;
    }
  }
  return choice;
}

std::size_t DoubleQLearningAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  if (rng_.Bernoulli(eps)) return rng_.PickIndex(table_a_.NumActions());
  return GreedyOnSum(state);
}

void DoubleQLearningAgent::Observe(StateId state, std::size_t action,
                                   double reward, StateId next_state,
                                   bool terminated) {
  QTable& update = rng_.Bernoulli(0.5) ? table_a_ : table_b_;
  QTable& other = (&update == &table_a_) ? table_b_ : table_a_;
  double bootstrap = 0.0;
  if (!terminated) {
    const std::size_t best_next = update.GreedyAction(next_state);
    bootstrap = config_.gamma * other.Get(next_state, best_next);
  }
  const double old_q = update.Get(state, action);
  update.Set(state, action,
             old_q + config_.alpha * (reward + bootstrap - old_q));
}

void DoubleQLearningAgent::SaveState(std::ostream& out) const {
  SaveAgentPrologue(out, Name(), step_, rng_);
  table_a_.SaveState(out);
  table_b_.SaveState(out);
}

void DoubleQLearningAgent::LoadState(std::istream& in) {
  std::size_t step = 0;
  util::RngState rng_state;
  LoadAgentPrologue(in, Name(), step, rng_state);
  QTable table_a(table_a_.NumActions(), config_.initial_q);
  table_a.LoadState(in);
  QTable table_b(table_b_.NumActions(), config_.initial_q);
  table_b.LoadState(in);
  util::Rng rng(0);
  rng.SetState(rng_state);
  step_ = step;
  rng_ = rng;
  table_a_ = std::move(table_a);
  table_b_ = std::move(table_b);
}

// --------------------------------------------------------------------------
// QLambdaAgent
// --------------------------------------------------------------------------

QLambdaAgent::QLambdaAgent(std::size_t num_actions, const AgentConfig& config,
                           double lambda, std::uint64_t seed)
    : config_(config), lambda_(lambda), table_(num_actions, config.initial_q),
      rng_(seed) {
  ValidateAgentConfig(config);
  if (lambda < 0.0 || lambda > 1.0)
    throw std::invalid_argument("QLambdaAgent: lambda must be in [0,1]");
}

std::size_t QLambdaAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  if (rng_.Bernoulli(eps)) {
    const std::size_t action = rng_.PickIndex(table_.NumActions());
    last_action_was_greedy_ = action == table_.GreedyAction(state);
    return action;
  }
  last_action_was_greedy_ = true;
  return table_.GreedyAction(state, &rng_);
}

void QLambdaAgent::Observe(StateId state, std::size_t action, double reward,
                           StateId next_state, bool terminated) {
  const double bootstrap =
      terminated ? 0.0 : config_.gamma * table_.MaxValue(next_state);
  const double delta = reward + bootstrap - table_.Get(state, action);
  traces_[{state, action}] = 1.0;  // replacing traces

  const double decay = config_.gamma * lambda_;
  for (auto it = traces_.begin(); it != traces_.end();) {
    const auto& [key, trace] = *it;
    const double old_q = table_.Get(key.first, key.second);
    table_.Set(key.first, key.second, old_q + config_.alpha * delta * trace);
    it->second *= decay;
    if (it->second < 1e-8)
      it = traces_.erase(it);
    else
      ++it;
  }
  // Watkins' cut: an exploratory action invalidates the on-policy suffix.
  if (!last_action_was_greedy_ || terminated) traces_.clear();
}

void QLambdaAgent::SaveState(std::ostream& out) const {
  SaveAgentPrologue(out, Name(), step_, rng_);
  table_.SaveState(out);
  out << "greedy " << (last_action_was_greedy_ ? 1 : 0) << "\n";
  out << "traces " << traces_.size() << "\n";
  std::vector<std::pair<StateId, std::size_t>> keys;
  keys.reserve(traces_.size());
  for (const auto& [key, value] : traces_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const auto& key : keys)
    out << "trace " << key.first << " " << key.second << " "
        << util::ShortestDouble(traces_.at(key)) << "\n";
}

void QLambdaAgent::LoadState(std::istream& in) {
  std::size_t step = 0;
  util::RngState rng_state;
  LoadAgentPrologue(in, Name(), step, rng_state);
  QTable table(table_.NumActions(), config_.initial_q);
  table.LoadState(in);
  const std::vector<std::string> greedy = state_io::ReadTagged(in, "greedy");
  state_io::RequireTokens(greedy, 1, "q-lambda greedy flag");
  const std::uint64_t greedy_flag =
      util::ParseUnsignedToken(greedy[0], "q-lambda greedy flag");
  if (greedy_flag > 1)
    throw std::invalid_argument("q-lambda greedy flag must be 0 or 1");
  const std::vector<std::string> count = state_io::ReadTagged(in, "traces");
  state_io::RequireTokens(count, 1, "q-lambda trace count");
  const std::uint64_t num_traces =
      util::ParseUnsignedToken(count[0], "q-lambda trace count");
  std::unordered_map<std::pair<StateId, std::size_t>, double, PairHash> traces;
  traces.reserve(static_cast<std::size_t>(num_traces));
  for (std::uint64_t t = 0; t < num_traces; ++t) {
    const std::vector<std::string> tokens = state_io::ReadTagged(in, "trace");
    state_io::RequireTokens(tokens, 3, "q-lambda trace entry");
    const StateId state =
        util::ParseUnsignedToken(tokens[0], "q-lambda trace state");
    const std::size_t action = static_cast<std::size_t>(
        util::ParseUnsignedToken(tokens[1], "q-lambda trace action"));
    if (action >= table_.NumActions())
      throw std::invalid_argument("q-lambda trace: action out of range");
    const double value =
        util::ParseDoubleToken(tokens[2], "q-lambda trace value");
    if (!traces.emplace(std::make_pair(state, action), value).second)
      throw std::invalid_argument("q-lambda trace: duplicate (state, action)");
  }
  util::Rng rng(0);
  rng.SetState(rng_state);
  step_ = step;
  rng_ = rng;
  table_ = std::move(table);
  last_action_was_greedy_ = greedy_flag == 1;
  traces_ = std::move(traces);
}

// --------------------------------------------------------------------------
// ExpectedSarsaAgent
// --------------------------------------------------------------------------

ExpectedSarsaAgent::ExpectedSarsaAgent(std::size_t num_actions,
                                       const AgentConfig& config,
                                       std::uint64_t seed)
    : config_(config), table_(num_actions, config.initial_q), rng_(seed) {
  ValidateAgentConfig(config);
}

std::size_t ExpectedSarsaAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  return EpsilonGreedy(table_, state, eps, rng_);
}

void ExpectedSarsaAgent::SaveState(std::ostream& out) const {
  SaveAgentPrologue(out, Name(), step_, rng_);
  table_.SaveState(out);
}

void ExpectedSarsaAgent::LoadState(std::istream& in) {
  std::size_t step = 0;
  util::RngState rng_state;
  LoadAgentPrologue(in, Name(), step, rng_state);
  QTable table(table_.NumActions(), config_.initial_q);
  table.LoadState(in);
  util::Rng rng(0);
  rng.SetState(rng_state);
  step_ = step;
  rng_ = rng;
  table_ = std::move(table);
}

void ExpectedSarsaAgent::Observe(StateId state, std::size_t action,
                                 double reward, StateId next_state,
                                 bool terminated) {
  // Expectation under the policy that will act in next_state (current eps).
  const double eps = config_.epsilon.Value(step_);
  const double bootstrap =
      terminated ? 0.0 : config_.gamma * table_.ExpectedValue(next_state, eps);
  const double old_q = table_.Get(state, action);
  table_.Set(state, action,
             old_q + config_.alpha * (reward + bootstrap - old_q));
}

}  // namespace axdse::rl
