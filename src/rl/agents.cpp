#include "rl/agents.hpp"

#include <limits>
#include <stdexcept>

namespace axdse::rl {

void ValidateAgentConfig(const AgentConfig& config) {
  if (!(config.alpha > 0.0 && config.alpha <= 1.0))
    throw std::invalid_argument("AgentConfig: alpha must be in (0,1]");
  if (!(config.gamma >= 0.0 && config.gamma <= 1.0))
    throw std::invalid_argument("AgentConfig: gamma must be in [0,1]");
}

namespace {
std::size_t EpsilonGreedy(const QTable& table, StateId state, double epsilon,
                          util::Rng& rng) {
  if (rng.Bernoulli(epsilon)) return rng.PickIndex(table.NumActions());
  return table.GreedyAction(state, &rng);
}
}  // namespace

// --------------------------------------------------------------------------
// QLearningAgent
// --------------------------------------------------------------------------

QLearningAgent::QLearningAgent(std::size_t num_actions,
                               const AgentConfig& config, std::uint64_t seed)
    : config_(config), table_(num_actions, config.initial_q), rng_(seed) {
  ValidateAgentConfig(config);
}

double QLearningAgent::CurrentEpsilon() const noexcept {
  return config_.epsilon.Value(step_);
}

std::size_t QLearningAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  return EpsilonGreedy(table_, state, eps, rng_);
}

void QLearningAgent::Observe(StateId state, std::size_t action, double reward,
                             StateId next_state, bool terminated) {
  const double bootstrap =
      terminated ? 0.0 : config_.gamma * table_.MaxValue(next_state);
  const double old_q = table_.Get(state, action);
  table_.Set(state, action,
             old_q + config_.alpha * (reward + bootstrap - old_q));
}

// --------------------------------------------------------------------------
// SarsaAgent
// --------------------------------------------------------------------------

SarsaAgent::SarsaAgent(std::size_t num_actions, const AgentConfig& config,
                       std::uint64_t seed)
    : config_(config), table_(num_actions, config.initial_q), rng_(seed) {
  ValidateAgentConfig(config);
}

std::size_t SarsaAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  const std::size_t action = EpsilonGreedy(table_, state, eps, rng_);
  if (pending_.has_value()) {
    // Complete the delayed SARSA update now that a' is known.
    const Pending& p = *pending_;
    const double old_q = table_.Get(p.state, p.action);
    const double target =
        p.reward + config_.gamma * table_.Get(p.next_state, action);
    table_.Set(p.state, p.action, old_q + config_.alpha * (target - old_q));
    pending_.reset();
  }
  return action;
}

void SarsaAgent::Observe(StateId state, std::size_t action, double reward,
                         StateId next_state, bool terminated) {
  if (terminated) {
    const double old_q = table_.Get(state, action);
    table_.Set(state, action, old_q + config_.alpha * (reward - old_q));
    pending_.reset();
    return;
  }
  pending_ = Pending{state, action, reward, next_state};
}

// --------------------------------------------------------------------------
// DoubleQLearningAgent
// --------------------------------------------------------------------------

DoubleQLearningAgent::DoubleQLearningAgent(std::size_t num_actions,
                                           const AgentConfig& config,
                                           std::uint64_t seed)
    : config_(config),
      table_a_(num_actions, config.initial_q),
      table_b_(num_actions, config.initial_q),
      rng_(seed) {
  ValidateAgentConfig(config);
}

std::size_t DoubleQLearningAgent::GreedyOnSum(StateId state) {
  const std::size_t n = table_a_.NumActions();
  double best = -std::numeric_limits<double>::infinity();
  std::size_t tie_count = 0;
  std::size_t choice = 0;
  for (std::size_t a = 0; a < n; ++a) {
    const double q = table_a_.Get(state, a) + table_b_.Get(state, a);
    if (q > best) {
      best = q;
      tie_count = 1;
      choice = a;
    } else if (q == best) {
      ++tie_count;
      if (rng_.UniformBelow(tie_count) == 0) choice = a;
    }
  }
  return choice;
}

std::size_t DoubleQLearningAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  if (rng_.Bernoulli(eps)) return rng_.PickIndex(table_a_.NumActions());
  return GreedyOnSum(state);
}

void DoubleQLearningAgent::Observe(StateId state, std::size_t action,
                                   double reward, StateId next_state,
                                   bool terminated) {
  QTable& update = rng_.Bernoulli(0.5) ? table_a_ : table_b_;
  QTable& other = (&update == &table_a_) ? table_b_ : table_a_;
  double bootstrap = 0.0;
  if (!terminated) {
    const std::size_t best_next = update.GreedyAction(next_state);
    bootstrap = config_.gamma * other.Get(next_state, best_next);
  }
  const double old_q = update.Get(state, action);
  update.Set(state, action,
             old_q + config_.alpha * (reward + bootstrap - old_q));
}

// --------------------------------------------------------------------------
// QLambdaAgent
// --------------------------------------------------------------------------

QLambdaAgent::QLambdaAgent(std::size_t num_actions, const AgentConfig& config,
                           double lambda, std::uint64_t seed)
    : config_(config), lambda_(lambda), table_(num_actions, config.initial_q),
      rng_(seed) {
  ValidateAgentConfig(config);
  if (lambda < 0.0 || lambda > 1.0)
    throw std::invalid_argument("QLambdaAgent: lambda must be in [0,1]");
}

std::size_t QLambdaAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  if (rng_.Bernoulli(eps)) {
    const std::size_t action = rng_.PickIndex(table_.NumActions());
    last_action_was_greedy_ = action == table_.GreedyAction(state);
    return action;
  }
  last_action_was_greedy_ = true;
  return table_.GreedyAction(state, &rng_);
}

void QLambdaAgent::Observe(StateId state, std::size_t action, double reward,
                           StateId next_state, bool terminated) {
  const double bootstrap =
      terminated ? 0.0 : config_.gamma * table_.MaxValue(next_state);
  const double delta = reward + bootstrap - table_.Get(state, action);
  traces_[{state, action}] = 1.0;  // replacing traces

  const double decay = config_.gamma * lambda_;
  for (auto it = traces_.begin(); it != traces_.end();) {
    const auto& [key, trace] = *it;
    const double old_q = table_.Get(key.first, key.second);
    table_.Set(key.first, key.second, old_q + config_.alpha * delta * trace);
    it->second *= decay;
    if (it->second < 1e-8)
      it = traces_.erase(it);
    else
      ++it;
  }
  // Watkins' cut: an exploratory action invalidates the on-policy suffix.
  if (!last_action_was_greedy_ || terminated) traces_.clear();
}

// --------------------------------------------------------------------------
// ExpectedSarsaAgent
// --------------------------------------------------------------------------

ExpectedSarsaAgent::ExpectedSarsaAgent(std::size_t num_actions,
                                       const AgentConfig& config,
                                       std::uint64_t seed)
    : config_(config), table_(num_actions, config.initial_q), rng_(seed) {
  ValidateAgentConfig(config);
}

std::size_t ExpectedSarsaAgent::SelectAction(StateId state) {
  const double eps = config_.epsilon.Value(step_);
  ++step_;
  return EpsilonGreedy(table_, state, eps, rng_);
}

void ExpectedSarsaAgent::Observe(StateId state, std::size_t action,
                                 double reward, StateId next_state,
                                 bool terminated) {
  // Expectation under the policy that will act in next_state (current eps).
  const double eps = config_.epsilon.Value(step_);
  const double bootstrap =
      terminated ? 0.0 : config_.gamma * table_.ExpectedValue(next_state, eps);
  const double old_q = table_.Get(state, action);
  table_.Set(state, action,
             old_q + config_.alpha * (reward + bootstrap - old_q));
}

}  // namespace axdse::rl
