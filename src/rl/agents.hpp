#pragma once
// Tabular value-based agents: Q-learning (the paper's algorithm), SARSA and
// Expected SARSA (on-policy comparisons for the ablation benches).

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "rl/env.hpp"
#include "rl/q_table.hpp"
#include "rl/schedules.hpp"
#include "util/rng.hpp"

namespace axdse::rl {

/// Hyper-parameters shared by the tabular agents.
struct AgentConfig {
  /// Learning rate in (0, 1].
  double alpha = 0.1;
  /// Discount factor in [0, 1].
  double gamma = 0.95;
  /// Exploration schedule (evaluated on the agent's own step counter).
  EpsilonSchedule epsilon = EpsilonSchedule::Linear(1.0, 0.05, 2000);
  /// Initial Q value for unvisited states (optimistic init if > 0).
  double initial_q = 0.0;
};

/// Common agent interface: SelectAction() is called exactly once per step,
/// then Observe() with the resulting transition.
class Agent {
 public:
  virtual ~Agent() = default;

  /// Epsilon-greedy action for `state`; advances the exploration schedule.
  virtual std::size_t SelectAction(StateId state) = 0;

  /// Learns from the transition (state, action, reward, next_state).
  virtual void Observe(StateId state, std::size_t action, double reward,
                       StateId next_state, bool terminated) = 0;

  /// Read access to the learned values.
  virtual const QTable& Table() const noexcept = 0;

  /// Agent name for reports.
  virtual std::string Name() const = 0;

  /// Called by the trainer at the start of every episode. Agents with
  /// episode-scoped state (eligibility traces, pending on-policy updates)
  /// reset it here; value tables persist across episodes.
  virtual void BeginEpisode() {}

  /// Writes the agent's complete dynamic state (value tables, RNG,
  /// exploration-schedule step, episode-scoped internals) as deterministic
  /// text lines, tagged with the agent name. Hyper-parameters are NOT
  /// serialized — a resumed agent is constructed from its config first and
  /// then restored via LoadState().
  virtual void SaveState(std::ostream& out) const;

  /// Inverse of SaveState(). Must be called on an agent constructed with the
  /// same action count and kind as the saved one. Throws
  /// std::invalid_argument on malformed input, agent-kind mismatch, action
  /// count mismatch, or NaN-injected values; on failure the agent keeps its
  /// pre-call state.
  virtual void LoadState(std::istream& in);
};

/// Watkins Q-learning: off-policy TD update
///   Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a)).
class QLearningAgent final : public Agent {
 public:
  /// Throws std::invalid_argument on invalid hyper-parameters.
  QLearningAgent(std::size_t num_actions, const AgentConfig& config,
                 std::uint64_t seed);

  std::size_t SelectAction(StateId state) override;
  void Observe(StateId state, std::size_t action, double reward,
               StateId next_state, bool terminated) override;
  const QTable& Table() const noexcept override { return table_; }
  std::string Name() const override { return "q-learning"; }

  /// Exploration rate at the current internal step (for traces).
  double CurrentEpsilon() const noexcept;

  void SaveState(std::ostream& out) const override;
  void LoadState(std::istream& in) override;

 private:
  AgentConfig config_;
  QTable table_;
  util::Rng rng_;
  std::size_t step_ = 0;
};

/// On-policy SARSA: the bootstrap uses the action actually selected next.
/// The update for step t is applied when SelectAction() for step t+1 runs
/// (or immediately on termination).
class SarsaAgent final : public Agent {
 public:
  SarsaAgent(std::size_t num_actions, const AgentConfig& config,
             std::uint64_t seed);

  std::size_t SelectAction(StateId state) override;
  void Observe(StateId state, std::size_t action, double reward,
               StateId next_state, bool terminated) override;
  const QTable& Table() const noexcept override { return table_; }
  std::string Name() const override { return "sarsa"; }
  void BeginEpisode() override { pending_.reset(); }

  void SaveState(std::ostream& out) const override;
  void LoadState(std::istream& in) override;

 private:
  struct Pending {
    StateId state;
    std::size_t action;
    double reward;
    StateId next_state;
  };

  AgentConfig config_;
  QTable table_;
  util::Rng rng_;
  std::size_t step_ = 0;
  std::optional<Pending> pending_;
};

/// Double Q-learning (van Hasselt): two tables, each bootstrapping through
/// the other's value at the action its sibling prefers — removes the
/// maximization bias of plain Q-learning in noisy-reward regions.
class DoubleQLearningAgent final : public Agent {
 public:
  DoubleQLearningAgent(std::size_t num_actions, const AgentConfig& config,
                       std::uint64_t seed);

  std::size_t SelectAction(StateId state) override;
  void Observe(StateId state, std::size_t action, double reward,
               StateId next_state, bool terminated) override;
  /// The behaviour table (mean of A and B is used for action selection; the
  /// reported table is A — tests read both via TableA/TableB).
  const QTable& Table() const noexcept override { return table_a_; }
  std::string Name() const override { return "double-q"; }

  const QTable& TableA() const noexcept { return table_a_; }
  const QTable& TableB() const noexcept { return table_b_; }

  void SaveState(std::ostream& out) const override;
  void LoadState(std::istream& in) override;

 private:
  std::size_t GreedyOnSum(StateId state);

  AgentConfig config_;
  QTable table_a_;
  QTable table_b_;
  util::Rng rng_;
  std::size_t step_ = 0;
};

/// Watkins Q(lambda): Q-learning with replacing eligibility traces, cut on
/// exploratory actions. Propagates rewards down long corridors much faster
/// than one-step Q-learning.
class QLambdaAgent final : public Agent {
 public:
  /// `lambda` must be in [0, 1].
  QLambdaAgent(std::size_t num_actions, const AgentConfig& config,
               double lambda, std::uint64_t seed);

  std::size_t SelectAction(StateId state) override;
  void Observe(StateId state, std::size_t action, double reward,
               StateId next_state, bool terminated) override;
  const QTable& Table() const noexcept override { return table_; }
  std::string Name() const override { return "q-lambda"; }
  void BeginEpisode() override { traces_.clear(); }

  double Lambda() const noexcept { return lambda_; }
  std::size_t ActiveTraces() const noexcept { return traces_.size(); }

  void SaveState(std::ostream& out) const override;
  void LoadState(std::istream& in) override;

 private:
  struct PairHash {
    std::size_t operator()(
        const std::pair<StateId, std::size_t>& p) const noexcept {
      return std::hash<StateId>{}(p.first) * 0x9E3779B97F4A7C15ULL +
             p.second;
    }
  };

  AgentConfig config_;
  double lambda_;
  QTable table_;
  util::Rng rng_;
  std::size_t step_ = 0;
  bool last_action_was_greedy_ = true;
  std::unordered_map<std::pair<StateId, std::size_t>, double, PairHash>
      traces_;
};

/// Expected SARSA: bootstraps on the epsilon-greedy expectation over the
/// next state's values — lower variance than SARSA, on-policy like it.
class ExpectedSarsaAgent final : public Agent {
 public:
  ExpectedSarsaAgent(std::size_t num_actions, const AgentConfig& config,
                     std::uint64_t seed);

  std::size_t SelectAction(StateId state) override;
  void Observe(StateId state, std::size_t action, double reward,
               StateId next_state, bool terminated) override;
  const QTable& Table() const noexcept override { return table_; }
  std::string Name() const override { return "expected-sarsa"; }

  void SaveState(std::ostream& out) const override;
  void LoadState(std::istream& in) override;

 private:
  AgentConfig config_;
  QTable table_;
  util::Rng rng_;
  std::size_t step_ = 0;
};

/// Validates hyper-parameters; throws std::invalid_argument on violation.
void ValidateAgentConfig(const AgentConfig& config);

}  // namespace axdse::rl
