#pragma once
// Gymnasium-like environment contract (C++ substitute for the paper's use of
// the Gymnasium Python toolkit): Reset() starts an episode, Step() applies an
// action and returns (next state, reward, terminated, truncated).
//
// States are opaque 64-bit ids: tabular agents key their Q-tables on them,
// and environments with structured states (like the DSE configuration) intern
// their states to ids.

#include <cstddef>
#include <cstdint>

namespace axdse::rl {

/// Opaque, environment-defined state identifier.
using StateId = std::uint64_t;

/// Outcome of one environment step.
struct StepResult {
  StateId next_state = 0;
  double reward = 0.0;
  /// The episode reached a terminal state (e.g. the paper's saturation
  /// condition: most aggressive operators + every variable approximated).
  bool terminated = false;
  /// The episode was cut off by an external limit rather than by the MDP.
  bool truncated = false;
};

/// Abstract environment. Implementations must be deterministic given the
/// Reset seed and the action sequence.
class Env {
 public:
  virtual ~Env() = default;

  /// Starts a new episode and returns the initial state.
  virtual StateId Reset(std::uint64_t seed) = 0;

  /// Applies `action` (in [0, NumActions())). Implementations should throw
  /// std::out_of_range for invalid actions.
  virtual StepResult Step(std::size_t action) = 0;

  /// Size of the discrete action space.
  virtual std::size_t NumActions() const noexcept = 0;
};

}  // namespace axdse::rl
