#include "rl/q_table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "rl/state_io.hpp"
#include "util/number_format.hpp"

namespace axdse::rl {

QTable::QTable(std::size_t num_actions, double initial_value)
    : num_actions_(num_actions), initial_value_(initial_value) {
  if (num_actions == 0)
    throw std::invalid_argument("QTable: num_actions == 0");
}

const std::vector<double>* QTable::FindRow(StateId state) const {
  const auto it = table_.find(state);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<double>& QTable::Row(StateId state) {
  const auto it = table_.find(state);
  if (it != table_.end()) return it->second;
  return table_.emplace(state, std::vector<double>(num_actions_, initial_value_))
      .first->second;
}

double QTable::Get(StateId state, std::size_t action) const {
  if (action >= num_actions_) throw std::out_of_range("QTable::Get: action");
  const auto* row = FindRow(state);
  return row == nullptr ? initial_value_ : (*row)[action];
}

void QTable::Set(StateId state, std::size_t action, double value) {
  if (action >= num_actions_) throw std::out_of_range("QTable::Set: action");
  Row(state)[action] = value;
}

double QTable::MaxValue(StateId state) const {
  const auto* row = FindRow(state);
  if (row == nullptr) return initial_value_;
  return *std::max_element(row->begin(), row->end());
}

std::size_t QTable::GreedyAction(StateId state, util::Rng* tie_breaker) const {
  const auto* row = FindRow(state);
  if (row == nullptr) {
    // Uniform over all actions: every value ties at the initial value.
    return tie_breaker == nullptr ? 0 : tie_breaker->PickIndex(num_actions_);
  }
  const double best = *std::max_element(row->begin(), row->end());
  if (tie_breaker == nullptr) {
    for (std::size_t a = 0; a < num_actions_; ++a)
      if ((*row)[a] == best) return a;
    return 0;  // unreachable
  }
  std::size_t tie_count = 0;
  std::size_t choice = 0;
  for (std::size_t a = 0; a < num_actions_; ++a) {
    if ((*row)[a] == best) {
      ++tie_count;
      // Reservoir sampling over tying actions.
      if (tie_breaker->UniformBelow(tie_count) == 0) choice = a;
    }
  }
  return choice;
}

void QTable::SaveState(std::ostream& out) const {
  out << "table " << num_actions_ << " " << util::ShortestDouble(initial_value_)
      << " " << table_.size() << "\n";
  std::vector<StateId> states;
  states.reserve(table_.size());
  for (const auto& [state, row] : table_) states.push_back(state);
  std::sort(states.begin(), states.end());
  for (const StateId state : states) {
    out << "row " << state;
    for (const double q : table_.at(state))
      out << " " << util::ShortestDouble(q);
    out << "\n";
  }
}

void QTable::LoadState(std::istream& in) {
  const std::vector<std::string> header = state_io::ReadTagged(in, "table");
  state_io::RequireTokens(header, 3, "QTable::LoadState header");
  const std::uint64_t num_actions =
      util::ParseUnsignedToken(header[0], "QTable::LoadState num_actions");
  if (num_actions != num_actions_)
    throw std::invalid_argument(
        "QTable::LoadState: action count mismatch (stored " +
        std::to_string(num_actions) + ", table has " +
        std::to_string(num_actions_) + ")");
  const double initial =
      util::ParseDoubleToken(header[1], "QTable::LoadState initial_value");
  const std::uint64_t num_rows =
      util::ParseUnsignedToken(header[2], "QTable::LoadState num_rows");

  std::unordered_map<StateId, std::vector<double>> rows;
  rows.reserve(static_cast<std::size_t>(num_rows));
  for (std::uint64_t r = 0; r < num_rows; ++r) {
    const std::vector<std::string> tokens = state_io::ReadTagged(in, "row");
    state_io::RequireTokens(tokens, 1 + num_actions_, "QTable::LoadState row");
    const StateId state =
        util::ParseUnsignedToken(tokens[0], "QTable::LoadState state id");
    std::vector<double> row(num_actions_);
    for (std::size_t a = 0; a < num_actions_; ++a)
      row[a] =
          util::ParseDoubleToken(tokens[1 + a], "QTable::LoadState q-value");
    if (!rows.emplace(state, std::move(row)).second)
      throw std::invalid_argument("QTable::LoadState: duplicate row for state " +
                                  tokens[0]);
  }
  initial_value_ = initial;
  table_ = std::move(rows);
}

double QTable::ExpectedValue(StateId state, double epsilon) const {
  const auto* row = FindRow(state);
  if (row == nullptr) return initial_value_;
  const double best = *std::max_element(row->begin(), row->end());
  double mean = 0.0;
  for (const double q : *row) mean += q;
  mean /= static_cast<double>(num_actions_);
  return epsilon * mean + (1.0 - epsilon) * best;
}

}  // namespace axdse::rl
