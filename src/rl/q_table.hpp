#pragma once
// Tabular action-value storage over interned state ids. Rows are
// materialized lazily so state spaces far larger than the visited set (e.g.
// the 2^101-variable DSE space of MatMul 50x50) cost memory proportional to
// the states actually visited.

#include <cstddef>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "rl/env.hpp"
#include "util/rng.hpp"

namespace axdse::rl {

/// Q(s,a) table with a configurable initial value (optimistic init > 0
/// encourages systematic exploration).
class QTable {
 public:
  /// Throws std::invalid_argument if num_actions == 0.
  explicit QTable(std::size_t num_actions, double initial_value = 0.0);

  std::size_t NumActions() const noexcept { return num_actions_; }
  double InitialValue() const noexcept { return initial_value_; }

  /// Q(s,a); the initial value for unvisited rows.
  /// Throws std::out_of_range for invalid actions.
  double Get(StateId state, std::size_t action) const;

  /// Sets Q(s,a), materializing the row if needed.
  void Set(StateId state, std::size_t action, double value);

  /// max_a Q(s,a).
  double MaxValue(StateId state) const;

  /// argmax_a Q(s,a); ties are broken uniformly at random when `tie_breaker`
  /// is provided, otherwise the lowest action index wins.
  std::size_t GreedyAction(StateId state, util::Rng* tie_breaker = nullptr) const;

  /// Expected action value under an epsilon-greedy policy (Expected SARSA).
  double ExpectedValue(StateId state, double epsilon) const;

  /// Number of rows materialized (distinct states updated or read-for-write).
  std::size_t NumStates() const noexcept { return table_.size(); }

  /// Writes the table as deterministic text (rows sorted by state id):
  ///   table <num_actions> <initial_value> <num_rows>
  ///   row <state> <q_0> ... <q_{num_actions-1}>     (x num_rows)
  /// Doubles use shortest-round-trip formatting, so LoadState(SaveState())
  /// restores bit-identical values.
  void SaveState(std::ostream& out) const;

  /// Inverse of SaveState: replaces all rows (num_actions in the stream must
  /// match this table's; the stored initial value replaces the current one).
  /// Throws std::invalid_argument on malformed input, NaN values, action
  /// count mismatch, or duplicate rows; the table is only modified once the
  /// whole stream parsed cleanly.
  void LoadState(std::istream& in);

 private:
  const std::vector<double>* FindRow(StateId state) const;
  std::vector<double>& Row(StateId state);

  std::size_t num_actions_;
  double initial_value_;
  std::unordered_map<StateId, std::vector<double>> table_;
};

}  // namespace axdse::rl
