#include "rl/schedules.hpp"

#include <cmath>
#include <stdexcept>

namespace axdse::rl {

namespace {
void CheckUnit(double v, const char* what) {
  if (v < 0.0 || v > 1.0)
    throw std::invalid_argument(std::string("EpsilonSchedule: ") + what +
                                " must be in [0,1]");
}
}  // namespace

EpsilonSchedule::EpsilonSchedule(Kind kind, double start, double end,
                                 double rate, std::size_t decay_steps)
    : kind_(kind),
      start_(start),
      end_(end),
      rate_(rate),
      decay_steps_(decay_steps) {}

EpsilonSchedule EpsilonSchedule::Constant(double value) {
  CheckUnit(value, "value");
  return EpsilonSchedule(Kind::kConstant, value, value, 1.0, 1);
}

EpsilonSchedule EpsilonSchedule::Linear(double start, double end,
                                        std::size_t decay_steps) {
  CheckUnit(start, "start");
  CheckUnit(end, "end");
  if (decay_steps == 0)
    throw std::invalid_argument("EpsilonSchedule::Linear: decay_steps == 0");
  return EpsilonSchedule(Kind::kLinear, start, end, 1.0, decay_steps);
}

EpsilonSchedule EpsilonSchedule::Exponential(double start, double end,
                                             double decay_rate) {
  CheckUnit(start, "start");
  CheckUnit(end, "end");
  if (!(decay_rate > 0.0 && decay_rate <= 1.0))
    throw std::invalid_argument(
        "EpsilonSchedule::Exponential: decay_rate must be in (0,1]");
  return EpsilonSchedule(Kind::kExponential, start, end, decay_rate, 1);
}

double EpsilonSchedule::Value(std::size_t step) const noexcept {
  switch (kind_) {
    case Kind::kConstant:
      return start_;
    case Kind::kLinear: {
      if (step >= decay_steps_) return end_;
      const double t =
          static_cast<double>(step) / static_cast<double>(decay_steps_);
      return start_ + (end_ - start_) * t;
    }
    case Kind::kExponential:
      return end_ + (start_ - end_) *
                        std::pow(rate_, static_cast<double>(step));
  }
  return end_;  // unreachable
}

}  // namespace axdse::rl
