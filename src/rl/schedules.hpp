#pragma once
// Exploration-rate schedules for epsilon-greedy action selection.

#include <cstddef>

namespace axdse::rl {

/// Value object describing epsilon as a function of the global step count.
class EpsilonSchedule {
 public:
  /// epsilon(step) = value for all steps. value must be in [0,1].
  static EpsilonSchedule Constant(double value);

  /// Linear interpolation from `start` at step 0 to `end` at `decay_steps`,
  /// constant afterwards. Requires 0 <= end, start <= 1, decay_steps >= 1.
  static EpsilonSchedule Linear(double start, double end,
                                std::size_t decay_steps);

  /// epsilon(step) = end + (start-end) * decay_rate^step.
  /// Requires decay_rate in (0,1].
  static EpsilonSchedule Exponential(double start, double end,
                                     double decay_rate);

  /// Epsilon at the given global step.
  double Value(std::size_t step) const noexcept;

 private:
  enum class Kind { kConstant, kLinear, kExponential };
  EpsilonSchedule(Kind kind, double start, double end, double rate,
                  std::size_t decay_steps);

  Kind kind_;
  double start_;
  double end_;
  double rate_;
  std::size_t decay_steps_;
};

}  // namespace axdse::rl
