#include "rl/space.hpp"

#include <limits>
#include <stdexcept>

namespace axdse::rl {

DiscreteSpace::DiscreteSpace(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("DiscreteSpace: n == 0");
}

MultiBinarySpace::MultiBinarySpace(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("MultiBinarySpace: n == 0");
}

std::vector<bool> MultiBinarySpace::Sample(util::Rng& rng) const {
  std::vector<bool> bits(n_);
  for (std::size_t i = 0; i < n_; ++i) bits[i] = rng.Bernoulli(0.5);
  return bits;
}

CompositeSpace::CompositeSpace(std::vector<std::size_t> factor_sizes)
    : factors_(std::move(factor_sizes)) {
  if (factors_.empty())
    throw std::invalid_argument("CompositeSpace: no factors");
  for (const std::size_t f : factors_) {
    if (f == 0) throw std::invalid_argument("CompositeSpace: zero factor");
    if (size_ > std::numeric_limits<std::uint64_t>::max() / f)
      throw std::invalid_argument("CompositeSpace: size overflows 64 bits");
    size_ *= f;
  }
}

std::uint64_t CompositeSpace::Encode(
    const std::vector<std::size_t>& coords) const {
  if (coords.size() != factors_.size())
    throw std::invalid_argument("CompositeSpace::Encode: rank mismatch");
  std::uint64_t index = 0;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (coords[i] >= factors_[i])
      throw std::invalid_argument("CompositeSpace::Encode: coord out of range");
    index = index * factors_[i] + coords[i];
  }
  return index;
}

std::vector<std::size_t> CompositeSpace::Decode(std::uint64_t index) const {
  if (index >= size_) throw std::out_of_range("CompositeSpace::Decode");
  std::vector<std::size_t> coords(factors_.size());
  for (std::size_t i = factors_.size(); i-- > 0;) {
    coords[i] = static_cast<std::size_t>(index % factors_[i]);
    index /= factors_[i];
  }
  return coords;
}

std::vector<std::size_t> CompositeSpace::Sample(util::Rng& rng) const {
  std::vector<std::size_t> coords(factors_.size());
  for (std::size_t i = 0; i < factors_.size(); ++i)
    coords[i] = rng.PickIndex(factors_[i]);
  return coords;
}

}  // namespace axdse::rl
