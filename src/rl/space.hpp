#pragma once
// Discrete observation/action spaces in the spirit of Gymnasium's
// spaces.Discrete / spaces.MultiBinary / spaces.Tuple. Used to describe and
// sample the DSE environment's spaces and to drive property tests.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace axdse::rl {

/// {0, 1, ..., n-1}.
class DiscreteSpace {
 public:
  /// Throws std::invalid_argument if n == 0.
  explicit DiscreteSpace(std::size_t n);

  std::size_t Size() const noexcept { return n_; }
  bool Contains(std::size_t value) const noexcept { return value < n_; }
  std::size_t Sample(util::Rng& rng) const { return rng.PickIndex(n_); }

 private:
  std::size_t n_;
};

/// {0,1}^n bit-vectors.
class MultiBinarySpace {
 public:
  /// Throws std::invalid_argument if n == 0.
  explicit MultiBinarySpace(std::size_t n);

  std::size_t NumBits() const noexcept { return n_; }
  bool Contains(const std::vector<bool>& value) const noexcept {
    return value.size() == n_;
  }
  std::vector<bool> Sample(util::Rng& rng) const;

 private:
  std::size_t n_;
};

/// Cartesian product of discrete factors, with mixed-radix encoding to/from a
/// flat index. Factor order is most-significant-first.
class CompositeSpace {
 public:
  /// Throws std::invalid_argument if empty or any factor is 0, or if the
  /// total size overflows 64 bits.
  explicit CompositeSpace(std::vector<std::size_t> factor_sizes);

  std::size_t NumFactors() const noexcept { return factors_.size(); }
  std::uint64_t Size() const noexcept { return size_; }

  /// Flat index of the given coordinates. Throws std::invalid_argument on
  /// rank mismatch or out-of-range coordinate.
  std::uint64_t Encode(const std::vector<std::size_t>& coords) const;

  /// Inverse of Encode. Throws std::out_of_range if index >= Size().
  std::vector<std::size_t> Decode(std::uint64_t index) const;

  std::vector<std::size_t> Sample(util::Rng& rng) const;

 private:
  std::vector<std::size_t> factors_;
  std::uint64_t size_ = 1;
};

}  // namespace axdse::rl
