#include "rl/state_io.hpp"

#include <stdexcept>

namespace axdse::rl::state_io {

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> ReadTagged(std::istream& in, const char* tag) {
  std::string line;
  if (!std::getline(in, line))
    throw std::invalid_argument(std::string("truncated state: expected '") +
                                tag + "' line, found end of input");
  std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty() || tokens.front() != tag)
    throw std::invalid_argument(
        std::string("malformed state: expected '") + tag + "' line, found '" +
        (tokens.empty() ? std::string("<empty>") : tokens.front()) + "'");
  tokens.erase(tokens.begin());
  return tokens;
}

void RequireTokens(const std::vector<std::string>& tokens, std::size_t count,
                   const char* what) {
  if (tokens.size() != count)
    throw std::invalid_argument(std::string(what) + ": expected " +
                                std::to_string(count) + " fields, found " +
                                std::to_string(tokens.size()));
}

}  // namespace axdse::rl::state_io
