#pragma once
// Line-oriented state (de)serialization helpers shared by the Q-table and
// agent checkpointing code. The format is deliberately strict: every line
// starts with a fixed tag and carries a fixed token layout, so truncated,
// reordered, or NaN-injected input fails loudly instead of half-loading.

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace axdse::rl::state_io {

/// Splits `line` on single spaces (empty tokens dropped).
std::vector<std::string> SplitTokens(const std::string& line);

/// Reads the next line, verifies its first token equals `tag`, and returns
/// the remaining tokens. Throws std::invalid_argument on EOF, on a missing
/// tag, or on a different tag (reordered fields).
std::vector<std::string> ReadTagged(std::istream& in, const char* tag);

/// Throws std::invalid_argument unless `tokens` has exactly `count` entries.
void RequireTokens(const std::vector<std::string>& tokens, std::size_t count,
                   const char* what);

}  // namespace axdse::rl::state_io
