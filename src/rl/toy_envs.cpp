#include "rl/toy_envs.hpp"

#include <stdexcept>

namespace axdse::rl {

ChainEnv::ChainEnv(std::size_t length) : length_(length) {
  if (length < 2) throw std::invalid_argument("ChainEnv: length < 2");
}

StateId ChainEnv::Reset(std::uint64_t /*seed*/) {
  position_ = 0;
  return 0;
}

StepResult ChainEnv::Step(std::size_t action) {
  if (action >= NumActions()) throw std::out_of_range("ChainEnv::Step");
  if (action == 0) {
    if (position_ > 0) --position_;
  } else {
    ++position_;
  }
  StepResult r;
  r.next_state = position_;
  if (position_ == length_ - 1) {
    r.reward = 10.0;
    r.terminated = true;
  } else {
    r.reward = -1.0;
  }
  return r;
}

SlipperyChainEnv::SlipperyChainEnv(std::size_t length, double slip)
    : length_(length), slip_(slip), rng_(0) {
  if (length < 2) throw std::invalid_argument("SlipperyChainEnv: length < 2");
  if (slip < 0.0 || slip >= 1.0)
    throw std::invalid_argument("SlipperyChainEnv: slip must be in [0,1)");
}

StateId SlipperyChainEnv::Reset(std::uint64_t seed) {
  position_ = 0;
  rng_ = util::Rng(seed);
  return 0;
}

StepResult SlipperyChainEnv::Step(std::size_t action) {
  if (action >= NumActions())
    throw std::out_of_range("SlipperyChainEnv::Step");
  std::size_t effective = action;
  if (rng_.Bernoulli(slip_)) effective = 1 - action;
  if (effective == 0) {
    if (position_ > 0) --position_;
  } else {
    ++position_;
  }
  StepResult r;
  r.next_state = position_;
  if (position_ == length_ - 1) {
    r.reward = 10.0;
    r.terminated = true;
  } else {
    r.reward = -1.0;
  }
  return r;
}

CliffWalkEnv::CliffWalkEnv() = default;

StateId CliffWalkEnv::Reset(std::uint64_t /*seed*/) {
  row_ = kRows - 1;
  col_ = 0;
  return row_ * kCols + col_;
}

StepResult CliffWalkEnv::Step(std::size_t action) {
  if (action >= NumActions()) throw std::out_of_range("CliffWalkEnv::Step");
  std::size_t row = row_;
  std::size_t col = col_;
  switch (action) {
    case 0:
      if (row > 0) --row;
      break;
    case 1:
      if (col + 1 < kCols) ++col;
      break;
    case 2:
      if (row + 1 < kRows) ++row;
      break;
    case 3:
      if (col > 0) --col;
      break;
    default:
      break;
  }
  StepResult r;
  const bool bottom = row == kRows - 1;
  const bool on_cliff = bottom && col > 0 && col < kCols - 1;
  const bool at_goal = bottom && col == kCols - 1;
  if (on_cliff) {
    r.reward = -100.0;
    row_ = kRows - 1;
    col_ = 0;
  } else {
    r.reward = -1.0;
    row_ = row;
    col_ = col;
    r.terminated = at_goal;
  }
  r.next_state = row_ * kCols + col_;
  return r;
}

}  // namespace axdse::rl
