#pragma once
// Small analytic MDPs with known optimal policies, used to validate the
// agents independently of the DSE environment.

#include <cstddef>

#include "rl/env.hpp"
#include "util/rng.hpp"

namespace axdse::rl {

/// Deterministic corridor of `length` states. Actions: 0 = left, 1 = right.
/// Start at state 0; reaching state length-1 terminates with reward +10;
/// every other step costs -1. Optimal return = 10 - (length-2) when length>1.
class ChainEnv final : public Env {
 public:
  /// Throws std::invalid_argument if length < 2.
  explicit ChainEnv(std::size_t length);

  StateId Reset(std::uint64_t seed) override;
  StepResult Step(std::size_t action) override;
  std::size_t NumActions() const noexcept override { return 2; }

  std::size_t Length() const noexcept { return length_; }

 private:
  std::size_t length_;
  std::size_t position_ = 0;
};

/// ChainEnv with slippery transitions: with probability `slip` the executed
/// move is the opposite of the requested one. Validates agents under
/// stochastic dynamics (reward structure identical to ChainEnv).
class SlipperyChainEnv final : public Env {
 public:
  /// Throws std::invalid_argument if length < 2 or slip outside [0, 1).
  SlipperyChainEnv(std::size_t length, double slip);

  StateId Reset(std::uint64_t seed) override;
  StepResult Step(std::size_t action) override;
  std::size_t NumActions() const noexcept override { return 2; }

  std::size_t Length() const noexcept { return length_; }
  double Slip() const noexcept { return slip_; }

 private:
  std::size_t length_;
  double slip_;
  std::size_t position_ = 0;
  util::Rng rng_;
};

/// The classic 4x12 cliff-walking grid (Sutton & Barto, example 6.6).
/// Actions: 0=up, 1=right, 2=down, 3=left. Start bottom-left, goal
/// bottom-right; stepping on the cliff gives -100 and teleports to start;
/// every move costs -1; reaching the goal terminates.
class CliffWalkEnv final : public Env {
 public:
  CliffWalkEnv();

  StateId Reset(std::uint64_t seed) override;
  StepResult Step(std::size_t action) override;
  std::size_t NumActions() const noexcept override { return 4; }

  static constexpr std::size_t kRows = 4;
  static constexpr std::size_t kCols = 12;

 private:
  std::size_t row_ = kRows - 1;
  std::size_t col_ = 0;
};

}  // namespace axdse::rl
