#include "rl/trainer.hpp"

#include <stdexcept>

namespace axdse::rl {

TrainResult RunEpisode(Env& env, Agent& agent, const TrainOptions& options,
                       std::uint64_t reset_seed, const StepCallback& on_step) {
  if (options.max_steps == 0)
    throw std::invalid_argument("RunEpisode: max_steps == 0");
  TrainResult result;
  result.rewards.reserve(options.max_steps);
  agent.BeginEpisode();
  StateId state = env.Reset(reset_seed);
  result.final_state = state;

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    const std::size_t action = agent.SelectAction(state);
    const StepResult sr = env.Step(action);
    agent.Observe(state, action, sr.reward, sr.next_state, sr.terminated);
    result.rewards.push_back(sr.reward);
    result.cumulative_reward += sr.reward;
    ++result.steps;
    result.final_state = sr.next_state;
    if (on_step) on_step(step, state, action, sr);
    state = sr.next_state;

    if (sr.terminated) {
      result.stop_reason = StopReason::kTerminated;
      return result;
    }
    if (sr.truncated) {
      result.stop_reason = StopReason::kTruncated;
      return result;
    }
    if (options.stop_at_cumulative_reward.has_value() &&
        result.cumulative_reward >= *options.stop_at_cumulative_reward) {
      result.stop_reason = StopReason::kRewardCap;
      return result;
    }
  }
  result.stop_reason = StopReason::kStepLimit;
  return result;
}

const char* ToString(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kTerminated:
      return "terminated";
    case StopReason::kTruncated:
      return "truncated";
    case StopReason::kRewardCap:
      return "reward-cap";
    case StopReason::kStepLimit:
      return "step-limit";
    case StopReason::kSuspended:
      return "suspended";
  }
  return "unknown";
}

StopReason StopReasonFromName(const std::string& name) {
  for (const StopReason reason :
       {StopReason::kTerminated, StopReason::kTruncated, StopReason::kRewardCap,
        StopReason::kStepLimit, StopReason::kSuspended})
    if (name == ToString(reason)) return reason;
  throw std::invalid_argument("StopReasonFromName: unknown stop reason '" +
                              name + "'");
}

}  // namespace axdse::rl
