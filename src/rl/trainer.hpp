#pragma once
// Single-episode training loop: the paper runs one long exploration episode
// (<= 10,000 steps) that stops on saturation (terminated), on the cumulative
// reward cap, or on the step limit.

#include <functional>
#include <optional>
#include <vector>

#include "rl/agents.hpp"
#include "rl/env.hpp"

namespace axdse::rl {

/// Why the episode ended.
enum class StopReason {
  kTerminated,    ///< env reported a terminal state
  kTruncated,     ///< env reported truncation
  kRewardCap,     ///< cumulative reward reached the configured cap
  kStepLimit,     ///< max_steps exhausted
  kSuspended,     ///< run checkpointed mid-flight (dse::Explorer::Suspend)
};

/// Episode limits.
struct TrainOptions {
  /// Hard step cap (the paper uses 10,000).
  std::size_t max_steps = 10000;
  /// Stop once the cumulative reward reaches this value (the paper's
  /// "maximum predefined" total reward); disabled when unset.
  std::optional<double> stop_at_cumulative_reward;
};

/// Episode outcome.
struct TrainResult {
  std::vector<double> rewards;    ///< reward at every step, in order
  double cumulative_reward = 0.0;
  std::size_t steps = 0;
  StopReason stop_reason = StopReason::kStepLimit;
  StateId final_state = 0;
};

/// Called after every environment step.
using StepCallback = std::function<void(
    std::size_t step, StateId state, std::size_t action, const StepResult&)>;

/// Runs one episode of `agent` on `env`.
/// Throws std::invalid_argument if options.max_steps == 0.
TrainResult RunEpisode(Env& env, Agent& agent, const TrainOptions& options,
                       std::uint64_t reset_seed = 0,
                       const StepCallback& on_step = {});

/// Human-readable stop reason.
const char* ToString(StopReason reason) noexcept;

/// Inverse of ToString(StopReason). Throws std::invalid_argument for names
/// that match no reason.
StopReason StopReasonFromName(const std::string& name);

}  // namespace axdse::rl
