#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <random>
#include <stdexcept>
#include <thread>

namespace axdse::serve {

namespace {

/// "job 42" -> 42; throws on anything else.
std::uint64_t ParseJobPayload(const std::string& payload) {
  if (payload.rfind("job ", 0) != 0)
    throw ProtocolError("bad-response",
                        "expected 'job <id>', got '" + payload + "'");
  return ParseJobId(payload.substr(4));
}

}  // namespace

Client::Client(Socket socket, std::size_t max_line_bytes)
    : socket_(std::move(socket)),
      reader_(std::make_unique<LineReader>(socket_.Fd(), max_line_bytes)) {}

Client Client::Connect(const std::string& host, int port,
                       std::size_t max_line_bytes) {
  Client client(Socket::ConnectTcp(host, port), max_line_bytes);
  std::string banner;
  if (client.reader_->ReadLine(banner) != LineReader::Status::kLine)
    throw std::runtime_error("axdse-client: connection closed before HELLO");
  if (banner != std::string("HELLO ") + kProtocolVersion)
    throw ProtocolError("bad-hello",
                        "unsupported server banner '" + banner + "'");
  return client;
}

Client Client::Connect(const std::string& host, int port,
                       const ConnectRetry& retry,
                       std::size_t max_line_bytes) {
  std::minstd_rand jitter_rng{std::random_device{}()};
  std::size_t backoff_ms = std::max<std::size_t>(retry.backoff_ms, 1);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return Connect(host, port, max_line_bytes);
    } catch (const ProtocolError&) {
      throw;  // wrong banner: retrying cannot help
    } catch (const std::runtime_error&) {
      if (attempt >= retry.retries) throw;
    }
    const std::size_t bounded =
        std::min(backoff_ms, std::max<std::size_t>(retry.max_backoff_ms, 1));
    std::uniform_int_distribution<std::size_t> jitter(0, bounded / 2);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(bounded + jitter(jitter_rng)));
    backoff_ms = bounded * 2;
  }
}

void Client::RecordEvent(const std::string& payload) {
  const std::size_t space = payload.find(' ');
  if (space == std::string::npos) return;
  std::uint64_t id = 0;
  try {
    id = ParseJobId(payload.substr(0, space));
  } catch (const ProtocolError&) {
    return;  // not "<id> <detail>" — nothing to track
  }
  const std::string detail = payload.substr(space + 1);
  if (detail.rfind("state ", 0) != 0) return;
  std::string name = detail.substr(6);
  std::string rest;
  if (const std::size_t name_end = name.find(' ');
      name_end != std::string::npos) {
    rest = name.substr(name_end + 1);
    name.resize(name_end);
  }
  try {
    const JobState state = JobStateFromName(name);
    if (IsTerminal(state) || state == JobState::kSuspended)
      settled_jobs_.insert(id);
  } catch (const std::invalid_argument&) {
  }
  if (rest.rfind("error=", 0) == 0)
    last_event_error_ = dse::UnescapeRequestToken(rest.substr(6));
}

std::string Client::Command(const std::string& line) {
  const auto lost = [this](const char* reason) -> ConnectionLostError {
    std::string message = std::string("connection lost ") + reason;
    if (!last_event_error_.empty())
      message += " (last server error: " + last_event_error_ + ")";
    return ConnectionLostError(message, last_event_error_);
  };
  if (!socket_.SendAll(line + "\n")) throw lost("while sending");
  std::string response;
  while (true) {
    const LineReader::Status status = reader_->ReadLine(response);
    if (status == LineReader::Status::kTooLong)
      throw std::runtime_error("axdse-client: oversized response line");
    if (status != LineReader::Status::kLine)
      throw lost("while awaiting response");
    if (response.rfind("EVENT ", 0) == 0) {
      const std::string payload = response.substr(6);
      RecordEvent(payload);
      if (on_event_) on_event_(payload);
      continue;
    }
    if (response == "OK") return {};
    if (response.rfind("OK ", 0) == 0) return response.substr(3);
    if (response.rfind("ERR ", 0) == 0) {
      const std::string rest = response.substr(4);
      const std::size_t space = rest.find(' ');
      const std::string code =
          space == std::string::npos ? rest : rest.substr(0, space);
      const std::string detail =
          space == std::string::npos ? std::string() : rest.substr(space + 1);
      throw ProtocolError(code.empty() ? "error" : code, detail);
    }
    throw ProtocolError("bad-response",
                        "unrecognized server line '" + response + "'");
  }
}

void Client::SetTenant(const std::string& tenant) {
  Command("TENANT " + tenant);
}

std::uint64_t Client::Submit(const dse::ExplorationRequest& request) {
  return ParseJobPayload(Command("SUBMIT " + request.ToString()));
}

std::uint64_t Client::SubmitCampaign(const dse::CampaignSpec& spec) {
  return ParseJobPayload(Command("SUBMIT-CAMPAIGN " + spec.ToString()));
}

std::string Client::Status(std::uint64_t job_id) {
  return Command("STATUS " + WireUnsigned(job_id));
}

void Client::Watch(std::uint64_t job_id) {
  Command("WATCH " + WireUnsigned(job_id));
}

std::string Client::WaitJob(std::uint64_t job_id) {
  const std::string payload = Command("WAIT " + WireUnsigned(job_id));
  if (payload.rfind("state ", 0) != 0)
    throw ProtocolError("bad-response",
                        "expected 'state <name>', got '" + payload + "'");
  return payload.substr(6);
}

std::string Client::Results(std::uint64_t job_id) {
  const std::string payload = Command("RESULTS " + WireUnsigned(job_id));
  const std::string prefix = "result " + WireUnsigned(job_id) + " ";
  if (payload.rfind(prefix, 0) != 0)
    throw ProtocolError("bad-response",
                        "expected 'result <id> <json>', got '" +
                            payload.substr(0, 40) + "...'");
  return payload.substr(prefix.size()) + "\n";
}

void Client::Cancel(std::uint64_t job_id) {
  Command("CANCEL " + WireUnsigned(job_id));
}

std::string Client::Stats() { return Command("STATS"); }

void Client::RequestShutdown() { Command("SHUTDOWN"); }

}  // namespace axdse::serve
