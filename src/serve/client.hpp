#pragma once
// serve::Client — the programmatic counterpart of axdse-serve's line
// protocol, used by the axdse-client CLI and the serve test suites. One
// Client owns one connection; Command() implements the wire discipline
// (send a line, consume interleaved EVENT lines into the event handler,
// return the OK payload or throw the ERR as a ProtocolError), and the named
// helpers wrap the individual verbs.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "dse/campaign.hpp"
#include "dse/request.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace axdse::serve {

/// The connection dropped mid-conversation (unexpected EOF while awaiting a
/// response, or a failed send). Carries the last typed server error the
/// client observed on the event stream, so callers can report WHY the
/// daemon went away instead of a bare "connection lost".
class ConnectionLostError : public std::runtime_error {
 public:
  ConnectionLostError(const std::string& message,
                      std::string last_server_error)
      : std::runtime_error(message),
        last_server_error_(std::move(last_server_error)) {}

  /// Last "error=..." detail seen on an EVENT line (unescaped); empty when
  /// the server never reported one.
  const std::string& LastServerError() const noexcept {
    return last_server_error_;
  }

 private:
  std::string last_server_error_;
};

/// Connection-retry policy for Client::Connect. The first attempt is
/// always made; after a connection-level failure (refused, unreachable,
/// closed before HELLO — the daemon-still-starting cases) up to `retries`
/// further attempts follow, sleeping backoff_ms, 2*backoff_ms, ... between
/// them (bounded by max_backoff_ms) plus up to half a period of jitter so
/// simultaneous clients don't reconnect in lockstep. Protocol-level
/// failures (a server that answers with the wrong banner) are never
/// retried — that daemon will not get better.
struct ConnectRetry {
  std::size_t retries = 0;            ///< extra attempts after the first
  std::size_t backoff_ms = 50;        ///< sleep before the first retry
  std::size_t max_backoff_ms = 2000;  ///< exponential growth bound
};

class Client {
 public:
  /// Handler for unsolicited EVENT lines; receives "<job-id> <detail>".
  using EventHandler = std::function<void(const std::string&)>;

  /// Connects and consumes the HELLO banner, verifying the protocol
  /// version. Throws std::runtime_error on connection failure and
  /// ProtocolError("bad-hello", ...) on a version mismatch.
  static Client Connect(const std::string& host, int port,
                        std::size_t max_line_bytes = kDefaultMaxLineBytes);

  /// Connect() under a retry policy: connection-level failures are retried
  /// with bounded exponential backoff and jitter (see ConnectRetry); the
  /// last failure's error is rethrown when every attempt is exhausted.
  static Client Connect(const std::string& host, int port,
                        const ConnectRetry& retry,
                        std::size_t max_line_bytes = kDefaultMaxLineBytes);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Registers the sink for EVENT lines (replacing any previous one).
  /// Without a handler, events are silently discarded.
  void OnEvent(EventHandler handler) { on_event_ = std::move(handler); }

  /// Sends `line` and blocks for the response, dispatching any interleaved
  /// EVENT lines to the handler. Returns the OK payload (text after "OK ",
  /// possibly empty); throws ProtocolError on an ERR response and
  /// std::runtime_error on a broken connection.
  std::string Command(const std::string& line);

  // --- verb wrappers --------------------------------------------------------

  void SetTenant(const std::string& tenant);
  std::uint64_t Submit(const dse::ExplorationRequest& request);
  std::uint64_t SubmitCampaign(const dse::CampaignSpec& spec);
  /// Raw STATUS payload ("job <id> state=... kind=... ...").
  std::string Status(std::uint64_t job_id);
  /// Subscribes this connection to the job's EVENT stream.
  void Watch(std::uint64_t job_id);
  /// Blocks until the job settles; returns the final state name
  /// ("done", "failed", "cancelled", or "suspended" while draining).
  std::string WaitJob(std::uint64_t job_id);
  /// The job's final result document (single JSON line + trailing newline).
  std::string Results(std::uint64_t job_id);
  void Cancel(std::uint64_t job_id);
  /// Raw STATS payload ("stats jobs=... queued=... ...").
  std::string Stats();
  /// Asks the daemon to shut down (drain + exit).
  void RequestShutdown();

  /// True once an EVENT line reported `job_id` settling ("state done",
  /// "state failed", "state cancelled") or suspending. The server emits
  /// that event before answering the job's WAIT, so after a WATCH + WAIT
  /// pair this returning false means the event stream was truncated (the
  /// daemon died or evicted this watcher) — the caller saw an incomplete
  /// stream and must not report success.
  bool SawTerminalEvent(std::uint64_t job_id) const noexcept {
    return settled_jobs_.count(job_id) != 0;
  }

  /// Last "error=..." detail observed on any EVENT line (unescaped); empty
  /// when the server never reported one.
  const std::string& LastEventError() const noexcept {
    return last_event_error_;
  }

 private:
  Client(Socket socket, std::size_t max_line_bytes);

  /// Parses "<job-id> <detail>" event payloads for terminal-state and
  /// error bookkeeping (SawTerminalEvent / LastEventError).
  void RecordEvent(const std::string& payload);

  Socket socket_;
  std::unique_ptr<LineReader> reader_;
  EventHandler on_event_;
  std::unordered_set<std::uint64_t> settled_jobs_;
  std::string last_event_error_;
};

}  // namespace axdse::serve
