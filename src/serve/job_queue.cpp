#include "serve/job_queue.hpp"

#include <algorithm>

namespace axdse::serve {

void JobQueue::Push(const std::string& tenant, std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (limits_.total != 0 && queued_ >= limits_.total)
    throw AdmissionError("queue full (" + std::to_string(queued_) +
                         " jobs queued)");
  TenantQueue* slot = nullptr;
  for (auto& entry : tenants_)
    if (entry.tenant == tenant) slot = &entry;
  if (slot != nullptr && limits_.per_tenant != 0 &&
      slot->jobs.size() >= limits_.per_tenant)
    throw AdmissionError("tenant '" + tenant + "' queue full (" +
                         std::to_string(slot->jobs.size()) + " jobs queued)");
  if (slot == nullptr) {
    tenants_.push_back(TenantQueue{tenant, {}});
    slot = &tenants_.back();
  }
  slot->jobs.push_back(job_id);
  ++queued_;
  ready_.notify_one();
}

void JobQueue::Restore(const std::string& tenant, std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantQueue* slot = nullptr;
  for (auto& entry : tenants_)
    if (entry.tenant == tenant) slot = &entry;
  if (slot == nullptr) {
    tenants_.push_back(TenantQueue{tenant, {}});
    slot = &tenants_.back();
  }
  slot->jobs.push_back(job_id);
  ++queued_;
  ready_.notify_one();
}

std::optional<std::uint64_t> JobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || queued_ > 0; });
  if (closed_) return std::nullopt;
  // Round-robin: scan one full rotation starting at the cursor.
  const std::size_t count = tenants_.size();
  for (std::size_t offset = 0; offset < count; ++offset) {
    const std::size_t index = (cursor_ + offset) % count;
    TenantQueue& entry = tenants_[index];
    if (entry.jobs.empty()) continue;
    const std::uint64_t job_id = entry.jobs.front();
    entry.jobs.pop_front();
    --queued_;
    cursor_ = (index + 1) % count;
    return job_id;
  }
  return std::nullopt;  // unreachable: queued_ > 0 implies a non-empty deque
}

bool JobQueue::Remove(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : tenants_) {
    auto it = std::find(entry.jobs.begin(), entry.jobs.end(), job_id);
    if (it != entry.jobs.end()) {
      entry.jobs.erase(it);
      --queued_;
      return true;
    }
  }
  return false;
}

void JobQueue::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  ready_.notify_all();
}

bool JobQueue::Closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::Queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::size_t JobQueue::QueuedFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : tenants_)
    if (entry.tenant == tenant) return entry.jobs.size();
  return 0;
}

std::vector<std::string> JobQueue::BackloggedTenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> result;
  for (const auto& entry : tenants_)
    if (!entry.jobs.empty()) result.push_back(entry.tenant);
  return result;
}

}  // namespace axdse::serve
