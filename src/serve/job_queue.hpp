#pragma once
// serve::JobQueue — multi-tenant admission control and fair scheduling for
// the axdse-serve worker pool. Each tenant owns a FIFO of queued job ids;
// Pop() serves tenants round-robin with a rotating cursor, so a tenant
// submitting 50 jobs cannot starve one submitting 2 — at every dispatch each
// backlogged tenant is at most one full rotation away from service. Push()
// enforces per-tenant and total queue bounds (admission control); Restore()
// bypasses them so a restarted daemon can always requeue its own persisted
// backlog.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace axdse::serve {

/// Admission bounds. 0 disables the corresponding bound.
struct QueueLimits {
  std::size_t per_tenant = 8;  ///< max queued (not running) jobs per tenant
  std::size_t total = 64;      ///< max queued jobs across all tenants
};

/// Thrown by Push when an admission bound would be exceeded; the job was
/// not enqueued.
class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JobQueue {
 public:
  explicit JobQueue(QueueLimits limits = QueueLimits{})
      : limits_(limits) {}

  /// Enqueues `job_id` for `tenant`. Throws AdmissionError when the tenant's
  /// or the total queue bound is full.
  void Push(const std::string& tenant, std::uint64_t job_id);

  /// Enqueues without admission checks (daemon-restart requeue path).
  void Restore(const std::string& tenant, std::uint64_t job_id);

  /// Blocks until a job is available or the queue is closed. Serves tenants
  /// round-robin starting after the last-served tenant. Returns nullopt once
  /// Close() was called — even if jobs remain queued (drain semantics: the
  /// backlog is persisted, not executed).
  std::optional<std::uint64_t> Pop();

  /// Removes a queued job (cancellation). Returns false if it was not
  /// queued (already popped or never pushed).
  bool Remove(std::uint64_t job_id);

  /// Wakes all Pop() callers and makes every future Pop return nullopt.
  void Close();

  bool Closed() const;
  std::size_t Queued() const;
  std::size_t QueuedFor(const std::string& tenant) const;
  /// Tenants that currently have queued jobs.
  std::vector<std::string> BackloggedTenants() const;

 private:
  struct TenantQueue {
    std::string tenant;
    std::deque<std::uint64_t> jobs;
  };

  QueueLimits limits_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<TenantQueue> tenants_;  // rotation order = insertion order
  std::size_t cursor_ = 0;            // index of the next tenant to serve
  std::size_t queued_ = 0;
  bool closed_ = false;
};

}  // namespace axdse::serve
