#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace axdse::serve {

namespace {

[[noreturn]] void NetError(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

// --- Socket -----------------------------------------------------------------

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::SendAll(const std::string& data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::SendAllWithTimeout(const std::string& data,
                                int timeout_ms) noexcept {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
    // Socket buffer full (the slow-consumer case): wait for writability,
    // but only until the deadline.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0 && errno != EINTR) return false;
    // rc == 0 (poll timeout) loops back and fails the deadline check above.
  }
  return true;
}

void Socket::Shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::ConnectTcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &info);
  if (rc != 0)
    throw std::runtime_error("connect: cannot resolve '" + host +
                             "': " + ::gai_strerror(rc));
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* entry = info; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  if (fd < 0) {
    errno = saved_errno;
    NetError("connect to " + host + ":" + service);
  }
  return Socket(fd);
}

// --- Listener ---------------------------------------------------------------

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Listener Listener::Bind(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) NetError("listen: socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    NetError("listen: bind port " + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    NetError("listen: listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    NetError("listen: getsockname");
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = static_cast<int>(ntohs(bound.sin_port));
  return listener;
}

Socket Listener::Accept() noexcept {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();  // listener shut down (or fatal accept error): stop
  }
}

void Listener::Shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- LineReader -------------------------------------------------------------

LineReader::Status LineReader::ReadLine(std::string& line) {
  bool overlong = false;
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      if (overlong || newline > max_line_bytes_) {
        // Drop the oversized line but keep the remainder of the buffer —
        // the stream stays line-synchronized.
        buffer_.erase(0, newline + 1);
        return Status::kTooLong;
      }
      line.assign(buffer_, 0, newline);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer_.erase(0, newline + 1);
      return Status::kLine;
    }
    if (buffer_.size() > max_line_bytes_) {
      // Discard what we have; keep reading until the newline shows up.
      overlong = true;
      buffer_.clear();
    }
    if (eof_) return buffer_.empty() && !overlong ? Status::kEof
                                                  : Status::kError;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      // A trailing unterminated fragment is not a command line.
      if (buffer_.empty() && !overlong) return Status::kEof;
      buffer_.clear();
      return Status::kError;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace axdse::serve
