#pragma once
// serve::net — minimal POSIX TCP plumbing shared by the axdse-serve daemon
// and the axdse-client library: RAII sockets, a loopback listener with
// ephemeral-port support (bind to port 0, read the assigned port back), and
// a bounded buffered line reader that survives oversized input without
// desynchronizing the stream.

#include <cstddef>
#include <string>

namespace axdse::serve {

/// RAII wrapper of one connected TCP socket (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool Valid() const noexcept { return fd_ >= 0; }
  int Fd() const noexcept { return fd_; }

  /// Writes all of `data`, retrying partial writes and EINTR. Returns false
  /// on any error (e.g. the peer disconnected); never raises SIGPIPE.
  bool SendAll(const std::string& data) noexcept;

  /// SendAll with a deadline: non-blocking writes, waiting for writability
  /// at most `timeout_ms` total. Returns false on error OR timeout — and a
  /// timeout may leave a partial line on the wire, so the caller must stop
  /// using the connection (the daemon's slow-watcher eviction path).
  bool SendAllWithTimeout(const std::string& data, int timeout_ms) noexcept;

  /// Shuts the socket down for reading and writing, waking any thread
  /// blocked reading it. The fd stays owned until Close()/destruction, so
  /// a concurrent reader never sees its fd number recycled.
  void Shutdown() noexcept;
  void Close() noexcept;

  /// Connects to host:port (numeric or resolvable name). Throws
  /// std::runtime_error with the failing step and errno text.
  static Socket ConnectTcp(const std::string& host, int port);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to the loopback interface.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and
  /// listens. Throws std::runtime_error on failure (e.g. port in use).
  static Listener Bind(int port);

  bool Valid() const noexcept { return fd_ >= 0; }
  /// The actually bound port (the answer when Bind was given 0).
  int Port() const noexcept { return port_; }

  /// Blocks for the next connection. Returns an invalid Socket once the
  /// listener has been shut down.
  Socket Accept() noexcept;

  /// Wakes a blocked Accept() and makes all future accepts fail.
  void Shutdown() noexcept;
  void Close() noexcept;

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Buffered '\n'-delimited reader over a socket fd with a hard line-length
/// bound. Not thread-safe (one reader per connection thread).
class LineReader {
 public:
  enum class Status {
    kLine,     ///< `line` holds the next complete line (CR/LF stripped)
    kEof,      ///< orderly peer shutdown
    kTooLong,  ///< line exceeded the bound; input was discarded up to the
               ///< next newline, so the following ReadLine resynchronizes
    kError,    ///< read error (connection reset, fd shut down)
  };

  LineReader(int fd, std::size_t max_line_bytes) noexcept
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Blocks for the next line.
  Status ReadLine(std::string& line);

 private:
  int fd_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace axdse::serve
