#include "serve/protocol.hpp"

#include <charconv>
#include <system_error>

#include "util/number_format.hpp"

namespace axdse::serve {

const char* ToString(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kRequest:
      return "request";
    case JobKind::kCampaign:
      return "campaign";
  }
  return "request";
}

const char* ToString(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSuspended:
      return "suspended";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "failed";
}

JobKind JobKindFromName(const std::string& name) {
  if (name == "request") return JobKind::kRequest;
  if (name == "campaign") return JobKind::kCampaign;
  throw std::invalid_argument("unknown job kind '" + name + "'");
}

JobState JobStateFromName(const std::string& name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "suspended") return JobState::kSuspended;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  throw std::invalid_argument("unknown job state '" + name + "'");
}

bool IsTerminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

CommandLine ParseCommandLine(const std::string& line) {
  std::size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos)
    throw ProtocolError("bad-command", "empty command line");
  std::size_t end = begin;
  while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
  CommandLine command;
  command.verb = line.substr(begin, end - begin);
  for (char c : command.verb) {
    if ((c < 'A' || c > 'Z') && c != '-')
      throw ProtocolError("bad-command",
                          "verb must be uppercase letters or '-', got '" +
                              command.verb + "'");
  }
  const std::size_t rest_begin = line.find_first_not_of(" \t", end);
  if (rest_begin != std::string::npos) command.rest = line.substr(rest_begin);
  return command;
}

std::string WireUnsigned(std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;
  return std::string(buffer, ptr);
}

std::string WireDouble(double value) { return util::ShortestDouble(value); }

std::uint64_t ParseJobId(const std::string& token) {
  if (token.empty())
    throw ProtocolError("bad-job-id", "missing job id");
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw ProtocolError("bad-job-id",
                        "'" + token + "' is not a job id");
  return value;
}

std::string HelloLine() {
  return std::string("HELLO ") + kProtocolVersion + "\n";
}

std::string OkLine(const std::string& detail) {
  if (detail.empty()) return "OK\n";
  return "OK " + detail + "\n";
}

std::string ErrLine(const std::string& code, const std::string& detail) {
  return "ERR " + code + " " + detail + "\n";
}

std::string EventLine(std::uint64_t job_id, const std::string& detail) {
  return "EVENT " + WireUnsigned(job_id) + " " + detail + "\n";
}

}  // namespace axdse::serve
