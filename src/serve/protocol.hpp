#pragma once
// serve::protocol — the newline-delimited text protocol spoken between
// axdse-serve and its clients, plus the daemon-side job vocabulary
// (JobKind/JobState). One request or response per line:
//
//   server:  HELLO axdse-serve-v1
//   client:  SUBMIT kernel=matmul@8 max-steps=400 ...
//   server:  OK job 1
//   client:  WATCH 1
//   server:  EVENT 1 progress seed=1 steps=512 reward=12.5
//   server:  EVENT 1 state done
//   client:  RESULTS 1
//   server:  OK result 1 {"schema":"axdse-batch-v2",...}
//
// Responses are `OK <detail>` or `ERR <code> <detail>`; unsolicited
// `EVENT <job-id> <detail>` lines may be interleaved at any point on
// connections that subscribed via WATCH/WAIT. All numbers on the wire are
// formatted with std::to_chars — the protocol is byte-stable under any
// global C++ locale.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace axdse::serve {

/// Version token announced in the HELLO banner; bumped on any incompatible
/// wire change.
inline constexpr const char* kProtocolVersion = "axdse-serve-v1";

/// Default bound for one command line (requests and campaign specs are a few
/// hundred bytes; 1 MiB leaves generous headroom while capping abuse).
inline constexpr std::size_t kDefaultMaxLineBytes = std::size_t{1} << 20;

/// Typed protocol failure: carries the `ERR` code token plus detail text.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& detail)
      : std::runtime_error(code + ": " + detail), code_(std::move(code)) {}

  const std::string& Code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// What a job executes: one ExplorationRequest or one CampaignSpec grid.
enum class JobKind {
  kRequest,
  kCampaign,
};

/// Job lifecycle. queued -> running -> {done, failed, cancelled}; a drain
/// parks running jobs as suspended, and a daemon restart requeues them.
enum class JobState {
  kQueued,
  kRunning,
  kSuspended,
  kDone,
  kFailed,
  kCancelled,
};

const char* ToString(JobKind kind) noexcept;
const char* ToString(JobState state) noexcept;

/// Inverses of ToString. Throw std::invalid_argument on unknown names.
JobKind JobKindFromName(const std::string& name);
JobState JobStateFromName(const std::string& name);

/// True for states a job can never leave (done/failed/cancelled).
bool IsTerminal(JobState state) noexcept;

/// One parsed command line: the uppercase verb and the untouched remainder
/// (leading whitespace stripped).
struct CommandLine {
  std::string verb;
  std::string rest;
};

/// Splits `line` into verb + rest. The verb must be non-empty and consist of
/// uppercase letters and '-' only; throws ProtocolError("bad-command", ...)
/// otherwise. Verb casing is the client's job — lowercase verbs are
/// rejected, keeping the grammar unambiguous.
CommandLine ParseCommandLine(const std::string& line);

/// Locale-independent wire formatting (std::to_chars, shortest round-trip
/// for doubles).
std::string WireUnsigned(std::uint64_t value);
std::string WireDouble(double value);

/// Parses a decimal job id; throws ProtocolError("bad-job-id", ...) on
/// anything but a plain non-negative integer.
std::uint64_t ParseJobId(const std::string& token);

// --- line builders (each returns a complete line including '\n') -----------

std::string HelloLine();
std::string OkLine(const std::string& detail);
std::string ErrLine(const std::string& code, const std::string& detail);
std::string EventLine(std::uint64_t job_id, const std::string& detail);

}  // namespace axdse::serve
