#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <locale>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "dse/campaign.hpp"
#include "dse/checkpoint.hpp"
#include "dse/engine.hpp"
#include "dse/request.hpp"
#include "report/campaign.hpp"
#include "report/export.hpp"
#include "serve/net.hpp"

namespace axdse::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestHeader = "axdse-serve-manifest v1";
constexpr const char* kManifestFile = "jobs.manifest";

/// Error/detail text travels on a line protocol: newlines must not survive.
std::string Sanitize(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

std::string FirstToken(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return {};
  std::size_t end = begin;
  while (end < text.size() && text[end] != ' ' && text[end] != '\t') ++end;
  return text.substr(begin, end - begin);
}

}  // namespace

/// One accepted client connection. Send() serializes writers (the
/// connection's own response thread and any worker emitting events), and a
/// failed send marks the connection dead so later events are dropped
/// without touching the socket again.
struct Connection {
  Socket socket;
  std::mutex write_mutex;
  std::string tenant = "default";
  std::atomic<bool> alive{true};

  explicit Connection(Socket s) : socket(std::move(s)) {}

  bool Send(const std::string& data) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!alive.load(std::memory_order_relaxed)) return false;
    if (!socket.SendAll(data)) {
      alive.store(false, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Event push with a deadline: a watcher that cannot absorb the event in
  /// time is disconnected (a timed-out send may leave a partial line on the
  /// wire, so the connection cannot be reused). The Shutdown() also wakes
  /// the connection's reader thread so it gets reaped promptly.
  bool SendEvent(const std::string& data, int timeout_ms) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!alive.load(std::memory_order_relaxed)) return false;
    const bool ok = timeout_ms > 0
                        ? socket.SendAllWithTimeout(data, timeout_ms)
                        : socket.SendAll(data);
    if (!ok) {
      alive.store(false, std::memory_order_relaxed);
      socket.Shutdown();
      return false;
    }
    return true;
  }
};

/// Daemon-side state of one job. Guarded by Impl::jobs_mutex except for
/// `id`, `kind`, `tenant`, and `spec`, which are immutable after creation.
struct JobRecord {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kRequest;
  std::string tenant;
  std::string spec;  ///< canonical ToString() of the request / campaign

  JobState state = JobState::kQueued;
  std::string error;
  bool cancel = false;

  /// Steps per (request index, seed index) run, from progress hooks.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> run_steps;
  std::size_t cells_done = 0;
  std::size_t cells_total = 0;

  std::vector<std::weak_ptr<Connection>> watchers;

  std::size_t TotalSteps() const {
    std::size_t total = 0;
    for (const auto& [key, steps] : run_steps) total += steps;
    return total;
  }
};

struct Server::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        engine(dse::EngineOptions{options.engine_workers}),
        queue(options.limits) {}

  ServerOptions options;
  dse::Engine engine;
  JobQueue queue;

  Listener listener;
  std::thread accept_thread;
  std::vector<std::thread> workers;

  mutable std::mutex conn_mutex;
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> conn_threads;

  mutable std::mutex jobs_mutex;
  std::condition_variable jobs_cv;
  std::map<std::uint64_t, std::shared_ptr<JobRecord>> jobs;
  std::uint64_t next_id = 1;

  std::mutex cache_mutex;
  std::map<std::string, std::shared_ptr<instrument::SharedEvaluationCache>>
      daemon_caches;

  std::atomic<bool> draining{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> shutdown_requested{false};
  bool started = false;
  bool drained = false;  // workers joined
  bool stopped = false;

  // --- paths ----------------------------------------------------------------

  std::string ManifestPath() const {
    return (fs::path(options.state_dir) / kManifestFile).string();
  }

  std::string JobDir(std::uint64_t id) const {
    return (fs::path(options.state_dir) / ("job-" + WireUnsigned(id)))
        .string();
  }

  // --- manifest (caller holds jobs_mutex) -----------------------------------

  void PersistManifest() {
    std::ostringstream out;
    out.imbue(std::locale::classic());  // locale-independent numbers
    out << kManifestHeader << "\n";
    out << "next-id " << WireUnsigned(next_id) << "\n";
    for (const auto& [id, job] : jobs) {
      out << "job " << WireUnsigned(id) << " " << ToString(job->kind) << " "
          << ToString(job->state) << " "
          << dse::EscapeRequestToken(job->tenant) << " "
          << dse::EscapeRequestToken(job->spec) << " "
          << (job->error.empty() ? "-" : dse::EscapeRequestToken(job->error))
          << "\n";
    }
    dse::AtomicWriteCheckpointFile(ManifestPath(), out.str(),
                                   "serve manifest");
  }

  void LoadManifest() {
    std::ifstream in(ManifestPath());
    if (!in) return;  // fresh state directory
    std::string line;
    if (!std::getline(in, line) || line != kManifestHeader)
      throw std::runtime_error("serve manifest: bad header in " +
                               ManifestPath());
    if (!std::getline(in, line) || line.rfind("next-id ", 0) != 0)
      throw std::runtime_error("serve manifest: missing next-id line");
    next_id = std::stoull(line.substr(8));
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream tokens(line);
      std::string tag, id_text, kind, state, tenant, spec, error;
      tokens >> tag >> id_text >> kind >> state >> tenant >> spec >> error;
      if (tag != "job" || !tokens)
        throw std::runtime_error("serve manifest: malformed job line");
      auto job = std::make_shared<JobRecord>();
      job->id = std::stoull(id_text);
      job->kind = JobKindFromName(kind);
      job->state = JobStateFromName(state);
      job->tenant = dse::UnescapeRequestToken(tenant);
      job->spec = dse::UnescapeRequestToken(spec);
      if (error != "-") job->error = dse::UnescapeRequestToken(error);
      jobs[job->id] = job;
    }
    // Requeue the unfinished backlog in id order: jobs caught mid-run by the
    // previous process (running/suspended) resume from their checkpoint
    // directories; queued jobs simply run.
    for (auto& [id, job] : jobs) {
      if (IsTerminal(job->state)) continue;
      job->state = JobState::kQueued;
      queue.Restore(job->tenant, id);
    }
    PersistManifest();
  }

  // --- events ---------------------------------------------------------------

  /// Snapshots the job's live watchers under jobs_mutex, then sends outside
  /// the lock (a blocked client must not stall the daemon's state).
  void EmitEvent(const std::shared_ptr<JobRecord>& job,
                 const std::string& detail) {
    std::vector<std::shared_ptr<Connection>> targets;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      auto& watchers = job->watchers;
      watchers.erase(std::remove_if(watchers.begin(), watchers.end(),
                                    [&](const std::weak_ptr<Connection>& w) {
                                      auto conn = w.lock();
                                      if (!conn || !conn->alive.load())
                                        return true;
                                      targets.push_back(std::move(conn));
                                      return false;
                                    }),
                     watchers.end());
    }
    if (targets.empty()) return;
    const std::string event = EventLine(job->id, detail);
    for (auto& conn : targets)
      conn->SendEvent(event, options.event_send_timeout_ms);
  }

  void SetTerminalOrSuspended(const std::shared_ptr<JobRecord>& job,
                              JobState state, const std::string& error) {
    // Emit the terminal event before waking WAITers: per-connection writes
    // are serialized, so a client that both WATCHes and WAITs is guaranteed
    // to read the "state ..." event before WAIT's OK response.
    EmitEvent(job, std::string("state ") + ToString(state) +
                       (error.empty() ? std::string()
                                      : " error=" + dse::EscapeRequestToken(
                                                        Sanitize(error))));
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      job->state = state;
      job->error = Sanitize(error);
      PersistManifest();
      jobs_cv.notify_all();
    }
  }

  // --- job execution --------------------------------------------------------

  void RunWorker() {
    while (true) {
      const std::optional<std::uint64_t> id = queue.Pop();
      if (!id) return;  // queue closed: drain
      std::shared_ptr<JobRecord> job;
      bool cancelled_in_queue = false;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex);
        auto it = jobs.find(*id);
        if (it == jobs.end()) continue;
        job = it->second;
        // CANCEL raced us popping the job: honor it without running.
        cancelled_in_queue = job->cancel;
        job->state =
            cancelled_in_queue ? JobState::kCancelled : JobState::kRunning;
        PersistManifest();
        jobs_cv.notify_all();
      }
      if (cancelled_in_queue) {
        EmitEvent(job, "state cancelled");
        continue;
      }
      EmitEvent(job, "state running");
      RunJob(job);
    }
  }

  dse::RunHooks MakeHooks(const std::shared_ptr<JobRecord>& job) {
    dse::RunHooks hooks;
    hooks.interval = options.progress_interval;
    hooks.on_progress = [this, job](const dse::JobProgress& p) {
      {
        std::lock_guard<std::mutex> lock(jobs_mutex);
        job->run_steps[{p.request_index, p.seed_index}] = p.steps;
      }
      std::string detail = "progress seed=" + WireUnsigned(p.seed) +
                           " steps=" + WireUnsigned(p.steps) +
                           " reward=" + WireDouble(p.cumulative_reward);
      if (p.has_best)
        detail += " best-dacc=" + WireDouble(p.best.delta_acc) +
                  " best-dpower=" + WireDouble(p.best.delta_power_mw) +
                  " best-dtime=" + WireDouble(p.best.delta_time_ns);
      if (p.finished) detail += " finished=1";
      if (p.suspended) detail += " suspended=1";
      EmitEvent(job, detail);
    };
    hooks.should_suspend = [this, job] {
      if (draining.load() || stopping.load()) return true;
      std::lock_guard<std::mutex> lock(jobs_mutex);
      return job->cancel;
    };
    if (options.daemon_cache) {
      hooks.cache_provider = [this](const std::string& signature,
                                    std::size_t capacity) {
        std::lock_guard<std::mutex> lock(cache_mutex);
        auto& slot = daemon_caches[signature];
        if (!slot) {
          instrument::SharedEvaluationCache::Options copts;
          copts.capacity = capacity;
          slot = std::make_shared<instrument::SharedEvaluationCache>(copts);
        }
        return slot;
      };
    }
    return hooks;
  }

  void WriteResultDocument(const std::shared_ptr<JobRecord>& job,
                           const std::string& json) {
    dse::AtomicWriteCheckpointFile(
        (fs::path(JobDir(job->id)) / "result.json").string(), json,
        "serve result");
  }

  void RunJob(const std::shared_ptr<JobRecord>& job) {
    const std::string jobdir = JobDir(job->id);
    const dse::RunHooks hooks = MakeHooks(job);
    bool complete = false;
    try {
      if (job->kind == JobKind::kRequest) {
        const auto request = dse::ExplorationRequest::Parse(job->spec);
        dse::CheckpointOptions checkpoint;
        checkpoint.directory = jobdir;
        const dse::BatchResult batch =
            engine.Run({request}, checkpoint, hooks);
        complete = batch.Complete();
        if (complete) WriteResultDocument(job, report::BatchJson(batch));
      } else {
        const auto spec = dse::CampaignSpec::Parse(job->spec);
        dse::CampaignOptions copts;
        copts.chunk_cells = options.chunk_cells;
        copts.checkpoint_directory = jobdir;
        dse::CampaignObserver observer;
        observer.engine = hooks;
        observer.on_chunk = [this,
                             job](const dse::CampaignChunkProgress& p) {
          {
            std::lock_guard<std::mutex> lock(jobs_mutex);
            job->cells_done = p.cells_done;
            job->cells_total = p.num_cells;
          }
          EmitEvent(job, "chunk index=" + WireUnsigned(p.chunk_index) +
                             " cells=" + WireUnsigned(p.cells_done) + "/" +
                             WireUnsigned(p.num_cells) +
                             (p.resumed ? " resumed=1" : ""));
          // The streaming-Pareto feed: one line per kernel front, plus the
          // current best objective per kernel.
          for (std::size_t i = 0; i < p.fronts.size(); ++i) {
            std::string line = "pareto kernel=" +
                               dse::EscapeRequestToken(p.fronts[i].kernel) +
                               " points=" +
                               WireUnsigned(p.fronts[i].front.Size());
            if (i < p.best.size())
              line += " best=" + WireDouble(p.best[i].objective) +
                      " feasible=" + (p.best[i].feasible ? "1" : "0");
            EmitEvent(job, line);
          }
        };
        const dse::Campaign campaign(engine);
        const dse::CampaignResult result =
            campaign.Run(spec, copts, observer);
        complete = result.Complete();
        if (complete) WriteResultDocument(job, report::CampaignJson(result));
      }
    } catch (const std::exception& e) {
      SetTerminalOrSuspended(job, JobState::kFailed, e.what());
      return;
    }
    if (complete) {
      SetTerminalOrSuspended(job, JobState::kDone, "");
      return;
    }
    // The run suspended: either this job was cancelled, or the daemon is
    // draining. A cancelled job's checkpoint state is dead weight — drop it.
    bool cancelled;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      cancelled = job->cancel;
    }
    if (cancelled) {
      std::error_code ec;
      fs::remove_all(jobdir, ec);
      SetTerminalOrSuspended(job, JobState::kCancelled, "");
    } else {
      SetTerminalOrSuspended(job, JobState::kSuspended, "");
    }
  }

  // --- protocol handlers ----------------------------------------------------

  void Dispatch(const std::shared_ptr<Connection>& conn,
                const std::string& line) {
    try {
      const CommandLine command = ParseCommandLine(line);
      if (command.verb == "PING") {
        conn->Send(OkLine("pong"));
      } else if (command.verb == "TENANT") {
        HandleTenant(conn, command.rest);
      } else if (command.verb == "SUBMIT") {
        HandleSubmit(conn, command.rest, JobKind::kRequest);
      } else if (command.verb == "SUBMIT-CAMPAIGN") {
        HandleSubmit(conn, command.rest, JobKind::kCampaign);
      } else if (command.verb == "STATUS") {
        HandleStatus(conn, command.rest);
      } else if (command.verb == "RESULTS") {
        HandleResults(conn, command.rest);
      } else if (command.verb == "WATCH") {
        HandleWatch(conn, command.rest);
      } else if (command.verb == "WAIT") {
        HandleWait(conn, command.rest);
      } else if (command.verb == "CANCEL") {
        HandleCancel(conn, command.rest);
      } else if (command.verb == "STATS") {
        HandleStats(conn);
      } else if (command.verb == "SHUTDOWN") {
        shutdown_requested.store(true);
        conn->Send(OkLine("shutting-down"));
      } else {
        throw ProtocolError("unknown-command",
                            "verb '" + command.verb + "' is not known");
      }
    } catch (const ProtocolError& e) {
      conn->Send(ErrLine(e.Code(), Sanitize(e.what())));
    } catch (const AdmissionError& e) {
      conn->Send(ErrLine("admission", Sanitize(e.what())));
    } catch (const dse::CheckpointError& e) {
      conn->Send(ErrLine("io", Sanitize(e.what())));
    } catch (const std::invalid_argument& e) {
      conn->Send(ErrLine("bad-request", Sanitize(e.what())));
    } catch (const std::exception& e) {
      conn->Send(ErrLine("internal", Sanitize(e.what())));
    }
  }

  void HandleTenant(const std::shared_ptr<Connection>& conn,
                    const std::string& rest) {
    const std::string name = FirstToken(rest);
    if (name.empty() || name != rest)
      throw ProtocolError("bad-tenant",
                          "TENANT takes exactly one token, e.g. TENANT alice");
    conn->tenant = name;
    conn->Send(OkLine("tenant " + name));
  }

  void HandleSubmit(const std::shared_ptr<Connection>& conn,
                    const std::string& rest, JobKind kind) {
    if (draining.load() || stopping.load())
      throw ProtocolError("draining", "daemon is draining; resubmit after restart");
    if (rest.empty())
      throw ProtocolError("bad-request", "SUBMIT needs a serialized job spec");
    // Parse + canonicalize BEFORE allocating anything: a malformed spec
    // must leave no trace.
    std::string canonical;
    if (kind == JobKind::kRequest) {
      const auto request = dse::ExplorationRequest::Parse(rest);
      request.Validate();
      canonical = request.ToString();
    } else {
      const auto spec = dse::CampaignSpec::Parse(rest);
      spec.Validate();
      canonical = spec.ToString();
    }
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      // Admission first: a rejected Push throws before any state exists.
      queue.Push(conn->tenant, next_id);
      id = next_id++;
      auto job = std::make_shared<JobRecord>();
      job->id = id;
      job->kind = kind;
      job->tenant = conn->tenant;
      job->spec = std::move(canonical);
      jobs[id] = job;
      PersistManifest();
    }
    conn->Send(OkLine("job " + WireUnsigned(id)));
  }

  std::shared_ptr<JobRecord> FindJob(std::uint64_t id) {
    // jobs_mutex held by caller
    auto it = jobs.find(id);
    if (it == jobs.end())
      throw ProtocolError("unknown-job",
                          "no job with id " + WireUnsigned(id));
    return it->second;
  }

  void HandleStatus(const std::shared_ptr<Connection>& conn,
                    const std::string& rest) {
    const std::uint64_t id = ParseJobId(FirstToken(rest));
    std::string payload;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      const auto job = FindJob(id);
      payload = "job " + WireUnsigned(id) +
                " state=" + ToString(job->state) +
                " kind=" + ToString(job->kind) +
                " tenant=" + dse::EscapeRequestToken(job->tenant) +
                " steps=" + WireUnsigned(job->TotalSteps());
      if (job->kind == JobKind::kCampaign)
        payload += " cells=" + WireUnsigned(job->cells_done) + "/" +
                   WireUnsigned(job->cells_total);
      if (!job->error.empty())
        payload += " error=" + dse::EscapeRequestToken(job->error);
    }
    conn->Send(OkLine(payload));
  }

  void HandleResults(const std::shared_ptr<Connection>& conn,
                     const std::string& rest) {
    const std::uint64_t id = ParseJobId(FirstToken(rest));
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      const auto job = FindJob(id);
      if (job->state != JobState::kDone)
        throw ProtocolError("not-done", "job " + WireUnsigned(id) + " is " +
                                            ToString(job->state));
    }
    std::string json = dse::ReadCheckpointFile(
        (fs::path(JobDir(id)) / "result.json").string(), "serve result");
    while (!json.empty() && (json.back() == '\n' || json.back() == '\r'))
      json.pop_back();
    conn->Send(OkLine("result " + WireUnsigned(id) + " " + json));
  }

  void HandleWatch(const std::shared_ptr<Connection>& conn,
                   const std::string& rest) {
    const std::uint64_t id = ParseJobId(FirstToken(rest));
    JobState state;
    std::shared_ptr<JobRecord> job;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      job = FindJob(id);
      job->watchers.push_back(conn);
      state = job->state;
    }
    conn->Send(OkLine("watching " + WireUnsigned(id)));
    // Seed the subscriber with the current state so a watcher of an
    // already-terminal job does not hang waiting for a transition.
    conn->Send(EventLine(id, std::string("state ") + ToString(state)));
  }

  void HandleWait(const std::shared_ptr<Connection>& conn,
                  const std::string& rest) {
    const std::uint64_t id = ParseJobId(FirstToken(rest));
    JobState state;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex);
      const auto job = FindJob(id);
      jobs_cv.wait(lock, [&] {
        return stopping.load() || IsTerminal(job->state) ||
               job->state == JobState::kSuspended;
      });
      state = job->state;
    }
    if (!IsTerminal(state) && state != JobState::kSuspended)
      throw ProtocolError("shutting-down", "daemon stopped before job " +
                                               WireUnsigned(id) + " settled");
    conn->Send(OkLine(std::string("state ") + ToString(state)));
  }

  void HandleCancel(const std::shared_ptr<Connection>& conn,
                    const std::string& rest) {
    const std::uint64_t id = ParseJobId(FirstToken(rest));
    std::shared_ptr<JobRecord> job;
    bool now_cancelled = false;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      job = FindJob(id);
      if (job->tenant != conn->tenant)
        throw ProtocolError("forbidden", "job " + WireUnsigned(id) +
                                             " belongs to tenant '" +
                                             job->tenant + "'");
      if (IsTerminal(job->state))
        throw ProtocolError("not-cancellable", "job " + WireUnsigned(id) +
                                                   " is already " +
                                                   ToString(job->state));
      job->cancel = true;
      if (queue.Remove(id)) {
        // Still queued: cancel takes effect immediately.
        job->state = JobState::kCancelled;
        PersistManifest();
        jobs_cv.notify_all();
        now_cancelled = true;
      }
      // Otherwise the job is running (or suspended): the worker's
      // should_suspend poll picks the flag up and finishes the cancel.
    }
    if (now_cancelled) EmitEvent(job, "state cancelled");
    conn->Send(OkLine("cancelling " + WireUnsigned(id)));
  }

  void HandleStats(const std::shared_ptr<Connection>& conn) {
    const ServerStats stats = ComputeStats();
    conn->Send(OkLine(
        "stats jobs=" + WireUnsigned(stats.jobs) +
        " queued=" + WireUnsigned(stats.queued) +
        " running=" + WireUnsigned(stats.running) +
        " suspended=" + WireUnsigned(stats.suspended) +
        " done=" + WireUnsigned(stats.done) +
        " failed=" + WireUnsigned(stats.failed) +
        " cancelled=" + WireUnsigned(stats.cancelled) +
        " connections=" + WireUnsigned(stats.connections) +
        " tenants=" + WireUnsigned(stats.tenants)));
  }

  ServerStats ComputeStats() const {
    ServerStats stats;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      std::set<std::string> tenants;
      stats.jobs = jobs.size();
      for (const auto& [id, job] : jobs) {
        tenants.insert(job->tenant);
        switch (job->state) {
          case JobState::kQueued: ++stats.queued; break;
          case JobState::kRunning: ++stats.running; break;
          case JobState::kSuspended: ++stats.suspended; break;
          case JobState::kDone: ++stats.done; break;
          case JobState::kFailed: ++stats.failed; break;
          case JobState::kCancelled: ++stats.cancelled; break;
        }
      }
      stats.tenants = tenants.size();
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      for (const auto& conn : connections)
        if (conn->alive.load()) ++stats.connections;
    }
    return stats;
  }

  // --- connection plumbing --------------------------------------------------

  void AcceptLoop() {
    while (true) {
      Socket socket = listener.Accept();
      if (!socket.Valid()) return;  // listener shut down
      auto conn = std::make_shared<Connection>(std::move(socket));
      {
        std::lock_guard<std::mutex> lock(conn_mutex);
        if (stopping.load()) {
          conn->socket.Shutdown();
          continue;
        }
        connections.push_back(conn);
        conn_threads.emplace_back(
            [this, conn] { HandleConnection(conn); });
      }
    }
  }

  void HandleConnection(const std::shared_ptr<Connection>& conn) {
    conn->Send(HelloLine());
    LineReader reader(conn->socket.Fd(), options.max_line_bytes);
    std::string line;
    while (conn->alive.load()) {
      const LineReader::Status status = reader.ReadLine(line);
      if (status == LineReader::Status::kEof ||
          status == LineReader::Status::kError)
        break;
      if (status == LineReader::Status::kTooLong) {
        if (!conn->Send(ErrLine(
                "line-too-long",
                "command exceeds " + WireUnsigned(options.max_line_bytes) +
                    " bytes; discarded up to the next newline")))
          break;
        continue;
      }
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      Dispatch(conn, line);
    }
    conn->alive.store(false);
    conn->socket.Shutdown();
    std::lock_guard<std::mutex> lock(conn_mutex);
    connections.erase(
        std::remove(connections.begin(), connections.end(), conn),
        connections.end());
  }

  // --- lifecycle ------------------------------------------------------------

  void Start() {
    if (options.state_dir.empty())
      throw std::invalid_argument("axdse-serve: state_dir is required");
    fs::create_directories(options.state_dir);
    LoadManifest();
    listener = Listener::Bind(options.port);
    for (std::size_t i = 0; i < std::max<std::size_t>(1, options.job_workers);
         ++i)
      workers.emplace_back([this] { RunWorker(); });
    accept_thread = std::thread([this] { AcceptLoop(); });
    started = true;
  }

  void Drain() {
    if (drained) return;
    draining.store(true);
    queue.Close();
    for (auto& worker : workers)
      if (worker.joinable()) worker.join();
    workers.clear();
    drained = true;
  }

  void Stop() {
    if (stopped) return;
    Drain();
    stopping.store(true);
    {
      std::lock_guard<std::mutex> lock(jobs_mutex);
      jobs_cv.notify_all();
    }
    listener.Shutdown();
    if (accept_thread.joinable()) accept_thread.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      for (auto& conn : connections) {
        conn->alive.store(false);
        conn->socket.Shutdown();
      }
      threads.swap(conn_threads);
    }
    for (auto& thread : threads)
      if (thread.joinable()) thread.join();
    listener.Close();
    stopped = true;
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  if (impl_ && impl_->started) impl_->Stop();
}

void Server::Start() { impl_->Start(); }

int Server::Port() const noexcept { return impl_->listener.Port(); }

bool Server::ShutdownRequested() const noexcept {
  return impl_->shutdown_requested.load();
}

void Server::Drain() { impl_->Drain(); }

void Server::Stop() { impl_->Stop(); }

ServerStats Server::Stats() const { return impl_->ComputeStats(); }

}  // namespace axdse::serve
