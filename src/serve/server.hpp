#pragma once
// serve::Server — the axdse-serve daemon core: a loopback TCP listener
// speaking the axdse-serve-v1 line protocol (serve/protocol.hpp), a
// multi-tenant JobQueue feeding a pool of job workers, and one shared
// dse::Engine executing every job. Jobs are ExplorationRequests or
// CampaignSpecs submitted as their token serializations; each runs under
// the checkpoint subsystem in its own state directory, streams progress and
// Pareto-front events to subscribed connections, and persists its lifecycle
// in a jobs manifest. Drain() (the SIGTERM path) cooperatively suspends
// every in-flight job through the engine's should_suspend hook; a Server
// restarted on the same state directory requeues the suspended and queued
// backlog and finishes it with final result JSON byte-identical to an
// uninterrupted run (the PR3 checkpoint invariant, lifted to the daemon).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"

namespace axdse::serve {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1. 0 asks the kernel for an ephemeral
  /// port; read the result back via Server::Port().
  int port = 4711;
  /// Required: directory holding the jobs manifest, per-job checkpoint
  /// directories, and result documents. Restarting a Server on the same
  /// directory resumes its backlog.
  std::string state_dir;
  /// Concurrently executing jobs (worker threads popping the queue).
  std::size_t job_workers = 2;
  /// Engine worker threads per job (0 = hardware concurrency).
  std::size_t engine_workers = 0;
  /// Environment steps between progress events per exploration run.
  std::size_t progress_interval = 512;
  /// Campaign chunk size (grid cells per engine call; part of a campaign's
  /// checkpoint identity, so it must not change across a daemon restart).
  std::size_t chunk_cells = 4;
  /// Hard bound on one protocol line (see LineReader).
  std::size_t max_line_bytes = kDefaultMaxLineBytes;
  /// Deadline (milliseconds) for pushing one WATCH event to a subscriber.
  /// A connection that cannot absorb an event within the deadline is
  /// dropped, so a stalled watcher never wedges a job worker (other tenants
  /// keep progressing). 0 falls back to blocking sends.
  int event_send_timeout_ms = 5000;
  /// Per-tenant and total admission bounds for queued jobs.
  QueueLimits limits;
  /// Share evaluation caches of CacheMode::kShared jobs daemon-wide (same
  /// kernel identity => same cache across jobs and tenants), so repeat
  /// submissions warm-start. Logical results are unaffected; cache-cost
  /// counters in shared-mode results become daemon-history-dependent, so
  /// byte-identical drain/restart output is guaranteed for private-cache
  /// jobs (the default) only.
  bool daemon_cache = true;
};

/// Snapshot of daemon state (the STATS verb's payload).
struct ServerStats {
  std::size_t jobs = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t suspended = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t connections = 0;
  std::size_t tenants = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< Stop()s a still-running server.
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads (or creates) the state directory and manifest, requeues any
  /// unfinished backlog, binds the listener, and spawns the worker pool and
  /// accept loop. Throws on bind failure, missing state_dir option, or a
  /// corrupt manifest.
  void Start();

  /// The bound port (resolves port 0 to the kernel-assigned port).
  int Port() const noexcept;

  /// True once a client issued SHUTDOWN; the embedding main is expected to
  /// poll this (or its signal flag) and call Stop().
  bool ShutdownRequested() const noexcept;

  /// Graceful drain: stops dispatching queued jobs, cooperatively suspends
  /// every in-flight job into its checkpoint directory, persists the
  /// manifest, and joins the workers. Queued jobs stay queued on disk.
  /// Idempotent. Connections stay open (STATUS/RESULTS still served).
  void Drain();

  /// Drain() + tear down: wakes blocked WAITs, shuts down the listener and
  /// every connection, joins all threads. Idempotent.
  void Stop();

  ServerStats Stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace axdse::serve
