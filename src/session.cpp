#include "session.hpp"

#include <utility>

namespace axdse {

Session::Session(const dse::EngineOptions& options)
    : engine_(options, workloads::KernelRegistry::Global()) {}

std::vector<std::string> Session::Kernels() const {
  return workloads::KernelRegistry::Global().Names();
}

void Session::RegisterKernel(const std::string& name,
                             workloads::KernelRegistry::Factory factory) {
  workloads::KernelRegistry::Global().Register(name, std::move(factory));
}

dse::RequestBuilder Session::Request(const std::string& kernel) {
  return dse::RequestBuilder(kernel);
}

dse::RequestResult Session::Explore(
    const dse::ExplorationRequest& request) const {
  return engine_.RunOne(request);
}

dse::BatchResult Session::ExploreBatch(
    const std::vector<dse::ExplorationRequest>& requests) const {
  return engine_.Run(requests);
}

dse::BatchResult Session::ExploreBatch(
    const std::vector<dse::ExplorationRequest>& requests,
    const dse::CheckpointOptions& checkpoint) const {
  return engine_.Run(requests, checkpoint);
}

dse::BatchResult Session::ResumeBatch(
    const std::vector<dse::ExplorationRequest>& requests,
    const std::string& directory) const {
  return engine_.ResumeBatch(requests, directory);
}

std::vector<instrument::Measurement> Session::Score(
    const dse::ExplorationRequest& identity,
    const std::vector<dse::Configuration>& configs, std::size_t lanes) const {
  return engine_.Score(identity, configs, lanes);
}

dse::CampaignResult Session::RunCampaign(
    const dse::CampaignSpec& spec, const dse::CampaignOptions& options) const {
  return dse::Campaign(engine_).Run(spec, options);
}

dse::ShardRunReport Session::RunShardedCampaign(
    const dse::CampaignSpec& spec, const dse::ShardOptions& options) const {
  return dse::ShardWorker(engine_).Run(spec, options);
}

dse::CampaignResult Session::MergeShardedCampaign(
    const std::string& state_directory) {
  return dse::MergeShardedCampaign(state_directory);
}

dse::BatchResult Session::ExploreBatchShared(
    std::vector<dse::ExplorationRequest> requests) const {
  for (dse::ExplorationRequest& request : requests)
    request.cache_mode = dse::CacheMode::kShared;
  return engine_.Run(requests);
}

}  // namespace axdse
