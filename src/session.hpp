#pragma once
// axdse::Session — the top of the facade. One object that knows the kernel
// registry and owns a batch engine, so the whole paper pipeline is:
//
//   axdse::Session session;
//   auto result = session.Explore(
//       axdse::Session::Request("matmul").Size(10).MaxSteps(10000).Build());
//
// Sessions are cheap to construct; the kernel registry behind them is the
// process-wide one (custom kernels registered through any session are
// visible to all).

#include <string>
#include <vector>

#include "dse/campaign.hpp"
#include "dse/engine.hpp"
#include "dse/shard.hpp"

namespace axdse {

class Session {
 public:
  /// `options.num_workers` sizes the batch worker pool (0 = hardware).
  explicit Session(const dse::EngineOptions& options = {});

  /// Names of all registered kernels, sorted.
  std::vector<std::string> Kernels() const;

  /// Registers a custom kernel factory (process-wide). Throws
  /// std::invalid_argument on duplicate or empty names.
  void RegisterKernel(const std::string& name,
                      workloads::KernelRegistry::Factory factory);

  /// Fluent request builder, pre-targeted at `kernel`.
  static dse::RequestBuilder Request(const std::string& kernel);

  /// Runs one request (all its seeds, possibly in parallel).
  dse::RequestResult Explore(const dse::ExplorationRequest& request) const;

  /// Runs a batch of requests on the worker pool; results in request order,
  /// identical for any worker count.
  dse::BatchResult ExploreBatch(
      const std::vector<dse::ExplorationRequest>& requests) const;

  /// ExploreBatch under a checkpoint policy (see dse::CheckpointOptions):
  /// jobs resume from snapshots in the directory, autosave while running,
  /// and optionally suspend after a step budget. A suspended-and-resumed
  /// batch finishes with byte-identical results and exports to an
  /// uninterrupted one.
  dse::BatchResult ExploreBatch(
      const std::vector<dse::ExplorationRequest>& requests,
      const dse::CheckpointOptions& checkpoint) const;

  /// Continues a batch previously suspended into `directory` and runs it to
  /// completion (snapshot files are removed once everything finished).
  dse::BatchResult ResumeBatch(
      const std::vector<dse::ExplorationRequest>& requests,
      const std::string& directory) const;

  /// ExploreBatch with every request switched to CacheMode::kShared: jobs
  /// with the same kernel identity reuse each other's kernel runs. Results
  /// (solutions, traces, rewards) are byte-identical to ExploreBatch; only
  /// the kernel-run cost drops (see BatchResult::TotalSavedRuns()).
  dse::BatchResult ExploreBatchShared(
      std::vector<dse::ExplorationRequest> requests) const;

  /// Scores candidate configurations of one kernel identity through a single
  /// evaluator, lane-parallel (see dse::Engine::Score): up to `lanes`
  /// configurations per kernel traversal, 0 = full lane width, 1 = the
  /// sequential scalar path. Bit-identical to sequential evaluation.
  std::vector<instrument::Measurement> Score(
      const dse::ExplorationRequest& identity,
      const std::vector<dse::Configuration>& configs,
      std::size_t lanes = 0) const;

  /// Expands a declarative sweep spec into its request grid and runs it
  /// through the engine in checkpointable chunks (see dse::Campaign).
  /// Results stream into per-kernel Pareto fronts and best-point tables; a
  /// suspended campaign (options.step_budget / max_chunks) resumes from the
  /// same checkpoint directory with byte-identical final reports.
  dse::CampaignResult RunCampaign(
      const dse::CampaignSpec& spec,
      const dse::CampaignOptions& options = {}) const;

  /// Runs this process's share of a multi-process campaign: chunks are
  /// claimed from the shared state directory through crash-safe owner
  /// leases (see dse::ShardWorker). Any number of processes may point at
  /// the same directory; once any of them returns with `complete`,
  /// MergeShardedCampaign yields the byte-identical equivalent of a
  /// single-process RunCampaign of the same spec and chunk size.
  dse::ShardRunReport RunShardedCampaign(const dse::CampaignSpec& spec,
                                         const dse::ShardOptions& options) const;

  /// Folds a completed sharded campaign's state directory into one
  /// CampaignResult (see dse::MergeShardedCampaign). Throws dse::ShardError
  /// when the directory is incomplete or foreign.
  static dse::CampaignResult MergeShardedCampaign(
      const std::string& state_directory);

  /// The underlying batch engine.
  const dse::Engine& Engine() const noexcept { return engine_; }

 private:
  dse::Engine engine_;
};

}  // namespace axdse
