#include "signal/biquad.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace axdse::signal {

BiquadCoeffs DesignBiquadLowPass(double cutoff, double q) {
  if (!(cutoff > 0.0 && cutoff < 0.5))
    throw std::invalid_argument(
        "DesignBiquadLowPass: cutoff must be in (0, 0.5)");
  if (!(q > 0.0))
    throw std::invalid_argument("DesignBiquadLowPass: q must be > 0");
  const double w0 = 2.0 * std::numbers::pi * cutoff;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cosw0 = std::cos(w0);
  const double a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = (1.0 - cosw0) / 2.0 / a0;
  c.b1 = (1.0 - cosw0) / a0;
  c.b2 = (1.0 - cosw0) / 2.0 / a0;
  c.a1 = -2.0 * cosw0 / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

std::vector<double> FilterBiquad(const BiquadCoeffs& coeffs,
                                 const std::vector<double>& x) {
  std::vector<double> y(x.size(), 0.0);
  double x1 = 0.0;
  double x2 = 0.0;
  double y1 = 0.0;
  double y2 = 0.0;
  for (std::size_t n = 0; n < x.size(); ++n) {
    y[n] = coeffs.b0 * x[n] + coeffs.b1 * x1 + coeffs.b2 * x2 -
           coeffs.a1 * y1 - coeffs.a2 * y2;
    x2 = x1;
    x1 = x[n];
    y2 = y1;
    y1 = y[n];
  }
  return y;
}

double BiquadMagnitudeResponse(const BiquadCoeffs& coeffs, double frequency) {
  const std::complex<double> z =
      std::polar(1.0, -2.0 * std::numbers::pi * frequency);
  const std::complex<double> numerator =
      coeffs.b0 + coeffs.b1 * z + coeffs.b2 * z * z;
  const std::complex<double> denominator =
      1.0 + coeffs.a1 * z + coeffs.a2 * z * z;
  return std::abs(numerator / denominator);
}

bool IsStable(const BiquadCoeffs& coeffs) {
  // Jury criterion for z^2 + a1 z + a2.
  return std::abs(coeffs.a2) < 1.0 && std::abs(coeffs.a1) < 1.0 + coeffs.a2;
}

}  // namespace axdse::signal
