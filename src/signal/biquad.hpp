#pragma once
// Second-order IIR (biquad) low-pass design, RBJ audio-EQ-cookbook form.
// Used by the IIR workload; coefficients are normalized so a0 == 1.

#include <vector>

namespace axdse::signal {

/// y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2].
struct BiquadCoeffs {
  double b0 = 0.0;
  double b1 = 0.0;
  double b2 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
};

/// Designs a low-pass biquad with cutoff in (0, 0.5) cycles/sample and
/// quality factor q > 0 (0.7071 = Butterworth).
/// Throws std::invalid_argument on invalid parameters.
BiquadCoeffs DesignBiquadLowPass(double cutoff, double q = 0.70710678118654752);

/// Reference double-precision filtering (zero initial state).
std::vector<double> FilterBiquad(const BiquadCoeffs& coeffs,
                                 const std::vector<double>& x);

/// |H(f)| of the biquad at `frequency` (cycles/sample).
double BiquadMagnitudeResponse(const BiquadCoeffs& coeffs, double frequency);

/// True if both poles lie strictly inside the unit circle.
bool IsStable(const BiquadCoeffs& coeffs);

}  // namespace axdse::signal
