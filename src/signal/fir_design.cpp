#include "signal/fir_design.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace axdse::signal {

namespace {
double Sinc(double x) {
  if (x == 0.0) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}
}  // namespace

std::vector<double> DesignLowPass(std::size_t taps, double cutoff) {
  if (taps < 3 || taps % 2 == 0)
    throw std::invalid_argument("DesignLowPass: taps must be odd and >= 3");
  if (!(cutoff > 0.0 && cutoff < 0.5))
    throw std::invalid_argument("DesignLowPass: cutoff must be in (0, 0.5)");
  std::vector<double> h(taps);
  const double middle = static_cast<double>(taps - 1) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double m = static_cast<double>(i) - middle;
    h[i] = 2.0 * cutoff * Sinc(2.0 * cutoff * m);
  }
  ApplyHammingWindow(h);
  // Normalize to unit DC gain.
  double sum = 0.0;
  for (const double c : h) sum += c;
  for (double& c : h) c /= sum;
  return h;
}

void ApplyHammingWindow(std::vector<double>& coeffs) {
  if (coeffs.empty())
    throw std::invalid_argument("ApplyHammingWindow: empty input");
  const double denom = static_cast<double>(coeffs.size() - 1);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const double w =
        denom == 0.0
            ? 1.0
            : 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                                     static_cast<double>(i) / denom);
    coeffs[i] *= w;
  }
}

std::vector<double> Convolve(const std::vector<double>& x,
                             const std::vector<double>& h) {
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size(); ++k) {
      if (i >= k) acc += h[k] * x[i - k];
    }
    y[i] = acc;
  }
  return y;
}

double MagnitudeResponse(const std::vector<double>& h, double frequency) {
  double re = 0.0;
  double im = 0.0;
  for (std::size_t k = 0; k < h.size(); ++k) {
    const double phi =
        -2.0 * std::numbers::pi * frequency * static_cast<double>(k);
    re += h[k] * std::cos(phi);
    im += h[k] * std::sin(phi);
  }
  return std::sqrt(re * re + im * im);
}

}  // namespace axdse::signal
