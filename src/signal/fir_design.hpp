#pragma once
// Low-pass FIR design by the windowed-sinc method (Hamming window) — the
// standard way to obtain the "Low Pass Filter functionality" the paper's FIR
// benchmark uses, with fully deterministic coefficients.

#include <cstddef>
#include <vector>

namespace axdse::signal {

/// Designs a linear-phase low-pass FIR.
/// `taps` must be odd and >= 3 (symmetric type-I filter);
/// `cutoff` is the -6 dB cutoff in cycles/sample, in (0, 0.5).
/// The returned coefficients sum to 1 (unit DC gain).
/// Throws std::invalid_argument on invalid parameters.
std::vector<double> DesignLowPass(std::size_t taps, double cutoff);

/// Applies a Hamming window in place. Throws on empty input.
void ApplyHammingWindow(std::vector<double>& coeffs);

/// Reference double-precision convolution y[i] = sum_k h[k] * x[i-k]
/// (zero-padded history), producing one output per input sample.
/// Used as the golden model in tests.
std::vector<double> Convolve(const std::vector<double>& x,
                             const std::vector<double>& h);

/// Magnitude of the filter's frequency response at `frequency`
/// (cycles/sample).
double MagnitudeResponse(const std::vector<double>& h, double frequency);

}  // namespace axdse::signal
