#include "signal/noise.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace axdse::signal {

std::vector<double> UniformWhiteNoise(std::size_t n, double amplitude,
                                      std::uint64_t seed) {
  if (amplitude <= 0.0)
    throw std::invalid_argument("UniformWhiteNoise: amplitude <= 0");
  util::Rng rng(seed);
  std::vector<double> samples(n);
  for (double& s : samples) s = rng.UniformReal(-amplitude, amplitude);
  return samples;
}

std::vector<double> GaussianWhiteNoise(std::size_t n, double stddev,
                                       std::uint64_t seed) {
  if (stddev < 0.0)
    throw std::invalid_argument("GaussianWhiteNoise: stddev < 0");
  util::Rng rng(seed);
  std::vector<double> samples(n);
  for (double& s : samples) s = rng.Gaussian(0.0, stddev);
  return samples;
}

std::vector<double> Sinusoid(std::size_t n, double amplitude, double frequency,
                             double phase) {
  std::vector<double> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = amplitude * std::sin(2.0 * std::numbers::pi * frequency *
                                          static_cast<double>(i) +
                                      phase);
  }
  return samples;
}

}  // namespace axdse::signal
