#pragma once
// Test-signal generation. The paper drives the FIR benchmarks with "white
// noise signals"; we provide seeded uniform and Gaussian white noise so every
// experiment is reproducible.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace axdse::signal {

/// `n` samples of uniform white noise in [-amplitude, amplitude).
/// Throws std::invalid_argument if amplitude <= 0.
std::vector<double> UniformWhiteNoise(std::size_t n, double amplitude,
                                      std::uint64_t seed);

/// `n` samples of zero-mean Gaussian white noise with the given standard
/// deviation. Throws std::invalid_argument if stddev < 0.
std::vector<double> GaussianWhiteNoise(std::size_t n, double stddev,
                                       std::uint64_t seed);

/// A sinusoid (for spectral sanity checks of the filters):
/// amplitude * sin(2*pi*frequency*i + phase), i = 0..n-1, frequency in
/// cycles/sample.
std::vector<double> Sinusoid(std::size_t n, double amplitude, double frequency,
                             double phase = 0.0);

}  // namespace axdse::signal
