#include "signal/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace axdse::signal {

std::int32_t ToFixed(double value, int frac_bits) {
  if (frac_bits < 1 || frac_bits > 30)
    throw std::invalid_argument("ToFixed: frac_bits must be in [1,30]");
  const double scaled = value * static_cast<double>(1LL << frac_bits);
  const double rounded = std::nearbyint(scaled);
  const double limit = static_cast<double>(1LL << frac_bits) - 1.0;
  return static_cast<std::int32_t>(std::clamp(rounded, -limit, limit));
}

double FromFixed(std::int64_t value, int frac_bits) {
  if (frac_bits < 1 || frac_bits > 62)
    throw std::invalid_argument("FromFixed: frac_bits must be in [1,62]");
  return static_cast<double>(value) / static_cast<double>(1LL << frac_bits);
}

std::vector<std::int32_t> ToFixedVector(const std::vector<double>& values,
                                        int frac_bits) {
  std::vector<std::int32_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = ToFixed(values[i], frac_bits);
  return out;
}

std::vector<double> FromFixedVector(const std::vector<std::int64_t>& values,
                                    int frac_bits) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = FromFixed(values[i], frac_bits);
  return out;
}

}  // namespace axdse::signal
