#pragma once
// Fixed-point quantization helpers (Q-format) used to feed integer kernels
// from real-valued signals.

#include <cstdint>
#include <vector>

namespace axdse::signal {

/// Quantizes `value` (expected in [-1, 1)) to a signed fixed-point integer
/// with `frac_bits` fractional bits, saturating at the representable range
/// of int16 when frac_bits == 15 (and generally at +/-(2^(frac_bits)) - 1).
std::int32_t ToFixed(double value, int frac_bits);

/// Inverse of ToFixed.
double FromFixed(std::int64_t value, int frac_bits);

/// Vector versions.
std::vector<std::int32_t> ToFixedVector(const std::vector<double>& values,
                                        int frac_bits);
std::vector<double> FromFixedVector(const std::vector<std::int64_t>& values,
                                    int frac_bits);

}  // namespace axdse::signal
