#include "util/ascii_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace axdse::util {

AsciiTable::AsciiTable(std::string title) : title_(std::move(title)) {}

void AsciiTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
  if (aligns_.size() < header_.size()) aligns_.resize(header_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size())
    throw std::invalid_argument("AsciiTable::AddRow: column count mismatch");
  Row r;
  r.cells = std::move(row);
  r.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(r));
}

void AsciiTable::AddSeparator() { pending_separator_ = true; }

void AsciiTable::SetAlign(std::size_t column, Align align) {
  if (aligns_.size() <= column) aligns_.resize(column + 1, Align::kRight);
  aligns_[column] = align;
}

std::string AsciiTable::Num(double value, int precision) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string AsciiTable::Render() const {
  std::size_t columns = header_.size();
  for (const Row& r : rows_) columns = std::max(columns, r.cells.size());
  std::vector<std::size_t> width(columns, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = std::max(width[c], header_[c].size());
  for (const Row& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  const auto rule = [&](std::ostringstream& out) {
    out << '+';
    for (std::size_t c = 0; c < columns; ++c)
      out << std::string(width[c] + 2, '-') << '+';
    out << '\n';
  };
  const auto emit_row = [&](std::ostringstream& out,
                            const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const Align a = c < aligns_.size() ? aligns_[c] : Align::kRight;
      const std::size_t pad = width[c] - cell.size();
      out << ' ';
      if (a == Align::kLeft)
        out << cell << std::string(pad, ' ');
      else
        out << std::string(pad, ' ') << cell;
      out << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';
  rule(out);
  if (!header_.empty()) {
    emit_row(out, header_);
    rule(out);
  }
  for (const Row& r : rows_) {
    if (r.separator_before) rule(out);
    emit_row(out, r.cells);
  }
  rule(out);
  return out.str();
}

}  // namespace axdse::util
