#pragma once
// Minimal ASCII table renderer for bench/example output. Produces the
// paper-style tables (Tables I-III) on stdout without external dependencies.

#include <cstddef>
#include <string>
#include <vector>

namespace axdse::util {

/// Column alignment within a rendered cell.
enum class Align { kLeft, kRight };

/// A simple row/column text table with a title, a header row, and optional
/// horizontal separators between row groups.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = "");

  /// Sets the header row. Column count is fixed by the header.
  void SetHeader(std::vector<std::string> header);

  /// Appends one row. Throws std::invalid_argument if the column count does
  /// not match the header (when a header is present).
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next added row.
  void AddSeparator();

  /// Sets the alignment for one column (default right, column 0 left).
  void SetAlign(std::size_t column, Align align);

  /// Renders the table to a string ending in '\n'.
  std::string Render() const;

  /// Formats a double with the given precision, trimming trailing zeros.
  static std::string Num(double value, int precision = 3);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
  bool pending_separator_ = false;
};

}  // namespace axdse::util
