#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace axdse::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  bool flags_ended = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!flags_ended && arg == "--") {  // conventional end-of-flags marker
      flags_ended = true;
      continue;
    }
    if (flags_ended || arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --name value (if the next token is not itself a flag) or bare --name.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[i + 1];
      ++i;
    } else {
      flags_[arg] = "";
    }
  }
}

bool CliArgs::Has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::GetString(const std::string& name,
                               std::string fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return it->second;
}

std::int64_t CliArgs::GetInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<std::int64_t>(v);
}

std::int64_t CliArgs::GetIntStrict(const std::string& name,
                                   std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end == nullptr || *end != '\0')
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  return static_cast<std::int64_t>(v);
}

double CliArgs::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') return fallback;
  return v;
}

bool CliArgs::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return fallback;
}

}  // namespace axdse::util
