#pragma once
// Tiny command-line flag parser for bench/example binaries.
// Supports --name=value, --name value, and boolean --name forms; a bare
// "--" ends flag parsing (everything after it is positional).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace axdse::util {

/// Parses argv into a flag map plus positional arguments. Unknown flags are
/// kept (benches decide what they accept); malformed input never throws —
/// lookups fall back to defaults.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` if absent.
  std::string GetString(const std::string& name, std::string fallback) const;

  /// Integer value of --name, or `fallback` if absent/unparsable.
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;

  /// Strict integer: like GetInt, but a flag that is PRESENT with an empty
  /// or unparsable value throws std::invalid_argument instead of silently
  /// returning the fallback. Use for flags where a typo must not be masked
  /// by a default — e.g. a daemon's --port, where "--port=0" legitimately
  /// asks for an ephemeral port and "--port=auto" is an error, not 4711.
  std::int64_t GetIntStrict(const std::string& name,
                            std::int64_t fallback) const;

  /// Double value of --name, or `fallback` if absent/unparsable.
  double GetDouble(const std::string& name, double fallback) const;

  /// Boolean: --name / --name=true|1 => true; --name=false|0 => false.
  bool GetBool(const std::string& name, bool fallback) const;

  /// Non-flag arguments in order.
  const std::vector<std::string>& Positional() const { return positional_; }

  /// All parsed flags as name -> raw value (empty for bare --name), sorted
  /// by name. Lets callers forward flags wholesale, e.g. into
  /// dse::ExplorationRequest::FromCli.
  const std::map<std::string, std::string>& Flags() const { return flags_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace axdse::util
