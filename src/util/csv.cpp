#include "util/csv.hpp"

#include <cstdio>

namespace axdse::util {

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << Escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& fields,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(fields.size());
  char buf[64];
  for (const double v : fields) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    cells.emplace_back(buf);
  }
  WriteRow(cells);
}

}  // namespace axdse::util
