#pragma once
// RFC-4180-style CSV writing, used to export exploration traces (Figures 2-4)
// for offline plotting.

#include <ostream>
#include <string>
#include <vector>

namespace axdse::util {

/// Streams rows to an std::ostream as CSV. Fields containing commas, quotes,
/// or newlines are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  /// The writer does not own the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row of raw string fields.
  void WriteRow(const std::vector<std::string>& fields);

  /// Writes one row of numeric fields with `precision` significant decimals.
  void WriteNumericRow(const std::vector<double>& fields, int precision = 6);

  /// Escapes a single field per RFC 4180.
  static std::string Escape(const std::string& field);

 private:
  std::ostream* out_;
};

}  // namespace axdse::util
