#include "util/fault_injection.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace axdse::util::fault {

namespace {

enum class Action { kKill, kDelay, kShort };

struct PointSpec {
  std::string name;
  std::uint64_t nth = 1;  // 1-based hit that fires the action
  Action action = Action::kKill;
  std::uint64_t delay_ms = 0;
  std::uint64_t hits = 0;
};

struct State {
  std::mutex mutex;
  std::vector<PointSpec> points;
};

State& GlobalState() {
  static State state;
  return state;
}

std::atomic<bool> g_armed{false};

std::uint64_t ParseCount(const std::string& text, std::uint64_t fallback) {
  if (text.empty()) return fallback;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return fallback;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Malformed entries are dropped silently: fault injection is a test
/// facility and must never take a production process down by itself.
void ParseSpec(const std::string& spec, std::vector<PointSpec>& out) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;
    PointSpec point;
    const std::size_t first = entry.find(':');
    point.name = entry.substr(0, first);
    if (point.name.empty()) continue;
    if (first != std::string::npos) {
      const std::string rest = entry.substr(first + 1);
      const std::size_t second = rest.find(':');
      point.nth = ParseCount(rest.substr(0, second), 1);
      if (second != std::string::npos) {
        const std::string action = rest.substr(second + 1);
        if (action == "short") {
          point.action = Action::kShort;
        } else if (action.rfind("delay=", 0) == 0) {
          point.action = Action::kDelay;
          point.delay_ms = ParseCount(action.substr(6), 0);
        } else if (action != "kill") {
          continue;  // unknown action — drop the entry
        }
      }
    }
    if (point.nth == 0) point.nth = 1;
    out.push_back(std::move(point));
  }
}

void EnsureInitialized() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("AXDSE_FAULT");
    if (env == nullptr || *env == '\0') return;
    State& state = GlobalState();
    std::lock_guard<std::mutex> lock(state.mutex);
    ParseSpec(env, state.points);
    if (!state.points.empty())
      g_armed.store(true, std::memory_order_relaxed);
  });
}

[[noreturn]] void Die() {
  // Model SIGKILL at this exact instruction: no unwinding, no atexit, no
  // stream flushes — exactly what an external `kill -9` leaves behind.
  ::raise(SIGKILL);
  std::_Exit(137);  // unreachable unless SIGKILL is somehow masked
}

}  // namespace

bool Armed() noexcept {
  EnsureInitialized();
  return g_armed.load(std::memory_order_relaxed);
}

void Point(const char* name) noexcept {
  if (!Armed()) return;
  std::uint64_t delay_ms = 0;
  bool kill = false;
  {
    State& state = GlobalState();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (PointSpec& point : state.points) {
      if (point.action == Action::kShort || point.name != name) continue;
      if (++point.hits != point.nth) continue;
      if (point.action == Action::kKill)
        kill = true;
      else
        delay_ms = point.delay_ms;
    }
  }
  if (kill) Die();
  if (delay_ms != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

std::size_t ShortWriteLength(const char* name,
                             std::size_t full_length) noexcept {
  if (!Armed() || full_length == 0) return full_length;
  State& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (PointSpec& point : state.points) {
    if (point.action != Action::kShort || point.name != name) continue;
    if (++point.hits != point.nth) continue;
    // Drop at least one byte so the torn file never parses cleanly by luck
    // of landing on a line boundary with the full content.
    return full_length / 2;
  }
  return full_length;
}

void SetSpecForTesting(const std::string& spec) {
  EnsureInitialized();
  State& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.points.clear();
  ParseSpec(spec, state.points);
  g_armed.store(!state.points.empty(), std::memory_order_relaxed);
}

}  // namespace axdse::util::fault
