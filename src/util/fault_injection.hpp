#pragma once
// util::fault — deterministic fault injection for crash-safety tests. A
// process is armed through the AXDSE_FAULT environment variable, a
// comma-separated list of
//
//   <point>:<nth>            kill the process (SIGKILL) at the nth hit of
//                            the named point — death at an exact instruction
//                            instead of a timing-dependent external kill
//   <point>:<nth>:delay=<ms> sleep <ms> at the nth hit (race widening)
//   <point>:<nth>:short      truncate the nth short-write-capable write
//                            through that point (models a torn file)
//
// e.g. AXDSE_FAULT=shard.executed:2 kills a shard worker the moment it has
// finished computing its second chunk, before the result document commits.
// Points are cheap when unarmed: one relaxed atomic load and out. Hit
// counting is per-point and process-wide (thread-safe), so "nth" is exact
// even when several worker threads pass the same point.

#include <cstddef>
#include <string>

namespace axdse::util::fault {

/// True when AXDSE_FAULT armed at least one point in this process.
bool Armed() noexcept;

/// Crash/delay point. No-op unless AXDSE_FAULT armed `name`; at the nth hit
/// the process dies via SIGKILL (default action) or sleeps (delay action).
void Point(const char* name) noexcept;

/// Short-write point: the number of bytes the caller should actually write
/// out of `full_length`. Returns `full_length` unless AXDSE_FAULT armed a
/// `:short` action on `name` and this is its nth hit, in which case the
/// write is truncated (roughly halved, always dropping at least one byte)
/// to model a crash mid-write that left a torn file behind.
std::size_t ShortWriteLength(const char* name,
                             std::size_t full_length) noexcept;

/// Test hook: replaces the armed spec (normally parsed once from
/// AXDSE_FAULT at first use) and resets every hit counter. An empty spec
/// disarms. Must not race active Point() calls.
void SetSpecForTesting(const std::string& spec);

}  // namespace axdse::util::fault
