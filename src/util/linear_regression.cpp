#include "util/linear_regression.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace axdse::util {

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("FitLine: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("FitLine: need >= 2 points");
  const double n = static_cast<double>(x.size());
  const double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.n = x.size();
  if (sxx == 0.0) {
    // Vertical data: degenerate; report a flat line through the mean.
    fit.slope = 0.0;
    fit.intercept = mean_y;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = (syy == 0.0) ? 0.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit FitLineIndexed(const std::vector<double>& y) {
  std::vector<double> x(y.size());
  std::iota(x.begin(), x.end(), 0.0);
  return FitLine(x, y);
}

}  // namespace axdse::util
