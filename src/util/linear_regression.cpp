#include "util/linear_regression.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace axdse::util {

namespace {

bool AllFinite(const std::vector<double>& values) noexcept {
  for (const double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("FitLine: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("FitLine: need >= 2 points");
  if (!AllFinite(x) || !AllFinite(y))
    throw std::invalid_argument("FitLine: non-finite input value");
  const double n = static_cast<double>(x.size());
  const double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.n = x.size();
  if (sxx == 0.0) {
    // Vertical data: degenerate; report a flat line through the mean.
    fit.slope = 0.0;
    fit.intercept = mean_y;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = (syy == 0.0) ? 0.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit FitLineIndexed(const std::vector<double>& y) {
  std::vector<double> x(y.size());
  std::iota(x.begin(), x.end(), 0.0);
  return FitLine(x, y);
}

const char* ToString(FitStatus status) noexcept {
  switch (status) {
    case FitStatus::kOk:
      return "ok";
    case FitStatus::kSizeMismatch:
      return "size-mismatch";
    case FitStatus::kTooFewPoints:
      return "too-few-points";
    case FitStatus::kNonFinite:
      return "non-finite";
    case FitStatus::kSingular:
      return "singular";
  }
  return "unknown";
}

double LinearModelFit::Predict(const std::vector<double>& features) const {
  if (!Ok())
    throw std::invalid_argument(
        std::string("LinearModelFit::Predict: fit status is ") +
        util::ToString(status));
  if (features.size() != coefficients.size())
    throw std::invalid_argument(
        "LinearModelFit::Predict: feature width does not match the fit");
  double sum = 0.0;
  for (std::size_t i = 0; i < features.size(); ++i)
    sum += features[i] * coefficients[i];
  return sum;
}

LinearModelFit FitLinearModel(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& y,
                              double ridge_lambda) {
  LinearModelFit fit;
  if (rows.size() != y.size() || rows.empty()) {
    fit.status = rows.empty() ? FitStatus::kTooFewPoints
                              : FitStatus::kSizeMismatch;
    return fit;
  }
  const std::size_t dim = rows.front().size();
  if (dim == 0) {
    fit.status = FitStatus::kSizeMismatch;
    return fit;
  }
  for (const std::vector<double>& row : rows)
    if (row.size() != dim) {
      fit.status = FitStatus::kSizeMismatch;
      return fit;
    }
  if (rows.size() < dim) {
    fit.status = FitStatus::kTooFewPoints;
    return fit;
  }
  if (!std::isfinite(ridge_lambda) || ridge_lambda < 0.0 || !AllFinite(y)) {
    fit.status = FitStatus::kNonFinite;
    return fit;
  }
  for (const std::vector<double>& row : rows)
    if (!AllFinite(row)) {
      fit.status = FitStatus::kNonFinite;
      return fit;
    }

  // Normal equations: A = X^T X + lambda*I (D x D), b = X^T y.
  std::vector<double> a(dim * dim, 0.0);
  std::vector<double> b(dim, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double>& row = rows[r];
    for (std::size_t i = 0; i < dim; ++i) {
      b[i] += row[i] * y[r];
      for (std::size_t j = i; j < dim; ++j) a[i * dim + j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    a[i * dim + i] += ridge_lambda;
    for (std::size_t j = 0; j < i; ++j) a[i * dim + j] = a[j * dim + i];
  }

  // Gaussian elimination with partial pivoting. The pivot floor is relative
  // to the matrix scale so "singular" means singular at double precision,
  // not merely small-valued.
  double scale = 0.0;
  for (const double v : a) scale = std::max(scale, std::abs(v));
  const double pivot_floor = scale * 1e-12;
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r)
      if (std::abs(a[r * dim + col]) > std::abs(a[pivot * dim + col]))
        pivot = r;
    if (std::abs(a[pivot * dim + col]) <= pivot_floor) {
      fit.status = FitStatus::kSingular;
      return fit;
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < dim; ++j)
        std::swap(a[pivot * dim + j], a[col * dim + j]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col * dim + col];
    for (std::size_t r = col + 1; r < dim; ++r) {
      const double factor = a[r * dim + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < dim; ++j)
        a[r * dim + j] -= factor * a[col * dim + j];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> beta(dim, 0.0);
  for (std::size_t i = dim; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < dim; ++j) sum -= a[i * dim + j] * beta[j];
    beta[i] = sum / a[i * dim + i];
    if (!std::isfinite(beta[i])) {
      fit.status = FitStatus::kSingular;
      return fit;
    }
  }
  fit.status = FitStatus::kOk;
  fit.coefficients = std::move(beta);
  fit.n = rows.size();
  return fit;
}

}  // namespace axdse::util
