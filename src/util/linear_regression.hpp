#pragma once
// Least-squares fits.
//
// FitLine: univariate OLS of y = slope*x + intercept, used to draw the trend
// lines of the paper's Figures 2 and 3 over exploration traces.
//
// FitLinearModel: multivariate (ridge-regularized) least squares over an
// explicit feature matrix, used by the surrogate evaluator tier
// (dse/surrogate.hpp) to predict accuracy degradation from configuration
// features. Degenerate inputs — size mismatches, too few rows, non-finite
// values, singular or constant-column design matrices — surface as a typed
// FitStatus instead of NaN coefficients, so callers can tell "no usable
// model" from "a model that predicts NaN".

#include <cstddef>
#include <vector>

namespace axdse::util {

/// Result of a univariate OLS fit.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 0 when y is constant.
  double r_squared = 0.0;
  std::size_t n = 0;

  /// Predicted value at x.
  double At(double x) const noexcept { return slope * x + intercept; }
};

/// Fits y against x. Throws std::invalid_argument if sizes mismatch, fewer
/// than two points are supplied, or any input is non-finite (NaN/inf inputs
/// would otherwise flow silently into NaN coefficients). Constant-x data is
/// degenerate but well-defined: the fit is the flat line through mean(y).
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y against its own index 0..n-1 (the common case for step traces).
LinearFit FitLineIndexed(const std::vector<double>& y);

/// Why a multivariate fit did (or did not) produce usable coefficients.
enum class FitStatus {
  kOk,            ///< coefficients are valid
  kSizeMismatch,  ///< rows/y disagree, or rows have inconsistent widths
  kTooFewPoints,  ///< fewer rows than features (underdetermined)
  kNonFinite,     ///< a feature or target value is NaN or infinite
  kSingular,      ///< normal equations are singular (e.g. constant column
                  ///< with no ridge, or linearly dependent features)
};

/// Human-readable status name.
const char* ToString(FitStatus status) noexcept;

/// Result of a multivariate least-squares fit. `coefficients` is only
/// meaningful when `status == FitStatus::kOk`; every failure leaves it
/// empty — a failed fit can never be mistaken for a model.
struct LinearModelFit {
  FitStatus status = FitStatus::kSingular;
  std::vector<double> coefficients;  ///< one per feature column
  std::size_t n = 0;                 ///< rows fitted

  bool Ok() const noexcept { return status == FitStatus::kOk; }

  /// Dot product of `features` with the coefficients. Requires Ok() and a
  /// matching feature width; throws std::invalid_argument otherwise.
  double Predict(const std::vector<double>& features) const;
};

/// Solves min ||rows*beta - y||^2 + ridge_lambda*||beta||^2 via the normal
/// equations (Gaussian elimination with partial pivoting on the D x D
/// system). Never throws on data problems: every degenerate input is
/// reported through FitStatus. Include a constant 1.0 column in `rows` if an
/// intercept is wanted. `ridge_lambda` must be >= 0 and finite (violations
/// report kNonFinite).
LinearModelFit FitLinearModel(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& y,
                              double ridge_lambda = 0.0);

}  // namespace axdse::util
