#pragma once
// Ordinary least-squares fit of y = slope*x + intercept. Used to draw the
// trend lines of the paper's Figures 2 and 3 over exploration traces.

#include <cstddef>
#include <vector>

namespace axdse::util {

/// Result of a univariate OLS fit.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 0 when y is constant.
  double r_squared = 0.0;
  std::size_t n = 0;

  /// Predicted value at x.
  double At(double x) const noexcept { return slope * x + intercept; }
};

/// Fits y against x. Throws std::invalid_argument if sizes mismatch or fewer
/// than two points are supplied.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y against its own index 0..n-1 (the common case for step traces).
LinearFit FitLineIndexed(const std::vector<double>& y);

}  // namespace axdse::util
