#include "util/number_format.hpp"

#include <charconv>

namespace axdse::util {

std::string ShortestDouble(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "0";
  return std::string(buffer, ptr);
}

}  // namespace axdse::util
