#include "util/number_format.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace axdse::util {

std::string ShortestDouble(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "0";
  return std::string(buffer, ptr);
}

double ParseDoubleToken(const std::string& token, const char* what,
                        bool allow_nonfinite) {
  // std::from_chars is the exact locale-independent inverse of the
  // std::to_chars writer in ShortestDouble (strtod would mis-parse under a
  // non-C LC_NUMERIC); it also accepts the "inf"/"nan" forms to_chars emits.
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw std::invalid_argument(std::string(what) + ": '" + token +
                                "' is not a number");
  if (std::isnan(value))
    throw std::invalid_argument(std::string(what) + ": NaN is not allowed");
  if (!allow_nonfinite && std::isinf(value))
    throw std::invalid_argument(std::string(what) + ": '" + token +
                                "' is not finite");
  return value;
}

std::uint64_t ParseUnsignedToken(const std::string& token, const char* what) {
  if (token.empty() || token[0] == '-' || token[0] == '+')
    throw std::invalid_argument(std::string(what) + ": '" + token +
                                "' is not a non-negative integer");
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw std::invalid_argument(std::string(what) + ": '" + token +
                                "' is not a non-negative integer");
  return value;
}

}  // namespace axdse::util
