#pragma once
// Deterministic number formatting shared by the request serializer and the
// batch exporters (their outputs are byte-compared by the determinism
// tests, so both must use the exact same formatter), plus the strict
// inverse parsers used by the checkpoint loader.

#include <cstdint>
#include <string>

namespace axdse::util {

/// Shortest decimal representation that round-trips through strtod
/// (std::to_chars shortest form). "0.1" stays "0.1", not "0.1000…01".
std::string ShortestDouble(double value);

/// Strict inverse of ShortestDouble: the whole token must parse as a double.
/// NaN tokens are always rejected; infinities only pass when
/// `allow_nonfinite` is set (legitimate for ObjectiveRange sentinels and
/// raw measurements). Throws std::invalid_argument with `what` as context.
double ParseDoubleToken(const std::string& token, const char* what,
                        bool allow_nonfinite = false);

/// Strict decimal std::uint64_t parser (whole token, no sign). Throws
/// std::invalid_argument with `what` as context.
std::uint64_t ParseUnsignedToken(const std::string& token, const char* what);

}  // namespace axdse::util
