#pragma once
// Deterministic number formatting shared by the request serializer and the
// batch exporters (their outputs are byte-compared by the determinism
// tests, so both must use the exact same formatter).

#include <string>

namespace axdse::util {

/// Shortest decimal representation that round-trips through strtod
/// (std::to_chars shortest form). "0.1" stays "0.1", not "0.1000…01".
std::string ShortestDouble(double value);

}  // namespace axdse::util
