#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace axdse::util {

namespace {
constexpr std::uint64_t RotL(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::SetState(const std::array<std::uint64_t, 4>& state) {
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
    throw std::invalid_argument(
        "Xoshiro256StarStar::SetState: all-zero state is invalid");
  s_ = state;
}

void Xoshiro256StarStar::Jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

Rng::Rng(std::uint64_t seed) : gen_(seed) {}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::UniformInt: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  return lo + static_cast<std::int64_t>(UniformBelow(span));
}

std::uint64_t Rng::UniformBelow(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::UniformBelow: n == 0");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = gen_();
    if (r >= threshold) return r % n;
  }
}

double Rng::UniformReal() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("Rng::UniformReal: lo >= hi");
  return lo + (hi - lo) * UniformReal();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = UniformReal();
  } while (u1 <= 0.0);
  const double u2 = UniformReal();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  if (stddev < 0.0) throw std::invalid_argument("Rng::Gaussian: stddev < 0");
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

std::size_t Rng::PickIndex(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::PickIndex: empty range");
  return static_cast<std::size_t>(UniformBelow(size));
}

Rng Rng::Fork() { return Rng(gen_()); }

std::uint64_t Rng::NextBits() { return gen_(); }

RngState Rng::GetState() const noexcept {
  RngState state;
  state.words = gen_.GetState();
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::SetState(const RngState& state) {
  if (std::isnan(state.cached_gaussian))
    throw std::invalid_argument("Rng::SetState: cached Gaussian is NaN");
  gen_.SetState(state.words);  // validates the generator words
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace axdse::util
