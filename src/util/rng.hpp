#pragma once
// Deterministic, seedable random-number generation for every stochastic piece
// of the project (workload inputs, RL exploration, baseline heuristics).
//
// Rationale: std::mt19937 is fine but its seeding is easy to get wrong and its
// state is heavyweight to copy into recorded experiment metadata. We use
// SplitMix64 for seed expansion and xoshiro256** as the workhorse generator —
// both are tiny, fast, and have well-understood statistical quality.

#include <array>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace axdse::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used directly; here it only seeds xoshiro.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit PRNG (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator so it can drive <random>.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state via SplitMix64 expansion of `seed`.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Jump function: advances the state by 2^128 steps; used to derive
  /// non-overlapping parallel streams from one seed.
  void Jump() noexcept;

  /// The full 256-bit generator state (for checkpoint/resume).
  std::array<std::uint64_t, 4> GetState() const noexcept { return s_; }

  /// Restores a state previously obtained from GetState(); the generator
  /// then continues the exact same output stream. Throws
  /// std::invalid_argument on the all-zero state (invalid for xoshiro).
  void SetState(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Complete serializable state of an Rng (generator words plus the cached
/// Box-Muller second value), for checkpoint/resume.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// Convenience façade bundling the generator with the distributions the
/// project actually needs. All methods are deterministic given the seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform integer in [lo, hi] (inclusive). Throws std::invalid_argument
  /// if lo > hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform value in [0, n). Throws if n == 0.
  std::uint64_t UniformBelow(std::uint64_t n);

  /// Uniform real in [0, 1).
  double UniformReal();

  /// Uniform real in [lo, hi). Throws if !(lo < hi).
  double UniformReal(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double Gaussian();

  /// Normal with the given mean / standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index; throws on empty container.
  std::size_t PickIndex(std::size_t size);

  /// Derives an independent child RNG (stable: depends only on parent seed
  /// and call order).
  Rng Fork();

  /// Raw 64 random bits (exposes the generator for <random> interop).
  std::uint64_t NextBits();

  /// Full distribution-level state; SetState(GetState()) is an exact
  /// continuation of the output stream (including a pending Gaussian).
  RngState GetState() const noexcept;

  /// Restores a captured state. Throws std::invalid_argument on an invalid
  /// generator state (all-zero words) or a NaN cached Gaussian.
  void SetState(const RngState& state);

 private:
  Xoshiro256StarStar gen_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace axdse::util
