#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace axdse::util {

void RunningStats::Add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const noexcept { return std::sqrt(Variance()); }

Summary Summarize(const RunningStats& stats) noexcept {
  Summary s;
  s.count = stats.Count();
  s.mean = stats.Mean();
  s.stddev = stats.StdDev();
  s.min = stats.Count() == 0 ? 0.0 : stats.Min();
  s.max = stats.Count() == 0 ? 0.0 : stats.Max();
  s.sum = stats.Sum();
  return s;
}

Summary Summarize(const std::vector<double>& samples) noexcept {
  RunningStats stats;
  for (const double x : samples) stats.Add(x);
  return Summarize(stats);
}

double Mean(const std::vector<double>& samples) noexcept {
  if (samples.empty()) return 0.0;
  RunningStats stats;
  for (const double x : samples) stats.Add(x);
  return stats.Mean();
}

std::vector<double> BinnedMeans(const std::vector<double>& values,
                                std::size_t bin_size) {
  if (bin_size == 0) throw std::invalid_argument("BinnedMeans: bin_size == 0");
  std::vector<double> means;
  means.reserve(values.size() / bin_size + 1);
  std::size_t i = 0;
  while (i < values.size()) {
    const std::size_t end = std::min(values.size(), i + bin_size);
    double sum = 0.0;
    for (std::size_t j = i; j < end; ++j) sum += values[j];
    means.push_back(sum / static_cast<double>(end - i));
    i = end;
  }
  return means;
}

}  // namespace axdse::util
