#pragma once
// Streaming descriptive statistics (Welford) and small summary helpers used
// by operator characterization, exploration traces, and bench reporting.

#include <cstddef>
#include <limits>
#include <vector>

namespace axdse::util {

/// Numerically stable single-pass mean/variance/min/max accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x) noexcept;

  /// Merges another accumulator (parallel-reduction friendly).
  void Merge(const RunningStats& other) noexcept;

  /// Number of observations added so far.
  std::size_t Count() const noexcept { return count_; }

  /// Arithmetic mean; 0 when empty.
  double Mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double Variance() const noexcept;

  /// sqrt(Variance()).
  double StdDev() const noexcept;

  /// Smallest observation; +inf when empty.
  double Min() const noexcept { return min_; }

  /// Largest observation; -inf when empty.
  double Max() const noexcept { return max_; }

  /// Sum of all observations.
  double Sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Immutable summary of a sample, convenient for reporting.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Builds a Summary from an accumulator.
Summary Summarize(const RunningStats& stats) noexcept;

/// Builds a Summary directly from samples.
Summary Summarize(const std::vector<double>& samples) noexcept;

/// Mean of the samples; 0 for an empty vector.
double Mean(const std::vector<double>& samples) noexcept;

/// Bins `values` into consecutive groups of `bin_size` and returns per-bin
/// means (the paper's Figure 4 "average reward every 100 steps"). The final
/// partial bin, if any, is averaged over its actual size.
/// Throws std::invalid_argument if bin_size == 0.
std::vector<double> BinnedMeans(const std::vector<double>& values,
                                std::size_t bin_size);

}  // namespace axdse::util
