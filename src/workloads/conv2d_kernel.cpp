#include "workloads/conv2d_kernel.hpp"

#include <stdexcept>

#include "instrument/multi_approx_context.hpp"
#include "util/rng.hpp"

namespace axdse::workloads {

Conv2DKernel::Conv2DKernel(std::size_t height, std::size_t width,
                           std::size_t row_bands, std::uint64_t seed)
    : height_(height),
      width_(width),
      row_bands_(row_bands),
      name_("conv2d-" + std::to_string(height) + "x" + std::to_string(width)),
      stencil_({1, 2, 1, 2, 4, 2, 1, 2, 1}),
      operators_(axc::EvoApproxCatalog::Instance().MatMulSet()) {
  if (height < 3 || width < 3)
    throw std::invalid_argument("Conv2DKernel: image must be at least 3x3");
  const std::size_t out_rows = height - 2;
  if (row_bands == 0 || row_bands > out_rows)
    throw std::invalid_argument("Conv2DKernel: invalid row_bands");
  util::Rng rng(seed);
  image_.resize(height * width);
  for (auto& v : image_) v = static_cast<std::uint8_t>(rng.UniformBelow(256));

  variables_.reserve(row_bands + 2);
  for (std::size_t b = 0; b < row_bands; ++b)
    variables_.push_back({"image.band" + std::to_string(b)});
  variables_.push_back({"stencil"});
  variables_.push_back({"acc"});
}

const std::string& Conv2DKernel::Name() const noexcept { return name_; }

std::size_t Conv2DKernel::VarOfRow(std::size_t y) const noexcept {
  const std::size_t out_rows = height_ - 2;
  const std::size_t band = y * row_bands_ / out_rows;
  return band >= row_bands_ ? row_bands_ - 1 : band;
}

std::vector<double> Conv2DKernel::Run(instrument::ApproxContext& ctx) const {
  const std::size_t out_rows = height_ - 2;
  const std::size_t out_cols = width_ - 2;
  std::vector<double> out(out_rows * out_cols);
  const std::size_t stencil_var = VarOfStencil();
  const std::size_t acc_var = VarOfAccumulator();
  for (std::size_t y = 0; y < out_rows; ++y) {
    const std::size_t row_var = VarOfRow(y);
    for (std::size_t x = 0; x < out_cols; ++x) {
      // Three batched 3-MACs (one per stencil row) chained through `acc` —
      // same dy-major/dx-minor operation order as the scalar loops.
      std::int64_t acc = 0;
      for (std::size_t dy = 0; dy < 3; ++dy) {
        acc = ctx.DotAccumulate(acc, &image_[(y + dy) * width_ + x], 1,
                                &stencil_[dy * 3], 1, 3,
                                {row_var, stencil_var}, {acc_var});
      }
      out[y * out_cols + x] = static_cast<double>(acc);
    }
  }
  return out;
}

std::vector<double> Conv2DKernel::RunLanes(
    instrument::MultiApproxContext& ctx) const {
  const std::size_t lanes = ctx.NumLanes();
  const std::size_t out_rows = height_ - 2;
  const std::size_t out_cols = width_ - 2;
  const std::size_t out_size = out_rows * out_cols;
  std::vector<double> out(lanes * out_size);
  const std::size_t stencil_var = VarOfStencil();
  const std::size_t acc_var = VarOfAccumulator();
  for (std::size_t y = 0; y < out_rows; ++y) {
    const std::size_t row_var = VarOfRow(y);
    for (std::size_t x = 0; x < out_cols; ++x) {
      // The three stencil-row dots chain through a lane-parallel
      // accumulator; the partition is constant per output (same variable
      // groups all three calls), so each distinct descriptor pair computes
      // the 9-MAC chain once.
      auto acc = ctx.Broadcast(0);
      for (std::size_t dy = 0; dy < 3; ++dy) {
        acc = ctx.DotAccumulate(acc, &image_[(y + dy) * width_ + x], 1,
                                &stencil_[dy * 3], 1, 3,
                                {row_var, stencil_var}, {acc_var});
      }
      for (std::size_t l = 0; l < lanes; ++l)
        out[l * out_size + y * out_cols + x] = static_cast<double>(acc.v[l]);
    }
  }
  return out;
}

}  // namespace axdse::workloads
