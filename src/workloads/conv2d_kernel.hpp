#pragma once
// 2D convolution kernel (extension workload): a 3x3 integer stencil over a
// synthetic 8-bit image — the kind of image-processing workload the AxC
// literature motivates (blur/sharpen under approximation).

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace axdse::workloads {

/// out(y,x) = sum_{dy,dx} image(y+dy, x+dx) * stencil(dy,dx) over the valid
/// interior (no padding). 8-bit data, 8-bit operator set.
/// Variables: "image", "stencil", "acc", plus one variable per image row
/// band when `row_bands > 1`.
class Conv2DKernel final : public Kernel {
 public:
  /// A `height` x `width` random image convolved with a fixed 3x3 smoothing
  /// stencil (1 2 1 / 2 4 2 / 1 2 1). `row_bands` >= 1 splits the image rows
  /// into bands with one selection variable each.
  /// Throws std::invalid_argument if the image is smaller than 3x3 or
  /// row_bands is 0 or exceeds the output height.
  Conv2DKernel(std::size_t height, std::size_t width, std::size_t row_bands,
               std::uint64_t seed);

  const std::string& Name() const noexcept override;
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<VariableInfo>& Variables() const noexcept override {
    return variables_;
  }
  std::vector<double> Run(instrument::ApproxContext& ctx) const override;
  bool SupportsLanes() const noexcept override { return true; }
  std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const override;

  std::size_t VarOfStencil() const noexcept { return row_bands_; }
  std::size_t VarOfAccumulator() const noexcept { return row_bands_ + 1; }
  /// Variable covering output row `y`.
  std::size_t VarOfRow(std::size_t y) const noexcept;

  std::size_t Height() const noexcept { return height_; }
  std::size_t Width() const noexcept { return width_; }

  /// Data accessors (for tests): image pixel and 3x3 stencil weight.
  std::uint8_t Pixel(std::size_t y, std::size_t x) const {
    return image_[y * width_ + x];
  }
  std::uint8_t StencilWeight(std::size_t dy, std::size_t dx) const {
    return stencil_[dy * 3 + dx];
  }

 private:
  std::size_t height_;
  std::size_t width_;
  std::size_t row_bands_;
  std::string name_;
  std::vector<std::uint8_t> image_;
  /// 3x3 smoothing weights {1,2,4}; stored narrow so the batched MAC takes
  /// the unsigned fast path (pixel and weight are both provably
  /// non-negative).
  std::vector<std::uint8_t> stencil_;
  std::vector<VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace axdse::workloads
