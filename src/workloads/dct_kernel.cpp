#include "workloads/dct_kernel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "instrument/multi_approx_context.hpp"
#include "util/rng.hpp"

namespace axdse::workloads {

DctKernel::DctKernel(std::size_t blocks, std::uint64_t seed)
    : blocks_(blocks),
      name_("dct8x8-" + std::to_string(blocks)),
      variables_({{"pixels"}, {"coeffs"}, {"acc"}}),
      operators_(axc::EvoApproxCatalog::Instance().FirSet()) {
  if (blocks == 0) throw std::invalid_argument("DctKernel: blocks == 0");
  util::Rng rng(seed);
  pixels_.resize(blocks * 64);
  for (auto& p : pixels_) p = static_cast<std::uint8_t>(rng.UniformBelow(256));

  // Orthonormal DCT-II matrix: C[u][k] = s(u) * cos((2k+1) u pi / 16),
  // s(0) = sqrt(1/8), s(u>0) = sqrt(2/8); quantized to Q14.
  dct_q14_.resize(64);
  for (std::size_t u = 0; u < 8; ++u) {
    const double scale = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    for (std::size_t k = 0; k < 8; ++k) {
      const double value =
          scale * std::cos((2.0 * static_cast<double>(k) + 1.0) *
                           static_cast<double>(u) * std::numbers::pi / 16.0);
      dct_q14_[u * 8 + k] =
          static_cast<std::int32_t>(std::lround(value * 16384.0));
    }
  }
}

const std::string& DctKernel::Name() const noexcept { return name_; }

std::vector<double> DctKernel::Run(instrument::ApproxContext& ctx) const {
  std::vector<double> out(blocks_ * 64);
  const std::size_t px = VarOfPixels();
  const std::size_t cf = VarOfCoeffs();
  const std::size_t ac = VarOfAccumulator();
  std::int64_t temp[64];  // C * X, rescaled to ~pixel magnitude

  for (std::size_t b = 0; b < blocks_; ++b) {
    const std::uint8_t* block = &pixels_[b * 64];
    // Pass 1: T = (C * X) >> 14  (row transform). Each entry is one batched
    // 8-MAC: DCT row (unit stride) dot pixel column (stride 8).
    for (std::size_t u = 0; u < 8; ++u) {
      for (std::size_t j = 0; j < 8; ++j) {
        const std::int64_t acc = ctx.DotAccumulate(
            0, &dct_q14_[u * 8], 1, &block[j], 8, 8, {cf, px}, {ac});
        temp[u * 8 + j] = acc >> 14;  // rescale (wiring, not an ALU op)
      }
    }
    // Pass 2: Y = T * C^T (column transform), output in Q14 — both operands
    // unit stride.
    for (std::size_t u = 0; u < 8; ++u) {
      for (std::size_t v = 0; v < 8; ++v) {
        const std::int64_t acc = ctx.DotAccumulate(
            0, &temp[u * 8], 1, &dct_q14_[v * 8], 1, 8, {px, cf}, {ac});
        out[b * 64 + u * 8 + v] = static_cast<double>(acc);
      }
    }
  }
  return out;
}

std::vector<double> DctKernel::RunLanes(
    instrument::MultiApproxContext& ctx) const {
  using Lanes = instrument::MultiApproxContext::Lanes;
  const std::size_t lanes = ctx.NumLanes();
  const std::size_t out_size = blocks_ * 64;
  std::vector<double> out(lanes * out_size);
  const std::size_t px = VarOfPixels();
  const std::size_t cf = VarOfCoeffs();
  const std::size_t ac = VarOfAccumulator();
  Lanes temp[64];

  for (std::size_t b = 0; b < blocks_; ++b) {
    const std::uint8_t* block = &pixels_[b * 64];
    for (std::size_t u = 0; u < 8; ++u) {
      for (std::size_t j = 0; j < 8; ++j) {
        Lanes acc = ctx.DotAccumulate(0, &dct_q14_[u * 8], 1, &block[j], 8, 8,
                                      {cf, px}, {ac});
        // >>14 rescale is wiring (lane-wise, partition preserved).
        for (std::size_t l = 0; l < lanes; ++l) acc.v[l] >>= 14;
        temp[u * 8 + j] = acc;
      }
    }
    // Pass 2 reads pass 1's lane-parallel intermediates: the lane-operand
    // dot groups lanes that agree on both the descriptors and every
    // element's partition.
    for (std::size_t u = 0; u < 8; ++u) {
      for (std::size_t v = 0; v < 8; ++v) {
        const Lanes acc = ctx.DotAccumulate(0, &temp[u * 8], &dct_q14_[v * 8],
                                            1, 8, {px, cf}, {ac});
        for (std::size_t l = 0; l < lanes; ++l)
          out[l * out_size + b * 64 + u * 8 + v] =
              static_cast<double>(acc.v[l]);
      }
    }
  }
  return out;
}

}  // namespace axdse::workloads
