#pragma once
// 8x8 DCT-II kernel (extension workload): the transform at the heart of
// JPEG/MPEG — the canonical "accuracy-tolerant" application domain of the
// approximate-computing literature. Integer implementation: Q14 cosine
// coefficients, two instrumented matrix passes (C*X, then *C^T) with a >>14
// rescale between passes.

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace axdse::workloads {

/// Computes Y = C * X * C^T for `blocks` random 8x8 uint8 blocks, where C is
/// the order-8 DCT-II matrix in Q14. Uses the 16-bit adder / 32-bit
/// multiplier operator set (products are up to ~22 bits). Outputs all 64
/// coefficients of every block (Q14-scaled integers).
/// Variables: "pixels", "coeffs", "acc".
class DctKernel final : public Kernel {
 public:
  /// Throws std::invalid_argument if blocks == 0.
  DctKernel(std::size_t blocks, std::uint64_t seed);

  const std::string& Name() const noexcept override;
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<VariableInfo>& Variables() const noexcept override {
    return variables_;
  }
  std::vector<double> Run(instrument::ApproxContext& ctx) const override;
  bool SupportsLanes() const noexcept override { return true; }
  std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const override;

  std::size_t Blocks() const noexcept { return blocks_; }
  std::size_t VarOfPixels() const noexcept { return 0; }
  std::size_t VarOfCoeffs() const noexcept { return 1; }
  std::size_t VarOfAccumulator() const noexcept { return 2; }

  /// Q14 DCT matrix entry C[u][k] (for tests).
  std::int32_t CoefficientQ14(std::size_t u, std::size_t k) const {
    return dct_q14_[u * 8 + k];
  }

  /// Pixel accessor (for tests): block b, row r, column c.
  std::uint8_t Pixel(std::size_t b, std::size_t r, std::size_t c) const {
    return pixels_[(b * 8 + r) * 8 + c];
  }

 private:
  std::size_t blocks_;
  std::string name_;
  std::vector<std::uint8_t> pixels_;     ///< blocks_ x 8 x 8
  std::vector<std::int32_t> dct_q14_;    ///< 8 x 8 DCT-II matrix, Q14
  std::vector<VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace axdse::workloads
