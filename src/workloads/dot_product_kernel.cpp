#include "workloads/dot_product_kernel.hpp"

#include <stdexcept>

#include "instrument/multi_approx_context.hpp"
#include "util/rng.hpp"

namespace axdse::workloads {

DotProductKernel::DotProductKernel(std::size_t n, std::size_t blocks,
                                   std::uint64_t seed)
    : blocks_(blocks),
      name_("dot-" + std::to_string(n) + "x" + std::to_string(blocks)),
      variables_({{"a"}, {"b"}, {"acc"}}),
      operators_(axc::EvoApproxCatalog::Instance().MatMulSet()) {
  if (n == 0) throw std::invalid_argument("DotProductKernel: n == 0");
  if (blocks == 0 || blocks > n)
    throw std::invalid_argument("DotProductKernel: invalid block count");
  util::Rng rng(seed);
  a_.resize(n);
  b_.resize(n);
  for (auto& v : a_) v = static_cast<std::uint8_t>(rng.UniformBelow(256));
  for (auto& v : b_) v = static_cast<std::uint8_t>(rng.UniformBelow(256));
}

const std::string& DotProductKernel::Name() const noexcept { return name_; }

std::vector<double> DotProductKernel::Run(
    instrument::ApproxContext& ctx) const {
  std::vector<double> out(blocks_);
  const std::size_t block_len = a_.size() / blocks_;
  for (std::size_t g = 0; g < blocks_; ++g) {
    const std::size_t begin = g * block_len;
    const std::size_t end = g + 1 == blocks_ ? a_.size() : begin + block_len;
    // One batched MAC chain per output block.
    const std::int64_t acc =
        ctx.DotAccumulate(0, &a_[begin], 1, &b_[begin], 1, end - begin,
                          {VarOfA(), VarOfB()}, {VarOfAccumulator()});
    out[g] = static_cast<double>(acc);
  }
  return out;
}

std::vector<double> DotProductKernel::RunLanes(
    instrument::MultiApproxContext& ctx) const {
  const std::size_t lanes = ctx.NumLanes();
  std::vector<double> out(lanes * blocks_);
  const std::size_t block_len = a_.size() / blocks_;
  for (std::size_t g = 0; g < blocks_; ++g) {
    const std::size_t begin = g * block_len;
    const std::size_t end = g + 1 == blocks_ ? a_.size() : begin + block_len;
    const auto acc =
        ctx.DotAccumulate(0, &a_[begin], 1, &b_[begin], 1, end - begin,
                          {VarOfA(), VarOfB()}, {VarOfAccumulator()});
    for (std::size_t l = 0; l < lanes; ++l)
      out[l * blocks_ + g] = static_cast<double>(acc.v[l]);
  }
  return out;
}

}  // namespace axdse::workloads
