#pragma once
// Dot-product kernel (extension workload): the smallest interesting
// MAC-structured benchmark; also the fast kernel used by unit tests.

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace axdse::workloads {

/// out[g] = sum over one block of a[i]*b[i]; the vectors are split into
/// `blocks` equal blocks so the kernel has more than one output (making MAE
/// meaningful). 8-bit data, 8-bit operator set. Variables: "a", "b", "acc".
class DotProductKernel final : public Kernel {
 public:
  /// Throws std::invalid_argument if n == 0, blocks == 0, or blocks > n.
  DotProductKernel(std::size_t n, std::size_t blocks, std::uint64_t seed);

  const std::string& Name() const noexcept override;
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<VariableInfo>& Variables() const noexcept override {
    return variables_;
  }
  std::vector<double> Run(instrument::ApproxContext& ctx) const override;
  bool SupportsLanes() const noexcept override { return true; }
  std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const override;

  std::size_t VarOfA() const noexcept { return 0; }
  std::size_t VarOfB() const noexcept { return 1; }
  std::size_t VarOfAccumulator() const noexcept { return 2; }

  /// Element accessors (for tests).
  std::uint8_t A(std::size_t i) const { return a_[i]; }
  std::uint8_t B(std::size_t i) const { return b_[i]; }
  std::size_t Length() const noexcept { return a_.size(); }
  std::size_t Blocks() const noexcept { return blocks_; }

 private:
  std::size_t blocks_;
  std::string name_;
  std::vector<std::uint8_t> a_;
  std::vector<std::uint8_t> b_;
  std::vector<VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace axdse::workloads
