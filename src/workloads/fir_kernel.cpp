#include "workloads/fir_kernel.hpp"

#include <stdexcept>

#include "instrument/multi_approx_context.hpp"
#include "signal/fir_design.hpp"
#include "signal/noise.hpp"
#include "signal/quantize.hpp"

namespace axdse::workloads {

namespace {
constexpr std::size_t kDefaultTaps = 17;
constexpr double kDefaultCutoff = 0.2;
}  // namespace

FirKernel::FirKernel(std::size_t num_samples, std::size_t taps, double cutoff,
                     FirGranularity granularity, std::uint64_t seed)
    : granularity_(granularity),
      operators_(axc::EvoApproxCatalog::Instance().FirSet()) {
  if (num_samples == 0) throw std::invalid_argument("FirKernel: no samples");
  const std::vector<double> noise =
      signal::UniformWhiteNoise(num_samples, 0.95, seed);
  x_ = signal::ToFixedVector(noise, 15);
  name_ = "fir-" + std::to_string(x_.size());
  const std::vector<double> coeffs = signal::DesignLowPass(taps, cutoff);
  h_ = signal::ToFixedVector(coeffs, 15);

  if (granularity_ == FirGranularity::kPerArray) {
    variables_ = {{"x"}, {"h"}, {"acc"}};
  } else {
    variables_.reserve(taps + 2);
    variables_.push_back({"x"});
    for (std::size_t k = 0; k < taps; ++k)
      variables_.push_back({"h.tap" + std::to_string(k)});
    variables_.push_back({"acc"});
  }
}

FirKernel::FirKernel(std::size_t num_samples, std::uint64_t seed)
    : FirKernel(num_samples, kDefaultTaps, kDefaultCutoff,
                FirGranularity::kPerTap, seed) {}

const std::string& FirKernel::Name() const noexcept { return name_; }

std::size_t FirKernel::VarOfInput() const noexcept { return 0; }

std::size_t FirKernel::VarOfTap(std::size_t k) const noexcept {
  return granularity_ == FirGranularity::kPerArray ? 1 : 1 + k;
}

std::size_t FirKernel::VarOfAccumulator() const noexcept {
  return granularity_ == FirGranularity::kPerArray ? 2 : 1 + h_.size();
}

std::vector<double> FirKernel::Run(instrument::ApproxContext& ctx) const {
  // Tap-major formulation: output i accumulates the tap products
  // h[0]*x[i], h[1]*x[i-1], ... in ascending k — exactly the operand
  // sequence of the historical sample-major loop — but iterating tap-major
  // turns each tap into one batched AXPY over the accumulator array
  // (selection resolution and op accounting hoisted out of the inner loop;
  // per-tap variables make the per-output dot non-uniform, AXPY is the
  // batchable axis).
  std::vector<std::int64_t> acc(x_.size(), 0);  // Q30 accumulators
  const std::size_t x_var = VarOfInput();
  const std::size_t acc_var = VarOfAccumulator();
  for (std::size_t k = 0; k < h_.size() && k < x_.size(); ++k) {
    // acc[i] += h[k] * x[i-k] for all outputs i >= k (zero-padded history
    // contributes nothing below that).
    ctx.AxpyAccumulate(acc.data() + k, x_.data(), x_.size() - k,
                       static_cast<std::int64_t>(h_[k]), {VarOfTap(k), x_var},
                       {acc_var});
  }
  std::vector<double> out(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i)
    out[i] = static_cast<double>(acc[i]);
  return out;
}

std::vector<double> FirKernel::RunLanes(
    instrument::MultiApproxContext& ctx) const {
  const std::size_t lanes = ctx.NumLanes();
  // Zero-initialized Lanes are Broadcast(0): all lanes one dedup group.
  std::vector<instrument::MultiApproxContext::Lanes> acc(x_.size());
  const std::size_t x_var = VarOfInput();
  const std::size_t acc_var = VarOfAccumulator();
  for (std::size_t k = 0; k < h_.size() && k < x_.size(); ++k) {
    ctx.AxpyAccumulate(acc.data() + k, x_.data(), x_.size() - k,
                       static_cast<std::int64_t>(h_[k]), {VarOfTap(k), x_var},
                       {acc_var});
  }
  std::vector<double> out(lanes * x_.size());
  for (std::size_t l = 0; l < lanes; ++l)
    for (std::size_t i = 0; i < x_.size(); ++i)
      out[l * x_.size() + i] = static_cast<double>(acc[i].v[l]);
  return out;
}

}  // namespace axdse::workloads
