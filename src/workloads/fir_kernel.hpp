#pragma once
// FIR low-pass benchmark (paper: 100 and 200 white-noise samples, paired with
// the 16-bit adder and 32-bit multiplier sets).
//
// Fixed-point structure (DESIGN.md §1, inferred parameters):
//   * input samples and coefficients are Q15 (16-bit signed),
//   * each tap product goes through the 32-bit multiplier (Q30 result),
//   * products are accumulated in Q30 by the 16-bit adder model (which
//     approximates the low bits of the accumulation — exactly the slice an
//     approximate 16-bit ALU would corrupt).
// Outputs are the per-sample accumulator values in raw Q30 ticks.

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace axdse::workloads {

/// Variable granularity for the FIR kernel.
enum class FirGranularity {
  /// Three variables: the input signal x, the coefficient array h, the
  /// accumulator.
  kPerArray,
  /// taps+2 variables: each coefficient tap h[k] separately, plus x and the
  /// accumulator.
  kPerTap,
};

/// y[i] = sum_k h[k] * x[i-k] over `num_samples` outputs (zero-padded
/// history), with h a windowed-sinc low-pass.
class FirKernel final : public Kernel {
 public:
  /// Builds the kernel: white-noise input (uniform in [-1,1), Q15) and a
  /// `taps`-tap low-pass with the given cutoff (cycles/sample).
  /// Throws std::invalid_argument on invalid sizes (see DesignLowPass).
  FirKernel(std::size_t num_samples, std::size_t taps, double cutoff,
            FirGranularity granularity, std::uint64_t seed);

  /// Paper-default configuration: 17 taps, 0.2 cutoff, per-tap granularity.
  FirKernel(std::size_t num_samples, std::uint64_t seed);

  const std::string& Name() const noexcept override;
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<VariableInfo>& Variables() const noexcept override {
    return variables_;
  }
  std::vector<double> Run(instrument::ApproxContext& ctx) const override;
  bool SupportsLanes() const noexcept override { return true; }
  std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const override;

  std::size_t NumSamples() const noexcept { return x_.size(); }
  std::size_t Taps() const noexcept { return h_.size(); }
  FirGranularity Granularity() const noexcept { return granularity_; }

  /// Variable indices.
  std::size_t VarOfInput() const noexcept;
  std::size_t VarOfTap(std::size_t k) const noexcept;
  std::size_t VarOfAccumulator() const noexcept;

  /// Q15 data accessors (for tests).
  const std::vector<std::int32_t>& SamplesQ15() const noexcept { return x_; }
  const std::vector<std::int32_t>& CoefficientsQ15() const noexcept {
    return h_;
  }

 private:
  FirGranularity granularity_;
  std::string name_;
  std::vector<std::int32_t> x_;  ///< Q15 input samples
  std::vector<std::int32_t> h_;  ///< Q15 coefficients
  std::vector<VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace axdse::workloads
