#include "workloads/iir_kernel.hpp"

#include <cmath>
#include <stdexcept>

#include "instrument/multi_approx_context.hpp"
#include "signal/noise.hpp"
#include "signal/quantize.hpp"

namespace axdse::workloads {

IirKernel::IirKernel(std::size_t num_samples, double cutoff,
                     std::uint64_t seed)
    : design_(signal::DesignBiquadLowPass(cutoff)),
      variables_({{"x"}, {"b"}, {"a"}, {"acc"}}),
      operators_(axc::EvoApproxCatalog::Instance().FirSet()) {
  if (num_samples == 0) throw std::invalid_argument("IirKernel: no samples");
  if (!signal::IsStable(design_))
    throw std::invalid_argument("IirKernel: unstable design");
  const std::vector<double> noise =
      signal::UniformWhiteNoise(num_samples, 0.9, seed);
  x_ = signal::ToFixedVector(noise, 15);
  name_ = "iir-biquad-" + std::to_string(x_.size());
  b_q15_[0] = signal::ToFixed(design_.b0, 15);
  b_q15_[1] = signal::ToFixed(design_.b1, 15);
  b_q15_[2] = signal::ToFixed(design_.b2, 15);
  // a1 of a low-pass biquad lies in (-2, 0): halve into Q15 range and
  // compensate with a doubled accumulation (standard fixed-point trick).
  a_q15_[0] = signal::ToFixed(design_.a1 / 2.0, 15);
  a_q15_[1] = signal::ToFixed(design_.a2, 15);
}

const std::string& IirKernel::Name() const noexcept { return name_; }

std::vector<double> IirKernel::Run(instrument::ApproxContext& ctx) const {
  std::vector<double> out(x_.size());
  const std::size_t vx = VarOfInput();
  const std::size_t vb = VarOfFeedForward();
  const std::size_t va = VarOfFeedback();
  const std::size_t vacc = VarOfAccumulator();
  // The recurrence cannot batch across samples, but the three selection
  // decisions are loop-invariant: resolve them once and run the sample loop
  // on pre-resolved (plan-dispatched) ops.
  const bool ff = ctx.AnyApproximated({vb, vx});
  const bool fb = ctx.AnyApproximated({va, vacc});
  const bool ac = ctx.AnyApproximated({vacc});

  std::int64_t x1 = 0;
  std::int64_t x2 = 0;
  std::int64_t y1 = 0;  // Q15 feedback state
  std::int64_t y2 = 0;
  for (std::size_t n = 0; n < x_.size(); ++n) {
    const std::int64_t xn = x_[n];
    std::int64_t acc = 0;  // Q30
    acc = ctx.AddResolved(ac, acc, ctx.MulResolved(ff, b_q15_[0], xn));
    acc = ctx.AddResolved(ac, acc, ctx.MulResolved(ff, b_q15_[1], x1));
    acc = ctx.AddResolved(ac, acc, ctx.MulResolved(ff, b_q15_[2], x2));
    // Feedback taps: -a1*y1 (a1 stored halved -> product doubled) - a2*y2.
    const std::int64_t fb1 = ctx.MulResolved(fb, a_q15_[0], y1);
    acc = ctx.AddResolved(ac, acc, -2 * fb1);
    const std::int64_t fb2 = ctx.MulResolved(fb, a_q15_[1], y2);
    acc = ctx.AddResolved(ac, acc, -fb2);

    const std::int64_t yn = acc >> 15;  // rescale Q30 -> Q15 (wiring)
    out[n] = static_cast<double>(yn);
    x2 = x1;
    x1 = xn;
    y2 = y1;
    y1 = yn;
  }
  return out;
}

std::vector<double> IirKernel::RunLanes(
    instrument::MultiApproxContext& ctx) const {
  using Lanes = instrument::MultiApproxContext::Lanes;
  const std::size_t lanes = ctx.NumLanes();
  std::vector<double> out(lanes * x_.size());
  // Same loop-invariant decision hoisting as Run(), as per-lane masks.
  const std::uint64_t ff = ctx.ApproxLaneMask({VarOfFeedForward(), VarOfInput()});
  const std::uint64_t fb = ctx.ApproxLaneMask({VarOfFeedback(), VarOfAccumulator()});
  const std::uint64_t ac = ctx.ApproxLaneMask({VarOfAccumulator()});
  // The -2*, unary minus, and >>15 rescales below are wiring, not counted
  // ALU ops: applied lane-wise they preserve the dedup partition.
  const auto lanewise = [&lanes](Lanes x, auto fn) {
    for (std::size_t l = 0; l < lanes; ++l) x.v[l] = fn(x.v[l]);
    return x;
  };
  Lanes x1 = ctx.Broadcast(0);
  Lanes x2 = ctx.Broadcast(0);
  Lanes y1 = ctx.Broadcast(0);  // Q15 feedback state
  Lanes y2 = ctx.Broadcast(0);
  for (std::size_t n = 0; n < x_.size(); ++n) {
    const Lanes xn = ctx.Broadcast(x_[n]);
    Lanes acc = ctx.Broadcast(0);  // Q30
    acc = ctx.AddResolved(
        ac, acc, ctx.MulResolved(ff, ctx.Broadcast(b_q15_[0]), xn));
    acc = ctx.AddResolved(
        ac, acc, ctx.MulResolved(ff, ctx.Broadcast(b_q15_[1]), x1));
    acc = ctx.AddResolved(
        ac, acc, ctx.MulResolved(ff, ctx.Broadcast(b_q15_[2]), x2));
    const Lanes fb1 = ctx.MulResolved(fb, ctx.Broadcast(a_q15_[0]), y1);
    acc = ctx.AddResolved(
        ac, acc, lanewise(fb1, [](std::int64_t v) { return -2 * v; }));
    const Lanes fb2 = ctx.MulResolved(fb, ctx.Broadcast(a_q15_[1]), y2);
    acc = ctx.AddResolved(
        ac, acc, lanewise(fb2, [](std::int64_t v) { return -v; }));

    const Lanes yn =
        lanewise(acc, [](std::int64_t v) { return v >> 15; });  // Q30 -> Q15
    for (std::size_t l = 0; l < lanes; ++l)
      out[l * x_.size() + n] = static_cast<double>(yn.v[l]);
    x2 = x1;
    x1 = xn;
    y2 = y1;
    y1 = yn;
  }
  return out;
}

}  // namespace axdse::workloads
