#pragma once
// Biquad IIR low-pass kernel (extension workload): unlike the FIR benchmark,
// the recurrence feeds approximate results back into the datapath, so
// operator errors recirculate — the hardest structural case for approximate
// arithmetic in filters.

#include <cstdint>
#include <string>
#include <vector>

#include "signal/biquad.hpp"
#include "workloads/kernel.hpp"

namespace axdse::workloads {

/// Direct-form-I biquad on Q15 white noise:
///   y[n] = (b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2])
/// with Q15 coefficients, Q30 products accumulated by the 16-bit adder model
/// and rescaled (>>15) into the Q15 feedback state. Outputs the Q15 output
/// samples. Variables: "x", "b" (feed-forward), "a" (feedback), "acc".
class IirKernel final : public Kernel {
 public:
  /// Throws std::invalid_argument on invalid sizes/design parameters or an
  /// unstable design.
  IirKernel(std::size_t num_samples, double cutoff, std::uint64_t seed);

  const std::string& Name() const noexcept override;
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<VariableInfo>& Variables() const noexcept override {
    return variables_;
  }
  std::vector<double> Run(instrument::ApproxContext& ctx) const override;
  bool SupportsLanes() const noexcept override { return true; }
  std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const override;

  std::size_t NumSamples() const noexcept { return x_.size(); }
  const signal::BiquadCoeffs& Design() const noexcept { return design_; }

  std::size_t VarOfInput() const noexcept { return 0; }
  std::size_t VarOfFeedForward() const noexcept { return 1; }
  std::size_t VarOfFeedback() const noexcept { return 2; }
  std::size_t VarOfAccumulator() const noexcept { return 3; }

  /// Q15 input samples (for tests).
  const std::vector<std::int32_t>& SamplesQ15() const noexcept { return x_; }

  /// Q15 coefficient accessors (for the batched/scalar equivalence tests):
  /// feed-forward {b0, b1, b2} and feedback {a1/2, a2}.
  const std::int32_t* FeedForwardQ15() const noexcept { return b_q15_; }
  const std::int32_t* FeedbackQ15() const noexcept { return a_q15_; }

 private:
  signal::BiquadCoeffs design_;
  std::string name_;
  std::vector<std::int32_t> x_;  ///< Q15 input
  std::int32_t b_q15_[3] = {0, 0, 0};
  std::int32_t a_q15_[2] = {0, 0};
  std::vector<VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace axdse::workloads
