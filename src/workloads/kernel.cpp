#include "workloads/kernel.hpp"

#include <stdexcept>

#include "metrics/error_metrics.hpp"

namespace axdse::workloads {

std::vector<double> Kernel::RunLanes(instrument::MultiApproxContext&) const {
  throw std::logic_error("Kernel::RunLanes: '" + Name() +
                         "' does not support lane-parallel evaluation");
}

double Kernel::AccuracyError(std::span<const double> precise,
                             std::span<const double> approx) const {
  return metrics::MeanAbsoluteError(precise, approx);
}

std::size_t Kernel::VariableIndex(const std::string& name) const {
  const auto& vars = Variables();
  for (std::size_t i = 0; i < vars.size(); ++i)
    if (vars[i].name == name) return i;
  throw std::invalid_argument("Kernel::VariableIndex: unknown variable '" +
                              name + "'");
}

}  // namespace axdse::workloads
