#pragma once
// Kernel abstraction: an application written against the instrumentation
// layer so that every sum/multiplication is attributable to named program
// variables and can be selectively approximated (the paper's "automatic code
// instrumentation" of the target application).

#include <span>
#include <string>
#include <vector>

#include "axc/catalog.hpp"
#include "instrument/approx_context.hpp"

namespace axdse::instrument {
class MultiApproxContext;
}

namespace axdse::workloads {

/// A named approximable program variable.
struct VariableInfo {
  std::string name;
};

/// Operation counts attributed to one named pipeline stage. Multi-stage
/// kernels report one entry per stage; the per-stage counts sum to the
/// whole-kernel totals for the same selection.
struct StageOpCounts {
  std::string stage;
  energy::OpCounts counts;
};

/// Interface implemented by every benchmark application.
///
/// A kernel owns its input data (generated deterministically from a seed at
/// construction) and declares (a) the operator set its arithmetic maps to and
/// (b) the list of variables the DSE may select for approximation. Run() must
/// be deterministic and route *all* counted arithmetic through the context.
///
/// Run() must also be const-thread-safe (no mutable member state): the
/// dse::Engine executes multi-seed explorations of one kernel instance
/// concurrently, each worker with its own ApproxContext. All built-in
/// kernels satisfy this; keep scratch state inside Run()'s stack frame.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Human-readable benchmark name, e.g. "matmul-10x10". Returned by const
  /// reference: implementations compute it once (constructor) and keep it —
  /// the engine and cache grouping read it per evaluation, so per-call
  /// std::string construction was measurable churn.
  virtual const std::string& Name() const noexcept = 0;

  /// The accuracy-ordered operator set this kernel's arithmetic uses.
  virtual const axc::OperatorSet& Operators() const noexcept = 0;

  /// The approximable variables, indexed 0..NumVariables()-1.
  virtual const std::vector<VariableInfo>& Variables() const noexcept = 0;

  /// Number of approximable variables.
  std::size_t NumVariables() const noexcept { return Variables().size(); }

  /// Executes the kernel under the context's active selection and returns
  /// the outputs (raw integer results widened to double).
  virtual std::vector<double> Run(instrument::ApproxContext& ctx) const = 0;

  /// True when the kernel implements RunLanes(). Built-in kernels do;
  /// user kernels default to the scalar path.
  virtual bool SupportsLanes() const noexcept { return false; }

  /// Executes the kernel once for ALL lanes configured on the context and
  /// returns the outputs lane-major: lane l's Run()-equivalent output
  /// occupies [l * out_size, (l + 1) * out_size). Implementations must
  /// produce, per lane, bit-identical values and op counts to Run() under
  /// the same selection. Default throws std::logic_error (guard with
  /// SupportsLanes()).
  virtual std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const;

  /// End-to-end quality metric: the accuracy degradation of `approx`
  /// relative to `precise` (the all-precise golden outputs), as consumed by
  /// the evaluator's delta_acc. Lower is better; 0 means indistinguishable.
  /// The default is the paper's Mean Absolute Error (Eq. 2); multi-stage
  /// kernels override it with application metrics (PSNR gap, top-error).
  /// Must be deterministic and const-thread-safe like Run().
  virtual double AccuracyError(std::span<const double> precise,
                               std::span<const double> approx) const;

  /// Per-stage operation counts under `selection`. Single-stage kernels
  /// return an empty vector (the default); pipeline kernels replay their
  /// stages and attribute counts so reports can show where the work — and
  /// the approximation — lives. Deterministic and const-thread-safe.
  virtual std::vector<StageOpCounts> StageCounts(
      const instrument::ApproxSelection& selection) const {
    (void)selection;
    return {};
  }

  /// Creates a context bound to this kernel's operator set and variables
  /// (initially all-precise).
  instrument::ApproxContext MakeContext() const {
    return instrument::ApproxContext(Operators(), NumVariables());
  }

  /// Index of the variable with the given name.
  /// Throws std::invalid_argument if absent.
  std::size_t VariableIndex(const std::string& name) const;
};

}  // namespace axdse::workloads
