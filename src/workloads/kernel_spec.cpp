#include "workloads/kernel_spec.hpp"

#include <cstdint>
#include <stdexcept>

namespace axdse::workloads {

namespace {

bool NeedsEscape(char c) {
  switch (c) {
    case '%':
    case ' ':
    case '\t':
    case '\n':
    case '\r':
    case ';':
    case '=':
    case '@':
    case '{':
    case '}':
    case ',':
      return true;
    default:
      return false;
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

[[noreturn]] void Fail(const std::string& why) {
  throw std::invalid_argument("KernelSpec: " + why);
}

std::size_t ParseSize(const std::string& text) {
  if (text.empty()) Fail("empty size after '@'");
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') Fail("non-numeric size '" + text + "'");
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) Fail("size overflow '" + text + "'");
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

std::string EscapeSpecComponent(const std::string& text) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    if (NeedsEscape(static_cast<char>(c))) {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

std::string UnescapeSpecComponent(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 2 >= text.size()) Fail("truncated escape in '" + text + "'");
    const int hi = HexValue(text[i + 1]);
    const int lo = HexValue(text[i + 2]);
    if (hi < 0 || lo < 0) Fail("bad escape in '" + text + "'");
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

std::string KernelSpec::ToString() const {
  std::string out = EscapeSpecComponent(name);
  if (size != 0) {
    out.push_back('@');
    out += std::to_string(size);
  }
  if (!extra.empty()) {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : extra) {
      if (!first) out.push_back(',');
      first = false;
      out += EscapeSpecComponent(key);
      out.push_back('=');
      out += EscapeSpecComponent(value);
    }
    out.push_back('}');
  }
  return out;
}

KernelSpec KernelSpec::Parse(const std::string& text) {
  KernelSpec spec;
  // Locate the structural markers: the extras block is a trailing {...};
  // '@' before it (if any) starts the size.
  std::size_t head_end = text.size();
  std::size_t brace = text.find('{');
  if (brace != std::string::npos) {
    if (text.back() != '}')
      Fail("extras block not terminated by '}' in '" + text + "'");
    head_end = brace;
  } else if (text.find('}') != std::string::npos) {
    Fail("stray '}' in '" + text + "'");
  }
  const std::string head = text.substr(0, head_end);
  if (head.find('}') != std::string::npos) Fail("stray '}' in '" + text + "'");
  const std::size_t at = head.find('@');
  if (at == std::string::npos) {
    spec.name = UnescapeSpecComponent(head);
  } else {
    spec.name = UnescapeSpecComponent(head.substr(0, at));
    spec.size = ParseSize(head.substr(at + 1));
  }
  if (brace != std::string::npos) {
    const std::string block = text.substr(brace + 1, text.size() - brace - 2);
    if (block.find('{') != std::string::npos)
      Fail("nested '{' in '" + text + "'");
    std::size_t start = 0;
    while (start <= block.size()) {
      std::size_t comma = block.find(',', start);
      if (comma == std::string::npos) comma = block.size();
      const std::string pair = block.substr(start, comma - start);
      start = comma + 1;
      if (pair.empty()) {
        if (block.empty()) break;  // `{}` — no extras
        Fail("empty key=value entry in '" + text + "'");
      }
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos)
        Fail("extras entry without '=' in '" + text + "'");
      std::string key = UnescapeSpecComponent(pair.substr(0, eq));
      std::string value = UnescapeSpecComponent(pair.substr(eq + 1));
      if (key.empty()) Fail("empty extras key in '" + text + "'");
      if (!spec.extra.emplace(std::move(key), value).second)
        Fail("duplicate extras key in '" + text + "'");
      if (comma == block.size()) break;
    }
  }
  return spec;
}

std::vector<std::string> SplitSpecList(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
      continue;
    }
    if (text[i] == '{') ++depth;
    if (text[i] == '}') --depth;
  }
  return out;
}

}  // namespace axdse::workloads
