#pragma once
// KernelSpec — the one typed kernel identity used everywhere a kernel is
// named by value: `ExplorationRequest`, `CampaignSpec` grids, registry
// creation, cache grouping, and report labels. The textual form is
//
//   name@size{key=value,key=value,...}
//
// with `@size` omitted when size == 0 (use the kernel's default) and the
// brace block omitted when there are no extras. Keys are emitted in
// std::map order, so equal specs render to equal strings and the string is
// a canonical identity. ToString/Parse round-trip losslessly: name, keys,
// and values are percent-escaped so arbitrary bytes (spaces, '@', braces,
// commas, '=', ';', newlines) survive embedding in request token streams
// and campaign comma lists.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace axdse::workloads {

struct KernelSpec {
  std::string name;
  /// Primary size parameter; 0 means "kernel default".
  std::size_t size = 0;
  /// Kernel-specific extras, e.g. {"granularity","row"}. Canonically ordered.
  std::map<std::string, std::string> extra;

  KernelSpec() = default;
  explicit KernelSpec(std::string kernel_name, std::size_t kernel_size = 0)
      : name(std::move(kernel_name)), size(kernel_size) {}

  /// Canonical textual form (see file comment). Deterministic: equal specs
  /// produce byte-equal strings.
  std::string ToString() const;

  /// Inverse of ToString. Accepts any output of ToString plus insignificant
  /// variants (e.g. explicit `@0`). Throws std::invalid_argument with a
  /// "KernelSpec:"-prefixed message on malformed input.
  static KernelSpec Parse(const std::string& text);

  friend bool operator==(const KernelSpec& a, const KernelSpec& b) {
    return a.name == b.name && a.size == b.size && a.extra == b.extra;
  }
  friend bool operator!=(const KernelSpec& a, const KernelSpec& b) {
    return !(a == b);
  }
};

/// Escapes a spec component (name, key, or value) for embedding: '%', all
/// whitespace, ';', '=', '@', '{', '}', and ',' become %XX.
std::string EscapeSpecComponent(const std::string& text);

/// Generic %XX decoder (inverse of EscapeSpecComponent). Throws
/// std::invalid_argument on truncated or non-hex escapes.
std::string UnescapeSpecComponent(const std::string& text);

/// Splits a comma-separated list of specs at top-level commas only (commas
/// inside `{...}` belong to the extras block). Used by the campaign
/// `kernels=` axis. Empty input yields an empty list.
std::vector<std::string> SplitSpecList(const std::string& text);

}  // namespace axdse::workloads
