#include "workloads/kmeans_kernel.hpp"

#include <array>
#include <limits>
#include <stdexcept>

#include "instrument/multi_approx_context.hpp"
#include "util/rng.hpp"

namespace axdse::workloads {

namespace {
/// Signed point range: +-2^13, comfortably inside the FIR set's Q15 domain.
constexpr std::int32_t kRange = 1 << 13;
}  // namespace

KMeans1DKernel::KMeans1DKernel(std::size_t n, std::size_t clusters,
                               std::uint64_t seed)
    : name_("kmeans1d-" + std::to_string(n) + "x" + std::to_string(clusters)),
      variables_({{"points"}, {"centroids"}, {"dist"}, {"acc"}}),
      operators_(axc::EvoApproxCatalog::Instance().FirSet()) {
  if (n == 0) throw std::invalid_argument("KMeans1DKernel: n == 0");
  if (clusters == 0 || clusters > n)
    throw std::invalid_argument("KMeans1DKernel: invalid cluster count");
  util::Rng rng(seed);
  points_.resize(n);
  for (auto& p : points_)
    p = static_cast<std::int16_t>(
        static_cast<std::int32_t>(rng.UniformBelow(2 * kRange)) - kRange);
  centroids_.resize(clusters);
  for (std::size_t j = 0; j < clusters; ++j)
    centroids_[j] = -kRange + static_cast<std::int32_t>(
                                  (2 * j + 1) * (2 * kRange) / (2 * clusters));
}

const std::string& KMeans1DKernel::Name() const noexcept { return name_; }

std::vector<double> KMeans1DKernel::Run(
    instrument::ApproxContext& ctx) const {
  const std::size_t n = points_.size();
  const std::size_t k = centroids_.size();
  // Group decisions hoisted out of the n x k loop (iir-style).
  const bool diff_approx =
      ctx.AnyApproximated({VarOfPoints(), VarOfCentroids()});
  const bool dist_approx = ctx.AnyApproximated({VarOfDistance()});

  // Pass 1 — assignment: signed squared distance to every centroid, argmin
  // per point (the comparisons are not counted arithmetic).
  std::vector<std::int64_t> best_diff(n);
  std::vector<std::size_t> assign(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t best_d = std::numeric_limits<std::int64_t>::max();
    std::size_t best_j = 0;
    std::int64_t best_diff_i = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::int64_t diff =
          ctx.AddResolved(diff_approx, points_[i], -centroids_[j]);
      const std::int64_t d = ctx.MulResolved(dist_approx, diff, diff);
      if (d < best_d) {
        best_d = d;
        best_j = j;
        best_diff_i = diff;
      }
    }
    assign[i] = best_j;
    best_diff[i] = best_diff_i;
  }

  // Pass 2 — inertia: one batched signed MAC chain per cluster over the
  // winning differences, plus the assigned count (itself error-sensitive:
  // approximation moves points across cluster boundaries).
  std::vector<double> out(2 * k);
  std::vector<std::int64_t> scratch;
  scratch.reserve(n);
  for (std::size_t j = 0; j < k; ++j) {
    scratch.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (assign[i] == j) scratch.push_back(best_diff[i]);
    const std::int64_t inertia = ctx.DotAccumulate(
        0, scratch.data(), 1, scratch.data(), 1, scratch.size(),
        {VarOfDistance()}, {VarOfAccumulator()});
    out[2 * j] = static_cast<double>(inertia);
    out[2 * j + 1] = static_cast<double>(scratch.size());
  }
  return out;
}

std::vector<double> KMeans1DKernel::RunLanes(
    instrument::MultiApproxContext& ctx) const {
  using Ctx = instrument::MultiApproxContext;
  using Lanes = Ctx::Lanes;
  constexpr std::size_t kMaxLanes = Ctx::kMaxLanes;
  const std::size_t lanes = ctx.NumLanes();
  const std::size_t n = points_.size();
  const std::size_t k = centroids_.size();
  const std::uint64_t diff_mask =
      ctx.ApproxLaneMask({VarOfPoints(), VarOfCentroids()});
  const std::uint64_t dist_mask = ctx.ApproxLaneMask({VarOfDistance()});

  // Pass 1 — assignment per lane. The decision masks are constant across
  // the n x k loop, so every distance shares one partition P: lanes grouped
  // under P see identical distances, hence identical assignments.
  std::vector<std::int64_t> best_diff(n * kMaxLanes);
  std::vector<std::uint32_t> assign(n * kMaxLanes);
  Ctx::Partition p{};
  bool have_p = false;
  for (std::size_t i = 0; i < n; ++i) {
    std::array<std::int64_t, kMaxLanes> best_d;
    best_d.fill(std::numeric_limits<std::int64_t>::max());
    std::array<std::uint32_t, kMaxLanes> best_j{};
    std::array<std::int64_t, kMaxLanes> best_diff_i{};
    for (std::size_t j = 0; j < k; ++j) {
      const Lanes diff = ctx.AddResolved(diff_mask, ctx.Broadcast(points_[i]),
                                         ctx.Broadcast(-centroids_[j]));
      const Lanes d = ctx.MulResolved(dist_mask, diff, diff);
      if (!have_p) {
        p = d.rep;
        have_p = true;
      }
      for (std::size_t l = 0; l < lanes; ++l) {
        if (d.v[l] < best_d[l]) {
          best_d[l] = d.v[l];
          best_j[l] = static_cast<std::uint32_t>(j);
          best_diff_i[l] = diff.v[l];
        }
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      assign[i * kMaxLanes + l] = best_j[l];
      best_diff[i * kMaxLanes + l] = best_diff_i[l];
    }
  }

  // Pass 2 — inertia per cluster: scratch built once per dedup group (its
  // representative lane), every grouped lane pointing at the same buffer;
  // the per-lane dot charges each lane its own member count.
  const std::size_t out_size = 2 * k;
  std::vector<double> out(lanes * out_size);
  std::array<std::vector<std::int64_t>, kMaxLanes> scratch;
  for (std::size_t j = 0; j < k; ++j) {
    std::array<const std::int64_t*, kMaxLanes> aptr{};
    std::array<std::size_t, kMaxLanes> alen{};
    for (std::size_t l = 0; l < lanes; ++l) {
      if (p[l] != l) continue;
      scratch[l].clear();
      for (std::size_t i = 0; i < n; ++i)
        if (assign[i * kMaxLanes + l] == j)
          scratch[l].push_back(best_diff[i * kMaxLanes + l]);
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      aptr[l] = scratch[p[l]].data();
      alen[l] = scratch[p[l]].size();
    }
    const Lanes inertia =
        ctx.DotAccumulate(0, aptr, aptr, alen, p, {VarOfDistance()},
                          {VarOfAccumulator()});
    for (std::size_t l = 0; l < lanes; ++l) {
      out[l * out_size + 2 * j] = static_cast<double>(inertia.v[l]);
      out[l * out_size + 2 * j + 1] = static_cast<double>(alen[l]);
    }
  }
  return out;
}

}  // namespace axdse::workloads
