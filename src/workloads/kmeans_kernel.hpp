#pragma once
// 1D k-means distance-accumulation kernel (campaign workload): one
// assignment iteration of Lloyd's algorithm over signed 16-bit points —
// the clustering-style benchmark of the AxC literature, built on signed
// MACs (scalar squared distances for the argmin, a batched signed
// DotAccumulate for the per-cluster inertia).

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace axdse::workloads {

/// For every point, computes the squared distance to each centroid
/// ((x - c)^2, signed add + signed mul) and assigns the point to the
/// nearest one; then accumulates each cluster's inertia as a batched
/// signed MAC chain over the winning differences. Outputs per cluster:
/// inertia, then assigned point count (assignments shift under
/// approximation, so the count itself is error-sensitive).
/// Variables: "points", "centroids", "dist", "acc".
class KMeans1DKernel final : public Kernel {
 public:
  /// `n` random signed 16-bit points, `clusters` centroids evenly spaced
  /// over the value range. Throws std::invalid_argument if n == 0 or
  /// clusters is 0 or exceeds n.
  KMeans1DKernel(std::size_t n, std::size_t clusters, std::uint64_t seed);

  const std::string& Name() const noexcept override;
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<VariableInfo>& Variables() const noexcept override {
    return variables_;
  }
  std::vector<double> Run(instrument::ApproxContext& ctx) const override;
  bool SupportsLanes() const noexcept override { return true; }
  std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const override;

  std::size_t VarOfPoints() const noexcept { return 0; }
  std::size_t VarOfCentroids() const noexcept { return 1; }
  std::size_t VarOfDistance() const noexcept { return 2; }
  std::size_t VarOfAccumulator() const noexcept { return 3; }

  /// Data accessors (for tests).
  std::int16_t Point(std::size_t i) const { return points_[i]; }
  std::int32_t Centroid(std::size_t j) const { return centroids_[j]; }
  std::size_t Length() const noexcept { return points_.size(); }
  std::size_t Clusters() const noexcept { return centroids_.size(); }

 private:
  std::string name_;
  std::vector<std::int16_t> points_;
  std::vector<std::int32_t> centroids_;
  std::vector<VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace axdse::workloads
