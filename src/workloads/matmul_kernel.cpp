#include "workloads/matmul_kernel.hpp"

#include <stdexcept>

#include "instrument/multi_approx_context.hpp"
#include "util/rng.hpp"

namespace axdse::workloads {

MatMulKernel::MatMulKernel(std::size_t n, MatMulGranularity granularity,
                           std::uint64_t seed)
    : n_(n),
      granularity_(granularity),
      name_("matmul-" + std::to_string(n) + "x" + std::to_string(n)),
      operators_(axc::EvoApproxCatalog::Instance().MatMulSet()) {
  if (n == 0) throw std::invalid_argument("MatMulKernel: n == 0");
  util::Rng rng(seed);
  a_.resize(n * n);
  b_.resize(n * n);
  for (auto& v : a_) v = static_cast<std::uint8_t>(rng.UniformBelow(256));
  for (auto& v : b_) v = static_cast<std::uint8_t>(rng.UniformBelow(256));
  // Column-major copy of B so each output's MAC chain reads both operands
  // at unit stride (same values, vectorizable hot loop).
  bt_.resize(n * n);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j) bt_[j * n + k] = b_[k * n + j];

  if (granularity_ == MatMulGranularity::kPerMatrix) {
    variables_ = {{"A"}, {"B"}, {"acc"}};
  } else {
    variables_.reserve(2 * n + 1);
    for (std::size_t i = 0; i < n; ++i)
      variables_.push_back({"A.row" + std::to_string(i)});
    for (std::size_t j = 0; j < n; ++j)
      variables_.push_back({"B.col" + std::to_string(j)});
    variables_.push_back({"acc"});
  }
}

const std::string& MatMulKernel::Name() const noexcept { return name_; }

std::size_t MatMulKernel::VarOfARow(std::size_t i) const noexcept {
  return granularity_ == MatMulGranularity::kPerMatrix ? 0 : i;
}

std::size_t MatMulKernel::VarOfBCol(std::size_t j) const noexcept {
  return granularity_ == MatMulGranularity::kPerMatrix ? 1 : n_ + j;
}

std::size_t MatMulKernel::VarOfAccumulator() const noexcept {
  return granularity_ == MatMulGranularity::kPerMatrix ? 2 : 2 * n_;
}

std::vector<double> MatMulKernel::Run(instrument::ApproxContext& ctx) const {
  std::vector<double> out(n_ * n_);
  const std::size_t acc_var = VarOfAccumulator();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t row_var = VarOfARow(i);
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t col_var = VarOfBCol(j);
      // One batched MAC chain per output entry: row of A dot column of B
      // (read from the transposed copy, so both operands are unit-stride),
      // selection and dispatch resolved once.
      const std::int64_t acc =
          ctx.DotAccumulate(0, &a_[i * n_], 1, &bt_[j * n_], 1, n_,
                            {row_var, col_var}, {acc_var});
      out[i * n_ + j] = static_cast<double>(acc);
    }
  }
  return out;
}

std::vector<double> MatMulKernel::RunLanes(
    instrument::MultiApproxContext& ctx) const {
  const std::size_t lanes = ctx.NumLanes();
  const std::size_t out_size = n_ * n_;
  std::vector<double> out(lanes * out_size);
  const std::size_t acc_var = VarOfAccumulator();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t row_var = VarOfARow(i);
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t col_var = VarOfBCol(j);
      // Shared operands + shared zero start: one traversal, one chain per
      // distinct descriptor pair across the configured lanes.
      const auto acc = ctx.DotAccumulate(0, &a_[i * n_], 1, &bt_[j * n_], 1,
                                         n_, {row_var, col_var}, {acc_var});
      for (std::size_t l = 0; l < lanes; ++l)
        out[l * out_size + i * n_ + j] = static_cast<double>(acc.v[l]);
    }
  }
  return out;
}

}  // namespace axdse::workloads
