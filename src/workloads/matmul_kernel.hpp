#pragma once
// Matrix Multiplication benchmark (paper: 10x10 and 50x50, 8-bit data paired
// with the 8-bit adder/multiplier sets).

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace axdse::workloads {

/// Granularity at which the DSE can select variables for approximation.
enum class MatMulGranularity {
  /// Three variables: the whole of A, the whole of B, the accumulator.
  kPerMatrix,
  /// 2n+1 variables: each row of A, each column of B, plus the accumulator —
  /// the granularity that reproduces the paper's partially-approximated
  /// 50x50 exploration (DESIGN.md §1, inferred parameters).
  kRowCol,
};

/// C = A * B on n-by-n matrices of uniformly random 8-bit unsigned entries.
///
/// A multiplication a[i][k]*b[k][j] is approximated when the variable that
/// covers a's row i or b's column j is selected; the accumulation add is
/// approximated when the accumulator variable is selected. Outputs are the
/// n*n entries of C in row-major order.
class MatMulKernel final : public Kernel {
 public:
  /// Builds the kernel with deterministic inputs drawn from `seed`.
  /// Throws std::invalid_argument if n == 0.
  MatMulKernel(std::size_t n, MatMulGranularity granularity,
               std::uint64_t seed);

  const std::string& Name() const noexcept override;
  const axc::OperatorSet& Operators() const noexcept override {
    return operators_;
  }
  const std::vector<VariableInfo>& Variables() const noexcept override {
    return variables_;
  }
  std::vector<double> Run(instrument::ApproxContext& ctx) const override;
  bool SupportsLanes() const noexcept override { return true; }
  std::vector<double> RunLanes(
      instrument::MultiApproxContext& ctx) const override;

  std::size_t Size() const noexcept { return n_; }
  MatMulGranularity Granularity() const noexcept { return granularity_; }

  /// Variable index covering row i of A / column j of B / the accumulator.
  std::size_t VarOfARow(std::size_t i) const noexcept;
  std::size_t VarOfBCol(std::size_t j) const noexcept;
  std::size_t VarOfAccumulator() const noexcept;

  /// Element accessors (for tests).
  std::uint8_t A(std::size_t i, std::size_t k) const {
    return a_[i * n_ + k];
  }
  std::uint8_t B(std::size_t k, std::size_t j) const {
    return b_[k * n_ + j];
  }

 private:
  std::size_t n_;
  MatMulGranularity granularity_;
  std::string name_;
  std::vector<std::uint8_t> a_;
  std::vector<std::uint8_t> b_;
  std::vector<std::uint8_t> bt_;  ///< B transposed (unit-stride MAC chains)
  std::vector<VariableInfo> variables_;
  axc::OperatorSet operators_;
};

}  // namespace axdse::workloads
